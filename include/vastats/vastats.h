// vastats — Viable Answer Statistics for heterogeneous data integration.
//
// Umbrella header re-exporting the public API. Typical usage:
//
//   #include "vastats/vastats.h"
//
//   vastats::SourceSet sources = ...;            // register data sources
//   vastats::AggregateQuery query = ...;          // sum/avg/... over components
//   auto extractor = vastats::AnswerStatisticsExtractor::Create(
//       &sources, query, vastats::ExtractorOptions{});
//   auto stats = extractor->Extract();            // Algorithm 1
//   // stats->mean / variance / skewness with BCa CIs,
//   // stats->coverage (high coverage intervals), stats->stability.

#ifndef VASTATS_VASTATS_H_
#define VASTATS_VASTATS_H_

#include "core/cio.h"
#include "core/drift.h"
#include "core/extractor.h"
#include "core/grouped_extractor.h"
#include "core/monitor.h"
#include "core/report.h"
#include "core/stability.h"
#include "core/uncertain_export.h"
#include "datagen/climate.h"
#include "datagen/distributions.h"
#include "datagen/source_builder.h"
#include "density/bagged_kde.h"
#include "fusion/fusion.h"
#include "density/density_io.h"
#include "density/distance.h"
#include "density/grid_density.h"
#include "density/histogram.h"
#include "density/kde.h"
#include "datagen/component.h"
#include "datagen/data_source.h"
#include "integration/cost_model.h"
#include "datagen/fault_model.h"
#include "integration/hierarchy.h"
#include "integration/io.h"
#include "integration/mediated_schema.h"
#include "integration/record_mapper.h"
#include "datagen/source_accessor.h"
#include "datagen/source_set.h"
#include "integration/stratification.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "stats/aggregate.h"
#include "stats/aggregate_query.h"
#include "integration/grouped_query.h"
#include "query/mediated_query.h"
#include "sampling/query_processor.h"
#include "sampling/adaptive.h"
#include "sampling/exhaustive.h"
#include "sampling/multi.h"
#include "sampling/parallel.h"
#include "sampling/unis.h"
#include "sampling/weighted.h"
#include "serving/caches.h"
#include "serving/fingerprint.h"
#include "serving/scheduler.h"
#include "serving/server.h"
#include "stats/bootstrap.h"
#include "stats/confidence.h"
#include "stats/descriptive.h"
#include "stats/direct_inference.h"
#include "stats/jackknife.h"
#include "stats/ks_test.h"
#include "transport/async_transport.h"
#include "transport/clock_map.h"
#include "transport/endpoint.h"
#include "util/csv.h"
#include "util/fft.h"
#include "util/json_reader.h"
#include "util/json_writer.h"
#include "util/math.h"
#include "util/random.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

#endif  // VASTATS_VASTATS_H_
