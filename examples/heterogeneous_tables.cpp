// End-to-end pipeline from *raw heterogeneous tables* — the paper's
// Figure 1 reproduced literally, including its three levels of
// heterogeneity (§3):
//
//   schema level:   D1 calls the column "Avg Temp", D2/D3 call it "Temp";
//   instance level: D1/D3 write dates as "10-June-06", D2/D4 as "06/10/06";
//   value level:    three sources disagree on Vancouver 06-11 (19/22/17).
//
// The mediated schema + record mapper resolve the first two levels; the
// answer-statistics extractor then quantifies the third. A fifth source
// (D5) reporting in Fahrenheit is mapped through a declared unit
// conversion — and a sixth, whose Fahrenheit semantics nobody declared,
// shows how a silent unit error widens the viable answer range.

#include <cstdio>
#include <vector>

#include "vastats/vastats.h"

int main() {
  using namespace vastats;

  // 1. Mediated schema: attribute synonyms and canonical entities.
  MediatedSchema schema;
  schema.AddAttributeSynonym("Avg Temp", "temperature");
  schema.AddAttributeSynonym("Temp", "temperature");
  schema.AddAttributeSynonym("temperature", "temperature");
  for (const char* city : {"Burnaby", "Vancouver", "Surrey", "Richmond"}) {
    schema.DeclareEntity(city);
  }

  // 2. The raw tables, exactly as each source publishes them.
  const std::vector<RawRecord> records = {
      // D1 (Location / Avg Temp / Date as 10-June-06)
      {"D1", "Burnaby", "10-June-06", "Avg Temp", 21.0},
      {"D1", "Vancouver", "11-June-06", "Avg Temp", 19.0},
      // D2 (City / Temp / Date as 06/10/06)
      {"D2", "Burnaby", "06/10/06", "Temp", 21.0},
      {"D2", "Vancouver", "06/11/06", "Temp", 22.0},
      {"D2", "Richmond", "06/12/06", "Temp", 18.0},
      // D3 (City / Temp / Date as 10-June-06)
      {"D3", "Burnaby", "10-June-06", "Temp", 19.0},
      {"D3", "Vancouver", "11-June-06", "Temp", 17.0},
      {"D3", "Surrey", "11-June-06", "Temp", 15.0},
      {"D3", "Vancouver", "12-June-06", "Temp", 20.0},
      // D4 (Location / Temp / Date as 06/11/06)
      {"D4", "SURREY", "06/11/06", "Temp", 15.0},
      // D5 publishes Fahrenheit — but declared it, so values convert.
      {"D5", "Vancouver", "06/11/06", "Temp", 62.6},  // = 17.0 C
      {"D5", "Richmond", "06/12/06", "Temp", 64.4},   // = 18.0 C
  };

  RecordMapper mapper(&schema);
  const vastats::Status declared =
      mapper.DeclareSourceUnit("D5", "temperature", FahrenheitToCelsius());
  if (!declared.ok()) {
    std::fprintf(stderr, "unit declaration failed: %s\n",
                 declared.ToString().c_str());
    return 1;
  }
  MapperReport report;
  auto sources = mapper.MapRecords(records, &report);
  if (!sources.ok()) {
    std::fprintf(stderr, "mapping failed: %s\n",
                 sources.status().ToString().c_str());
    return 1;
  }
  std::printf("Mapped %d raw records from %d sources (%zu skipped, %d "
              "duplicate bindings)\n",
              report.mapped_records, sources->NumSources(),
              report.skipped.size(), report.duplicate_bindings);

  // 3. Phrase the query against the mediated vocabulary and plan it.
  MediatedQuery spec;
  spec.name = "Sum(temperature), June 10-12 2006";
  spec.kind = AggregateKind::kSum;
  spec.attribute = "temperature";
  spec.first_day = CivilDay{2006, 6, 10};
  spec.last_day = CivilDay{2006, 6, 12};
  auto plan = PlanMediatedQuery(schema, *sources, spec,
                                /*require_full_coverage=*/false);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Planned %zu components (%zu (entity, day) pairs uncovered "
              "by every source)\n",
              plan->query.components.size(), plan->uncovered.size());
  for (const ComponentId component : plan->query.components) {
    const auto info = schema.Describe(component);
    if (info.ok()) {
      std::printf("  %-10s %s  held by %d source(s)\n", info->entity.c_str(),
                  info->time_key.c_str(),
                  sources->CoverageCount(component));
    }
  }

  // 4. Extract the viable answer statistics.
  ExtractorOptions options;
  options.kde.rule = BandwidthRule::kSilverman;
  options.seed = 11;
  const auto extractor =
      AnswerStatisticsExtractor::Create(&sources.value(), plan->query,
                                        options);
  const auto stats = extractor->Extract();
  if (!stats.ok()) {
    std::fprintf(stderr, "extraction failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", AnswerStatisticsToText(*stats).c_str());

  // 5. The cautionary tale: the same Fahrenheit data *without* the unit
  //    declaration silently corrupts the viable range.
  RecordMapper naive_mapper(&schema);
  auto corrupted = naive_mapper.MapRecords(records);
  const auto clean_range = ViableRange(*sources, plan->query);
  const auto bad_range = ViableRange(*corrupted, plan->query);
  if (clean_range.ok() && bad_range.ok()) {
    std::printf("Viable range with D5's unit declared:   [%.1f, %.1f]\n",
                clean_range->first, clean_range->second);
    std::printf("Viable range with D5's unit forgotten:  [%.1f, %.1f]  "
                "<- silent unit error inflates the answers\n",
                bad_range->first, bad_range->second);
  }
  return 0;
}
