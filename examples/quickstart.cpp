// Quickstart: ask an aggregate query over conflicting data sources and get
// the full viable-answer statistics instead of one arbitrary number.
//
// Scenario: the BC climate sources of the paper's Figure 1. Three sources
// disagree about Vancouver's temperature on 2006-06-11 (17, 19 or 22
// degrees), and the data points overlap across sources, so the query
// "Sum(Temp)" has a whole distribution of defensible answers.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "vastats/vastats.h"

int main() {
  using namespace vastats;

  // 1. Register the data sources. Component ids come from the mediator's
  //    mapping meta-information; here we number the five data points:
  //    1 = Burnaby 06-10, 2 = Vancouver 06-11, 3 = Surrey 06-11,
  //    4 = Vancouver 06-12, 5 = Richmond 06-12.
  SourceSet sources;
  DataSource d1("weather-ca");
  d1.Bind(1, 21.0);
  d1.Bind(2, 19.0);
  DataSource d2("bc-stations");
  d2.Bind(1, 21.0);
  d2.Bind(2, 22.0);
  d2.Bind(5, 18.0);
  DataSource d3("city-portal");
  d3.Bind(1, 19.0);
  d3.Bind(2, 17.0);
  d3.Bind(3, 15.0);
  d3.Bind(4, 20.0);
  DataSource d4("volunteer-net");
  d4.Bind(3, 15.0);
  sources.AddSource(std::move(d1));
  sources.AddSource(std::move(d2));
  sources.AddSource(std::move(d3));
  sources.AddSource(std::move(d4));

  // 2. Phrase the aggregate query.
  AggregateQuery query;
  query.name = "Sum(Temp) June 10-12";
  query.kind = AggregateKind::kSum;
  query.components = {1, 2, 3, 4, 5};

  // 3. Run Algorithm 1. The defaults follow the paper's Table 2
  //    (|S_uniS| = 400 uniS samples, 50 bootstrap sets, BCa intervals at
  //    90%, theta = 0.9 coverage).
  ExtractorOptions options;
  options.kde.rule = BandwidthRule::kSilverman;  // smooth the 3 answer atoms
  auto extractor = AnswerStatisticsExtractor::Create(&sources, query, options);
  if (!extractor.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 extractor.status().ToString().c_str());
    return 1;
  }
  auto stats = extractor->Extract();
  if (!stats.ok()) {
    std::fprintf(stderr, "extraction failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  // 4. Read the answer as a distribution summary, not a single scalar.
  std::printf("Query: %s\n", query.name.c_str());
  std::printf("  mean      %.2f  (90%% CI [%.2f, %.2f])\n", stats->mean.value,
              stats->mean.ci.lo, stats->mean.ci.hi);
  std::printf("  stddev    %.2f  (90%% CI [%.2f, %.2f])\n",
              stats->std_dev.value, stats->std_dev.ci.lo,
              stats->std_dev.ci.hi);
  std::printf("  skewness  %.2f\n", stats->skewness.value);
  std::printf("  high coverage intervals (theta = %.0f%%):\n",
              options.cio.theta * 100);
  for (const CoverageInterval& interval : stats->coverage.intervals) {
    std::printf("    [%.2f, %.2f] holds %.0f%% of the viable answers\n",
                interval.lo, interval.hi, interval.coverage * 100);
  }
  std::printf("  stability Stab_L2 = %.2f (r = 1 source leaving)\n",
              stats->stability.stab_l2);

  // 5. This scenario is small enough to cross-check exactly.
  const auto range = ViableRange(sources, query);
  if (range.ok()) {
    std::printf("  exact viable range W = [%.1f, %.1f]\n", range->first,
                range->second);
  }
  return 0;
}
