// Continuous-query monitoring with stability-driven re-evaluation — the
// deployment scenario of the paper's §4.4: "a priority queue of the
// stability scores for the continuous queries is sufficient for
// maintenance".
//
// The example builds the synthetic Canadian climate archive, registers one
// continuous Sum(Temp) query per group of districts, extracts answer
// statistics for each, and keeps the queries in a priority queue ordered by
// their analytic Stab_L2 score. When sources (weather stations) drop out,
// only the least stable queries get re-evaluated — and the example verifies
// that those are indeed the ones whose means actually moved the most.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "vastats/vastats.h"

namespace {

using namespace vastats;

struct MonitoredQuery {
  std::string name;
  AggregateQuery query;
  double stab_l2 = 0.0;
  double last_mean = 0.0;
};

struct LessStableFirst {
  bool operator()(const MonitoredQuery* a, const MonitoredQuery* b) const {
    return a->stab_l2 > b->stab_l2;  // min-heap on stability
  }
};

}  // namespace

int main() {
  // A modest archive keeps the example fast: 30 districts, 10 stations per
  // district; station duplication is what makes single departures benign.
  ClimateArchiveOptions archive_options;
  archive_options.num_stations = 300;
  archive_options.num_districts = 30;
  archive_options.seed = 11;
  const auto archive = ClimateArchive::Build(archive_options);
  if (!archive.ok()) return 1;
  auto sources = std::make_unique<SourceSet>(archive->MakeSourceSet().value());

  // Six continuous queries, each summing temperature over 5 districts.
  std::vector<MonitoredQuery> queries;
  for (int group = 0; group < 6; ++group) {
    MonitoredQuery monitored;
    monitored.name = std::string("region-") + std::to_string(group);
    monitored.query.name = monitored.name;
    monitored.query.kind = AggregateKind::kSum;
    for (int d = group * 5; d < group * 5 + 5; ++d) {
      for (int month = 1; month <= 12; ++month) {
        monitored.query.components.push_back(ClimateArchive::ComponentFor(
            ClimateAttribute::kMeanTemperature, d, month));
      }
    }
    queries.push_back(std::move(monitored));
  }

  // Initial extraction pass.
  std::printf("Initial extraction over %d stations:\n",
              sources->NumSources());
  ExtractorOptions options;
  options.initial_sample_size = 200;
  options.weight_probes = 10;
  for (MonitoredQuery& monitored : queries) {
    options.seed = std::hash<std::string>{}(monitored.name);
    const auto extractor = AnswerStatisticsExtractor::Create(
        sources.get(), monitored.query, options);
    const auto stats = extractor->Extract();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s: %s\n", monitored.name.c_str(),
                   stats.status().ToString().c_str());
      return 1;
    }
    monitored.stab_l2 = stats->stability.stab_l2;
    monitored.last_mean = stats->mean.value;
    std::printf("  %-10s mean %9.2f   Stab_L2 %6.3f\n",
                monitored.name.c_str(), monitored.last_mean,
                monitored.stab_l2);
  }

  // Maintenance structure: least stable query on top.
  std::priority_queue<MonitoredQuery*, std::vector<MonitoredQuery*>,
                      LessStableFirst>
      maintenance;
  for (MonitoredQuery& monitored : queries) maintenance.push(&monitored);

  std::printf("\nRe-evaluation priority (least stable first):");
  std::vector<MonitoredQuery*> priority_order;
  while (!maintenance.empty()) {
    priority_order.push_back(maintenance.top());
    maintenance.pop();
    std::printf(" %s", priority_order.back()->name.c_str());
  }
  std::printf("\n");

  // Simulate source churn: a third of the stations in region 0 and a couple
  // elsewhere go offline (bindings disappear).
  std::printf("\nSimulating departures: stations of districts 0-2 thinned "
              "out, plus two random stations elsewhere\n");
  Rng rng(99);
  int removed = 0;
  for (const Station& station : archive->stations()) {
    const bool in_hot_region = station.district < 3;
    const bool unlucky = rng.Bernoulli(0.008);
    if ((in_hot_region && rng.Bernoulli(0.5)) || unlucky) {
      // Drop every binding of this station (the source stays registered but
      // supplies nothing, like an unreachable peer).
      DataSource& source = sources->mutable_source(station.id);
      for (const ComponentId component : source.SortedComponents()) {
        source.Unbind(component);
      }
      ++removed;
    }
  }
  std::printf("  %d stations went dark\n", removed);

  // Re-evaluate in priority order; queries whose coverage broke get
  // reported, others get fresh statistics.
  std::printf("\nRe-evaluating in stability order:\n");
  for (MonitoredQuery* monitored : priority_order) {
    const auto extractor = AnswerStatisticsExtractor::Create(
        sources.get(), monitored->query, options);
    if (!extractor.ok()) {
      std::printf("  %-10s lost coverage (%s)\n", monitored->name.c_str(),
                  extractor.status().ToString().c_str());
      continue;
    }
    const auto stats = extractor->Extract();
    if (!stats.ok()) {
      std::printf("  %-10s failed: %s\n", monitored->name.c_str(),
                  stats.status().ToString().c_str());
      continue;
    }
    const double shift = stats->mean.value - monitored->last_mean;
    std::printf("  %-10s mean %9.2f (shift %+8.2f)   new Stab_L2 %6.3f\n",
                monitored->name.c_str(), stats->mean.value, shift,
                stats->stability.stab_l2);
    monitored->last_mean = stats->mean.value;
    monitored->stab_l2 = stats->stability.stab_l2;
  }
  return 0;
}
