// Stock-domain example — the paper's other Deep-Web motivation (its §6
// discussion of Li et al., VLDB 2013): financial sites publish conflicting
// values for the same ticker statistics, largely because of *semantic
// ambiguity* — "one source may compute a statistic of the data over a
// year-long period, another may compute the same statistic over a half-year
// period. Both computations are correct with regard to the semantics
// applied; hence multiple true values are possible."
//
// The example builds such a web of quote sources, then:
//   1. stratifies the sources by systematic bias, recovering the semantic
//      families (full-year vs half-year vs stale-cache reporters);
//   2. runs a GROUP BY sector / HAVING query whose predicate is
//      probabilistic under value-level heterogeneity;
//   3. shows the shared-assignment multi-aggregate sampler answering
//      several statistics consistently from one sampling pass.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "vastats/vastats.h"

namespace {

using namespace vastats;

constexpr int kTickers = 60;
constexpr int kSectors = 4;

ComponentId AvgVolumeComponent(int ticker) { return 1000 + ticker; }

}  // namespace

int main() {
  Rng rng(2013);

  // Ground truth: average daily volume per ticker (millions of shares),
  // log-normally spread, with sector-dependent scale.
  std::vector<double> volume(kTickers);
  std::vector<int> sector(kTickers);
  for (int t = 0; t < kTickers; ++t) {
    sector[t] = t % kSectors;
    volume[t] =
        std::exp(rng.Normal(1.0 + 0.5 * sector[t], 0.4));
  }

  // Quote sources with three semantics for "average volume":
  //  * full-year window (the reference),
  //  * half-year window (captures a recent rally: ~25% higher),
  //  * stale cache (last quarter of the *previous* year: ~20% lower).
  auto sources = std::make_unique<SourceSet>();
  struct SiteSpec {
    const char* name;
    double factor;
    double coverage;
  };
  const SiteSpec sites[] = {
      {"exchange-feed", 1.00, 0.95}, {"bigfinance", 1.00, 0.8},
      {"marketdata-pro", 1.00, 0.7}, {"halfyear-quotes", 1.25, 0.8},
      {"rally-tracker", 1.25, 0.6},  {"stale-mirror", 0.80, 0.9},
  };
  for (const SiteSpec& site : sites) {
    DataSource source(site.name);
    for (int t = 0; t < kTickers; ++t) {
      if (!rng.Bernoulli(site.coverage)) continue;
      source.Bind(AvgVolumeComponent(t),
                  volume[t] * site.factor * std::exp(rng.Normal(0, 0.02)));
    }
    sources->AddSource(std::move(source));
  }

  // 1. Stratification: recover the semantic families from data alone.
  std::vector<ComponentId> scope;
  for (int t = 0; t < kTickers; ++t) scope.push_back(AvgVolumeComponent(t));
  StratificationOptions strat_options;
  strat_options.gap = 0.4;  // volumes are O(1-10); semantics differ by ~25%
  const auto strata = StratifySources(*sources, scope, strat_options);
  if (!strata.ok()) {
    std::fprintf(stderr, "%s\n", strata.status().ToString().c_str());
    return 1;
  }
  std::printf("Semantic stratification of %d quote sources:\n",
              sources->NumSources());
  for (const SourceStratum& stratum : strata->strata) {
    std::printf("  stratum (bias %+0.2f):", stratum.bias_center);
    for (const int s : stratum.sources) {
      std::printf(" %s", sources->source(s).name().c_str());
    }
    std::printf("\n");
  }

  // 2. GROUP BY sector, HAVING Average(volume) > threshold — probabilistic
  //    under the heterogeneity.
  GroupedAggregateQuery grouped;
  grouped.name = "avg-volume-by-sector";
  grouped.aggregate = AggregateKind::kAverage;
  for (int sec = 0; sec < kSectors; ++sec) {
    QueryGroup group;
    group.key = std::string("sector-") + std::to_string(sec);
    for (int t = 0; t < kTickers; ++t) {
      if (sector[t] == sec) group.components.push_back(AvgVolumeComponent(t));
    }
    grouped.groups.push_back(std::move(group));
  }
  grouped.has_having = true;
  grouped.having.aggregate = AggregateKind::kAverage;
  grouped.having.comparator = HavingComparator::kGreater;
  grouped.having.threshold = 5.5;

  ExtractorOptions options;
  options.initial_sample_size = 250;
  options.weight_probes = 10;
  options.kde.rule = BandwidthRule::kSilverman;
  const auto evaluator =
      GroupedQueryEvaluator::Create(sources.get(), grouped, options);
  if (!evaluator.ok()) return 1;
  const auto answer = evaluator->Evaluate();
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSELECT Avg(volume) GROUP BY sector HAVING Avg > %.1f:\n",
              grouped.having.threshold);
  for (const GroupAnswer& group : answer->groups) {
    std::printf("  %-10s mean %6.2fM  90%% CI [%5.2f, %5.2f]  "
                "P(HAVING) = %.2f\n",
                group.key.c_str(), group.statistics.mean.value,
                group.statistics.mean.ci.lo, group.statistics.mean.ci.hi,
                group.having_probability);
  }
  std::printf("  confidently passing (P >= 0.95):");
  for (const std::string& key : answer->PassingKeys(0.95)) {
    std::printf(" %s", key.c_str());
  }
  std::printf("\n");

  // 3. Several statistics of the hottest sector from ONE sampling pass.
  const auto multi = MultiAggregateSampler::Create(
      sources.get(), grouped.groups.back().components,
      {{AggregateKind::kAverage, 0.5},
       {AggregateKind::kMedian, 0.5},
       {AggregateKind::kQuantile, 0.9},
       {AggregateKind::kMax, 0.5}});
  if (!multi.ok()) return 1;
  Rng sample_rng(7);
  const auto series = multi->Sample(300, sample_rng);
  if (!series.ok()) return 1;
  const char* labels[] = {"avg", "median", "p90", "max"};
  std::printf("\nSector-%d viable answer summaries (one shared sampling "
              "pass, 300 assignments):\n",
              kSectors - 1);
  for (size_t a = 0; a < series->size(); ++a) {
    const SampleSummary summary = Summarize((*series)[a]).value();
    std::printf("  %-7s mean %6.2f  [%.2f, %.2f]\n", labels[a], summary.mean,
                summary.min, summary.max);
  }
  return 0;
}
