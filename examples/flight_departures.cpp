// Flight-domain example, after the Deep-Web study the paper builds on
// (Li et al., "Truth finding on the deep web", VLDB 2013): airline sites,
// airport boards, and third-party aggregators publish conflicting departure
// times for the same flights, partly because they apply different — each
// individually defensible — semantics (scheduled vs estimated vs gate
// time). Instead of electing one "true" time, this example reports where
// the viable average-delay answers concentrate, using both CIO directions:
//
//  * primal CIO: the shortest time windows covering >= 90% of the viable
//    average delay for a route;
//  * dual CIO (Definition 5): given a fixed attention budget (the user will
//    watch a 10-minute window), the window placement maximizing coverage.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "vastats/vastats.h"

namespace {

using namespace vastats;

// Component id for (flight f, day d): delay in minutes of that departure.
constexpr ComponentId FlightDay(int flight, int day) {
  return flight * 64 + day;
}

}  // namespace

int main() {
  constexpr int kFlights = 25;   // departures on one route
  constexpr int kDays = 20;      // days of history
  Rng rng(2013);

  // Ground process: most days a flight leaves roughly on time, some days it
  // slips badly (a right-skewed mixture).
  std::vector<std::vector<double>> scheduled_delay(
      kFlights, std::vector<double>(kDays));
  for (auto& per_flight : scheduled_delay) {
    for (double& delay : per_flight) {
      delay = rng.Bernoulli(0.25) ? rng.Gamma(3.0, 12.0)  // bad day
                                  : rng.Normal(4.0, 2.5);  // normal day
    }
  }

  // Sources with different semantics:
  //  * airline: publishes optimistic gate times (underestimates delay);
  //  * airport: actual wheels-up, the reference;
  //  * aggregators: scrape either feed with lag and gaps.
  auto sources = std::make_unique<SourceSet>();
  DataSource airline("airline-site");
  DataSource airport("airport-board");
  DataSource agg_a("aggregator-a");
  DataSource agg_b("aggregator-b");
  DataSource agg_c("aggregator-c");
  for (int f = 0; f < kFlights; ++f) {
    for (int d = 0; d < kDays; ++d) {
      const double truth = scheduled_delay[f][d];
      const ComponentId component = FlightDay(f, d);
      airport.Bind(component, truth + rng.Normal(0.0, 1.0));
      // The airline systematically reports ~8 fewer minutes of delay.
      airline.Bind(component, std::max(0.0, truth - 8.0 + rng.Normal(0, 1)));
      if (rng.Bernoulli(0.8)) {
        agg_a.Bind(component, truth + rng.Normal(0.0, 2.0));
      }
      if (rng.Bernoulli(0.7)) {
        agg_b.Bind(component,
                   std::max(0.0, truth - 8.0 + rng.Normal(0.0, 2.0)));
      }
      if (rng.Bernoulli(0.5)) {
        agg_c.Bind(component, truth + rng.Normal(0.0, 3.0));
      }
    }
  }
  sources->AddSource(std::move(airline));
  sources->AddSource(std::move(airport));
  sources->AddSource(std::move(agg_a));
  sources->AddSource(std::move(agg_b));
  sources->AddSource(std::move(agg_c));

  // Query: average delay over every (flight, day) on the route.
  AggregateQuery query;
  query.name = "Avg(delay)";
  query.kind = AggregateKind::kAverage;
  for (int f = 0; f < kFlights; ++f) {
    for (int d = 0; d < kDays; ++d) query.components.push_back(FlightDay(f, d));
  }

  ExtractorOptions options;
  options.seed = 7;
  // With only five sources the viable answers form a near-lattice (one
  // value per source ordering); the adaptive bandwidth would resolve the
  // atoms individually, which is not the useful view here. Silverman's rule
  // smooths them into the semantic clusters we care about.
  options.kde.rule = BandwidthRule::kSilverman;
  const auto extractor =
      AnswerStatisticsExtractor::Create(sources.get(), query, options);
  if (!extractor.ok()) {
    std::fprintf(stderr, "%s\n", extractor.status().ToString().c_str());
    return 1;
  }
  const auto stats = extractor->Extract();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }

  std::printf("Route summary — average departure delay (minutes)\n");
  std::printf("  one number would say: %.1f\n", stats->mean.value);
  std::printf("  the distribution says (90%% coverage windows):\n");
  for (const CoverageInterval& interval : stats->coverage.intervals) {
    std::printf("    %.1f - %.1f min   (%.0f%% of viable answers)\n",
                interval.lo, interval.hi, interval.coverage * 100);
  }
  std::printf("  -> the spread comes from the airline/airport semantic gap, "
              "not from noise:\n");
  std::printf("     skewness %.2f, stddev %.2f (CI [%.2f, %.2f])\n",
              stats->skewness.value, stats->std_dev.value,
              stats->std_dev.ci.lo, stats->std_dev.ci.hi);

  // Dual CIO: "I will watch one 3-minute band of estimates — where should
  // it sit, and how much of the answer mass does it catch?"
  const auto dual = DualGreedyCio(stats->density, 3.0);
  if (dual.ok()) {
    std::printf("  best fixed 3-minute estimate band(s):\n");
    for (const CoverageInterval& interval : dual->intervals) {
      std::printf("    %.1f - %.1f min catches %.0f%%\n", interval.lo,
                  interval.hi, interval.coverage * 100);
    }
    std::printf("    total coverage %.0f%% with %.1f minutes of budget\n",
                dual->total_coverage * 100, dual->TotalLength());
  }

  // Stability: should we recompute when one aggregator goes away?
  std::printf("  stability Stab_L2 = %.2f (r = 1); higher is safer to cache\n",
              stats->stability.stab_l2);
  return 0;
}
