// The paper's motivating scenario, end to end: JIIRP-style disaster
// response planning over integrated climate sources, running the
// introduction's literal query
//
//   SELECT Average(Temp), Month(Date), Province(Location)
//   FROM SemIS
//   GROUP BY Province(Location), Month(Date)
//   HAVING Average(Temp) > 20
//
// with the semantics the paper argues for: each (province, month) group's
// average is a *distribution* of viable answers, and the HAVING predicate
// holds with a probability rather than a boolean. The emergency planner
// gets the groups that *confidently* exceed 20 C (heat-event planning), the
// ones that only might (investigate), and per-group stability scores that
// say whose answers to re-check first when stations drop out.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "vastats/vastats.h"

namespace {

using namespace vastats;

constexpr int kDistrictsPerProvince = 8;

}  // namespace

int main() {
  // A warm archive so summer months actually cross the 20 C threshold.
  ClimateArchiveOptions archive_options;
  archive_options.num_stations = 320;
  archive_options.num_districts = 32;  // 4 "provinces" of 8 districts
  archive_options.seed = 17;
  archive_options.fahrenheit_station_fraction = 0.01;
  const auto archive = ClimateArchive::Build(archive_options);
  if (!archive.ok()) return 1;
  auto sources = std::make_unique<SourceSet>(archive->MakeSourceSet().value());

  // GROUP BY Province(Location), Month(Date): provinces partition the
  // districts; the mapping meta-information (here: the archive's component
  // scheme) supplies the grouping keys.
  std::vector<ComponentId> components;
  std::vector<std::string> keys;
  const char* province_names[] = {"BC", "AB", "SK", "MB"};
  for (int d = 0; d < archive_options.num_districts; ++d) {
    const int province = d / kDistrictsPerProvince;
    for (int month = 5; month <= 9; ++month) {  // planning season
      components.push_back(ClimateArchive::ComponentFor(
          ClimateAttribute::kMeanTemperature, d, month));
      keys.push_back(std::string(province_names[province]) + "/month-" +
                     std::to_string(month));
    }
  }
  GroupedAggregateQuery query = GroupComponentsBy(
      "avg-temp-by-province-month", AggregateKind::kAverage, components,
      keys);
  query.has_having = true;
  query.having.aggregate = AggregateKind::kAverage;
  query.having.comparator = HavingComparator::kGreater;
  query.having.threshold = 20.0;

  ExtractorOptions options;
  options.initial_sample_size = 200;
  options.weight_probes = 8;
  options.kde.rule = BandwidthRule::kSilverman;
  const auto evaluator =
      GroupedQueryEvaluator::Create(sources.get(), query, options);
  if (!evaluator.ok()) {
    std::fprintf(stderr, "%s\n", evaluator.status().ToString().c_str());
    return 1;
  }
  const auto answer = evaluator->Evaluate();
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }

  std::printf("SELECT Average(Temp), Month, Province GROUP BY Province, "
              "Month HAVING Average(Temp) > 20\n");
  std::printf("(each group's answer is a viable-answer distribution; the "
              "HAVING clause holds with a probability)\n\n");
  std::printf("%-14s %10s %22s %12s %10s\n", "group", "avg temp",
              "90% CI", "P(avg > 20)", "Stab_L2");
  int confident = 0, borderline = 0;
  for (const GroupAnswer& group : answer->groups) {
    const bool interesting = group.having_probability > 0.0;
    if (!interesting) continue;  // keep the report short
    std::printf("%-14s %9.2fC   [%8.2f, %8.2f] %11.2f %10.2f%s\n",
                group.key.c_str(), group.statistics.mean.value,
                group.statistics.mean.ci.lo, group.statistics.mean.ci.hi,
                group.having_probability, group.statistics.stability.stab_l2,
                group.having_probability >= 0.95
                    ? "  <- plan heat response"
                    : (group.having_probability >= 0.05 ? "  <- investigate"
                                                        : ""));
    if (group.having_probability >= 0.95) ++confident;
    else if (group.having_probability >= 0.05) ++borderline;
  }
  std::printf("\n%d group(s) confidently exceed 20C; %d are borderline "
              "(the single-answer semantics of a classical engine would "
              "have flipped a coin on those).\n",
              confident, borderline);
  return 0;
}
