// vastats CSV query tool — run viable-answer statistics over a binding
// table from the command line.
//
// Usage:
//   csv_query_tool <sources.csv> <aggregate> [options]
//     <sources.csv>  bindings in 'source,component,value' format
//                    (see integration/io.h); pass 'demo' to use a built-in
//                    demo data set
//     <aggregate>    sum | avg | median | var | stddev | min | max | count
//   options:
//     --components a,b,c   restrict to these component ids (default: all)
//     --samples N          uniS sample size (default 400)
//     --theta T            coverage threshold (default 0.9)
//     --level L            confidence level (default 0.9)
//     --seed S             RNG seed (default 1)
//     --silverman          use Silverman bandwidth instead of Botev
//     --json               emit the statistics as a JSON document
//
// Example:
//   ./csv_query_tool demo avg --theta 0.85

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "vastats/vastats.h"

namespace {

using namespace vastats;

SourceSet DemoSources() {
  // A small three-source scenario with duplication and conflicts.
  SourceSet set;
  Rng rng(24);
  DataSource a("demo-a"), b("demo-b"), c("demo-c");
  for (ComponentId id = 0; id < 40; ++id) {
    const double base = rng.Normal(100.0, 10.0);
    a.Bind(id, base + rng.Normal(0.0, 1.0));
    if (id % 2 == 0) b.Bind(id, base + rng.Normal(0.0, 1.0));
    if (id % 3 == 0) c.Bind(id, base + 15.0);  // systematically high
  }
  set.AddSource(std::move(a));
  set.AddSource(std::move(b));
  set.AddSource(std::move(c));
  return set;
}

std::vector<ComponentId> ParseComponentList(const std::string& text) {
  std::vector<ComponentId> components;
  size_t start = 0;
  while (start < text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    components.push_back(
        std::strtoll(text.substr(start, comma - start).c_str(), nullptr, 10));
    start = comma + 1;
  }
  return components;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <sources.csv|demo> <sum|avg|median|var|stddev|min|"
               "max|count> [--components a,b,c] [--samples N] [--theta T] "
               "[--level L] [--seed S] [--silverman]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage(argv[0]);

  // Load sources.
  SourceSet sources;
  if (std::strcmp(argv[1], "demo") == 0) {
    sources = DemoSources();
  } else {
    auto loaded = ReadSourceSet(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    sources = std::move(loaded).value();
  }

  const auto kind = ParseAggregateKind(argv[2]);
  if (!kind.ok()) {
    std::fprintf(stderr, "error: %s\n", kind.status().ToString().c_str());
    return Usage(argv[0]);
  }

  AggregateQuery query;
  query.name = std::string(argv[2]) + "(" + argv[1] + ")";
  query.kind = kind.value();
  ExtractorOptions options;
  options.seed = 1;
  bool emit_json = false;

  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--components") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      query.components = ParseComponentList(value);
    } else if (flag == "--samples") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      options.initial_sample_size = std::atoi(value);
    } else if (flag == "--theta") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      options.cio.theta = std::atof(value);
    } else if (flag == "--level") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      options.confidence_level = std::atof(value);
    } else if (flag == "--seed") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      options.seed = static_cast<uint64_t>(std::atoll(value));
    } else if (flag == "--silverman") {
      options.kde.rule = BandwidthRule::kSilverman;
    } else if (flag == "--json") {
      emit_json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return Usage(argv[0]);
    }
  }
  if (query.components.empty()) query.components = sources.Universe();

  const auto extractor =
      AnswerStatisticsExtractor::Create(&sources, query, options);
  if (!extractor.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 extractor.status().ToString().c_str());
    return 1;
  }
  const auto stats = extractor->Extract();
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
    return 1;
  }

  if (emit_json) {
    ReportOptions report_options;
    report_options.density_points = 64;
    std::printf("%s\n",
                AnswerStatisticsToJson(*stats, report_options).c_str());
    return 0;
  }

  std::printf("query:      %s over %zu components, %d sources\n",
              query.name.c_str(), query.components.size(),
              sources.NumSources());
  std::printf("samples:    %zu viable answers (uniS)\n",
              stats->samples.size());
  const double level = options.confidence_level * 100.0;
  std::printf("mean:       %.6g   %.0f%% CI [%.6g, %.6g]\n",
              stats->mean.value, level, stats->mean.ci.lo,
              stats->mean.ci.hi);
  std::printf("stddev:     %.6g   %.0f%% CI [%.6g, %.6g]\n",
              stats->std_dev.value, level, stats->std_dev.ci.lo,
              stats->std_dev.ci.hi);
  std::printf("skewness:   %.6g\n", stats->skewness.value);
  std::printf("coverage intervals (theta = %.2f):\n", options.cio.theta);
  for (const CoverageInterval& interval : stats->coverage.intervals) {
    std::printf("  [%.6g, %.6g]  %.1f%%\n", interval.lo, interval.hi,
                interval.coverage * 100.0);
  }
  std::printf("  L = %.4f of range, C = %.4f\n",
              stats->coverage.total_length_fraction,
              stats->coverage.total_coverage);
  std::printf("stability:  Stab_L2 = %.4f, Stab_Bh = %.4f (r = %d)\n",
              stats->stability.stab_l2, stats->stability.stab_bh,
              options.stability_r);
  return 0;
}
