// Data-quality auditing with answer distributions — the paper's §7 future
// work made concrete: "multi-modal distributions can indicate possible
// mapping problems in data integration ... the second high coverage
// interval in Figure 7(a) is caused by combining supposedly cleaned data
// sets that incorrectly had values in both Fahrenheit and Celsius. Our work
// can be extended to help automatically detect such errors."
//
// The example builds a climate archive where a few stations secretly report
// Fahrenheit, detects the contamination from the *shape* of per-district
// viable answer distributions (secondary high-coverage interval far from
// the main one), and then pinpoints the culprit stations with the
// source-removal deviation map.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "vastats/vastats.h"

namespace {

using namespace vastats;

}  // namespace

int main() {
  ClimateArchiveOptions archive_options;
  archive_options.num_stations = 240;
  archive_options.num_districts = 12;
  archive_options.fahrenheit_station_fraction = 0.03;
  archive_options.seed = 42;
  const auto archive = ClimateArchive::Build(archive_options);
  if (!archive.ok()) return 1;
  auto sources = std::make_unique<SourceSet>(archive->MakeSourceSet().value());

  // Ground truth for the final check.
  std::set<int> true_culprits;
  for (const Station& station : archive->stations()) {
    if (station.reports_fahrenheit) true_culprits.insert(station.id);
  }
  std::printf("Archive: %d stations, %zu secretly report Fahrenheit\n\n",
              archive_options.num_stations, true_culprits.size());

  // Pass 1: per-district average-temperature distributions. A clean
  // district gives one tight mode; a contaminated one grows a second mode
  // ~30-60 degrees up.
  std::printf("Pass 1 — district distribution audit:\n");
  std::vector<int> suspicious_districts;
  for (int d = 0; d < archive_options.num_districts; ++d) {
    AggregateQuery query;
    query.name = "avg-temp-district";
    query.kind = AggregateKind::kAverage;
    for (int month = 1; month <= 12; ++month) {
      query.components.push_back(ClimateArchive::ComponentFor(
          ClimateAttribute::kMeanTemperature, d, month));
    }
    ExtractorOptions options;
    options.initial_sample_size = 300;
    options.weight_probes = 10;
    options.seed = 4242 + static_cast<uint64_t>(d);
    // Per-district answers form a near-lattice (20 stations); smooth them
    // into clusters and ignore sub-5% wiggle modes so the interval count
    // reflects real contamination, not sampling texture.
    options.kde.rule = BandwidthRule::kSilverman;
    options.cio.min_mode_relative_height = 0.05;
    const auto extractor =
        AnswerStatisticsExtractor::Create(sources.get(), query, options);
    const auto stats = extractor->Extract();
    if (!stats.ok()) return 1;

    // Red flags: more than one well-separated coverage interval, or a
    // strongly right-shifted skew.
    const auto& intervals = stats->coverage.intervals;
    bool flagged = false;
    if (intervals.size() > 1) {
      const double gap = intervals.back().lo - intervals.front().hi;
      if (gap > 5.0) flagged = true;  // > 5 degrees between answer clusters
    }
    if (stats->skewness.value > 1.5) flagged = true;
    std::printf("  district %2d: %zu interval(s), skew %+5.2f %s\n", d,
                intervals.size(), stats->skewness.value,
                flagged ? "<-- SUSPICIOUS" : "");
    if (flagged) suspicious_districts.push_back(d);
  }

  // Pass 2: inside each suspicious district, remove stations one at a time;
  // the culprit's removal kills the secondary mode, which shows up as the
  // largest mean deviation.
  std::printf("\nPass 2 — per-station deviation audit:\n");
  std::set<int> accused;
  for (const int d : suspicious_districts) {
    AggregateQuery query;
    query.name = "avg-temp-district";
    query.kind = AggregateKind::kAverage;
    for (int month = 1; month <= 12; ++month) {
      query.components.push_back(ClimateArchive::ComponentFor(
          ClimateAttribute::kMeanTemperature, d, month));
    }
    const auto sampler = UniSSampler::Create(sources.get(), query);
    if (!sampler.ok()) continue;
    Rng rng(777 + static_cast<uint64_t>(d));
    const auto base = sampler->Sample(400, rng);
    const double base_mean = ComputeMoments(*base).mean();
    const auto map = DeviationMap(*sampler, base_mean, 200, rng);
    if (!map.ok()) continue;

    // Stations not binding this district's components deviate ~0; the
    // culprit dominates.
    const DeviationPoint* worst = nullptr;
    for (const DeviationPoint& point : map->points) {
      if (worst == nullptr ||
          point.relative_deviation > worst->relative_deviation) {
        worst = &point;
      }
    }
    if (worst != nullptr && worst->relative_deviation > 0.05) {
      std::printf("  district %2d: station %d shifts the answer %.1f%% on "
                  "removal -> accused\n",
                  d, worst->source, worst->relative_deviation * 100);
      accused.insert(worst->source);
    }
  }

  // Score the audit.
  int true_positives = 0;
  for (const int station : accused) {
    if (true_culprits.count(station) > 0) ++true_positives;
  }
  std::printf("\nAudit result: accused %zu stations, %d correctly "
              "(ground truth had %zu culprits)\n",
              accused.size(), true_positives, true_culprits.size());
  return true_positives > 0 ? 0 : 1;
}
