// Regenerates Figure 8 (§5.3): deviation maps of the empirical means when a
// single data source is disabled, for the four Figure 7 aggregations, next
// to their analytic L2 stability scores.
//
// For each aggregation the harness removes each source in turn, redraws
// viable answers from the remainder, and records the relative deviation of
// the sample mean d = |mu^{D\Q} - mu^D| / mu^D. The paper's claim to check:
// aggregations with higher Stab_L2 have deviations packed more densely
// around zero (the center of the circular map) — i.e. the ranking of the
// aggregations by stability score matches the ranking by mean deviation
// concentration.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

struct RowResult {
  std::string label;
  double stab_l2 = 0.0;
  double max_deviation = 0.0;
  double mean_deviation = 0.0;
  double p90_deviation = 0.0;
  // |mu' - mu| without the 1/mu normalization. The analytic L2 score is an
  // *absolute* measure (it tracks how much density mass physically moves),
  // so the cross-aggregation ranking check below compares it against
  // absolute deviations; the relative ones reproduce the paper's figure.
  double p90_absolute_deviation = 0.0;
  std::vector<int> histogram;  // counts per 0.05% bin, last = overflow
};

constexpr int kBins = 12;
constexpr double kBinWidth = 0.0005;  // 0.05% relative deviation

int Run() {
  std::printf(
      "Figure 8 reproduction: deviation of the answer mean when one source "
      "is disabled, vs the analytic L2 stability score\n\n");

  std::vector<Workload> workloads = MakeFigure7Workloads();
  std::vector<RowResult> rows;
  int tag = 0;
  for (Workload& workload : workloads) {
    ExtractorOptions options;
    options.seed = 8800 + static_cast<uint64_t>(tag);
    const auto extractor = AnswerStatisticsExtractor::Create(
        workload.sources.get(), workload.query, options);
    if (!extractor.ok()) return 1;
    const auto stats = extractor->Extract();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }

    Rng rng(9900 + static_cast<uint64_t>(tag));
    // The climate workloads have 1672 sources; sampling every removal is
    // expensive, so the harness caps the number of probed sources the same
    // way for every aggregation (the paper probes each of ~100).
    const int num_sources = workload.sources->NumSources();
    const UniSSampler& sampler = extractor->sampler();
    RowResult row;
    row.label = workload.label;
    row.stab_l2 = stats->stability.stab_l2;
    row.histogram.assign(kBins + 1, 0);

    const double base_mean = stats->mean.value;
    std::vector<double> deviations;
    const int step = std::max(1, num_sources / 100);
    for (int s = 0; s < num_sources; s += step) {
      const int removed[] = {s};
      if (!sampler.CoverableWithout(removed)) continue;
      const auto samples = sampler.SampleExcluding(120, removed, rng);
      if (!samples.ok()) continue;
      const double mean = ComputeMoments(*samples).mean();
      const double d = std::fabs(mean - base_mean) / std::fabs(base_mean);
      deviations.push_back(d);
      const int bin =
          std::min(kBins, static_cast<int>(d / kBinWidth));
      ++row.histogram[static_cast<size_t>(bin)];
    }
    if (deviations.empty()) continue;
    std::sort(deviations.begin(), deviations.end());
    row.max_deviation = deviations.back();
    row.p90_absolute_deviation =
        deviations[static_cast<size_t>(0.9 * (deviations.size() - 1))] *
        std::fabs(base_mean);
    double sum = 0.0;
    for (const double d : deviations) sum += d;
    row.mean_deviation = sum / static_cast<double>(deviations.size());
    row.p90_deviation =
        deviations[static_cast<size_t>(0.9 * (deviations.size() - 1))];
    rows.push_back(std::move(row));
    ++tag;
  }

  std::printf("%-13s %9s %10s %10s %10s   deviation histogram (bins of "
              "0.05%%, '+' = overflow)\n",
              "Aggregation", "Stab_L2", "mean dev", "p90 dev", "max dev");
  for (const RowResult& row : rows) {
    std::printf("%-13s %9.4f %9.4f%% %9.4f%% %9.4f%%   |", row.label.c_str(),
                row.stab_l2, row.mean_deviation * 100.0,
                row.p90_deviation * 100.0, row.max_deviation * 100.0);
    for (const int count : row.histogram) std::printf("%3d", count);
    std::printf("|\n");
  }

  // The consistency check the paper draws from the figure. Stab_L2 measures
  // absolute density change, so the ranking uses absolute deviations (the
  // paper's four aggregations had comparable means, making the relative and
  // absolute orderings coincide there).
  std::printf("\nRanking check (higher stability score should pair with "
              "smaller p90 *absolute* deviation):\n");
  std::vector<size_t> by_score(rows.size()), by_dev(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) by_score[i] = by_dev[i] = i;
  std::sort(by_score.begin(), by_score.end(), [&](size_t a, size_t b) {
    return rows[a].stab_l2 > rows[b].stab_l2;
  });
  std::sort(by_dev.begin(), by_dev.end(), [&](size_t a, size_t b) {
    return rows[a].p90_absolute_deviation < rows[b].p90_absolute_deviation;
  });
  std::printf("  by Stab_L2 (most stable first):    ");
  for (const size_t i : by_score) std::printf("%s  ", rows[i].label.c_str());
  std::printf("\n  by p90 |deviation| (smallest first): ");
  for (const size_t i : by_dev) std::printf("%s  ", rows[i].label.c_str());
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main() { return vastats::bench::Run(); }
