// Regenerates Table 3 (§5.1): bootstrapping (BCa) vs direct inference on
// dataset D2.
//
// For each (|S_uniS|, 1-alpha) cell the harness repeats many independent
// samplings of the Sum(D2) viable answers and reports
//   i_r = len(CI_di) / len(CI_boot)   (improvement ratio, max and avg)
//   s_r = |S_di| / |S_uniS|           (sample-size saving, max and avg)
// where CI_di is the distribution-free (Chebyshev) direct-inference
// interval for the mean and |S_di| is the sample size direct inference
// would need to match the bootstrap CI length.
//
// Paper's shape: avg i_r ~ 2 (higher at |S| = 200 and lower confidence),
// max i_r 2.3 - 4.2, avg s_r ~ 3 - 7 with s_r ~ i_r^2.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

struct Cell {
  int sample_size;
  double level;
};

int Run() {
  std::printf("Table 3 reproduction: bootstrap CI improvement over direct "
              "inference (dataset D2, Sum over 500 components, 100 sources)\n");
  std::printf("%-9s %-7s %8s %8s %8s %8s   (%d trials/cell)\n", "|S_uniS|",
              "1-a", "max i_r", "avg i_r", "max s_r", "avg s_r", 40);

  Workload workload = MakeD2Workload();
  const auto sampler =
      UniSSampler::Create(workload.sources.get(), workload.query);
  if (!sampler.ok()) {
    std::fprintf(stderr, "%s\n", sampler.status().ToString().c_str());
    return 1;
  }

  const Cell cells[] = {{200, 0.8}, {200, 0.9}, {400, 0.8}, {400, 0.9}};
  constexpr int kTrials = 40;
  BootstrapOptions bootstrap;  // 50 sets, |B| = |S_uniS|

  for (const Cell& cell : cells) {
    double max_ir = 0.0, sum_ir = 0.0;
    double max_sr = 0.0, sum_sr = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(100000 + static_cast<uint64_t>(trial) * 977 +
              static_cast<uint64_t>(cell.sample_size) +
              static_cast<uint64_t>(cell.level * 1000));
      const auto samples = sampler->Sample(cell.sample_size, rng);
      if (!samples.ok()) return 1;
      const Moments moments = ComputeMoments(*samples);

      // Bootstrap BCa interval for the mean.
      const auto replicates = BootstrapReplicates(
          *samples, MomentStatisticFn(MomentStatistic::kMean), bootstrap,
          rng);
      const auto jackknife =
          JackknifeMoment(*samples, MomentStatistic::kMean);
      const auto boot_ci =
          BcaCi(*replicates, moments.mean(), cell.level, *jackknife);
      // Direct inference interval (Chebyshev; distribution-free bound
      // driven by the variance estimate).
      const auto direct_ci =
          DirectMeanCi(moments, cell.level, DirectMethod::kChebyshev);
      if (!boot_ci.ok() || !direct_ci.ok()) return 1;

      const double ir = direct_ci->Length() / boot_ci->Length();
      // Sample size direct inference would need to reach the bootstrap's
      // interval length.
      const auto required = DirectMeanRequiredSampleSize(
          moments.SampleStdDev(), cell.level, boot_ci->Length(),
          DirectMethod::kChebyshev);
      if (!required.ok()) return 1;
      const double sr = required.value() / cell.sample_size;

      max_ir = std::max(max_ir, ir);
      sum_ir += ir;
      max_sr = std::max(max_sr, sr);
      sum_sr += sr;
    }
    std::printf("%-9d %-7.1f %8.3f %8.3f %8.2f %8.2f\n", cell.sample_size,
                cell.level, max_ir, sum_ir / kTrials, max_sr,
                sum_sr / kTrials);
  }
  std::printf("\nPaper's Table 3 for comparison:\n");
  std::printf("  200  0.8  4.248 2.556 18.10 7.36\n");
  std::printf("  200  0.9  3.309 2.119 10.96 4.84\n");
  std::printf("  400  0.8  2.896 2.001  8.39 4.28\n");
  std::printf("  400  0.9  2.293 1.655  5.26 2.82\n");
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main() { return vastats::bench::Run(); }
