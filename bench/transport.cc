// Transport-pipelining baseline: one chaotic uniS run (96 draws over a
// 30-source redundant universe, modelled visit latency realized in wall
// time by the endpoint's service threads) driven five ways —
//
//   simulated            the inline fault seam (no transport, no wall
//                        latency) — the determinism reference;
//   sync                 transport with max_in_flight = 1: every visit
//                        waits out its own round-trip;
//   pipelined            max_in_flight = 8: prefetched requests overlap
//                        across the endpoint's service threads;
//   pipelined_stragglers the same pipeline with a 5% straggler tail
//                        (20x latency), hedging off;
//   hedged               the same tail with hedged duplicates past the
//                        p50-based cutoff.
//
// Latency is charged in virtual time (kModelVirtual), so all five runs
// must produce bit-identical samples, coverages, and AccessStats — any
// divergence exits non-zero. The JSON document (committed as
// BENCH_transport.json) carries the wall times, the pipelined-vs-sync
// speedup (the CI smoke asserts >= 2x), the hedged-vs-straggler tail
// recovery, and each mode's transport counters.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "vastats/vastats.h"

namespace vastats::bench {
namespace {

// Stamped into the JSON document and the committed BENCH_transport.json;
// tools/benchdiff refuses to compare dumps whose versions disagree.
constexpr int64_t kBenchSchemaVersion = 1;

constexpr int kNumSources = 30;
constexpr int kNumComponents = 60;
constexpr int kDraws = 96;

Result<SourceSet> BuildSources() {
  SyntheticSourceSetOptions options;
  options.num_sources = kNumSources;
  options.num_components = kNumComponents;
  options.min_copies = 3;
  options.max_copies = 5;
  options.seed = 7117;
  const auto d2 = MakeD2(7118);
  return BuildSyntheticSourceSet(*d2, options);
}

// Modelled per-visit latency around 3-4 virtual ms with mild jitter and a
// dash of transient failures so retries flow through the wire too.
FaultModelOptions ModelOptions() {
  FaultModelOptions options;
  options.transient_failure_prob = 0.05;
  options.latency_base_ms = 3.0;
  options.latency_per_component_ms = 0.05;
  options.latency_jitter_sigma = 0.3;
  options.seed = 90210;
  return options;
}

struct Mode {
  const char* name;
  // Null = the inline simulated seam.
  const transport::TransportOptions* transport;
};

struct ModeResult {
  std::string name;
  double seconds = 0.0;
  FaultAwareSampleResult result;
  transport::TransportCounters counters;
};

bool SameRun(const FaultAwareSampleResult& a, const FaultAwareSampleResult& b) {
  if (a.values != b.values || a.coverages != b.coverages ||
      a.dropped_draws != b.dropped_draws) {
    return false;
  }
  const AccessStats& x = a.access;
  const AccessStats& y = b.access;
  return x.visits == y.visits && x.attempts == y.attempts &&
         x.retries == y.retries &&
         x.transient_failures == y.transient_failures &&
         x.failed_visits == y.failed_visits &&
         x.virtual_ms == y.virtual_ms &&
         x.breaker_severity == y.breaker_severity;
}

Result<ModeResult> RunMode(const Mode& mode, const SourceSet& sources,
                           const UniSSampler& sampler,
                           const FaultModel& model) {
  ModeResult out;
  out.name = mode.name;
  std::unique_ptr<transport::AsyncSourceTransport> async;
  if (mode.transport != nullptr) {
    VASTATS_ASSIGN_OR_RETURN(
        async,
        transport::AsyncSourceTransport::Create(sources, &model,
                                                *mode.transport));
  }
  VASTATS_ASSIGN_OR_RETURN(
      const SourceAccessor accessor,
      SourceAccessor::Create(sources.NumSources(), &model, RetryPolicy{}));
  ParallelSampleOptions options;
  options.seed = 0xbe9c4;
  options.chunk_draws = 32;
  options.num_threads = 1;
  if (async != nullptr) {
    transport::AsyncSourceTransport* raw = async.get();
    options.transport_factory = [raw]() -> std::unique_ptr<VisitTransport> {
      auto channel = raw->OpenChannel();
      return channel.ok() ? std::move(channel).value() : nullptr;
    };
  }
  Stopwatch stopwatch;
  VASTATS_ASSIGN_OR_RETURN(
      out.result,
      ParallelUniSSampleWithFaults(sampler, kDraws, accessor, 0.3, options));
  out.seconds = stopwatch.ElapsedSeconds();
  if (async != nullptr) out.counters = async->counters();
  return out;
}

void WriteCounters(JsonWriter& out, const transport::TransportCounters& c) {
  out.BeginObject();
  out.KeyValue("requests", static_cast<int64_t>(c.requests));
  out.KeyValue("responses", static_cast<int64_t>(c.responses));
  out.KeyValue("prefetches_issued", static_cast<int64_t>(c.prefetches_issued));
  out.KeyValue("prefetches_wasted", static_cast<int64_t>(c.prefetches_wasted));
  out.KeyValue("hedges_fired", static_cast<int64_t>(c.hedges_fired));
  out.KeyValue("hedges_won", static_cast<int64_t>(c.hedges_won));
  out.KeyValue("hedges_cancelled",
               static_cast<int64_t>(c.hedges_cancelled));
  out.KeyValue("peak_in_flight", static_cast<int64_t>(c.peak_in_flight));
  out.EndObject();
}

int RunTransportJson() {
  auto sources = BuildSources();
  if (!sources.ok()) {
    std::fprintf(stderr, "%s\n", sources.status().ToString().c_str());
    return 1;
  }
  auto model = FaultModel::Create(kNumSources, ModelOptions());
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  auto sampler = UniSSampler::Create(
      &*sources,
      MakeRangeQuery("transport", AggregateKind::kAverage, 0, kNumComponents));
  if (!sampler.ok()) {
    std::fprintf(stderr, "%s\n", sampler.status().ToString().c_str());
    return 1;
  }

  // 0.2 wall ms per virtual ms compresses the modelled ~3.5ms visit to
  // ~0.7ms of real sleep: large against the wire cost, small enough that
  // the serialized mode stays around a second.
  transport::TransportOptions sync;
  sync.endpoint.service_threads = 6;
  sync.endpoint.wall_ms_per_virtual_ms = 0.2;
  sync.max_in_flight = 1;

  transport::TransportOptions pipelined = sync;
  pipelined.max_in_flight = 8;

  transport::TransportOptions stragglers = pipelined;
  stragglers.endpoint.straggler_fraction = 0.05;
  stragglers.endpoint.straggler_multiplier = 20.0;

  transport::TransportOptions hedged = stragglers;
  hedged.hedge.enabled = true;
  hedged.hedge.percentile = 0.5;
  hedged.hedge.multiplier = 2.0;
  hedged.hedge.min_samples = 8;
  hedged.hedge.min_cutoff_ms = 1.0;

  const Mode modes[] = {
      {"simulated", nullptr},
      {"sync", &sync},
      {"pipelined", &pipelined},
      {"pipelined_stragglers", &stragglers},
      {"hedged", &hedged},
  };
  std::vector<ModeResult> results;
  for (const Mode& mode : modes) {
    auto run = RunMode(mode, *sources, *sampler, *model);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", mode.name,
                   run.status().ToString().c_str());
      return 1;
    }
    results.push_back(std::move(run).value());
  }

  bool identical = true;
  for (size_t i = 1; i < results.size(); ++i) {
    if (!SameRun(results[i].result, results[0].result)) {
      std::fprintf(stderr, "%s diverged from the simulated run\n",
                   results[i].name.c_str());
      identical = false;
    }
  }
  if (!identical) return 1;

  const double sync_seconds = results[1].seconds;
  const double pipelined_seconds = results[2].seconds;
  const double straggler_seconds = results[3].seconds;
  const double hedged_seconds = results[4].seconds;
  const FaultAwareSampleResult& reference = results[0].result;

  JsonWriter out;
  out.BeginObject();
  out.KeyValue("schema_version", kBenchSchemaVersion);
  out.KeyValue("benchmark", "transport");
  out.Key("workload");
  out.BeginObject();
  out.KeyValue("sources", static_cast<int64_t>(kNumSources));
  out.KeyValue("components", static_cast<int64_t>(kNumComponents));
  out.KeyValue("draws", static_cast<int64_t>(kDraws));
  out.KeyValue("visits", static_cast<int64_t>(reference.access.visits));
  out.KeyValue("retries", static_cast<int64_t>(reference.access.retries));
  out.KeyValue("draws_dropped",
               static_cast<int64_t>(reference.dropped_draws));
  out.KeyValue("virtual_ms", reference.access.virtual_ms);
  out.KeyValue("wall_ms_per_virtual_ms",
               sync.endpoint.wall_ms_per_virtual_ms);
  out.KeyValue("service_threads",
               static_cast<int64_t>(sync.endpoint.service_threads));
  out.EndObject();
  out.Key("seconds");
  out.BeginObject();
  for (const ModeResult& result : results) {
    out.KeyValue(result.name, result.seconds);
  }
  out.EndObject();
  out.Key("speedup");
  out.BeginObject();
  out.KeyValue("pipelined_vs_sync", sync_seconds / pipelined_seconds);
  out.KeyValue("hedged_vs_stragglers", straggler_seconds / hedged_seconds);
  out.EndObject();
  out.KeyValue("bit_identical", identical);
  out.Key("counters");
  out.BeginObject();
  for (size_t i = 1; i < results.size(); ++i) {
    out.Key(results[i].name);
    WriteCounters(out, results[i].counters);
  }
  out.EndObject();
  out.EndObject();
  std::printf("%s\n", std::move(out).Finish().c_str());
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main(int argc, char** argv) {
  // --json is accepted for symmetry with the other harnesses; the JSON
  // document is this binary's only mode.
  (void)argc;
  (void)argv;
  return vastats::bench::RunTransportJson();
}
