// Serving-layer throughput/latency baseline: 16-request mixed traffic over
// the Table-2 D2 universe, served four ways —
//
//   baseline_serialized     16 isolated single-query extractors, one after
//                           another (the pre-serving way to answer them);
//   server_cold_concurrent  16 threads submitting into a fresh
//                           ExtractionServer (scheduler + empty caches);
//   server_warm_concurrent  the same 16 again on the now-warm server (every
//                           request answered from the shared answer cache);
//   server_batch_cold       ExtractBatch over the 16 on a fresh server, so
//                           groups with identical component sequences share
//                           one recorded sampling pass.
//
// Every server result is compared bit-for-bit against its isolated run
// (the determinism contract); any mismatch flips the bit_identical flags
// and exits non-zero. The JSON document (committed as BENCH_serving.json)
// carries the wall times, qps, throughput ratios, the p50/p99 of the
// serving_request_latency_seconds histogram, and the server counters.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

using serving::ExtractionServer;
using serving::QueryRequest;
using serving::ServingOptions;

// Stamped into the JSON document and the committed BENCH_serving.json;
// tools/benchdiff refuses to compare dumps whose versions disagree.
constexpr int64_t kBenchSchemaVersion = 1;

constexpr int kNumRequests = 16;
constexpr int kSampleSize = 400;

// Mixed traffic: five distinct queries, three of which share a component
// sequence (so the batch path can group them into one sampling pass), cycled
// round-robin over 16 request slots.
std::vector<QueryRequest> MakeTraffic() {
  std::vector<AggregateQuery> distinct;
  distinct.push_back(MakeRangeQuery("q1-sum", AggregateKind::kSum, 0, 200));
  distinct.push_back(
      MakeRangeQuery("q2-avg", AggregateKind::kAverage, 0, 200));
  distinct.push_back(MakeRangeQuery("q3-max", AggregateKind::kMax, 0, 200));
  distinct.push_back(MakeRangeQuery("q4-sum", AggregateKind::kSum, 200, 150));
  distinct.push_back(
      MakeRangeQuery("q5-var", AggregateKind::kVariance, 100, 200));
  std::vector<QueryRequest> requests(kNumRequests);
  for (int i = 0; i < kNumRequests; ++i) {
    requests[i].query = distinct[i % distinct.size()];
  }
  return requests;
}

ServingOptions MakeServingOptions(MetricsRegistry* metrics) {
  ServingOptions options;
  options.base.initial_sample_size = kSampleSize;
  options.base.weight_probes = 10;
  // Serial sampling is what makes a batch group shareable (the recorded
  // pass must be the stream an isolated run consumes).
  options.base.sampling_threads = 1;
  options.obs.metrics = metrics;
  return options;
}

// Bitwise equality over every field the determinism contract covers
// (timings are wall-clock metadata and excluded).
bool SameAnswer(const AnswerStatistics& a, const AnswerStatistics& b) {
  if (a.samples != b.samples) return false;
  if (a.mean.value != b.mean.value || a.mean.ci.lo != b.mean.ci.lo ||
      a.mean.ci.hi != b.mean.ci.hi) {
    return false;
  }
  if (a.variance.value != b.variance.value ||
      a.std_dev.value != b.std_dev.value ||
      a.skewness.value != b.skewness.value) {
    return false;
  }
  if (a.density.size() != b.density.size() ||
      a.density.x_min() != b.density.x_min() ||
      a.density.x_max() != b.density.x_max() ||
      !std::equal(a.density.values().begin(), a.density.values().end(),
                  b.density.values().begin())) {
    return false;
  }
  if (a.coverage.intervals.size() != b.coverage.intervals.size() ||
      a.coverage.total_coverage != b.coverage.total_coverage ||
      a.coverage.total_length_fraction != b.coverage.total_length_fraction) {
    return false;
  }
  return a.stability.stab_l2 == b.stability.stab_l2 &&
         a.stability.stab_bh == b.stability.stab_bh &&
         a.stability.psi == b.stability.psi &&
         a.answer_weight_y == b.answer_weight_y;
}

// Submits every request from its own thread and waits for all of them;
// results align with `requests` by index.
std::vector<Result<AnswerStatistics>> ServeConcurrently(
    ExtractionServer& server, const std::vector<QueryRequest>& requests) {
  std::vector<Result<AnswerStatistics>> results(
      requests.size(), Result<AnswerStatistics>(Status::Internal("unset")));
  std::vector<std::thread> threads;
  threads.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    threads.emplace_back(
        [&server, &requests, &results, i] {
          results[i] = server.Extract(requests[i]);
        });
  }
  for (std::thread& thread : threads) thread.join();
  return results;
}

bool AllMatch(const std::vector<Result<AnswerStatistics>>& got,
              const std::vector<AnswerStatistics>& want, const char* label) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (!got[i].ok()) {
      std::fprintf(stderr, "%s request %zu failed: %s\n", label, i,
                   got[i].status().ToString().c_str());
      return false;
    }
    if (!SameAnswer(got[i].value(), want[i])) {
      std::fprintf(stderr, "%s request %zu diverged from its isolated run\n",
                   label, i);
      return false;
    }
  }
  return true;
}

uint64_t CounterOf(const MetricsSnapshot& snapshot, std::string_view name) {
  const CounterSample* sample = snapshot.FindCounter(name);
  return sample == nullptr ? 0 : sample->value;
}

int RunServingJson() {
  const Workload workload = MakeD2Workload();
  const std::vector<QueryRequest> requests = MakeTraffic();

  MetricsRegistry metrics;
  auto server_result =
      ExtractionServer::Create(workload.sources.get(),
                               MakeServingOptions(&metrics));
  if (!server_result.ok()) {
    std::fprintf(stderr, "%s\n", server_result.status().ToString().c_str());
    return 1;
  }
  ExtractionServer& server = **server_result;

  // Ground truth + the serialized baseline: one isolated extractor per
  // request, run back to back with the server's own derived options.
  std::vector<AnswerStatistics> isolated;
  isolated.reserve(requests.size());
  Stopwatch stopwatch;
  for (const QueryRequest& request : requests) {
    const auto derived = server.DerivedOptions(request);
    if (!derived.ok()) {
      std::fprintf(stderr, "%s\n", derived.status().ToString().c_str());
      return 1;
    }
    const auto extractor = AnswerStatisticsExtractor::Create(
        workload.sources.get(), request.query, *derived);
    if (!extractor.ok()) {
      std::fprintf(stderr, "%s\n", extractor.status().ToString().c_str());
      return 1;
    }
    const auto statistics = extractor->Extract();
    if (!statistics.ok()) {
      std::fprintf(stderr, "%s\n", statistics.status().ToString().c_str());
      return 1;
    }
    isolated.push_back(*statistics);
  }
  const double baseline_seconds = stopwatch.ElapsedSeconds();

  // Cold: 16 concurrent submissions into empty caches. Duplicates that
  // overlap in flight may each pay a full extraction (the answer cache only
  // serves completed entries), so only the hit/miss split is racy — results
  // are bit-identical either way.
  stopwatch.Restart();
  const auto cold = ServeConcurrently(server, requests);
  const double cold_seconds = stopwatch.ElapsedSeconds();
  const bool cold_identical = AllMatch(cold, isolated, "cold");
  const uint64_t hits_after_cold =
      CounterOf(metrics.Snapshot(), "serving_answer_cache_hits_total");

  // Warm: the same traffic again; every request is an answer-cache hit.
  stopwatch.Restart();
  const auto warm = ServeConcurrently(server, requests);
  const double warm_seconds = stopwatch.ElapsedSeconds();
  const bool warm_identical = AllMatch(warm, isolated, "warm");

  // Batch on a second, cold server: the three same-sequence queries group
  // into one recorded sampling pass; duplicate requests dedupe inside
  // their group.
  MetricsRegistry batch_metrics;
  auto batch_server_result =
      ExtractionServer::Create(workload.sources.get(),
                               MakeServingOptions(&batch_metrics));
  if (!batch_server_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 batch_server_result.status().ToString().c_str());
    return 1;
  }
  stopwatch.Restart();
  const auto batch = (*batch_server_result)->ExtractBatch(requests);
  const double batch_seconds = stopwatch.ElapsedSeconds();
  const bool batch_identical = AllMatch(batch, isolated, "batch");

  if (!cold_identical || !warm_identical || !batch_identical) {
    std::fprintf(stderr, "bit-identity check failed\n");
    return 1;
  }

  const MetricsSnapshot snapshot = metrics.Snapshot();
  const HistogramSample* latency =
      snapshot.FindHistogram("serving_request_latency_seconds");
  if (latency == nullptr || latency->count == 0) {
    std::fprintf(stderr, "serving latency histogram missing or empty\n");
    return 1;
  }
  const MetricsSnapshot batch_snapshot = batch_metrics.Snapshot();

  JsonWriter out;
  out.BeginObject();
  out.KeyValue("schema_version", kBenchSchemaVersion);
  out.KeyValue("benchmark", "serving");
  out.Key("workload");
  out.BeginObject();
  out.KeyValue("sources",
               static_cast<int64_t>(workload.sources->NumSources()));
  out.KeyValue("components", static_cast<int64_t>(500));
  out.KeyValue("sample_size", static_cast<int64_t>(kSampleSize));
  out.KeyValue("requests", static_cast<int64_t>(kNumRequests));
  out.KeyValue("distinct_queries", static_cast<int64_t>(5));
  out.KeyValue("concurrency", static_cast<int64_t>(kNumRequests));
  out.EndObject();
  out.Key("seconds");
  out.BeginObject();
  out.KeyValue("baseline_serialized", baseline_seconds);
  out.KeyValue("server_cold_concurrent", cold_seconds);
  out.KeyValue("server_warm_concurrent", warm_seconds);
  out.KeyValue("server_batch_cold", batch_seconds);
  out.EndObject();
  out.Key("qps");
  out.BeginObject();
  out.KeyValue("baseline_serialized", kNumRequests / baseline_seconds);
  out.KeyValue("server_cold_concurrent", kNumRequests / cold_seconds);
  out.KeyValue("server_warm_concurrent", kNumRequests / warm_seconds);
  out.KeyValue("server_batch_cold", kNumRequests / batch_seconds);
  out.EndObject();
  out.Key("throughput_ratio");
  out.BeginObject();
  out.KeyValue("cold_vs_serialized", baseline_seconds / cold_seconds);
  out.KeyValue("warm_vs_serialized", baseline_seconds / warm_seconds);
  out.KeyValue("batch_vs_serialized", baseline_seconds / batch_seconds);
  out.EndObject();
  out.Key("latency_seconds");
  out.BeginObject();
  out.KeyValue("p50", latency->EstimateQuantile(0.5));
  out.KeyValue("p99", latency->EstimateQuantile(0.99));
  out.EndObject();
  out.Key("bit_identical");
  out.BeginObject();
  out.KeyValue("cold", cold_identical);
  out.KeyValue("warm", warm_identical);
  out.KeyValue("batch", batch_identical);
  out.EndObject();
  // Scheduler/cache traffic of the two concurrent passes. The cold pass's
  // hit/miss split is racy (concurrent duplicates may each miss), so only
  // run-invariant values are emitted: the totals, and the warm pass's hit
  // count as a delta — once the cold pass completes, every cache entry
  // exists, so all 16 warm requests hit deterministically.
  out.Key("concurrent");
  out.BeginObject();
  out.KeyValue("requests_total",
               static_cast<int64_t>(
                   CounterOf(snapshot, "serving_requests_total")));
  out.KeyValue("admitted_total",
               static_cast<int64_t>(
                   CounterOf(snapshot, "serving_admitted_total")));
  out.KeyValue("rejected_total",
               static_cast<int64_t>(
                   CounterOf(snapshot, "serving_rejected_total")));
  out.KeyValue(
      "warm_pass_answer_cache_hits",
      static_cast<int64_t>(
          CounterOf(snapshot, "serving_answer_cache_hits_total") -
          hits_after_cold));
  out.EndObject();
  // Deterministic batch structure: 3 groups over the 16 requests, the
  // shared-sequence group replays one 400-draw pass for 3 pending members
  // (saving 800 recorded draws), duplicates dedupe to zero extra work.
  out.Key("batch");
  out.BeginObject();
  out.KeyValue("groups",
               static_cast<int64_t>(
                   CounterOf(batch_snapshot, "serving_batch_groups_total")));
  out.KeyValue(
      "shared_sampling_draws_saved",
      static_cast<int64_t>(CounterOf(
          batch_snapshot, "serving_shared_sampling_draws_saved_total")));
  out.EndObject();
  // The full counter dump comes from the batch server's registry — the
  // batch path's work is deterministic (group structure, dedupe, and
  // per-member tails are functions of the request list alone), so these
  // values diff exactly across runs and hosts.
  out.Key("counters");
  out.BeginObject();
  for (const CounterSample& counter : batch_snapshot.counters) {
    out.KeyValue(counter.name, static_cast<int64_t>(counter.value));
  }
  out.EndObject();
  out.EndObject();
  std::printf("%s\n", std::move(out).Finish().c_str());
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main(int argc, char** argv) {
  // --json is accepted for symmetry with micro_pipeline; the JSON document
  // is this binary's only mode.
  (void)argc;
  (void)argv;
  return vastats::bench::RunServingJson();
}
