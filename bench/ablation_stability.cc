// Ablation: the stability machinery of §4.4 and Appendix A.
//
//  (1) r-sweep — the paper's future work ("evaluation ... when more than
//      one source is removed"): analytic Stab_L2 vs the source-removal
//      simulation for r = 1..8 on the D2 workload.
//  (2) change-ratio estimators — the geometric (1-(1-y/D)^r) and
//      combinatorial (C(D,r)-C(D-y,r))/C(D,r) estimates vs the empirically
//      simulated fraction of invalidated answers.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

int Run() {
  Workload workload = MakeD2Workload();
  const auto sampler =
      UniSSampler::Create(workload.sources.get(), workload.query);
  if (!sampler.ok()) return 1;
  Rng rng(777);
  const auto samples = sampler->Sample(400, rng);
  if (!samples.ok()) return 1;
  KdeOptions kde_options;
  const auto kde = EstimateKde(*samples, kde_options);
  if (!kde.ok()) return 1;
  const double y = sampler->EstimateSourcesPerAnswer(50, rng).value();
  const int num_sources = workload.sources->NumSources();
  std::printf("Workload: Sum(D2), |D| = %d, |C| = 500, y = %.1f "
              "sources/answer, h = %.3f\n\n",
              num_sources, y, kde->bandwidth);

  std::printf("(1) Stability vs number of removed sources r\n");
  std::printf("%-4s %12s %12s\n", "r", "analytic", "simulated");
  for (const int r : {1, 2, 4, 8}) {
    const double c_r =
        ChangeRatio(y, num_sources, r, ChangeRatioEstimator::kGeometric)
            .value();
    const auto analytic = StabilityL2(*samples, kde->bandwidth, c_r);
    SimulatedStabilityOptions sim;
    sim.r = r;
    sim.trials = 15;
    sim.samples_per_trial = 200;
    sim.kde = kde_options;
    const auto simulated =
        SimulateStability(*sampler, kde->density, sim, rng);
    std::printf("%-4d %12.4f %12.4f\n", r, analytic.value_or(-1),
                simulated.value_or(-1));
  }

  std::printf("\n(2) Change ratio c_r: estimators vs simulation\n");
  std::printf("%-4s %12s %14s %12s\n", "r", "geometric", "combinatorial",
              "simulated");
  for (const int r : {1, 2, 4, 8}) {
    const double geometric =
        ChangeRatio(y, num_sources, r, ChangeRatioEstimator::kGeometric)
            .value();
    const double combinatorial =
        ChangeRatio(y, num_sources, r, ChangeRatioEstimator::kCombinatorial)
            .value();
    // Empirical: fraction of fresh uniS answers that used >= 1 removed
    // source. An answer "used" a removed source when redrawing it with the
    // sources excluded changes which sources contribute — estimated here
    // directly from the per-answer contributing counts: an answer touching
    // any of the r removed sources is invalidated.
    int invalidated = 0;
    const int kProbes = 400;
    for (int probe = 0; probe < kProbes; ++probe) {
      // Draw the removal set.
      std::vector<int> removed;
      while (static_cast<int>(removed.size()) < r) {
        const int s = static_cast<int>(rng.UniformInt(0, num_sources - 1));
        if (std::find(removed.begin(), removed.end(), s) == removed.end()) {
          removed.push_back(s);
        }
      }
      // Draw one answer and record whether any removed source contributed:
      // re-draw with the same RNG state excluded vs not is awkward, so use
      // the direct criterion — sample once, then test whether the same
      // visiting order avoids the removed set entirely. Approximate by
      // sampling the contributing-source count: an answer is invalidated
      // with probability 1 - C(D-y', r)/C(D, r) conditioned on its own
      // y' contributing sources; simulate by drawing y' from the sampler.
      const auto sample = sampler->SampleOne(rng);
      if (!sample.ok()) return 1;
      // The answer used `sources_contributing` specific sources; it is
      // invalidated iff the removal set intersects them. Draw that event.
      const int used = sample->sources_contributing;
      // Probability the r removed sources all miss the `used` ones:
      double miss = 1.0;
      for (int k = 0; k < r; ++k) {
        miss *= static_cast<double>(num_sources - used - k) /
                static_cast<double>(num_sources - k);
      }
      if (rng.Uniform01() > miss) ++invalidated;
    }
    std::printf("%-4d %12.4f %14.4f %12.4f\n", r, geometric, combinatorial,
                static_cast<double>(invalidated) / kProbes);
  }
  std::printf(
      "\nReading: the closed-form c_r estimators track the simulated\n"
      "invalidation fraction at every r. The analytic stability tracks the\n"
      "simulation only while c_r stays away from 1 (the paper's standing\n"
      "assumption r << |D|): as c_r -> 1 the c_r/(1-c_r) factor blows up\n"
      "and the analytic score collapses, while the true distance saturates\n"
      "— quantifying exactly when the paper's formula stops being usable.\n");
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main() { return vastats::bench::Run(); }
