// Regenerates the worked example of Figure 3 (§4.1): Algorithm 1 applied to
// the aggregation "Sum(Temp)" over the four toy climate sources of Figure 1.
//
// Outputs (the grey boxes of Figure 3): point estimates with 90% and 85%
// confidence intervals for mean and standard deviation, the high coverage
// intervals (I, L, C), and the stability score. The exact viable answer
// range and the full permutation enumeration are printed alongside, since
// this scenario is small enough to solve exactly.

#include <cstdio>
#include <map>
#include <vector>

#include "vastats/vastats.h"

namespace vastats {
namespace {

SourceSet MakeFigure1Sources() {
  SourceSet set;
  DataSource d1("D1");
  d1.Bind(1, 21.0);  // Burnaby   2006-06-10
  d1.Bind(2, 19.0);  // Vancouver 2006-06-11
  DataSource d2("D2");
  d2.Bind(1, 21.0);
  d2.Bind(2, 22.0);
  d2.Bind(5, 18.0);  // Richmond  2006-06-12
  DataSource d3("D3");
  d3.Bind(1, 19.0);
  d3.Bind(2, 17.0);
  d3.Bind(3, 15.0);  // Surrey    2006-06-11
  d3.Bind(4, 20.0);  // Vancouver 2006-06-12
  DataSource d4("D4");
  d4.Bind(3, 15.0);
  set.AddSource(std::move(d1));
  set.AddSource(std::move(d2));
  set.AddSource(std::move(d3));
  set.AddSource(std::move(d4));
  return set;
}

void PrintCi(const char* label, const PointEstimate& estimate) {
  std::printf("  %-22s %8.4f   %2.0f%% CI [%8.4f, %8.4f]  len %.4f\n", label,
              estimate.value, estimate.ci.level * 100.0, estimate.ci.lo,
              estimate.ci.hi, estimate.ci.Length());
}

int Run() {
  std::printf("Figure 3 worked example: Sum(Temp) over the Figure 1 sources\n");
  std::printf("============================================================\n");

  SourceSet sources = MakeFigure1Sources();
  AggregateQuery query;
  query.name = "Sum(Temp)";
  query.kind = AggregateKind::kSum;
  query.components = {1, 2, 3, 4, 5};

  // Ground truth, computable exactly at this scale.
  const auto range = ViableRange(sources, query);
  const auto order_answers = EnumerateOrderAnswers(sources, query);
  if (!range.ok() || !order_answers.ok()) {
    std::fprintf(stderr, "exact enumeration failed\n");
    return 1;
  }
  std::printf("\nExact analysis (tiny scenario only):\n");
  std::printf("  viable answer range W = [%.1f, %.1f]\n", range->first,
              range->second);
  std::map<double, int> histogram;
  for (const double answer : *order_answers) ++histogram[answer];
  std::printf("  distinct uniS-reachable answers over all 4! orders:\n");
  for (const auto& [answer, count] : histogram) {
    std::printf("    %6.1f  x%2d  (p = %.3f)\n", answer, count,
                count / 24.0);
  }

  // Algorithm 1 with the Table 2 defaults (|S_uniS| = 400, 50x400
  // bootstrap, theta = 0.9).
  ExtractorOptions options;
  options.seed = 3;
  // This toy scenario has only three distinct viable answers; the adaptive
  // (Botev) bandwidth rightly collapses towards atoms, but the paper's
  // Figure 3 illustration smooths them into humps — Silverman's rule
  // reproduces that look.
  options.kde.rule = BandwidthRule::kSilverman;
  const auto extractor =
      AnswerStatisticsExtractor::Create(&sources, query, options);
  if (!extractor.ok()) {
    std::fprintf(stderr, "%s\n", extractor.status().ToString().c_str());
    return 1;
  }
  const auto stats = extractor->Extract();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }

  std::printf("\nAlgorithm 1 outputs (|S_uniS| = 400, |S_boot| = 50):\n");
  std::printf("Point estimates with confidence intervals:\n");
  PrintCi("mean", stats->mean);
  PrintCi("stddev", stats->std_dev);
  PrintCi("variance", stats->variance);
  PrintCi("skewness", stats->skewness);

  // The paper's figure also reports 85% intervals; recompute at that level.
  ExtractorOptions options85 = options;
  options85.confidence_level = 0.85;
  const auto extractor85 =
      AnswerStatisticsExtractor::Create(&sources, query, options85);
  const auto stats85 = extractor85->Extract();
  if (stats85.ok()) {
    PrintCi("mean (85%)", stats85->mean);
    PrintCi("stddev (85%)", stats85->std_dev);
  }

  std::printf("\nHigh coverage intervals (theta = %.2f):\n",
              options.cio.theta);
  for (const CoverageInterval& interval : stats->coverage.intervals) {
    std::printf("  [%8.3f, %8.3f]  coverage %.4f\n", interval.lo,
                interval.hi, interval.coverage);
  }
  std::printf("  k = %zu intervals, L = %.4f of range, C = %.4f\n",
              stats->coverage.intervals.size(),
              stats->coverage.total_length_fraction,
              stats->coverage.total_coverage);

  std::printf("\nStability (r = %d source removed):\n", options.stability_r);
  std::printf("  Stab_L2 = %.4f   Stab_Bh = %.4f\n",
              stats->stability.stab_l2, stats->stability.stab_bh);
  std::printf("  c_r = %.4f (y = %.2f sources/answer, |D| = %d)\n",
              stats->stability.change_ratio, stats->stability.y,
              sources.NumSources());
  std::printf("  KDE bandwidth h = %.4f, Psi = %.2f\n",
              stats->stability.bandwidth, stats->stability.psi);
  return 0;
}

}  // namespace
}  // namespace vastats

int main() { return vastats::Run(); }
