// Regenerates Table 4 (§5.2): greedy CIO vs the 4096-slice "optimal"
// baseline on the four Figure 7 aggregations.
//
// For each aggregation the harness estimates the viable answer density,
// runs the greedy Algorithm 2 at theta = 0.9, then asks the slicing
// baseline for the same achieved coverage and compares total interval
// lengths. Paper's shape: ratio 1.0 on the two-mode climate sums and a
// modest blow-up (1.38 / 1.08) on the 7- and 8-mode D3 sums, with coverage
// between ~74% and ~92%.

#include <cstdio>
#include <vector>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

int Run() {
  std::printf("Table 4 reproduction: CIO greedy vs top-slices optimal\n");
  std::printf("(greedy = Algorithm 2 with symmetric mode intervals, as in "
              "the paper's evaluation;\n water-level = this library's exact "
              "level-crossing variant, shown as an ablation)\n\n");
  std::printf("%-5s %-13s %9s %9s %9s %15s %13s\n", "Fig", "Aggregation",
              "Greedy", "Optimal", "Cover", "Greedy/Optimal", "water-level");

  std::vector<Workload> workloads = MakeFigure7Workloads();
  const char* figure_tag[] = {"a", "b", "c", "d"};
  int tag = 0;
  for (Workload& workload : workloads) {
    ExtractorOptions options;
    options.seed = 7000 + static_cast<uint64_t>(tag);
    options.cio.expansion = CioExpansion::kSymmetric;
    const auto extractor = AnswerStatisticsExtractor::Create(
        workload.sources.get(), workload.query, options);
    if (!extractor.ok()) return 1;
    const auto stats = extractor->Extract();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    const double greedy_length = stats->coverage.total_length_fraction;
    const double coverage = stats->coverage.total_coverage;

    // "Optimal" baseline at the same achieved coverage.
    const auto optimal =
        SlicingCio(stats->density, std::min(coverage, 0.999), 4096);
    if (!optimal.ok()) {
      std::fprintf(stderr, "%s\n", optimal.status().ToString().c_str());
      return 1;
    }
    // Ablation: the exact water-level greedy on the same density.
    CioOptions water = options.cio;
    water.expansion = CioExpansion::kWaterLevel;
    const auto water_result = GreedyCio(stats->density, water);
    const double optimal_length = optimal->total_length_fraction;
    std::printf("%-5s %-13s %9.4f %9.4f %8.2f%% %15.2f %13.4f\n",
                figure_tag[tag], workload.label.c_str(), greedy_length,
                optimal_length, coverage * 100.0,
                optimal_length > 0 ? greedy_length / optimal_length : 0.0,
                water_result.ok()
                    ? water_result->total_length_fraction
                    : -1.0);
    ++tag;
  }
  std::printf("\nPaper's Table 4 for comparison:\n");
  std::printf("  a  0.2272 0.2272 85.72%%  1.00\n");
  std::printf("  b  0.2475 0.2475 85.44%%  1.00\n");
  std::printf("  c  0.3764 0.2724 73.82%%  1.38\n");
  std::printf("  d  0.5552 0.5150 92.12%%  1.08\n");
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main() { return vastats::bench::Run(); }
