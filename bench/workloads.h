// Shared workload builders for the experiment harnesses in bench/.
//
// The four §5.2/§5.3 aggregations:
//   S1, S2 — Sum(Temp) over the synthetic climate archive C (42 districts x
//            12 months ~= 500 components each); a couple of Fahrenheit
//            stations split the answer distribution into the two modes of
//            Figure 7(a)/(b).
//   S3, S4 — Sum over dataset D3 (500 components, 100 sources) with three
//            semantic-ambiguity conflict components whose shift lattices
//            produce the 7- and 8-mode densities of Figure 7(c)/(d).
// Plus the Table-2 default D2 workload used by Table 3 and Figure 6.

#ifndef VASTATS_BENCH_WORKLOADS_H_
#define VASTATS_BENCH_WORKLOADS_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "vastats/vastats.h"

namespace vastats::bench {

struct Workload {
  std::string label;
  std::unique_ptr<SourceSet> sources;
  AggregateQuery query;
};

// Table 2 defaults: |D| = 100, |C| = 500, Sum over D2 values.
inline Workload MakeD2Workload(uint64_t seed = 2) {
  const auto mixture = MakeD2(seed);
  SyntheticSourceSetOptions options;
  options.num_sources = 100;
  options.num_components = 500;
  options.min_copies = 2;
  options.max_copies = 6;
  options.conflict_model = ConflictModel::kSharedBaseNoise;
  options.conflict_sigma = 0.5;
  options.seed = seed + 1;
  Workload workload;
  workload.label = "Sum(D2)";
  workload.sources = std::make_unique<SourceSet>(
      BuildSyntheticSourceSet(*mixture, options).value());
  workload.query = MakeRangeQuery("sum-d2", AggregateKind::kSum, 0, 500);
  return workload;
}

// D3 workload with semantic-conflict components. `shifts` controls the mode
// lattice: shifts {d1, d2, d3} yield modes at every subset sum.
inline Workload MakeD3Workload(const std::string& label,
                               const std::vector<double>& shifts,
                               uint64_t seed) {
  const auto mixture = MakeD3(seed);
  const int num_regular = 500 - static_cast<int>(shifts.size());
  SyntheticSourceSetOptions options;
  options.num_sources = 100;
  options.num_components = num_regular;
  options.min_copies = 2;
  options.max_copies = 6;
  options.conflict_model = ConflictModel::kSharedBaseNoise;
  options.conflict_sigma = 0.5;
  options.seed = seed + 1;
  Workload workload;
  workload.label = label;
  workload.sources = std::make_unique<SourceSet>(
      BuildSyntheticSourceSet(*mixture, options).value());

  Rng rng(seed + 2);
  ComponentId next_component = num_regular;
  for (const double shift : shifts) {
    const int source_a = static_cast<int>(rng.UniformInt(0, 99));
    int source_b = static_cast<int>(rng.UniformInt(0, 99));
    while (source_b == source_a) {
      source_b = static_cast<int>(rng.UniformInt(0, 99));
    }
    const double value = mixture->Sample(rng);
    const Status added =
        AddConflictComponent(*workload.sources, next_component, source_a,
                             source_b, value, shift);
    // Source indices are drawn in-range above; failure means a workload
    // construction bug, which must not silently skew the experiment.
    if (!added.ok()) std::abort();
    ++next_component;
  }
  workload.query = MakeRangeQuery(label, AggregateKind::kSum, 0, 500);
  return workload;
}

// Figure 7(c): shifts 90/180/270 collide on subset sums -> 7 modes.
inline Workload MakeS3(uint64_t seed = 33) {
  return MakeD3Workload("S3=Sum(D3)", {90.0, 180.0, 270.0}, seed);
}

// Figure 7(d): incommensurate shifts -> 8 distinct modes.
inline Workload MakeS4(uint64_t seed = 44) {
  return MakeD3Workload("S4=Sum(D3)", {80.0, 170.0, 350.0}, seed);
}

// Rewrites district `district` so it has exactly three temperature
// reporters, one of which stores Fahrenheit. Because the same three sources
// compete for all 12 months, the Fahrenheit station supplies either all of
// the district's months (probability 1/3 under uniS) or none — producing
// the crisp secondary mode of Figure 7(a) instead of a smeared shoulder.
inline void InjectUnitErrorDistrict(SourceSet& sources,
                                    const ClimateArchive& archive,
                                    int district) {
  const int stride = archive.options().num_districts;
  const int num_stations = archive.options().num_stations;
  std::vector<ComponentId> district_components;
  for (int month = 1; month <= 12; ++month) {
    district_components.push_back(ClimateArchive::ComponentFor(
        ClimateAttribute::kMeanTemperature, district, month));
  }
  int keep_rank = 0;
  for (int station = district; station < num_stations; station += stride) {
    DataSource& source = sources.mutable_source(station);
    if (keep_rank >= 3) {
      // Surplus station: drop its temperature bindings for this district.
      for (const ComponentId component : district_components) {
        source.Unbind(component);
      }
    } else if (keep_rank == 1) {
      // The Fahrenheit reporter: convert its Celsius values.
      for (const ComponentId component : district_components) {
        const auto value = source.Value(component);
        if (value.ok()) {
          source.Bind(component, value.value() * 9.0 / 5.0 + 32.0);
        }
      }
    }
    ++keep_rank;
  }
}

// Climate sum over 42 districts x 12 months. `district_offset` selects the
// slice (S1 uses districts 0..41, S2 uses 42..83).
inline Workload MakeClimateWorkload(const std::string& label,
                                    int district_offset, uint64_t seed) {
  ClimateArchiveOptions options;
  options.seed = seed;
  // Unit errors are injected structurally below rather than at random, so
  // the secondary mode shows up deterministically.
  options.fahrenheit_station_fraction = 0.0;
  // Mild station biases: a station visited early supplies all 12 of its
  // district's months with its bias, so the bias is the block-correlated
  // part of the answer variance; keeping it small keeps the two modes of
  // Figure 7(a) narrow relative to their ~430-degree separation.
  options.station_bias_sigma = 0.25;
  options.measurement_noise_sigma = 0.5;
  Workload workload;
  workload.label = label;
  const ClimateArchive archive = ClimateArchive::Build(options).value();
  workload.sources =
      std::make_unique<SourceSet>(archive.MakeSourceSet().value());
  // One supposedly-cleaned-but-actually-Fahrenheit station inside the slice
  // (the paper's §7 explanation of Figure 7(a)'s second interval).
  InjectUnitErrorDistrict(*workload.sources, archive, district_offset + 7);
  workload.query.name = label;
  workload.query.kind = AggregateKind::kSum;
  for (int d = district_offset; d < district_offset + 42; ++d) {
    for (int month = 1; month <= 12; ++month) {
      workload.query.components.push_back(ClimateArchive::ComponentFor(
          ClimateAttribute::kMeanTemperature, d, month));
    }
  }
  return workload;
}

inline Workload MakeS1(uint64_t seed = 2006) {
  return MakeClimateWorkload("S1=Sum(C)", 0, seed);
}

inline Workload MakeS2(uint64_t seed = 2006) {
  return MakeClimateWorkload("S2=Sum(C)", 42, seed);
}

// All four Figure 7 / Figure 8 aggregations, in paper order (a)-(d).
inline std::vector<Workload> MakeFigure7Workloads() {
  std::vector<Workload> workloads;
  workloads.push_back(MakeS1());
  workloads.push_back(MakeS2());
  workloads.push_back(MakeS3());
  workloads.push_back(MakeS4());
  return workloads;
}

}  // namespace vastats::bench

#endif  // VASTATS_BENCH_WORKLOADS_H_
