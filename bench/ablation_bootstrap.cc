// Ablation: the bootstrap design choices of §4.2 / Table 2.
//
//  (1) CI method — empirical coverage and mean length of nominal-90%
//      intervals for the mean of Sum(D2), across normal / percentile /
//      basic / BCa. The "truth" is the mean of a 200k-draw reference
//      sample. The paper uses BCa "to obtain good quality confidence
//      intervals using small amount of initial samples".
//  (2) |S_boot| — how the number of bootstrap sets (Table 2 default: 50)
//      affects the stability of the interval itself (spread of CI length
//      across repeated resamplings of the same data).

#include <cstdio>
#include <vector>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

int Run() {
  Workload workload = MakeD2Workload();
  const auto sampler =
      UniSSampler::Create(workload.sources.get(), workload.query);
  if (!sampler.ok()) return 1;

  // Reference mean from a large sample.
  Rng ref_rng(123);
  const auto reference = sampler->Sample(200'000, ref_rng);
  if (!reference.ok()) return 1;
  const double true_mean = ComputeMoments(*reference).mean();
  std::printf("Reference mean of Sum(D2) from 200k draws: %.2f\n\n",
              true_mean);

  std::printf("(1) Empirical coverage of nominal-90%% mean CIs "
              "(|S| = 200, 50 bootstrap sets, 60 trials)\n");
  std::printf("%-12s %12s %14s\n", "method", "coverage", "avg length");
  for (const CiMethod method :
       {CiMethod::kNormal, CiMethod::kPercentile, CiMethod::kBasic,
        CiMethod::kBca}) {
    int covered = 0;
    double total_length = 0.0;
    const int kTrials = 60;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(500 + static_cast<uint64_t>(trial));
      const auto samples = sampler->Sample(200, rng);
      if (!samples.ok()) return 1;
      const double mean = ComputeMoments(*samples).mean();
      const auto replicates = BootstrapReplicates(
          *samples, MomentStatisticFn(MomentStatistic::kMean),
          BootstrapOptions{}, rng);
      if (!replicates.ok()) return 1;
      std::vector<double> jackknife;
      if (method == CiMethod::kBca) {
        const auto jk = JackknifeMoment(*samples, MomentStatistic::kMean);
        if (!jk.ok()) return 1;
        jackknife = *jk;
      }
      const auto ci = ComputeBootstrapCi(method, *replicates, mean, 0.90,
                                         jackknife);
      if (!ci.ok()) return 1;
      if (ci->Contains(true_mean)) ++covered;
      total_length += ci->Length();
    }
    std::printf("%-12s %10.1f%% %14.3f\n",
                std::string(CiMethodToString(method)).c_str(),
                covered * 100.0 / kTrials, total_length / kTrials);
  }

  std::printf("\n(2) CI-length stability vs number of bootstrap sets "
              "(same 200-draw sample, 40 resampling repeats)\n");
  std::printf("%-10s %14s %16s\n", "|S_boot|", "avg length",
              "length stddev");
  Rng data_rng(321);
  const auto samples = sampler->Sample(200, data_rng);
  if (!samples.ok()) return 1;
  const double mean = ComputeMoments(*samples).mean();
  const auto jackknife =
      JackknifeMoment(*samples, MomentStatistic::kMean);
  if (!jackknife.ok()) return 1;
  for (const int num_sets : {10, 25, 50, 100, 200}) {
    Moments lengths;
    for (int repeat = 0; repeat < 40; ++repeat) {
      Rng rng(900 + static_cast<uint64_t>(repeat));
      BootstrapOptions options;
      options.num_sets = num_sets;
      const auto replicates = BootstrapReplicates(
          *samples, MomentStatisticFn(MomentStatistic::kMean), options, rng);
      if (!replicates.ok()) return 1;
      const auto ci = BcaCi(*replicates, mean, 0.90, *jackknife);
      if (!ci.ok()) return 1;
      lengths.Add(ci->Length());
    }
    std::printf("%-10d %14.3f %16.4f\n", num_sets, lengths.mean(),
                lengths.SampleStdDev());
  }
  std::printf(
      "\nReading: all four methods should sit near 90%% coverage on this\n"
      "well-behaved workload, with BCa competitive in length; the interval\n"
      "itself stabilizes as |S_boot| grows, with 50 sets (the Table 2\n"
      "default) already within a few percent of the 200-set spread.\n");
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main() { return vastats::bench::Run(); }
