// Baseline comparison: data fusion (single-truth resolution, §6's contrast
// class) vs the viable answer distribution, on a workload where the
// single-truth assumption is wrong by construction — a climate slice with a
// hidden Fahrenheit stratum and a known ground truth.
//
// What to look for:
//  * fusion rules each commit to ONE scalar; rules that trust the majority
//    land near the Celsius truth, mean-fusion gets dragged by the
//    contamination, and none of them reports that anything is off;
//  * the answer distribution both contains the truth in its main coverage
//    interval AND exposes the contamination as a secondary interval — the
//    paper's core argument for reporting distributions.

#include <cmath>
#include <cstdio>

#include "fusion/fusion.h"
#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

int Run() {
  // Build the S1 climate workload and compute the ground-truth sum (the
  // generator's Celsius district-month truths).
  ClimateArchiveOptions archive_options;
  archive_options.seed = 2006;
  archive_options.fahrenheit_station_fraction = 0.0;
  archive_options.station_bias_sigma = 0.25;
  archive_options.measurement_noise_sigma = 0.5;
  const auto archive = ClimateArchive::Build(archive_options);
  if (!archive.ok()) return 1;
  auto sources = archive->MakeSourceSet();
  if (!sources.ok()) return 1;
  InjectUnitErrorDistrict(*sources, *archive, 7);

  AggregateQuery query;
  query.name = "Sum(Temp) districts 0-41";
  query.kind = AggregateKind::kSum;
  double truth = 0.0;
  for (int d = 0; d < 42; ++d) {
    for (int month = 1; month <= 12; ++month) {
      query.components.push_back(ClimateArchive::ComponentFor(
          ClimateAttribute::kMeanTemperature, d, month));
      truth +=
          archive->Truth(ClimateAttribute::kMeanTemperature, d, month)
              .value();
    }
  }
  std::printf("Workload: %s, ground-truth (Celsius) sum = %.1f\n\n",
              query.name.c_str(), truth);

  // Fusion baselines.
  std::printf("%-14s %12s %12s   %s\n", "method", "answer", "error",
              "reports contamination?");
  const struct {
    const char* name;
    FusionRule rule;
  } rules[] = {{"vote", FusionRule::kVote},
               {"median", FusionRule::kMedian},
               {"mean", FusionRule::kMean},
               {"truth-finder", FusionRule::kTruthFinder}};
  for (const auto& entry : rules) {
    FusionOptions options;
    options.rule = entry.rule;
    options.vote_tolerance = 2.0;
    options.truth_finder_iterations = 10;
    const auto fused = FusedAggregate(*sources, query, options);
    if (!fused.ok()) {
      std::fprintf(stderr, "%s: %s\n", entry.name,
                   fused.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s %12.1f %12.1f   no (one scalar, no shape)\n",
                entry.name, fused.value(), fused.value() - truth);
  }

  // The viable answer distribution.
  ExtractorOptions options;
  options.seed = 77;
  const auto extractor =
      AnswerStatisticsExtractor::Create(&sources.value(), query, options);
  if (!extractor.ok()) return 1;
  const auto stats = extractor->Extract();
  if (!stats.ok()) return 1;
  std::printf("%-14s %12.1f %12.1f   YES: %zu coverage intervals",
              "distribution", stats->mean.value, stats->mean.value - truth,
              stats->coverage.intervals.size());
  bool truth_covered = false;
  for (const CoverageInterval& interval : stats->coverage.intervals) {
    if (truth >= interval.lo && truth <= interval.hi) truth_covered = true;
  }
  std::printf(", truth %s the main interval\n",
              truth_covered ? "inside" : "outside");
  for (const CoverageInterval& interval : stats->coverage.intervals) {
    std::printf("                 interval [%.0f, %.0f] holds %.0f%%\n",
                interval.lo, interval.hi, interval.coverage * 100.0);
  }
  std::printf(
      "\nReading: every fusion rule outputs one number and silently commits "
      "to one semantics;\nthe distribution exposes the second (Fahrenheit) "
      "answer family as its own interval —\nthe paper's case for answer "
      "distributions over fused scalars.\n");
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main() { return vastats::bench::Run(); }
