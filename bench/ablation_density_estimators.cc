// Ablation: KDE vs histogram density estimation (§2.2's justification for
// choosing kernels: "KDE often converges to the true density faster").
//
// Samples are drawn directly from the D2 mixture (whose true pdf is known
// in closed form), and the integrated squared error of each estimator is
// measured as the sample size grows. Also compares the direct and binned
// KDE paths, which should agree to binning error at a fraction of the cost.

#include <cmath>
#include <cstdio>
#include <vector>

#include "util/stopwatch.h"
#include "vastats/vastats.h"

namespace vastats {
namespace {

// D2 with fixed centers so the true pdf is known exactly here.
struct D2Truth {
  const double means[4] = {15.0, 30.0, 45.0, 60.0};
  const double weights[4] = {12.0 / 20, 5.0 / 20, 2.0 / 20, 1.0 / 20};
  const double sigma = 0.5;

  double Pdf(double x) const {
    double f = 0.0;
    for (int i = 0; i < 4; ++i) {
      f += weights[i] * NormalPdf((x - means[i]) / sigma) / sigma;
    }
    return f;
  }

  double Sample(Rng& rng) const {
    const double u = rng.Uniform01();
    int component = 3;
    double acc = 0.0;
    for (int i = 0; i < 4; ++i) {
      acc += weights[i];
      if (u < acc) {
        component = i;
        break;
      }
    }
    return rng.Normal(means[component], sigma);
  }
};

double Ise(const GridDensity& estimate, const D2Truth& truth) {
  const size_t n = 4001;
  const double lo = 5.0, hi = 70.0;
  const double step = (hi - lo) / static_cast<double>(n - 1);
  double total = 0.0, prev = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double x = lo + static_cast<double>(i) * step;
    const double diff = estimate.ValueAt(x) - truth.Pdf(x);
    const double sq = diff * diff;
    if (i > 0) total += 0.5 * (prev + sq) * step;
    prev = sq;
  }
  return total;
}

int Run() {
  std::printf("Ablation: density estimator convergence on the D2 mixture "
              "(ISE vs true pdf, averaged over 5 draws)\n\n");
  std::printf("%-7s %12s %12s %12s %14s %14s\n", "n", "KDE(direct)",
              "KDE(binned)", "histogram", "t_direct(ms)", "t_binned(ms)");

  const D2Truth truth;
  for (const int n : {100, 200, 400, 800, 1600, 3200}) {
    double ise_direct = 0.0, ise_binned = 0.0, ise_hist = 0.0;
    double time_direct = 0.0, time_binned = 0.0;
    const int kTrials = 5;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(1000 * static_cast<uint64_t>(n) +
              static_cast<uint64_t>(trial));
      std::vector<double> samples(static_cast<size_t>(n));
      for (double& v : samples) v = truth.Sample(rng);

      KdeOptions direct;
      direct.rule = BandwidthRule::kBotev;
      KdeOptions binned = direct;
      binned.binned = true;
      Stopwatch watch;
      const auto kde_direct = EstimateKde(samples, direct);
      time_direct += watch.ElapsedSeconds();
      watch.Restart();
      const auto kde_binned = EstimateKde(samples, binned);
      time_binned += watch.ElapsedSeconds();
      const auto hist = EstimateHistogram(samples);
      if (!kde_direct.ok() || !kde_binned.ok() || !hist.ok()) return 1;
      ise_direct += Ise(kde_direct->density, truth);
      ise_binned += Ise(kde_binned->density, truth);
      ise_hist += Ise(*hist, truth);
    }
    std::printf("%-7d %12.5f %12.5f %12.5f %14.2f %14.2f\n", n,
                ise_direct / kTrials, ise_binned / kTrials,
                ise_hist / kTrials, time_direct / kTrials * 1e3,
                time_binned / kTrials * 1e3);
  }
  std::printf("\nReading: KDE ISE should sit below the histogram's at every "
              "n and shrink faster; the binned path should match the direct "
              "path's ISE while staying cheaper at large n.\n");
  return 0;
}

}  // namespace
}  // namespace vastats

int main() { return vastats::Run(); }
