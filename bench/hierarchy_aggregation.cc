// Distributed evaluation economics on the aggregation hierarchy — the
// substrate claim of §4.2 ("partial-final aggregates helps to distribute
// the computational load of each aggregation") and the §6 comparison with
// sensor networks, made measurable: for one uniS assignment, how much state
// crosses the network and how long the critical path is, hierarchical vs
// flat, algebraic vs holistic, across fanouts.

#include <cstdio>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

int Run() {
  Workload workload = MakeD2Workload();  // |D| = 100, |C| = 500
  const auto sampler =
      UniSSampler::Create(workload.sources.get(), workload.query);
  if (!sampler.ok()) return 1;
  Rng rng(47);
  const auto assignment = sampler->SampleAssignment(rng);
  if (!assignment.ok()) return 1;

  std::printf("Hierarchical vs flat evaluation of one uniS assignment "
              "(|D| = 100, |C| = 500; flat plan ships all 500 values to "
              "the mediator)\n\n");
  std::printf("%-7s %-9s %9s %16s %12s %16s\n", "fanout", "agg", "depth",
              "state shipped", "messages", "critical path");
  for (const int fanout : {2, 4, 8, 16}) {
    HierarchyOptions options;
    options.fanout = fanout;
    const auto hierarchy = AggregationHierarchy::Build(100, options);
    if (!hierarchy.ok()) return 1;
    for (const AggregateKind kind :
         {AggregateKind::kSum, AggregateKind::kMedian}) {
      AggregateQuery query = workload.query;
      query.kind = kind;
      const auto evaluation = hierarchy->EvaluateAssignment(
          *workload.sources, query, *assignment);
      if (!evaluation.ok()) {
        std::fprintf(stderr, "%s\n",
                     evaluation.status().ToString().c_str());
        return 1;
      }
      std::printf("%-7d %-9s %9d %10d vs %d %12d %13.1f ms\n", fanout,
                  std::string(AggregateKindToString(kind)).c_str(),
                  hierarchy->Depth(), evaluation->state_transferred,
                  evaluation->flat_transferred, evaluation->messages,
                  evaluation->critical_path_ms);
    }
  }
  std::printf(
      "\nReading: the algebraic sum ships a constant-size partial per edge "
      "(~3 scalars x messages),\nfar below the flat plan's 500 values; the "
      "holistic median cannot be decomposed and re-ships\nits buffer at "
      "every hop, costing MORE than flat as the tree deepens. Fanout trades "
      "per-node\nload (more children to merge) against critical-path depth "
      "— the sensor-network trade-off\nof §6 in miniature.\n");
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main() { return vastats::bench::Run(); }
