// Regenerates Figure 7: the viable answer distributions of the four sum
// aggregations S1..S4 and the high coverage intervals the greedy CIO
// algorithm reports on them.
//
// Paper's observations to check against:
//  * all four distributions are multi-modal (2, 2, 7, 8 modes);
//  * the reported intervals sit on the dense areas and cover the bulk of
//    the probability with a small fraction of the viable range (<25% for
//    S1/S2, ~37% for S3, ~56% for S4);
//  * the mean falls in a flat area, so mean-centered confidence intervals
//    would have to be far wider.
//
// Pass a directory as argv[1] to also export per-aggregation artifacts:
// <dir>/fig7_<tag>_density.csv (the x,f series, replottable) and
// <dir>/fig7_<tag>_intervals.csv (lo,hi,coverage rows).

#include <cstdio>
#include <string>
#include <vector>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

void PrintAsciiDensity(const GridDensity& density,
                       const CoverageResult& coverage) {
  constexpr int kColumns = 96;
  constexpr int kRows = 12;
  std::vector<double> heights(kColumns, 0.0);
  double max_height = 0.0;
  for (int c = 0; c < kColumns; ++c) {
    const double x =
        density.x_min() + density.range() * (c + 0.5) / kColumns;
    heights[static_cast<size_t>(c)] = density.ValueAt(x);
    max_height = std::max(max_height, heights[static_cast<size_t>(c)]);
  }
  for (int row = kRows; row >= 1; --row) {
    std::string line(kColumns, ' ');
    for (int c = 0; c < kColumns; ++c) {
      if (heights[static_cast<size_t>(c)] >=
          max_height * (row - 0.5) / kRows) {
        line[static_cast<size_t>(c)] = '#';
      }
    }
    std::printf("    |%s\n", line.c_str());
  }
  // Interval ruler: '=' marks columns inside a reported interval.
  std::string ruler(kColumns, '-');
  for (int c = 0; c < kColumns; ++c) {
    const double x =
        density.x_min() + density.range() * (c + 0.5) / kColumns;
    for (const CoverageInterval& interval : coverage.intervals) {
      if (x >= interval.lo && x <= interval.hi) {
        ruler[static_cast<size_t>(c)] = '=';
        break;
      }
    }
  }
  std::printf("    +%s\n", ruler.c_str());
  std::printf("     %-10.1f%*s\n", density.x_min(), kColumns - 10,
              (std::to_string(density.x_max())).c_str());
}

int Run(const char* export_dir) {
  std::printf(
      "Figure 7 reproduction: multi-modal viable answer distributions and "
      "high coverage intervals\n");
  std::printf(
      "(theta = 0.9; |S_uniS| = 400; 50 bootstrap sets; Botev bandwidth; "
      "4096-point grid)\n\n");

  std::vector<Workload> workloads = MakeFigure7Workloads();
  const char* figure_tag[] = {"(a)", "(b)", "(c)", "(d)"};
  int tag = 0;
  for (Workload& workload : workloads) {
    ExtractorOptions options;
    options.seed = 7000 + static_cast<uint64_t>(tag);
    const auto extractor = AnswerStatisticsExtractor::Create(
        workload.sources.get(), workload.query, options);
    if (!extractor.ok()) {
      std::fprintf(stderr, "extractor: %s\n",
                   extractor.status().ToString().c_str());
      return 1;
    }
    const auto stats = extractor->Extract();
    if (!stats.ok()) {
      std::fprintf(stderr, "extract: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }

    const std::vector<Mode> modes = stats->density.FindProminentModes(0.1);
    std::printf("Fig 7%s %-12s  modes=%zu  mean=%.2f\n", figure_tag[tag],
                workload.label.c_str(), modes.size(), stats->mean.value);
    PrintAsciiDensity(stats->density, stats->coverage);
    std::printf("    intervals (k=%zu):", stats->coverage.intervals.size());
    for (const CoverageInterval& interval : stats->coverage.intervals) {
      std::printf(" [%.1f, %.1f] C_i=%.3f;", interval.lo, interval.hi,
                  interval.coverage);
    }
    std::printf("\n    L (length fraction) = %.4f   C (coverage) = %.4f\n\n",
                stats->coverage.total_length_fraction,
                stats->coverage.total_coverage);

    if (export_dir != nullptr) {
      const std::string base = std::string(export_dir) + "/fig7_" +
                               std::string(1, figure_tag[tag][1]) + "_";
      const Status density_status =
          WriteGridDensity(base + "density.csv", stats->density);
      std::vector<CsvRow> interval_rows = {{"lo", "hi", "coverage"}};
      for (const CoverageInterval& interval : stats->coverage.intervals) {
        interval_rows.push_back({std::to_string(interval.lo),
                                 std::to_string(interval.hi),
                                 std::to_string(interval.coverage)});
      }
      const Status intervals_status =
          WriteCsvFile(base + "intervals.csv", interval_rows);
      if (!density_status.ok() || !intervals_status.ok()) {
        std::fprintf(stderr, "artifact export failed: %s / %s\n",
                     density_status.ToString().c_str(),
                     intervals_status.ToString().c_str());
      } else {
        std::printf("    artifacts: %sdensity.csv, %sintervals.csv\n\n",
                    base.c_str(), base.c_str());
      }
    }
    ++tag;
  }
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main(int argc, char** argv) {
  return vastats::bench::Run(argc > 1 ? argv[1] : nullptr);
}
