// Microbenchmarks for the low-level kernels: FFT/DCT, KDE (direct vs
// binned, bandwidth selectors), distances, and the mutual impact factor Psi
// that drives the analytic stability scores.

#include <benchmark/benchmark.h>

#include "vastats/vastats.h"

namespace vastats {
namespace {

std::vector<double> Samples(int n, uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<double> values(static_cast<size_t>(n));
  for (double& v : values) {
    v = rng.Bernoulli(0.5) ? rng.Normal(0.0, 1.0) : rng.Normal(8.0, 2.0);
  }
  return values;
}

void BM_Fft(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<std::complex<double>> data(n);
  Rng rng(1);
  for (auto& c : data) c = {rng.Uniform01(), rng.Uniform01()};
  for (auto _ : state) {
    std::vector<std::complex<double>> copy = data;
    benchmark::DoNotOptimize(Fft(copy, false));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Fft)->Range(256, 16384)->Complexity(benchmark::oNLogN);

void BM_Dct2(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> data(n, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dct2(data));
  }
}
BENCHMARK(BM_Dct2)->Range(256, 16384);

void BM_KdeDirect(benchmark::State& state) {
  const std::vector<double> samples = Samples(static_cast<int>(state.range(0)));
  KdeOptions options;
  options.rule = BandwidthRule::kSilverman;
  options.binned = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateKde(samples, options));
  }
}
BENCHMARK(BM_KdeDirect)->Range(100, 3200);

void BM_KdeBinned(benchmark::State& state) {
  const std::vector<double> samples = Samples(static_cast<int>(state.range(0)));
  KdeOptions options;
  options.rule = BandwidthRule::kSilverman;
  options.binned = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateKde(samples, options));
  }
}
BENCHMARK(BM_KdeBinned)->Range(100, 3200);

void BM_BotevBandwidth(benchmark::State& state) {
  const std::vector<double> samples = Samples(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BotevBandwidth(samples));
  }
}
BENCHMARK(BM_BotevBandwidth)->Range(100, 3200);

void BM_MutualImpactPsiBinned(benchmark::State& state) {
  const std::vector<double> samples = Samples(static_cast<int>(state.range(0)));
  const double h = SilvermanBandwidth(samples);
  DctPlan plan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MutualImpactPsiBinned(samples, h, {}, {}, &plan));
  }
}
BENCHMARK(BM_MutualImpactPsiBinned)->Range(100, 3200);

void BM_MutualImpactPsiSorted(benchmark::State& state) {
  const std::vector<double> samples = Samples(static_cast<int>(state.range(0)));
  const double h = SilvermanBandwidth(samples);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MutualImpactPsiSorted(samples, h));
  }
}
BENCHMARK(BM_MutualImpactPsiSorted)->Range(100, 3200);

void BM_MutualImpactPsiExact(benchmark::State& state) {
  const std::vector<double> samples = Samples(static_cast<int>(state.range(0)));
  const double h = SilvermanBandwidth(samples);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MutualImpactPsiExact(samples, h));
  }
}
BENCHMARK(BM_MutualImpactPsiExact)->Range(100, 3200);

void BM_DensityDistanceL2(benchmark::State& state) {
  KdeOptions options;
  options.rule = BandwidthRule::kSilverman;
  const Kde p = EstimateKde(Samples(400, 1), options).value();
  const Kde q = EstimateKde(Samples(400, 2), options).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DensityDistance(p.density, q.density, DistanceKind::kL2));
  }
}
BENCHMARK(BM_DensityDistanceL2);

void BM_AnalyticStability(benchmark::State& state) {
  const std::vector<double> samples = Samples(400);
  const double h = SilvermanBandwidth(samples);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StabilityL2(samples, h, 0.05));
  }
}
BENCHMARK(BM_AnalyticStability);

}  // namespace
}  // namespace vastats
