// Ablation: sampling extensions of §7.
//
//  (1) Parallel uniS scaling — throughput vs thread count on the Table-2
//      workload ("uniS can be fully parallelized ... examine how the
//      algorithm scales").
//  (2) Provenance weighting — answer quality with uniform vs
//      quality-weighted source selection when a fraction of sources is
//      corrupted (the "less is more" / source-selection discussion of §6).

#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "util/stopwatch.h"
#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

int Run() {
  // (1) Parallel scaling.
  Workload workload = MakeD2Workload();
  const auto sampler =
      UniSSampler::Create(workload.sources.get(), workload.query);
  if (!sampler.ok()) return 1;
  std::printf("(1) Parallel uniS scaling (Sum(D2), 4000 answers)\n");
  std::printf("    hardware threads available: %u (speedups flatten beyond "
              "this)\n",
              std::thread::hardware_concurrency());
  std::printf("%-9s %12s %10s\n", "threads", "answers/s", "speedup");
  double baseline = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    ParallelSampleOptions options;
    options.num_threads = threads;
    options.seed = 99;
    Stopwatch watch;
    const auto samples = ParallelUniSSample(*sampler, 4000, options);
    const double elapsed = watch.ElapsedSeconds();
    if (!samples.ok()) return 1;
    const double rate = 4000.0 / elapsed;
    if (threads == 1) baseline = rate;
    std::printf("%-9d %12.0f %9.2fx\n", threads, rate, rate / baseline);
  }

  // (2) Provenance weighting under corruption.
  std::printf("\n(2) Quality-weighted vs uniform uniS with corrupted "
              "sources\n");
  const auto mixture = MakeD2(5);
  SyntheticSourceSetOptions source_options;
  source_options.num_sources = 60;
  source_options.num_components = 200;
  source_options.min_copies = 3;
  source_options.max_copies = 5;
  source_options.conflict_sigma = 0.3;
  source_options.seed = 6;
  auto sources = BuildSyntheticSourceSet(*mixture, source_options);
  if (!sources.ok()) return 1;
  // Corrupt 15% of the sources with a systematic +25 bias.
  Rng corrupt_rng(7);
  int corrupted = 0;
  for (int s = 0; s < sources->NumSources(); ++s) {
    if (!corrupt_rng.Bernoulli(0.15)) continue;
    DataSource& source = sources->mutable_source(s);
    for (const ComponentId component : source.SortedComponents()) {
      source.Bind(component, source.Value(component).value() + 25.0);
    }
    ++corrupted;
  }
  AggregateQuery query = MakeRangeQuery("avg", AggregateKind::kAverage, 0, 200);
  // Consensus reference: medians per component over the clean majority.
  const auto quality = EstimateSourceQuality(*sources, query.components);
  if (!quality.ok()) return 1;
  const auto uniform = WeightedUniSSampler::Create(
      &sources.value(), query,
      std::vector<double>(static_cast<size_t>(sources->NumSources()), 1.0));
  const auto weighted =
      WeightedUniSSampler::Create(&sources.value(), query, *quality);
  if (!uniform.ok() || !weighted.ok()) return 1;
  Rng rng_u(8), rng_w(8);
  const auto uniform_samples = uniform->Sample(600, rng_u);
  const auto weighted_samples = weighted->Sample(600, rng_w);
  const SampleSummary su = Summarize(*uniform_samples).value();
  const SampleSummary sw = Summarize(*weighted_samples).value();
  std::printf("  corrupted sources: %d of %d (+25.0 bias each)\n", corrupted,
              sources->NumSources());
  std::printf("  %-22s mean %8.3f  stddev %6.3f\n", "uniform uniS:",
              su.mean, su.std_dev);
  std::printf("  %-22s mean %8.3f  stddev %6.3f\n", "quality-weighted:",
              sw.mean, sw.std_dev);
  std::printf("  (clean consensus average is ~the D2 mixture mean; the "
              "weighted sampler should sit lower and tighter)\n");
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main() { return vastats::bench::Run(); }
