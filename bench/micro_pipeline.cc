// Microbenchmarks for the pipeline stages: uniS sampling, bootstrap
// resampling, BCa interval computation, greedy CIO (both expansions), and
// the end-to-end extractor.
//
// With --json, instead of running the google-benchmark suite, one
// telemetry-enabled extraction is profiled and its span-derived phase
// breakdown (plus the metrics counters) is emitted as a JSON document.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <functional>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

const Workload& D2() {
  static const Workload* workload = new Workload(MakeD2Workload());
  return *workload;
}

const UniSSampler& D2Sampler() {
  static const UniSSampler* sampler = new UniSSampler(
      UniSSampler::Create(D2().sources.get(), D2().query).value());
  return *sampler;
}

void BM_UniSSampleOne(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(D2Sampler().SampleOne(rng));
  }
}
BENCHMARK(BM_UniSSampleOne);

void BM_UniSSampleBatch(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(D2Sampler().Sample(n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UniSSampleBatch)->Arg(100)->Arg(400);

void BM_BootstrapResample(benchmark::State& state) {
  Rng rng(3);
  const std::vector<double> samples =
      D2Sampler().Sample(static_cast<int>(state.range(0)), rng).value();
  BootstrapOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BootstrapSets(samples, options, rng));
  }
}
BENCHMARK(BM_BootstrapResample)->Arg(200)->Arg(400)->Arg(800);

void BM_BcaInterval(benchmark::State& state) {
  Rng rng(4);
  const std::vector<double> samples = D2Sampler().Sample(400, rng).value();
  const auto replicates =
      BootstrapReplicates(samples, MomentStatisticFn(MomentStatistic::kMean),
                          BootstrapOptions{}, rng)
          .value();
  const double mean = ComputeMoments(samples).mean();
  for (auto _ : state) {
    const auto jackknife =
        JackknifeMoment(samples, MomentStatistic::kMean).value();
    benchmark::DoNotOptimize(BcaCi(replicates, mean, 0.9, jackknife));
  }
}
BENCHMARK(BM_BcaInterval);

void BM_GreedyCio(benchmark::State& state) {
  Rng rng(5);
  const std::vector<double> samples = D2Sampler().Sample(400, rng).value();
  const Kde kde = EstimateKde(samples, KdeOptions{}).value();
  CioOptions options;
  options.expansion = state.range(0) == 0 ? CioExpansion::kWaterLevel
                                          : CioExpansion::kSymmetric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyCio(kde.density, options));
  }
}
BENCHMARK(BM_GreedyCio)->Arg(0)->Arg(1);

void BM_SlicingCio(benchmark::State& state) {
  Rng rng(6);
  const std::vector<double> samples = D2Sampler().Sample(400, rng).value();
  const Kde kde = EstimateKde(samples, KdeOptions{}).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SlicingCio(kde.density, 0.9));
  }
}
BENCHMARK(BM_SlicingCio);

void BM_EndToEndExtract(benchmark::State& state) {
  ExtractorOptions options;
  options.initial_sample_size = static_cast<int>(state.range(0));
  options.weight_probes = 10;
  const auto extractor = AnswerStatisticsExtractor::Create(
      D2().sources.get(), D2().query, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor->Extract());
  }
}
BENCHMARK(BM_EndToEndExtract)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_ParallelSamplePool(benchmark::State& state) {
  ThreadPool pool;
  ParallelSampleOptions options;
  options.pool = &pool;
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParallelUniSSample(D2Sampler(), n, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSamplePool)->Arg(400)->Arg(4000);

void BM_ParallelSampleThreadPerCall(benchmark::State& state) {
  ParallelSampleOptions options;  // num_threads = 0 -> hardware concurrency
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParallelUniSSample(D2Sampler(), n, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSampleThreadPerCall)->Arg(400)->Arg(4000);

// Times one `fn()` run with the span-free stopwatch.
double MeasureSeconds(const std::function<void()>& fn) {
  Stopwatch stopwatch;
  fn();
  return stopwatch.ElapsedSeconds();
}

// Appends the pool-vs-thread-per-call dispatch comparison: the same 4000
// chunk-indexed draws (bit-identical outputs by construction, verified
// here) through the serial, thread-per-call, and persistent-pool modes,
// plus serial vs pooled bootstrap replicate evaluation.
bool AppendPoolComparison(JsonWriter& out) {
  constexpr int kDraws = 4000;
  ThreadPool* pool = DefaultThreadPool();

  ParallelSampleOptions serial_options;
  serial_options.num_threads = 1;
  Result<std::vector<double>> serial = Status::Internal("unset");
  const double serial_seconds = MeasureSeconds([&] {
    serial = ParallelUniSSample(D2Sampler(), kDraws, serial_options);
  });
  ParallelSampleOptions per_call_options;  // 0 -> hardware concurrency
  Result<std::vector<double>> per_call = Status::Internal("unset");
  const double per_call_seconds = MeasureSeconds([&] {
    per_call = ParallelUniSSample(D2Sampler(), kDraws, per_call_options);
  });
  ParallelSampleOptions pool_options;
  pool_options.pool = pool;
  Result<std::vector<double>> pooled = Status::Internal("unset");
  const double pool_seconds = MeasureSeconds(
      [&] { pooled = ParallelUniSSample(D2Sampler(), kDraws, pool_options); });
  if (!serial.ok() || !per_call.ok() || !pooled.ok()) return false;
  // The three dispatch modes must agree bit for bit.
  if (serial.value() != per_call.value() || serial.value() != pooled.value()) {
    std::fprintf(stderr, "dispatch modes disagree on the sampled bits\n");
    return false;
  }

  BootstrapOptions bootstrap;
  bootstrap.num_sets = 200;
  Result<std::vector<double>> boot_serial = Status::Internal("unset");
  const double boot_serial_seconds = MeasureSeconds([&] {
    Rng rng(23);
    boot_serial = BootstrapReplicates(
        serial.value(), MomentStatisticFn(MomentStatistic::kVariance),
        bootstrap, rng);
  });
  Result<std::vector<double>> boot_pooled = Status::Internal("unset");
  const double boot_pool_seconds = MeasureSeconds([&] {
    Rng rng(23);
    boot_pooled = BootstrapReplicates(
        serial.value(), MomentStatisticFn(MomentStatistic::kVariance),
        bootstrap, rng, pool);
  });
  if (!boot_serial.ok() || !boot_pooled.ok() ||
      boot_serial.value() != boot_pooled.value()) {
    return false;
  }

  out.Key("pool_comparison");
  out.BeginObject();
  out.KeyValue("draws", static_cast<int64_t>(kDraws));
  out.KeyValue("pool_threads", static_cast<int64_t>(pool->num_threads()));
  out.Key("sampling_seconds");
  out.BeginObject();
  out.KeyValue("serial", serial_seconds);
  out.KeyValue("thread_per_call", per_call_seconds);
  out.KeyValue("pool", pool_seconds);
  out.EndObject();
  out.KeyValue("bootstrap_sets", static_cast<int64_t>(bootstrap.num_sets));
  out.Key("bootstrap_seconds");
  out.BeginObject();
  out.KeyValue("serial", boot_serial_seconds);
  out.KeyValue("pool", boot_pool_seconds);
  out.EndObject();
  out.EndObject();
  return true;
}

// Appends the KDE fast-path comparison: the same 400-draw sample fitted
// repeatedly through the binned DCT default and the direct-summation
// oracle (per-fit wall time for each), plus a per-set vs shared bandwidth
// bagged run, with the Botev evaluation and plan-cache counters that
// explain the timings.
bool AppendKdeSection(JsonWriter& out) {
  constexpr int kDraws = 400;
  constexpr int kFits = 50;
  Rng rng(17);
  const auto sample = D2Sampler().Sample(kDraws, rng);
  if (!sample.ok()) return false;

  MetricsRegistry metrics;
  ObsOptions obs;
  obs.metrics = &metrics;
  DctPlan plan;
  KdeOptions binned_options;  // production default: binned DCT, Botev
  KdeOptions direct_options = binned_options;
  direct_options.binned = false;

  // Warm the transform tables so the binned loop times steady-state fits.
  if (!EstimateKde(sample.value(), binned_options, obs, &plan).ok()) {
    return false;
  }
  bool ok = true;
  const double binned_seconds = MeasureSeconds([&] {
    for (int i = 0; i < kFits && ok; ++i) {
      ok = EstimateKde(sample.value(), binned_options, obs, &plan).ok();
    }
  });
  const uint64_t botev_iterations =
      metrics.Snapshot().FindCounter("kde_botev_iterations_total")->value;
  const double direct_seconds = MeasureSeconds([&] {
    for (int i = 0; i < kFits && ok; ++i) {
      ok = EstimateKde(sample.value(), direct_options, obs, &plan).ok();
    }
  });
  if (!ok) return false;

  // Selector amortization: per-set vs shared bandwidth over 50 bootstrap
  // sets of the same sample.
  BootstrapOptions bootstrap;
  bootstrap.num_sets = kFits;
  Rng boot_rng(18);
  const auto sets = BootstrapSets(sample.value(), bootstrap, boot_rng);
  if (!sets.ok()) return false;
  BaggedKdeOptions per_set;
  Result<BaggedKde> bagged = Status::Internal("unset");
  const double per_set_seconds = MeasureSeconds([&] {
    bagged = EstimateBaggedKde(sets.value(), sample.value(), per_set);
  });
  if (!bagged.ok()) return false;
  BaggedKdeOptions shared;
  shared.bandwidth_mode = BandwidthMode::kShared;
  const double shared_seconds = MeasureSeconds([&] {
    bagged = EstimateBaggedKde(sets.value(), sample.value(), shared);
  });
  if (!bagged.ok()) return false;

  out.Key("kde");
  out.BeginObject();
  out.KeyValue("sample_size", static_cast<int64_t>(kDraws));
  out.KeyValue("grid_size",
               static_cast<int64_t>(binned_options.grid_size));
  out.KeyValue("fits_per_path", static_cast<int64_t>(kFits));
  out.Key("seconds_per_fit");
  out.BeginObject();
  out.KeyValue("binned", binned_seconds / kFits);
  out.KeyValue("direct", direct_seconds / kFits);
  out.EndObject();
  out.KeyValue("direct_to_binned_ratio", direct_seconds / binned_seconds);
  out.KeyValue("botev_iterations_per_fit",
               static_cast<double>(botev_iterations) /
                   static_cast<double>(kFits + 1));
  out.KeyValue("plan_cache_hits", static_cast<int64_t>(plan.cache_hits()));
  out.KeyValue("plan_cache_misses",
               static_cast<int64_t>(plan.cache_misses()));
  out.KeyValue("bagged_sets", static_cast<int64_t>(bootstrap.num_sets));
  out.Key("bagged_seconds");
  out.BeginObject();
  out.KeyValue("per_set_bandwidth", per_set_seconds);
  out.KeyValue("shared_bandwidth", shared_seconds);
  out.EndObject();
  out.EndObject();
  return true;
}

// One fully instrumented extraction; the JSON breakdown comes from the
// recorded spans (the same measurement PhaseTimings reports).
int RunJsonBreakdown() {
  Trace trace;
  MetricsRegistry metrics;
  ExtractorOptions options;
  options.initial_sample_size = 400;
  options.weight_probes = 10;
  options.obs.trace = &trace;
  options.obs.metrics = &metrics;
  const auto extractor = AnswerStatisticsExtractor::Create(
      D2().sources.get(), D2().query, options);
  if (!extractor.ok()) {
    std::fprintf(stderr, "%s\n", extractor.status().ToString().c_str());
    return 1;
  }
  const auto stats = extractor->Extract();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }

  JsonWriter out;
  out.BeginObject();
  out.KeyValue("benchmark", "micro_pipeline");
  out.KeyValue("sample_size",
               static_cast<int64_t>(options.initial_sample_size));
  out.Key("phases_seconds");
  out.BeginObject();
  for (const char* phase : {"sampling", "bootstrap", "point_statistics",
                            "kde", "cio", "stability"}) {
    out.KeyValue(phase, trace.TotalSecondsOf(phase));
  }
  out.EndObject();
  out.KeyValue("total_seconds", trace.TotalSecondsOf("extract"));
  if (!AppendPoolComparison(out)) {
    std::fprintf(stderr, "pool comparison failed\n");
    return 1;
  }
  if (!AppendKdeSection(out)) {
    std::fprintf(stderr, "kde comparison failed\n");
    return 1;
  }
  out.Key("counters");
  out.BeginObject();
  for (const CounterSample& counter : metrics.Snapshot().counters) {
    out.KeyValue(counter.name, static_cast<int64_t>(counter.value));
  }
  out.EndObject();
  out.EndObject();
  std::printf("%s\n", std::move(out).Finish().c_str());
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return vastats::bench::RunJsonBreakdown();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
