// Microbenchmarks for the pipeline stages: uniS sampling, bootstrap
// resampling, BCa interval computation, greedy CIO (both expansions), and
// the end-to-end extractor.

#include <benchmark/benchmark.h>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

const Workload& D2() {
  static const Workload* workload = new Workload(MakeD2Workload());
  return *workload;
}

const UniSSampler& D2Sampler() {
  static const UniSSampler* sampler = new UniSSampler(
      UniSSampler::Create(D2().sources.get(), D2().query).value());
  return *sampler;
}

void BM_UniSSampleOne(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(D2Sampler().SampleOne(rng));
  }
}
BENCHMARK(BM_UniSSampleOne);

void BM_UniSSampleBatch(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(D2Sampler().Sample(n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UniSSampleBatch)->Arg(100)->Arg(400);

void BM_BootstrapResample(benchmark::State& state) {
  Rng rng(3);
  const std::vector<double> samples =
      D2Sampler().Sample(static_cast<int>(state.range(0)), rng).value();
  BootstrapOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BootstrapSets(samples, options, rng));
  }
}
BENCHMARK(BM_BootstrapResample)->Arg(200)->Arg(400)->Arg(800);

void BM_BcaInterval(benchmark::State& state) {
  Rng rng(4);
  const std::vector<double> samples = D2Sampler().Sample(400, rng).value();
  const auto replicates =
      BootstrapReplicates(samples, MomentStatisticFn(MomentStatistic::kMean),
                          BootstrapOptions{}, rng)
          .value();
  const double mean = ComputeMoments(samples).mean();
  for (auto _ : state) {
    const auto jackknife =
        JackknifeMoment(samples, MomentStatistic::kMean).value();
    benchmark::DoNotOptimize(BcaCi(replicates, mean, 0.9, jackknife));
  }
}
BENCHMARK(BM_BcaInterval);

void BM_GreedyCio(benchmark::State& state) {
  Rng rng(5);
  const std::vector<double> samples = D2Sampler().Sample(400, rng).value();
  const Kde kde = EstimateKde(samples, KdeOptions{}).value();
  CioOptions options;
  options.expansion = state.range(0) == 0 ? CioExpansion::kWaterLevel
                                          : CioExpansion::kSymmetric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyCio(kde.density, options));
  }
}
BENCHMARK(BM_GreedyCio)->Arg(0)->Arg(1);

void BM_SlicingCio(benchmark::State& state) {
  Rng rng(6);
  const std::vector<double> samples = D2Sampler().Sample(400, rng).value();
  const Kde kde = EstimateKde(samples, KdeOptions{}).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SlicingCio(kde.density, 0.9));
  }
}
BENCHMARK(BM_SlicingCio);

void BM_EndToEndExtract(benchmark::State& state) {
  ExtractorOptions options;
  options.initial_sample_size = static_cast<int>(state.range(0));
  options.weight_probes = 10;
  const auto extractor = AnswerStatisticsExtractor::Create(
      D2().sources.get(), D2().query, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor->Extract());
  }
}
BENCHMARK(BM_EndToEndExtract)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace vastats::bench
