// Microbenchmarks for the pipeline stages: uniS sampling, bootstrap
// resampling, BCa interval computation, greedy CIO (both expansions), and
// the end-to-end extractor.
//
// With --json, instead of running the google-benchmark suite, one
// telemetry-enabled extraction is profiled and its span-derived phase
// breakdown (plus the metrics counters) is emitted as a JSON document.
//
// With --chaos, a fault-injected extraction is profiled instead: the seam
// overhead against the untouched default path, bit-identity of the chaos
// run across dispatch widths, and the degradation/access telemetry of the
// reference run are emitted as JSON (committed as BENCH_chaos.json).
//
// With --trace-out FILE, one pool-backed extraction is journaled into a
// flight recorder and exported as Chrome trace-event JSON for
// chrome://tracing / ui.perfetto.dev.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

// Stamped into every JSON document this binary emits and into the
// committed BENCH_*.json baselines; tools/benchdiff refuses to compare
// dumps whose versions disagree. Bump when a key changes meaning or moves.
constexpr int64_t kBenchSchemaVersion = 1;

const Workload& D2() {
  static const Workload* workload = new Workload(MakeD2Workload());
  return *workload;
}

const UniSSampler& D2Sampler() {
  static const UniSSampler* sampler = new UniSSampler(
      UniSSampler::Create(D2().sources.get(), D2().query).value());
  return *sampler;
}

void BM_UniSSampleOne(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(D2Sampler().SampleOne(rng));
  }
}
BENCHMARK(BM_UniSSampleOne);

void BM_UniSSampleBatch(benchmark::State& state) {
  Rng rng(2);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(D2Sampler().Sample(n, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UniSSampleBatch)->Arg(100)->Arg(400);

void BM_BootstrapResample(benchmark::State& state) {
  Rng rng(3);
  const std::vector<double> samples =
      D2Sampler().Sample(static_cast<int>(state.range(0)), rng).value();
  BootstrapOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BootstrapSets(samples, options, rng));
  }
}
BENCHMARK(BM_BootstrapResample)->Arg(200)->Arg(400)->Arg(800);

void BM_BcaInterval(benchmark::State& state) {
  Rng rng(4);
  const std::vector<double> samples = D2Sampler().Sample(400, rng).value();
  const auto replicates =
      BootstrapReplicates(samples, MomentStatisticFn(MomentStatistic::kMean),
                          BootstrapOptions{}, rng)
          .value();
  const double mean = ComputeMoments(samples).mean();
  for (auto _ : state) {
    const auto jackknife =
        JackknifeMoment(samples, MomentStatistic::kMean).value();
    benchmark::DoNotOptimize(BcaCi(replicates, mean, 0.9, jackknife));
  }
}
BENCHMARK(BM_BcaInterval);

void BM_GreedyCio(benchmark::State& state) {
  Rng rng(5);
  const std::vector<double> samples = D2Sampler().Sample(400, rng).value();
  const Kde kde = EstimateKde(samples, KdeOptions{}).value();
  CioOptions options;
  options.expansion = state.range(0) == 0 ? CioExpansion::kWaterLevel
                                          : CioExpansion::kSymmetric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyCio(kde.density, options));
  }
}
BENCHMARK(BM_GreedyCio)->Arg(0)->Arg(1);

void BM_SlicingCio(benchmark::State& state) {
  Rng rng(6);
  const std::vector<double> samples = D2Sampler().Sample(400, rng).value();
  const Kde kde = EstimateKde(samples, KdeOptions{}).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SlicingCio(kde.density, 0.9));
  }
}
BENCHMARK(BM_SlicingCio);

void BM_EndToEndExtract(benchmark::State& state) {
  ExtractorOptions options;
  options.initial_sample_size = static_cast<int>(state.range(0));
  options.weight_probes = 10;
  const auto extractor = AnswerStatisticsExtractor::Create(
      D2().sources.get(), D2().query, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor->Extract());
  }
}
BENCHMARK(BM_EndToEndExtract)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_ParallelSamplePool(benchmark::State& state) {
  ThreadPool pool;
  ParallelSampleOptions options;
  options.pool = &pool;
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParallelUniSSample(D2Sampler(), n, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSamplePool)->Arg(400)->Arg(4000);

void BM_ParallelSampleThreadPerCall(benchmark::State& state) {
  ParallelSampleOptions options;  // num_threads = 0 -> hardware concurrency
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParallelUniSSample(D2Sampler(), n, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelSampleThreadPerCall)->Arg(400)->Arg(4000);

// Times one `fn()` run with the span-free stopwatch.
double MeasureSeconds(const std::function<void()>& fn) {
  Stopwatch stopwatch;
  fn();
  return stopwatch.ElapsedSeconds();
}

// Appends the pool-vs-thread-per-call dispatch comparison: the same 4000
// chunk-indexed draws (bit-identical outputs by construction, verified
// here) through the serial, thread-per-call, and persistent-pool modes,
// plus serial vs pooled bootstrap replicate evaluation.
bool AppendPoolComparison(JsonWriter& out) {
  constexpr int kDraws = 4000;
  ThreadPool* pool = DefaultThreadPool();

  ParallelSampleOptions serial_options;
  serial_options.num_threads = 1;
  Result<std::vector<double>> serial = Status::Internal("unset");
  const double serial_seconds = MeasureSeconds([&] {
    serial = ParallelUniSSample(D2Sampler(), kDraws, serial_options);
  });
  ParallelSampleOptions per_call_options;  // 0 -> hardware concurrency
  Result<std::vector<double>> per_call = Status::Internal("unset");
  const double per_call_seconds = MeasureSeconds([&] {
    per_call = ParallelUniSSample(D2Sampler(), kDraws, per_call_options);
  });
  ParallelSampleOptions pool_options;
  pool_options.pool = pool;
  Result<std::vector<double>> pooled = Status::Internal("unset");
  const double pool_seconds = MeasureSeconds(
      [&] { pooled = ParallelUniSSample(D2Sampler(), kDraws, pool_options); });
  if (!serial.ok() || !per_call.ok() || !pooled.ok()) return false;
  // The three dispatch modes must agree bit for bit.
  if (serial.value() != per_call.value() || serial.value() != pooled.value()) {
    std::fprintf(stderr, "dispatch modes disagree on the sampled bits\n");
    return false;
  }

  BootstrapOptions bootstrap;
  bootstrap.num_sets = 200;
  Result<std::vector<double>> boot_serial = Status::Internal("unset");
  const double boot_serial_seconds = MeasureSeconds([&] {
    Rng rng(23);
    boot_serial = BootstrapReplicates(
        serial.value(), MomentStatisticFn(MomentStatistic::kVariance),
        bootstrap, rng);
  });
  Result<std::vector<double>> boot_pooled = Status::Internal("unset");
  const double boot_pool_seconds = MeasureSeconds([&] {
    Rng rng(23);
    boot_pooled = BootstrapReplicates(
        serial.value(), MomentStatisticFn(MomentStatistic::kVariance),
        bootstrap, rng, pool);
  });
  if (!boot_serial.ok() || !boot_pooled.ok() ||
      boot_serial.value() != boot_pooled.value()) {
    return false;
  }

  out.Key("pool_comparison");
  out.BeginObject();
  out.KeyValue("draws", static_cast<int64_t>(kDraws));
  out.KeyValue("pool_threads", static_cast<int64_t>(pool->num_threads()));
  out.Key("sampling_seconds");
  out.BeginObject();
  out.KeyValue("serial", serial_seconds);
  out.KeyValue("thread_per_call", per_call_seconds);
  out.KeyValue("pool", pool_seconds);
  out.EndObject();
  out.KeyValue("bootstrap_sets", static_cast<int64_t>(bootstrap.num_sets));
  out.Key("bootstrap_seconds");
  out.BeginObject();
  out.KeyValue("serial", boot_serial_seconds);
  out.KeyValue("pool", boot_pool_seconds);
  out.EndObject();
  out.EndObject();
  return true;
}

// Appends the KDE fast-path comparison: the same 400-draw sample fitted
// repeatedly through the binned DCT default and the direct-summation
// oracle (per-fit wall time for each), plus a per-set vs shared bandwidth
// bagged run, with the Botev evaluation and plan-cache counters that
// explain the timings.
bool AppendKdeSection(JsonWriter& out) {
  constexpr int kDraws = 400;
  constexpr int kFits = 50;
  Rng rng(17);
  const auto sample = D2Sampler().Sample(kDraws, rng);
  if (!sample.ok()) return false;

  MetricsRegistry metrics;
  ObsOptions obs;
  obs.metrics = &metrics;
  DctPlan plan;
  KdeOptions binned_options;  // production default: binned DCT, Botev
  KdeOptions direct_options = binned_options;
  direct_options.binned = false;

  // Warm the transform tables so the binned loop times steady-state fits.
  if (!EstimateKde(sample.value(), binned_options, obs, &plan).ok()) {
    return false;
  }
  bool ok = true;
  const double binned_seconds = MeasureSeconds([&] {
    for (int i = 0; i < kFits && ok; ++i) {
      ok = EstimateKde(sample.value(), binned_options, obs, &plan).ok();
    }
  });
  const uint64_t botev_iterations =
      metrics.Snapshot().FindCounter("kde_botev_iterations_total")->value;
  const double direct_seconds = MeasureSeconds([&] {
    for (int i = 0; i < kFits && ok; ++i) {
      ok = EstimateKde(sample.value(), direct_options, obs, &plan).ok();
    }
  });
  if (!ok) return false;

  // Selector amortization: per-set vs shared bandwidth over 50 bootstrap
  // sets of the same sample.
  BootstrapOptions bootstrap;
  bootstrap.num_sets = kFits;
  Rng boot_rng(18);
  const auto sets = BootstrapSets(sample.value(), bootstrap, boot_rng);
  if (!sets.ok()) return false;
  BaggedKdeOptions per_set;
  Result<BaggedKde> bagged = Status::Internal("unset");
  const double per_set_seconds = MeasureSeconds([&] {
    bagged = EstimateBaggedKde(sets.value(), sample.value(), per_set);
  });
  if (!bagged.ok()) return false;
  BaggedKdeOptions shared;
  shared.bandwidth_mode = BandwidthMode::kShared;
  const double shared_seconds = MeasureSeconds([&] {
    bagged = EstimateBaggedKde(sets.value(), sample.value(), shared);
  });
  if (!bagged.ok()) return false;

  out.Key("kde");
  out.BeginObject();
  out.KeyValue("sample_size", static_cast<int64_t>(kDraws));
  out.KeyValue("grid_size",
               static_cast<int64_t>(binned_options.grid_size));
  out.KeyValue("fits_per_path", static_cast<int64_t>(kFits));
  out.Key("seconds_per_fit");
  out.BeginObject();
  out.KeyValue("binned", binned_seconds / kFits);
  out.KeyValue("direct", direct_seconds / kFits);
  out.EndObject();
  out.KeyValue("direct_to_binned_ratio", direct_seconds / binned_seconds);
  out.KeyValue("botev_iterations_per_fit",
               static_cast<double>(botev_iterations) /
                   static_cast<double>(kFits + 1));
  out.KeyValue("plan_cache_hits", static_cast<int64_t>(plan.cache_hits()));
  out.KeyValue("plan_cache_misses",
               static_cast<int64_t>(plan.cache_misses()));
  out.KeyValue("bagged_sets", static_cast<int64_t>(bootstrap.num_sets));
  out.Key("bagged_seconds");
  out.BeginObject();
  out.KeyValue("per_set_bandwidth", per_set_seconds);
  out.KeyValue("shared_bandwidth", shared_seconds);
  out.EndObject();
  out.EndObject();
  return true;
}

// Appends the stability Psi scaling sweep: the binned Gauss-transform
// default against the sorted exact oracle at |S| in {400, 1600, 6400}
// (per-eval wall time, the relative Psi error, and the growth of each path
// across the 16x sample sweep). The binned path works on a fixed grid, so
// its growth stays near flat while the exact path scales quadratically —
// the numbers behind demoting the pairwise sum to an accuracy oracle.
bool AppendStabilitySection(JsonWriter& out) {
  constexpr int kSizes[] = {400, 1600, 6400};
  constexpr int kBinnedReps = 32;
  // The exact sum is O(n^2); scale reps down so the sweep stays ~cheap.
  constexpr int kExactReps[] = {16, 4, 1};
  Rng rng(29);
  DctPlan plan;
  const StabilityOptions options;  // binned, 4096 grid

  double binned_per_eval[3] = {0.0, 0.0, 0.0};
  double exact_per_eval[3] = {0.0, 0.0, 0.0};
  double rel_err[3] = {0.0, 0.0, 0.0};
  bool binned_path[3] = {false, false, false};
  for (int i = 0; i < 3; ++i) {
    const auto sample = D2Sampler().Sample(kSizes[i], rng);
    if (!sample.ok()) return false;
    const double bandwidth = SilvermanBandwidth(sample.value());

    Result<PsiEvaluation> binned = Status::Internal("unset");
    // Warm the transform tables; the loop then times steady-state evals.
    binned = EvaluateMutualImpactPsi(sample.value(), bandwidth, options, {},
                                     &plan);
    if (!binned.ok()) return false;
    binned_path[i] = binned->mode == StabilityPsiMode::kBinned;
    const double binned_seconds = MeasureSeconds([&] {
      for (int rep = 0; rep < kBinnedReps && binned.ok(); ++rep) {
        binned = EvaluateMutualImpactPsi(sample.value(), bandwidth, options,
                                         {}, &plan);
      }
    });
    if (!binned.ok()) return false;
    binned_per_eval[i] = binned_seconds / kBinnedReps;

    double exact_psi = 0.0;
    const double exact_seconds = MeasureSeconds([&] {
      for (int rep = 0; rep < kExactReps[i]; ++rep) {
        exact_psi = MutualImpactPsiSorted(sample.value(), bandwidth);
      }
    });
    exact_per_eval[i] = exact_seconds / kExactReps[i];
    if (!(exact_psi > 0.0)) return false;
    rel_err[i] = std::fabs(binned->psi - exact_psi) / exact_psi;
  }

  out.Key("stability");
  out.BeginObject();
  out.KeyValue("grid_size", static_cast<int64_t>(options.grid_size));
  out.Key("sample_sizes");
  out.BeginArray();
  for (const int size : kSizes) out.Int(size);
  out.EndArray();
  out.Key("binned_seconds_per_eval");
  out.BeginObject();
  for (int i = 0; i < 3; ++i) {
    out.KeyValue(std::to_string(kSizes[i]), binned_per_eval[i]);
  }
  out.EndObject();
  out.Key("exact_seconds_per_eval");
  out.BeginObject();
  for (int i = 0; i < 3; ++i) {
    out.KeyValue(std::to_string(kSizes[i]), exact_per_eval[i]);
  }
  out.EndObject();
  // Growth of each path across the full 16x sample sweep; plain ratios
  // (warn-only in benchdiff) asserted by the CI smoke instead.
  out.KeyValue("binned_growth_400_to_6400",
               binned_per_eval[2] / binned_per_eval[0]);
  out.KeyValue("exact_growth_400_to_6400",
               exact_per_eval[2] / exact_per_eval[0]);
  out.KeyValue("exact_to_binned_ratio_6400",
               exact_per_eval[2] / binned_per_eval[2]);
  out.Key("psi_rel_err");
  out.BeginObject();
  for (int i = 0; i < 3; ++i) {
    out.KeyValue(std::to_string(kSizes[i]), rel_err[i]);
  }
  out.EndObject();
  out.KeyValue("all_sizes_took_binned_path",
               binned_path[0] && binned_path[1] && binned_path[2]);
  out.EndObject();
  return true;
}

// One fully instrumented extraction; the JSON breakdown comes from the
// recorded spans (the same measurement PhaseTimings reports).
int RunJsonBreakdown() {
  Trace trace;
  MetricsRegistry metrics;
  ExtractorOptions options;
  options.initial_sample_size = 400;
  options.weight_probes = 10;
  options.obs.trace = &trace;
  options.obs.metrics = &metrics;
  const auto extractor = AnswerStatisticsExtractor::Create(
      D2().sources.get(), D2().query, options);
  if (!extractor.ok()) {
    std::fprintf(stderr, "%s\n", extractor.status().ToString().c_str());
    return 1;
  }
  const auto stats = extractor->Extract();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }

  JsonWriter out;
  out.BeginObject();
  out.KeyValue("schema_version", kBenchSchemaVersion);
  out.KeyValue("benchmark", "micro_pipeline");
  out.KeyValue("sample_size",
               static_cast<int64_t>(options.initial_sample_size));
  out.Key("phases_seconds");
  out.BeginObject();
  for (const char* phase : {"sampling", "bootstrap", "point_statistics",
                            "kde", "cio", "stability"}) {
    out.KeyValue(phase, trace.TotalSecondsOf(phase));
  }
  out.EndObject();
  out.KeyValue("total_seconds", trace.TotalSecondsOf("extract"));
  if (!AppendPoolComparison(out)) {
    std::fprintf(stderr, "pool comparison failed\n");
    return 1;
  }
  if (!AppendKdeSection(out)) {
    std::fprintf(stderr, "kde comparison failed\n");
    return 1;
  }
  if (!AppendStabilitySection(out)) {
    std::fprintf(stderr, "stability comparison failed\n");
    return 1;
  }
  out.Key("counters");
  out.BeginObject();
  for (const CounterSample& counter : metrics.Snapshot().counters) {
    out.KeyValue(counter.name, static_cast<int64_t>(counter.value));
  }
  out.EndObject();
  out.EndObject();
  std::printf("%s\n", std::move(out).Finish().c_str());
  return 0;
}

// --- chaos mode -----------------------------------------------------------

// A redundant synthetic universe for the fault-injection run: with >= 3
// copies per component a 20% scheduled outage still leaves every component
// reachable, so Extract degrades instead of failing.
Result<SourceSet> BuildChaosSources() {
  SyntheticSourceSetOptions options;
  options.num_sources = 60;
  options.num_components = 120;
  options.min_copies = 3;
  options.max_copies = 5;
  options.seed = 51;
  const auto d2 = MakeD2(52);
  return BuildSyntheticSourceSet(*d2, options);
}

FaultModelOptions ChaosFaultOptions() {
  FaultModelOptions fault;
  fault.transient_failure_prob = 0.15;
  fault.failure_spread_sigma = 0.5;
  fault.corrupt_value_prob = 0.02;
  fault.latency_jitter_sigma = 0.3;
  fault.outage_fraction = 0.2;
  fault.outage_epoch = 64;
  fault.seed = 31337;
  return fault;
}

bool SameChaosResult(const AnswerStatistics& a, const AnswerStatistics& b) {
  if (a.samples != b.samples || a.mean.value != b.mean.value) return false;
  const DegradationReport& x = a.degradation;
  const DegradationReport& y = b.degradation;
  return x.draws_requested == y.draws_requested &&
         x.draws_kept == y.draws_kept && x.draws_dropped == y.draws_dropped &&
         x.min_coverage == y.min_coverage &&
         x.mean_coverage == y.mean_coverage &&
         x.access.visits == y.access.visits &&
         x.access.attempts == y.access.attempts &&
         x.access.retries == y.access.retries &&
         x.access.transient_failures == y.access.transient_failures &&
         x.access.failed_visits == y.access.failed_visits &&
         x.access.breaker_open_skips == y.access.breaker_open_skips &&
         x.access.corrupt_values_rejected == y.access.corrupt_values_rejected &&
         x.access.virtual_ms == y.access.virtual_ms &&
         x.access.breaker_severity == y.access.breaker_severity;
}

// One fault-injected extraction profiled three ways: overhead of the seam
// against the untouched default path, bit-identity of the chaos run across
// dispatch widths, and the DegradationReport/AccessStats telemetry of the
// reference run.
int RunChaosJson() {
  constexpr int kDraws = 400;
  const auto set = BuildChaosSources();
  if (!set.ok()) {
    std::fprintf(stderr, "%s\n", set.status().ToString().c_str());
    return 1;
  }
  const AggregateQuery query =
      MakeRangeQuery("chaos", AggregateKind::kAverage, 0, 120);
  const auto model = FaultModel::Create(60, ChaosFaultOptions());
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  MetricsRegistry metrics;
  const auto extract = [&](const FaultModel* fault_model, bool use_seam,
                           int sampling_threads, ThreadPool* pool,
                           MetricsRegistry* sink) -> Result<AnswerStatistics> {
    ExtractorOptions options;
    options.initial_sample_size = kDraws;
    options.weight_probes = 10;
    options.sampling_threads = sampling_threads;
    options.pool = pool;
    options.obs.metrics = sink;
    if (use_seam) {
      FaultToleranceOptions fault;
      fault.model = fault_model;
      fault.min_draw_coverage = 0.3;
      options.fault_tolerance = fault;
    }
    VASTATS_ASSIGN_OR_RETURN(
        const AnswerStatisticsExtractor extractor,
        AnswerStatisticsExtractor::Create(&*set, query, options));
    return extractor.Extract();
  };

  // Overhead: the default path (no fault_tolerance at all), the seam with a
  // null model (plumbing only), and the full chaos model.
  Result<AnswerStatistics> baseline = Status::Internal("unset");
  const double baseline_seconds = MeasureSeconds(
      [&] { baseline = extract(nullptr, false, 1, nullptr, nullptr); });
  Result<AnswerStatistics> null_seam = Status::Internal("unset");
  const double null_seam_seconds = MeasureSeconds(
      [&] { null_seam = extract(nullptr, true, 1, nullptr, nullptr); });
  Result<AnswerStatistics> chaos = Status::Internal("unset");
  const double chaos_seconds = MeasureSeconds(
      [&] { chaos = extract(&*model, true, 1, nullptr, &metrics); });
  if (!baseline.ok() || !null_seam.ok() || !chaos.ok()) {
    std::fprintf(stderr, "chaos extraction failed\n");
    return 1;
  }
  if (baseline->degradation.degraded || !chaos->degradation.degraded) {
    std::fprintf(stderr, "unexpected degradation flags\n");
    return 1;
  }
  // The null-model seam must never degrade: every visit succeeds instantly.
  if (null_seam->degradation.degraded ||
      null_seam->degradation.draws_dropped != 0 ||
      null_seam->degradation.min_coverage != 1.0) {
    std::fprintf(stderr, "null-model seam reported degradation\n");
    return 1;
  }

  // Determinism: the same chaos run through wider dispatch modes must
  // reproduce the reference bit for bit (samples, report, and counters).
  double threads_seconds = 0.0;
  for (const int threads : {4, 16}) {
    Result<AnswerStatistics> got = Status::Internal("unset");
    threads_seconds = MeasureSeconds(
        [&] { got = extract(&*model, true, threads, nullptr, nullptr); });
    if (!got.ok() || !SameChaosResult(*chaos, *got)) {
      std::fprintf(stderr, "chaos run diverged at %d threads\n", threads);
      return 1;
    }
  }
  ThreadPool* pool = DefaultThreadPool();
  Result<AnswerStatistics> pooled = Status::Internal("unset");
  const double pool_seconds = MeasureSeconds(
      [&] { pooled = extract(&*model, true, 1, pool, nullptr); });
  if (!pooled.ok() || !SameChaosResult(*chaos, *pooled)) {
    std::fprintf(stderr, "chaos run diverged on the persistent pool\n");
    return 1;
  }

  const DegradationReport& report = chaos->degradation;
  JsonWriter out;
  out.BeginObject();
  out.KeyValue("schema_version", kBenchSchemaVersion);
  out.KeyValue("benchmark", "micro_pipeline_chaos");
  out.Key("workload");
  out.BeginObject();
  out.KeyValue("sources", static_cast<int64_t>(set->NumSources()));
  out.KeyValue("components", static_cast<int64_t>(120));
  out.KeyValue("draws", static_cast<int64_t>(kDraws));
  out.KeyValue("transient_failure_prob", 0.15);
  out.KeyValue("outage_fraction", 0.2);
  out.EndObject();
  out.Key("seconds");
  out.BeginObject();
  out.KeyValue("baseline_no_seam", baseline_seconds);
  out.KeyValue("seam_null_model", null_seam_seconds);
  out.KeyValue("chaos_serial", chaos_seconds);
  out.KeyValue("chaos_threads_16", threads_seconds);
  out.KeyValue("chaos_pool", pool_seconds);
  out.EndObject();
  out.KeyValue("seam_overhead_ratio", null_seam_seconds / baseline_seconds);
  out.KeyValue("bit_identical_across_widths", true);
  out.Key("degradation");
  out.BeginObject();
  out.KeyValue("degraded", report.degraded);
  out.KeyValue("draws_requested", static_cast<int64_t>(report.draws_requested));
  out.KeyValue("draws_kept", static_cast<int64_t>(report.draws_kept));
  out.KeyValue("draws_dropped", static_cast<int64_t>(report.draws_dropped));
  out.KeyValue("min_coverage", report.min_coverage);
  out.KeyValue("mean_coverage", report.mean_coverage);
  out.EndObject();
  out.Key("access");
  out.BeginObject();
  out.KeyValue("visits", static_cast<int64_t>(report.access.visits));
  out.KeyValue("attempts", static_cast<int64_t>(report.access.attempts));
  out.KeyValue("retries", static_cast<int64_t>(report.access.retries));
  out.KeyValue("transient_failures",
               static_cast<int64_t>(report.access.transient_failures));
  out.KeyValue("failed_visits",
               static_cast<int64_t>(report.access.failed_visits));
  out.KeyValue("breaker_open_skips",
               static_cast<int64_t>(report.access.breaker_open_skips));
  out.KeyValue("corrupt_values_rejected",
               static_cast<int64_t>(report.access.corrupt_values_rejected));
  out.KeyValue("breaker_transitions",
               static_cast<int64_t>(report.access.breaker_transitions));
  out.KeyValue("deadline_truncated_draws",
               static_cast<int64_t>(report.access.deadline_truncated_draws));
  out.KeyValue("virtual_ms", report.access.virtual_ms);
  out.KeyValue("backoff_ms", report.access.backoff_ms);
  out.KeyValue("sources_open", static_cast<int64_t>(report.access.SourcesOpen()));
  out.KeyValue("sources_half_open",
               static_cast<int64_t>(report.access.SourcesHalfOpen()));
  out.EndObject();
  out.KeyValue("mean", chaos->mean.value);
  out.Key("counters");
  out.BeginObject();
  for (const CounterSample& counter : metrics.Snapshot().counters) {
    out.KeyValue(counter.name, static_cast<int64_t>(counter.value));
  }
  out.EndObject();
  out.EndObject();
  std::printf("%s\n", std::move(out).Finish().c_str());
  return 0;
}

// One fully journaled extraction exported as a Chrome trace. Sampling is
// forced through the persistent pool in 4 chunks so the trace carries
// per-worker tracks and pool queue-wait spans even on single-core hosts.
int RunTraceExport(const char* path) {
  MetricsRegistry metrics;
  FlightRecorder recorder;
  ExtractorOptions options;
  options.initial_sample_size = 400;
  options.weight_probes = 10;
  options.sampling_threads = 4;
  options.pool = DefaultThreadPool();
  options.obs.metrics = &metrics;
  options.obs.recorder = &recorder;
  const auto extractor = AnswerStatisticsExtractor::Create(
      D2().sources.get(), D2().query, options);
  if (!extractor.ok()) {
    std::fprintf(stderr, "%s\n", extractor.status().ToString().c_str());
    return 1;
  }
  const auto stats = extractor->Extract();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  const FlightSnapshot snapshot = recorder.Drain();
  const Status written = ExportChromeTraceToFile(snapshot, path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu events across %zu tracks (%llu dropped) to %s\n",
               snapshot.events.size(), static_cast<size_t>(snapshot.num_tracks),
               static_cast<unsigned long long>(snapshot.TotalDropped()), path);
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return vastats::bench::RunJsonBreakdown();
    }
    if (std::strcmp(argv[i], "--chaos") == 0) {
      return vastats::bench::RunChaosJson();
    }
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace-out requires a file path\n");
        return 2;
      }
      return vastats::bench::RunTraceExport(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
