// Ablation: bandwidth selection and bagging choices of §4.3.
//
// The paper uses the adaptive (Botev diffusion) bandwidth and bags 50
// bootstrap KDEs; this harness quantifies what those choices buy on the
// bimodal climate aggregation S1:
//  * bandwidth rule (Silverman / Scott / Botev) -> selected h, number of
//    detected modes, CIO length and coverage;
//  * bagged KDE vs single-shot KDE -> point-wise wiggle (mode count at a
//    low threshold) and CIO output stability across reruns.

#include <cstdio>
#include <vector>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

const char* RuleName(BandwidthRule rule) {
  switch (rule) {
    case BandwidthRule::kSilverman:
      return "Silverman";
    case BandwidthRule::kScott:
      return "Scott";
    case BandwidthRule::kBotev:
      return "Botev";
  }
  return "?";
}

int Run() {
  std::printf("Ablation: bandwidth selection x bagging on S1 (bimodal "
              "climate sum)\n\n");
  Workload workload = MakeS1();
  const auto sampler =
      UniSSampler::Create(workload.sources.get(), workload.query);
  if (!sampler.ok()) return 1;
  Rng rng(4242);
  const auto samples = sampler->Sample(400, rng);
  if (!samples.ok()) return 1;

  std::printf("%-10s %-8s %10s %8s %8s %8s %8s\n", "rule", "bagged", "h",
              "modes.1", "modes.02", "CIO L", "CIO C");
  for (const BandwidthRule rule :
       {BandwidthRule::kSilverman, BandwidthRule::kScott,
        BandwidthRule::kBotev}) {
    for (const bool bagged : {false, true}) {
      KdeOptions kde_options;
      kde_options.rule = rule;
      double h = 0.0;
      GridDensity density = GridDensity::Create(0, 1, {0, 0}).value();
      if (bagged) {
        Rng boot_rng(1);
        const auto sets =
            BootstrapSets(*samples, BootstrapOptions{}, boot_rng);
        const auto result = EstimateBaggedKde(*sets, *samples, kde_options);
        if (!result.ok()) return 1;
        h = result->bandwidth;
        density = result->density;
      } else {
        const auto result = EstimateKde(*samples, kde_options);
        if (!result.ok()) return 1;
        h = result->bandwidth;
        density = result->density;
      }
      CioOptions cio;
      const auto coverage = GreedyCio(density, cio);
      if (!coverage.ok()) return 1;
      std::printf("%-10s %-8s %10.3f %8zu %8zu %8.4f %8.4f\n",
                  RuleName(rule), bagged ? "yes" : "no", h,
                  density.FindModes(0.1).size(),
                  density.FindModes(0.02).size(),
                  coverage->total_length_fraction,
                  coverage->total_coverage);
    }
  }
  std::printf(
      "\nReading: modes.1 = modes above 10%% of the peak (the real\n"
      "structure: 2 for S1); modes.02 = modes above 2%% (estimation\n"
      "wiggle). Bagging should cut the wiggle count; the adaptive rule\n"
      "should resolve both true modes without inflating the intervals.\n");
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main() { return vastats::bench::Run(); }
