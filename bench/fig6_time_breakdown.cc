// Regenerates Figure 6 (§5.4): wall-clock breakdown of the extraction
// pipeline — bootstrap resampling, (bagged) KDE, and the greedy CIO — as the
// uniS sample size grows from 100 to 800, plus the stability score cost and
// the paper's 200 ms/viable-answer sampling accounting.
//
// Paper's shape to check: KDE dominates extraction and grows with the
// sample size; bootstrap resampling is cheap; CIO cost is flat (it works on
// a fixed 4096-point grid); stability is negligible; and under the 200 ms
// remote-sampling model the uniS phase dwarfs all extraction combined.

#include <cstdio>
#include <vector>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

int Run() {
  std::printf("Figure 6 reproduction: time breakdown of operations "
              "(50 bootstrap sets, 4096-point KDE grid)\n\n");
  std::printf("%-8s %12s %12s %12s %12s %16s\n", "|S|", "bootstrap(ms)",
              "KDE(ms)", "CIO(ms)", "stability(ms)",
              "sampling@200ms/ans(s)");

  Workload workload = MakeD2Workload();
  const auto extractor = AnswerStatisticsExtractor::Create(
      workload.sources.get(), workload.query, ExtractorOptions{});
  if (!extractor.ok()) {
    std::fprintf(stderr, "%s\n", extractor.status().ToString().c_str());
    return 1;
  }

  for (const int sample_size : {100, 200, 400, 600, 800}) {
    Rng rng(6000 + static_cast<uint64_t>(sample_size));
    const auto samples = extractor->sampler().Sample(sample_size, rng);
    if (!samples.ok()) return 1;

    // Run the extraction phases on the pre-drawn sample; average over a few
    // repetitions to stabilize the clock.
    constexpr int kReps = 3;
    PhaseTimings totals;
    for (int rep = 0; rep < kReps; ++rep) {
      Rng phase_rng(7000 + static_cast<uint64_t>(rep));
      const auto stats =
          extractor->ExtractFromSamples(*samples, phase_rng);
      if (!stats.ok()) {
        std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
        return 1;
      }
      totals.bootstrap_seconds += stats->timings.bootstrap_seconds;
      totals.kde_seconds += stats->timings.kde_seconds;
      totals.cio_seconds += stats->timings.cio_seconds;
      totals.stability_seconds += stats->timings.stability_seconds;
    }
    std::printf("%-8d %12.2f %12.2f %12.2f %12.3f %16.1f\n", sample_size,
                totals.bootstrap_seconds / kReps * 1e3,
                totals.kde_seconds / kReps * 1e3,
                totals.cio_seconds / kReps * 1e3,
                totals.stability_seconds / kReps * 1e3,
                sample_size * 0.2);
  }

  std::printf(
      "\nPaper's observations: KDE dominates extraction (~5 s on 50x800 in "
      "Matlab), bootstrap < 60 ms/run,\nCIO constant in |S| (fixed 4096-pt "
      "density), stability < 1 ms, and sampling at ~200 ms per viable\n"
      "answer (e.g. 80 s for 400 answers) dwarfs the extraction stages.\n");
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main() { return vastats::bench::Run(); }
