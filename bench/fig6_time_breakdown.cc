// Regenerates Figure 6 (§5.4): wall-clock breakdown of the extraction
// pipeline — bootstrap resampling, (bagged) KDE, and the greedy CIO — as the
// uniS sample size grows from 100 to 800, plus the stability score cost and
// the paper's 200 ms/viable-answer sampling accounting.
//
// The table is derived from the telemetry trace: each repetition records its
// phase spans into one Trace, and the per-phase columns are the span totals
// divided by the repetition count. PhaseTimings is populated from the same
// spans, so the two views cannot drift apart.
//
// Paper's shape to check: KDE dominates extraction and grows with the
// sample size; bootstrap resampling is cheap; CIO cost is flat (it works on
// a fixed 4096-point grid); stability is negligible; and under the 200 ms
// remote-sampling model the uniS phase dwarfs all extraction combined.
//
// With --json, emits the same breakdown as a JSON document instead of the
// human-readable table.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "vastats/vastats.h"
#include "workloads.h"

namespace vastats::bench {
namespace {

constexpr int kReps = 3;

struct BreakdownRow {
  int sample_size = 0;
  double bootstrap_ms = 0.0;
  double point_statistics_ms = 0.0;
  double kde_ms = 0.0;
  double cio_ms = 0.0;
  double stability_ms = 0.0;
};

Result<BreakdownRow> MeasureRow(const Workload& workload, int sample_size) {
  Trace trace;
  ExtractorOptions options;
  options.obs.trace = &trace;
  VASTATS_ASSIGN_OR_RETURN(
      const AnswerStatisticsExtractor extractor,
      AnswerStatisticsExtractor::Create(workload.sources.get(), workload.query,
                                        options));

  Rng rng(6000 + static_cast<uint64_t>(sample_size));
  VASTATS_ASSIGN_OR_RETURN(const std::vector<double> samples,
                           extractor.sampler().Sample(sample_size, rng));

  // Run the extraction phases on the pre-drawn sample; average over a few
  // repetitions (all recorded into the one trace) to stabilize the clock.
  for (int rep = 0; rep < kReps; ++rep) {
    Rng phase_rng(7000 + static_cast<uint64_t>(rep));
    VASTATS_ASSIGN_OR_RETURN(const AnswerStatistics stats,
                             extractor.ExtractFromSamples(samples, phase_rng));
    (void)stats;
  }

  const double to_ms = 1e3 / static_cast<double>(kReps);
  BreakdownRow row;
  row.sample_size = sample_size;
  row.bootstrap_ms = trace.TotalSecondsOf("bootstrap") * to_ms;
  row.point_statistics_ms = trace.TotalSecondsOf("point_statistics") * to_ms;
  row.kde_ms = trace.TotalSecondsOf("kde") * to_ms;
  row.cio_ms = trace.TotalSecondsOf("cio") * to_ms;
  row.stability_ms = trace.TotalSecondsOf("stability") * to_ms;
  return row;
}

int Run(bool json) {
  Workload workload = MakeD2Workload();
  std::vector<BreakdownRow> rows;
  for (const int sample_size : {100, 200, 400, 600, 800}) {
    const auto row = MeasureRow(workload, sample_size);
    if (!row.ok()) {
      std::fprintf(stderr, "%s\n", row.status().ToString().c_str());
      return 1;
    }
    rows.push_back(*row);
  }

  if (json) {
    JsonWriter out;
    out.BeginObject();
    out.KeyValue("figure", "fig6_time_breakdown");
    out.KeyValue("reps", static_cast<int64_t>(kReps));
    out.Key("rows");
    out.BeginArray();
    for (const BreakdownRow& row : rows) {
      out.BeginObject();
      out.KeyValue("sample_size", static_cast<int64_t>(row.sample_size));
      out.KeyValue("bootstrap_ms", row.bootstrap_ms);
      out.KeyValue("point_statistics_ms", row.point_statistics_ms);
      out.KeyValue("kde_ms", row.kde_ms);
      out.KeyValue("cio_ms", row.cio_ms);
      out.KeyValue("stability_ms", row.stability_ms);
      out.KeyValue("sampling_seconds_at_200ms",
                   static_cast<double>(row.sample_size) * 0.2);
      out.EndObject();
    }
    out.EndArray();
    out.EndObject();
    std::printf("%s\n", std::move(out).Finish().c_str());
    return 0;
  }

  std::printf("Figure 6 reproduction: time breakdown of operations "
              "(50 bootstrap sets, 4096-point KDE grid; span-derived)\n\n");
  std::printf("%-8s %12s %12s %12s %12s %16s\n", "|S|", "bootstrap(ms)",
              "KDE(ms)", "CIO(ms)", "stability(ms)",
              "sampling@200ms/ans(s)");
  for (const BreakdownRow& row : rows) {
    std::printf("%-8d %12.2f %12.2f %12.2f %12.3f %16.1f\n", row.sample_size,
                row.bootstrap_ms, row.kde_ms, row.cio_ms, row.stability_ms,
                row.sample_size * 0.2);
  }

  std::printf(
      "\nPaper's observations: KDE dominates extraction (~5 s on 50x800 in "
      "Matlab), bootstrap < 60 ms/run,\nCIO constant in |S| (fixed 4096-pt "
      "density), stability < 1 ms, and sampling at ~200 ms per viable\n"
      "answer (e.g. 80 s for 400 answers) dwarfs the extraction stages.\n");
  return 0;
}

}  // namespace
}  // namespace vastats::bench

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;
  return vastats::bench::Run(json);
}
