// Scalability sweep — "the synthetic tests allowed us to scale various
// parameters to verify the observations and predictions made in the
// analysis" (§5). Three axes:
//
//  (1) aggregation size |C|: per-draw uniS cost grows with the number of
//      components to cover;
//  (2) source count |D|: more sources to visit, but each holds a smaller
//      share, so per-draw work stays roughly linear in |C| + |D|;
//  (3) the simulated remote-hierarchy economics: per-answer source-time
//      under the cost model of integration/cost_model.h, and how many
//      answers a fixed source-time budget buys.

#include <cstdio>

#include "util/stopwatch.h"
#include "vastats/vastats.h"

namespace vastats {
namespace {

Result<SourceSet> BuildWorkload(int num_sources, int num_components,
                                uint64_t seed) {
  const auto mixture = MakeD2(seed);
  SyntheticSourceSetOptions options;
  options.num_sources = num_sources;
  options.num_components = num_components;
  options.min_copies = 2;
  options.max_copies = 6;
  options.seed = seed + 1;
  return BuildSyntheticSourceSet(*mixture, options);
}

int Run() {
  std::printf("(1) uniS draw cost vs aggregation size |C| (|D| = 100)\n");
  std::printf("%-8s %14s %16s\n", "|C|", "us/draw", "draws/s");
  for (const int c : {100, 250, 500, 1000, 2000}) {
    auto sources = BuildWorkload(100, c, 10);
    if (!sources.ok()) return 1;
    const auto sampler = UniSSampler::Create(
        &sources.value(), MakeRangeQuery("q", AggregateKind::kSum, 0, c));
    if (!sampler.ok()) return 1;
    Rng rng(11);
    Stopwatch watch;
    const int kDraws = 2000;
    if (!sampler->Sample(kDraws, rng).ok()) return 1;
    const double seconds = watch.ElapsedSeconds();
    std::printf("%-8d %14.1f %16.0f\n", c, seconds / kDraws * 1e6,
                kDraws / seconds);
  }

  std::printf("\n(2) uniS draw cost vs source count |D| (|C| = 500)\n");
  std::printf("%-8s %14s %16s\n", "|D|", "us/draw", "draws/s");
  for (const int d : {25, 50, 100, 200, 400}) {
    auto sources = BuildWorkload(d, 500, 20);
    if (!sources.ok()) return 1;
    const auto sampler = UniSSampler::Create(
        &sources.value(), MakeRangeQuery("q", AggregateKind::kSum, 0, 500));
    if (!sampler.ok()) return 1;
    Rng rng(21);
    Stopwatch watch;
    const int kDraws = 2000;
    if (!sampler->Sample(kDraws, rng).ok()) return 1;
    const double seconds = watch.ElapsedSeconds();
    std::printf("%-8d %14.1f %16.0f\n", d, seconds / kDraws * 1e6,
                kDraws / seconds);
  }

  std::printf("\n(3) Remote-hierarchy economics (simulated cost model: "
              "20 ms/contact base, per-source spread, jitter)\n");
  std::printf("%-8s %18s %22s\n", "|D|", "ms/answer (sim)",
              "answers per 60 s budget");
  for (const int d : {25, 50, 100, 200}) {
    auto sources = BuildWorkload(d, 500, 30);
    if (!sources.ok()) return 1;
    const auto sampler = UniSSampler::Create(
        &sources.value(), MakeRangeQuery("q", AggregateKind::kSum, 0, 500));
    if (!sampler.ok()) return 1;
    const auto model = SourceCostModel::Create(d, SourceCostModelOptions{});
    if (!model.ok()) return 1;
    const auto costed =
        CostAwareSampler::Create(&sampler.value(), &model.value());
    if (!costed.ok()) return 1;
    Rng rng(31);
    const auto batch = costed->SampleWithBudget(60'000.0, 0, rng);
    if (!batch.ok()) return 1;
    std::printf("%-8d %18.1f %22zu\n", d,
                batch->total_cost_ms /
                    static_cast<double>(batch->values.size()),
                batch->values.size());
  }
  std::printf(
      "\nReading: with every source contacted per draw, the simulated\n"
      "per-answer cost grows ~linearly in |D| — the quantified version of\n"
      "the paper's 'sampling dominates, optimize aggregate computation'\n"
      "conclusion, and the economic case for its adaptive sample-growth\n"
      "loop (stop as soon as the CI is tight enough).\n");
  return 0;
}

}  // namespace
}  // namespace vastats

int main() { return vastats::Run(); }
