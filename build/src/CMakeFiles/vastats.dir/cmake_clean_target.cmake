file(REMOVE_RECURSE
  "libvastats.a"
)
