# Empty compiler generated dependencies file for vastats.
# This may be replaced when dependencies are built.
