
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cio.cc" "src/CMakeFiles/vastats.dir/core/cio.cc.o" "gcc" "src/CMakeFiles/vastats.dir/core/cio.cc.o.d"
  "/root/repo/src/core/drift.cc" "src/CMakeFiles/vastats.dir/core/drift.cc.o" "gcc" "src/CMakeFiles/vastats.dir/core/drift.cc.o.d"
  "/root/repo/src/core/extractor.cc" "src/CMakeFiles/vastats.dir/core/extractor.cc.o" "gcc" "src/CMakeFiles/vastats.dir/core/extractor.cc.o.d"
  "/root/repo/src/core/grouped_extractor.cc" "src/CMakeFiles/vastats.dir/core/grouped_extractor.cc.o" "gcc" "src/CMakeFiles/vastats.dir/core/grouped_extractor.cc.o.d"
  "/root/repo/src/core/monitor.cc" "src/CMakeFiles/vastats.dir/core/monitor.cc.o" "gcc" "src/CMakeFiles/vastats.dir/core/monitor.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/vastats.dir/core/report.cc.o" "gcc" "src/CMakeFiles/vastats.dir/core/report.cc.o.d"
  "/root/repo/src/core/stability.cc" "src/CMakeFiles/vastats.dir/core/stability.cc.o" "gcc" "src/CMakeFiles/vastats.dir/core/stability.cc.o.d"
  "/root/repo/src/core/uncertain_export.cc" "src/CMakeFiles/vastats.dir/core/uncertain_export.cc.o" "gcc" "src/CMakeFiles/vastats.dir/core/uncertain_export.cc.o.d"
  "/root/repo/src/datagen/climate.cc" "src/CMakeFiles/vastats.dir/datagen/climate.cc.o" "gcc" "src/CMakeFiles/vastats.dir/datagen/climate.cc.o.d"
  "/root/repo/src/datagen/distributions.cc" "src/CMakeFiles/vastats.dir/datagen/distributions.cc.o" "gcc" "src/CMakeFiles/vastats.dir/datagen/distributions.cc.o.d"
  "/root/repo/src/datagen/source_builder.cc" "src/CMakeFiles/vastats.dir/datagen/source_builder.cc.o" "gcc" "src/CMakeFiles/vastats.dir/datagen/source_builder.cc.o.d"
  "/root/repo/src/density/bagged_kde.cc" "src/CMakeFiles/vastats.dir/density/bagged_kde.cc.o" "gcc" "src/CMakeFiles/vastats.dir/density/bagged_kde.cc.o.d"
  "/root/repo/src/density/density_io.cc" "src/CMakeFiles/vastats.dir/density/density_io.cc.o" "gcc" "src/CMakeFiles/vastats.dir/density/density_io.cc.o.d"
  "/root/repo/src/density/distance.cc" "src/CMakeFiles/vastats.dir/density/distance.cc.o" "gcc" "src/CMakeFiles/vastats.dir/density/distance.cc.o.d"
  "/root/repo/src/density/grid_density.cc" "src/CMakeFiles/vastats.dir/density/grid_density.cc.o" "gcc" "src/CMakeFiles/vastats.dir/density/grid_density.cc.o.d"
  "/root/repo/src/density/histogram.cc" "src/CMakeFiles/vastats.dir/density/histogram.cc.o" "gcc" "src/CMakeFiles/vastats.dir/density/histogram.cc.o.d"
  "/root/repo/src/density/kde.cc" "src/CMakeFiles/vastats.dir/density/kde.cc.o" "gcc" "src/CMakeFiles/vastats.dir/density/kde.cc.o.d"
  "/root/repo/src/fusion/fusion.cc" "src/CMakeFiles/vastats.dir/fusion/fusion.cc.o" "gcc" "src/CMakeFiles/vastats.dir/fusion/fusion.cc.o.d"
  "/root/repo/src/integration/cost_model.cc" "src/CMakeFiles/vastats.dir/integration/cost_model.cc.o" "gcc" "src/CMakeFiles/vastats.dir/integration/cost_model.cc.o.d"
  "/root/repo/src/integration/data_source.cc" "src/CMakeFiles/vastats.dir/integration/data_source.cc.o" "gcc" "src/CMakeFiles/vastats.dir/integration/data_source.cc.o.d"
  "/root/repo/src/integration/hierarchy.cc" "src/CMakeFiles/vastats.dir/integration/hierarchy.cc.o" "gcc" "src/CMakeFiles/vastats.dir/integration/hierarchy.cc.o.d"
  "/root/repo/src/integration/io.cc" "src/CMakeFiles/vastats.dir/integration/io.cc.o" "gcc" "src/CMakeFiles/vastats.dir/integration/io.cc.o.d"
  "/root/repo/src/integration/mediated_schema.cc" "src/CMakeFiles/vastats.dir/integration/mediated_schema.cc.o" "gcc" "src/CMakeFiles/vastats.dir/integration/mediated_schema.cc.o.d"
  "/root/repo/src/integration/record_mapper.cc" "src/CMakeFiles/vastats.dir/integration/record_mapper.cc.o" "gcc" "src/CMakeFiles/vastats.dir/integration/record_mapper.cc.o.d"
  "/root/repo/src/integration/source_set.cc" "src/CMakeFiles/vastats.dir/integration/source_set.cc.o" "gcc" "src/CMakeFiles/vastats.dir/integration/source_set.cc.o.d"
  "/root/repo/src/integration/stratification.cc" "src/CMakeFiles/vastats.dir/integration/stratification.cc.o" "gcc" "src/CMakeFiles/vastats.dir/integration/stratification.cc.o.d"
  "/root/repo/src/query/aggregate.cc" "src/CMakeFiles/vastats.dir/query/aggregate.cc.o" "gcc" "src/CMakeFiles/vastats.dir/query/aggregate.cc.o.d"
  "/root/repo/src/query/aggregate_query.cc" "src/CMakeFiles/vastats.dir/query/aggregate_query.cc.o" "gcc" "src/CMakeFiles/vastats.dir/query/aggregate_query.cc.o.d"
  "/root/repo/src/query/grouped_query.cc" "src/CMakeFiles/vastats.dir/query/grouped_query.cc.o" "gcc" "src/CMakeFiles/vastats.dir/query/grouped_query.cc.o.d"
  "/root/repo/src/query/mediated_query.cc" "src/CMakeFiles/vastats.dir/query/mediated_query.cc.o" "gcc" "src/CMakeFiles/vastats.dir/query/mediated_query.cc.o.d"
  "/root/repo/src/query/query_processor.cc" "src/CMakeFiles/vastats.dir/query/query_processor.cc.o" "gcc" "src/CMakeFiles/vastats.dir/query/query_processor.cc.o.d"
  "/root/repo/src/sampling/adaptive.cc" "src/CMakeFiles/vastats.dir/sampling/adaptive.cc.o" "gcc" "src/CMakeFiles/vastats.dir/sampling/adaptive.cc.o.d"
  "/root/repo/src/sampling/exhaustive.cc" "src/CMakeFiles/vastats.dir/sampling/exhaustive.cc.o" "gcc" "src/CMakeFiles/vastats.dir/sampling/exhaustive.cc.o.d"
  "/root/repo/src/sampling/multi.cc" "src/CMakeFiles/vastats.dir/sampling/multi.cc.o" "gcc" "src/CMakeFiles/vastats.dir/sampling/multi.cc.o.d"
  "/root/repo/src/sampling/parallel.cc" "src/CMakeFiles/vastats.dir/sampling/parallel.cc.o" "gcc" "src/CMakeFiles/vastats.dir/sampling/parallel.cc.o.d"
  "/root/repo/src/sampling/unis.cc" "src/CMakeFiles/vastats.dir/sampling/unis.cc.o" "gcc" "src/CMakeFiles/vastats.dir/sampling/unis.cc.o.d"
  "/root/repo/src/sampling/weighted.cc" "src/CMakeFiles/vastats.dir/sampling/weighted.cc.o" "gcc" "src/CMakeFiles/vastats.dir/sampling/weighted.cc.o.d"
  "/root/repo/src/stats/bootstrap.cc" "src/CMakeFiles/vastats.dir/stats/bootstrap.cc.o" "gcc" "src/CMakeFiles/vastats.dir/stats/bootstrap.cc.o.d"
  "/root/repo/src/stats/confidence.cc" "src/CMakeFiles/vastats.dir/stats/confidence.cc.o" "gcc" "src/CMakeFiles/vastats.dir/stats/confidence.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/vastats.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/vastats.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/direct_inference.cc" "src/CMakeFiles/vastats.dir/stats/direct_inference.cc.o" "gcc" "src/CMakeFiles/vastats.dir/stats/direct_inference.cc.o.d"
  "/root/repo/src/stats/jackknife.cc" "src/CMakeFiles/vastats.dir/stats/jackknife.cc.o" "gcc" "src/CMakeFiles/vastats.dir/stats/jackknife.cc.o.d"
  "/root/repo/src/stats/ks_test.cc" "src/CMakeFiles/vastats.dir/stats/ks_test.cc.o" "gcc" "src/CMakeFiles/vastats.dir/stats/ks_test.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/vastats.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/vastats.dir/util/csv.cc.o.d"
  "/root/repo/src/util/fft.cc" "src/CMakeFiles/vastats.dir/util/fft.cc.o" "gcc" "src/CMakeFiles/vastats.dir/util/fft.cc.o.d"
  "/root/repo/src/util/json_writer.cc" "src/CMakeFiles/vastats.dir/util/json_writer.cc.o" "gcc" "src/CMakeFiles/vastats.dir/util/json_writer.cc.o.d"
  "/root/repo/src/util/math.cc" "src/CMakeFiles/vastats.dir/util/math.cc.o" "gcc" "src/CMakeFiles/vastats.dir/util/math.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/vastats.dir/util/random.cc.o" "gcc" "src/CMakeFiles/vastats.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/vastats.dir/util/status.cc.o" "gcc" "src/CMakeFiles/vastats.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
