
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_cio_test.cc" "tests/CMakeFiles/vastats_tests.dir/core_cio_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/core_cio_test.cc.o.d"
  "/root/repo/tests/core_drift_test.cc" "tests/CMakeFiles/vastats_tests.dir/core_drift_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/core_drift_test.cc.o.d"
  "/root/repo/tests/core_extractor_test.cc" "tests/CMakeFiles/vastats_tests.dir/core_extractor_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/core_extractor_test.cc.o.d"
  "/root/repo/tests/core_monitor_test.cc" "tests/CMakeFiles/vastats_tests.dir/core_monitor_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/core_monitor_test.cc.o.d"
  "/root/repo/tests/core_stability_test.cc" "tests/CMakeFiles/vastats_tests.dir/core_stability_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/core_stability_test.cc.o.d"
  "/root/repo/tests/core_uncertain_export_test.cc" "tests/CMakeFiles/vastats_tests.dir/core_uncertain_export_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/core_uncertain_export_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/vastats_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/density_bagged_kde_test.cc" "tests/CMakeFiles/vastats_tests.dir/density_bagged_kde_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/density_bagged_kde_test.cc.o.d"
  "/root/repo/tests/density_distance_test.cc" "tests/CMakeFiles/vastats_tests.dir/density_distance_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/density_distance_test.cc.o.d"
  "/root/repo/tests/density_grid_test.cc" "tests/CMakeFiles/vastats_tests.dir/density_grid_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/density_grid_test.cc.o.d"
  "/root/repo/tests/density_histogram_test.cc" "tests/CMakeFiles/vastats_tests.dir/density_histogram_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/density_histogram_test.cc.o.d"
  "/root/repo/tests/density_io_test.cc" "tests/CMakeFiles/vastats_tests.dir/density_io_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/density_io_test.cc.o.d"
  "/root/repo/tests/density_kde_test.cc" "tests/CMakeFiles/vastats_tests.dir/density_kde_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/density_kde_test.cc.o.d"
  "/root/repo/tests/determinism_test.cc" "tests/CMakeFiles/vastats_tests.dir/determinism_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/determinism_test.cc.o.d"
  "/root/repo/tests/fusion_test.cc" "tests/CMakeFiles/vastats_tests.dir/fusion_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/fusion_test.cc.o.d"
  "/root/repo/tests/integration_cost_strat_test.cc" "tests/CMakeFiles/vastats_tests.dir/integration_cost_strat_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/integration_cost_strat_test.cc.o.d"
  "/root/repo/tests/integration_hierarchy_test.cc" "tests/CMakeFiles/vastats_tests.dir/integration_hierarchy_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/integration_hierarchy_test.cc.o.d"
  "/root/repo/tests/integration_io_test.cc" "tests/CMakeFiles/vastats_tests.dir/integration_io_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/integration_io_test.cc.o.d"
  "/root/repo/tests/integration_mapping_test.cc" "tests/CMakeFiles/vastats_tests.dir/integration_mapping_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/integration_mapping_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/vastats_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/pipeline_property_test.cc" "tests/CMakeFiles/vastats_tests.dir/pipeline_property_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/pipeline_property_test.cc.o.d"
  "/root/repo/tests/query_aggregate_test.cc" "tests/CMakeFiles/vastats_tests.dir/query_aggregate_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/query_aggregate_test.cc.o.d"
  "/root/repo/tests/query_grouped_test.cc" "tests/CMakeFiles/vastats_tests.dir/query_grouped_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/query_grouped_test.cc.o.d"
  "/root/repo/tests/query_processor_test.cc" "tests/CMakeFiles/vastats_tests.dir/query_processor_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/query_processor_test.cc.o.d"
  "/root/repo/tests/sampling_adaptive_test.cc" "tests/CMakeFiles/vastats_tests.dir/sampling_adaptive_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/sampling_adaptive_test.cc.o.d"
  "/root/repo/tests/sampling_exhaustive_test.cc" "tests/CMakeFiles/vastats_tests.dir/sampling_exhaustive_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/sampling_exhaustive_test.cc.o.d"
  "/root/repo/tests/sampling_multi_test.cc" "tests/CMakeFiles/vastats_tests.dir/sampling_multi_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/sampling_multi_test.cc.o.d"
  "/root/repo/tests/sampling_parallel_test.cc" "tests/CMakeFiles/vastats_tests.dir/sampling_parallel_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/sampling_parallel_test.cc.o.d"
  "/root/repo/tests/sampling_unis_test.cc" "tests/CMakeFiles/vastats_tests.dir/sampling_unis_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/sampling_unis_test.cc.o.d"
  "/root/repo/tests/sampling_weighted_test.cc" "tests/CMakeFiles/vastats_tests.dir/sampling_weighted_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/sampling_weighted_test.cc.o.d"
  "/root/repo/tests/stats_bootstrap_test.cc" "tests/CMakeFiles/vastats_tests.dir/stats_bootstrap_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/stats_bootstrap_test.cc.o.d"
  "/root/repo/tests/stats_confidence_test.cc" "tests/CMakeFiles/vastats_tests.dir/stats_confidence_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/stats_confidence_test.cc.o.d"
  "/root/repo/tests/stats_descriptive_test.cc" "tests/CMakeFiles/vastats_tests.dir/stats_descriptive_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/stats_descriptive_test.cc.o.d"
  "/root/repo/tests/stats_direct_inference_test.cc" "tests/CMakeFiles/vastats_tests.dir/stats_direct_inference_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/stats_direct_inference_test.cc.o.d"
  "/root/repo/tests/stats_jackknife_test.cc" "tests/CMakeFiles/vastats_tests.dir/stats_jackknife_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/stats_jackknife_test.cc.o.d"
  "/root/repo/tests/stats_ks_test_test.cc" "tests/CMakeFiles/vastats_tests.dir/stats_ks_test_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/stats_ks_test_test.cc.o.d"
  "/root/repo/tests/util_csv_test.cc" "tests/CMakeFiles/vastats_tests.dir/util_csv_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/util_csv_test.cc.o.d"
  "/root/repo/tests/util_fft_test.cc" "tests/CMakeFiles/vastats_tests.dir/util_fft_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/util_fft_test.cc.o.d"
  "/root/repo/tests/util_json_test.cc" "tests/CMakeFiles/vastats_tests.dir/util_json_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/util_json_test.cc.o.d"
  "/root/repo/tests/util_math_test.cc" "tests/CMakeFiles/vastats_tests.dir/util_math_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/util_math_test.cc.o.d"
  "/root/repo/tests/util_random_test.cc" "tests/CMakeFiles/vastats_tests.dir/util_random_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/util_random_test.cc.o.d"
  "/root/repo/tests/util_status_test.cc" "tests/CMakeFiles/vastats_tests.dir/util_status_test.cc.o" "gcc" "tests/CMakeFiles/vastats_tests.dir/util_status_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vastats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
