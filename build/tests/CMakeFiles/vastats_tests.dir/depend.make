# Empty dependencies file for vastats_tests.
# This may be replaced when dependencies are built.
