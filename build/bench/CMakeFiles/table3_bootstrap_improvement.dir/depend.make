# Empty dependencies file for table3_bootstrap_improvement.
# This may be replaced when dependencies are built.
