file(REMOVE_RECURSE
  "CMakeFiles/table3_bootstrap_improvement.dir/table3_bootstrap_improvement.cc.o"
  "CMakeFiles/table3_bootstrap_improvement.dir/table3_bootstrap_improvement.cc.o.d"
  "table3_bootstrap_improvement"
  "table3_bootstrap_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bootstrap_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
