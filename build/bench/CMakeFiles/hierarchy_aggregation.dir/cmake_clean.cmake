file(REMOVE_RECURSE
  "CMakeFiles/hierarchy_aggregation.dir/hierarchy_aggregation.cc.o"
  "CMakeFiles/hierarchy_aggregation.dir/hierarchy_aggregation.cc.o.d"
  "hierarchy_aggregation"
  "hierarchy_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
