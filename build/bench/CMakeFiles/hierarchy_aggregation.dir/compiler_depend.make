# Empty compiler generated dependencies file for hierarchy_aggregation.
# This may be replaced when dependencies are built.
