# Empty compiler generated dependencies file for fig7_high_coverage_intervals.
# This may be replaced when dependencies are built.
