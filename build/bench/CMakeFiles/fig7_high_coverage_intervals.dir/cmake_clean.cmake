file(REMOVE_RECURSE
  "CMakeFiles/fig7_high_coverage_intervals.dir/fig7_high_coverage_intervals.cc.o"
  "CMakeFiles/fig7_high_coverage_intervals.dir/fig7_high_coverage_intervals.cc.o.d"
  "fig7_high_coverage_intervals"
  "fig7_high_coverage_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_high_coverage_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
