file(REMOVE_RECURSE
  "CMakeFiles/ablation_density_estimators.dir/ablation_density_estimators.cc.o"
  "CMakeFiles/ablation_density_estimators.dir/ablation_density_estimators.cc.o.d"
  "ablation_density_estimators"
  "ablation_density_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_density_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
