# Empty dependencies file for ablation_density_estimators.
# This may be replaced when dependencies are built.
