file(REMOVE_RECURSE
  "CMakeFiles/baseline_fusion.dir/baseline_fusion.cc.o"
  "CMakeFiles/baseline_fusion.dir/baseline_fusion.cc.o.d"
  "baseline_fusion"
  "baseline_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
