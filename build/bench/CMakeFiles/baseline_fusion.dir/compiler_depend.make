# Empty compiler generated dependencies file for baseline_fusion.
# This may be replaced when dependencies are built.
