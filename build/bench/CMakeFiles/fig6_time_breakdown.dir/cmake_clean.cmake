file(REMOVE_RECURSE
  "CMakeFiles/fig6_time_breakdown.dir/fig6_time_breakdown.cc.o"
  "CMakeFiles/fig6_time_breakdown.dir/fig6_time_breakdown.cc.o.d"
  "fig6_time_breakdown"
  "fig6_time_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_time_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
