file(REMOVE_RECURSE
  "CMakeFiles/table4_cio_approximation.dir/table4_cio_approximation.cc.o"
  "CMakeFiles/table4_cio_approximation.dir/table4_cio_approximation.cc.o.d"
  "table4_cio_approximation"
  "table4_cio_approximation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cio_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
