# Empty dependencies file for table4_cio_approximation.
# This may be replaced when dependencies are built.
