file(REMOVE_RECURSE
  "CMakeFiles/fig8_stability_deviation.dir/fig8_stability_deviation.cc.o"
  "CMakeFiles/fig8_stability_deviation.dir/fig8_stability_deviation.cc.o.d"
  "fig8_stability_deviation"
  "fig8_stability_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_stability_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
