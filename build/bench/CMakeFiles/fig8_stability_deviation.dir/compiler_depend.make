# Empty compiler generated dependencies file for fig8_stability_deviation.
# This may be replaced when dependencies are built.
