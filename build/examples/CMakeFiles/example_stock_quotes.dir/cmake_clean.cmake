file(REMOVE_RECURSE
  "CMakeFiles/example_stock_quotes.dir/stock_quotes.cpp.o"
  "CMakeFiles/example_stock_quotes.dir/stock_quotes.cpp.o.d"
  "stock_quotes"
  "stock_quotes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stock_quotes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
