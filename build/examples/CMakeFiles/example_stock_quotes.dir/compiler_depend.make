# Empty compiler generated dependencies file for example_stock_quotes.
# This may be replaced when dependencies are built.
