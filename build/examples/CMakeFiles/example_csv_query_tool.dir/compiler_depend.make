# Empty compiler generated dependencies file for example_csv_query_tool.
# This may be replaced when dependencies are built.
