file(REMOVE_RECURSE
  "CMakeFiles/example_csv_query_tool.dir/csv_query_tool.cpp.o"
  "CMakeFiles/example_csv_query_tool.dir/csv_query_tool.cpp.o.d"
  "csv_query_tool"
  "csv_query_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_csv_query_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
