# Empty dependencies file for example_disaster_response.
# This may be replaced when dependencies are built.
