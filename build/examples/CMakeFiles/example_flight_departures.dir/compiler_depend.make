# Empty compiler generated dependencies file for example_flight_departures.
# This may be replaced when dependencies are built.
