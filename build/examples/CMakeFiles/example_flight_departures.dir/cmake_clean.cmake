file(REMOVE_RECURSE
  "CMakeFiles/example_flight_departures.dir/flight_departures.cpp.o"
  "CMakeFiles/example_flight_departures.dir/flight_departures.cpp.o.d"
  "flight_departures"
  "flight_departures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flight_departures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
