# Empty compiler generated dependencies file for example_climate_monitoring.
# This may be replaced when dependencies are built.
