file(REMOVE_RECURSE
  "CMakeFiles/example_climate_monitoring.dir/climate_monitoring.cpp.o"
  "CMakeFiles/example_climate_monitoring.dir/climate_monitoring.cpp.o.d"
  "climate_monitoring"
  "climate_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_climate_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
