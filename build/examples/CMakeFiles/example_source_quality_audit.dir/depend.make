# Empty dependencies file for example_source_quality_audit.
# This may be replaced when dependencies are built.
