file(REMOVE_RECURSE
  "CMakeFiles/example_source_quality_audit.dir/source_quality_audit.cpp.o"
  "CMakeFiles/example_source_quality_audit.dir/source_quality_audit.cpp.o.d"
  "source_quality_audit"
  "source_quality_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_source_quality_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
