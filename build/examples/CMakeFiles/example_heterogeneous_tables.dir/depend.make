# Empty dependencies file for example_heterogeneous_tables.
# This may be replaced when dependencies are built.
