file(REMOVE_RECURSE
  "CMakeFiles/example_heterogeneous_tables.dir/heterogeneous_tables.cpp.o"
  "CMakeFiles/example_heterogeneous_tables.dir/heterogeneous_tables.cpp.o.d"
  "heterogeneous_tables"
  "heterogeneous_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heterogeneous_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
