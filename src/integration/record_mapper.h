// RecordMapper — turns raw per-source records (source-local vocabulary,
// source-local date formats, source-local units) into a SourceSet over the
// mediated schema. This is the ingestion half of the mapping/binding layer
// the paper assumes from [25]: after mapping, only value-level heterogeneity
// remains, which is what the rest of the library quantifies.
//
// Unit handling: a per-source, per-attribute unit declaration (e.g. "D5
// reports temperature in Fahrenheit") converts values into the mediated
// unit at ingestion. Undeclared units pass through — exactly how silent
// unit errors enter integrated data, which the answer-distribution tools
// then surface (see examples/source_quality_audit).

#ifndef VASTATS_INTEGRATION_RECORD_MAPPER_H_
#define VASTATS_INTEGRATION_RECORD_MAPPER_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "integration/mediated_schema.h"
#include "datagen/source_set.h"
#include "util/status.h"

namespace vastats {

// One raw observation as a source publishes it.
struct RawRecord {
  std::string source;     // e.g. "D1"
  std::string entity;     // e.g. "Vancouver" / "VANCOUVER CITY"
  std::string date;       // e.g. "10-June-06" / "06/10/06" / "2006-06-10"
  std::string attribute;  // e.g. "Avg Temp" / "Temp" / "temperature"
  double value = 0.0;
};

// A value transformation applied at ingestion (unit conversion).
using UnitConverter = std::function<double(double)>;

// Common converters.
UnitConverter FahrenheitToCelsius();
UnitConverter IdentityUnit();
UnitConverter LinearUnit(double scale, double offset);

struct MapperReport {
  int mapped_records = 0;
  // Records skipped because of unmapped vocabulary or bad dates, with the
  // reason (kept small; one line per skipped record).
  std::vector<std::string> skipped;
  // (source, component) pairs seen more than once; the last value wins.
  int duplicate_bindings = 0;
};

class RecordMapper {
 public:
  // `schema` must outlive the mapper.
  explicit RecordMapper(const MediatedSchema* schema) : schema_(schema) {}

  // Declares that `source` reports `canonical_attribute` in a non-mediated
  // unit, to be converted by `converter` at ingestion.
  Status DeclareSourceUnit(const std::string& source,
                           const std::string& canonical_attribute,
                           UnitConverter converter);

  // Maps records into a SourceSet. Unresolvable records are skipped and
  // reported (strict = false) or fail the whole call (strict = true).
  Result<SourceSet> MapRecords(const std::vector<RawRecord>& records,
                               MapperReport* report = nullptr,
                               bool strict = false) const;

 private:
  const MediatedSchema* schema_;
  // (normalized source name, attribute index) -> converter.
  std::unordered_map<std::string, UnitConverter> unit_converters_;
};

}  // namespace vastats

#endif  // VASTATS_INTEGRATION_RECORD_MAPPER_H_
