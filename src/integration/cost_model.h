// Source-access cost modelling — the accounting behind §5.4's conclusion:
// "we estimate the time needed for computing one viable answer to be
// 200 ms, which is optimistic since sampling over a distributed hierarchy
// usually takes up to several seconds when the networking overhead is
// considered. Therefore, sampling the viable answers dominates the overall
// time."
//
// SourceCostModel assigns each source a simulated access latency (fixed
// base + per-binding transfer + random jitter); CostAwareSampler wraps a
// UniSSampler and accumulates the simulated cost of every draw, supporting
// budget-capped sampling ("collect answers until X seconds of source time
// are spent"). Costs are simulated — no clock sleeps — so experiments on
// remote-hierarchy economics run instantly and deterministically.

#ifndef VASTATS_INTEGRATION_COST_MODEL_H_
#define VASTATS_INTEGRATION_COST_MODEL_H_

#include <vector>

#include "sampling/unis.h"
#include "util/random.h"
#include "util/status.h"

namespace vastats {

struct SourceCostModelOptions {
  // Fixed cost of contacting a source (connection + query dispatch).
  double base_ms = 20.0;
  // Cost per component value transferred.
  double per_component_ms = 0.05;
  // Lognormal-ish jitter: the per-visit cost is multiplied by
  // exp(N(0, jitter_sigma)).
  double jitter_sigma = 0.3;
  // Per-source base-cost spread (some peers are slower), as a multiplier
  // drawn once per source from exp(N(0, source_sigma)).
  double source_sigma = 0.5;
  uint64_t seed = 7;

  Status Validate() const;
};

// Per-source latency parameters, fixed at construction.
class SourceCostModel {
 public:
  static Result<SourceCostModel> Create(int num_sources,
                                        const SourceCostModelOptions& options);

  int num_sources() const { return static_cast<int>(multipliers_.size()); }

  // Simulated cost (ms) of one visit to `source` transferring
  // `components_taken` values; draws jitter from `rng`.
  Result<double> VisitCost(int source, int components_taken, Rng& rng) const;

  // The source's deterministic base multiplier (diagnostics).
  Result<double> SourceMultiplier(int source) const;

 private:
  SourceCostModel(SourceCostModelOptions options,
                  std::vector<double> multipliers)
      : options_(options), multipliers_(std::move(multipliers)) {}

  SourceCostModelOptions options_;
  std::vector<double> multipliers_;
};

// One costed uniS draw.
struct CostedSample {
  double value = 0.0;
  double cost_ms = 0.0;
  int sources_visited = 0;
};

// Result of budget-capped sampling.
struct CostedSampleBatch {
  std::vector<double> values;
  double total_cost_ms = 0.0;
  bool budget_exhausted = false;
};

// Wraps a UniSSampler with the cost model. The cost of a draw is the sum of
// visit costs over the sources uniS touched before covering the query.
class CostAwareSampler {
 public:
  // Both referents must outlive the sampler; the model must cover at least
  // as many sources as the sampler's source set.
  static Result<CostAwareSampler> Create(const UniSSampler* sampler,
                                         const SourceCostModel* model);

  // One draw with its simulated cost.
  Result<CostedSample> SampleOne(Rng& rng) const;

  // Draws until `budget_ms` of simulated source time is spent or `max_n`
  // answers were collected (0 = unbounded by count).
  Result<CostedSampleBatch> SampleWithBudget(double budget_ms, int max_n,
                                             Rng& rng) const;

 private:
  CostAwareSampler(const UniSSampler* sampler, const SourceCostModel* model)
      : sampler_(sampler), model_(model) {}

  const UniSSampler* sampler_;
  const SourceCostModel* model_;
};

}  // namespace vastats

#endif  // VASTATS_INTEGRATION_COST_MODEL_H_
