#include "integration/io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/csv.h"

namespace vastats {
namespace {

Result<double> ParseDouble(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not a number: '" + text + "'");
  }
  // A NaN or Inf binding would silently poison every partial aggregate it
  // enters; reject it at the boundary instead.
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("non-finite value: '" + text +
                                   "' (NaN/Inf bindings are rejected)");
  }
  return value;
}

Result<ComponentId> ParseComponentId(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not a component id: '" + text + "'");
  }
  return static_cast<ComponentId>(value);
}

// Prefixes a parse failure with the 1-based CSV row and the column name, so
// a bad cell in a large file is locatable from the error alone.
Status RowContext(size_t row, const char* column, const Status& status) {
  return Status(status.code(), "row " + std::to_string(row) + ", column '" +
                                   column + "': " + status.message());
}

}  // namespace

std::string SourceSetToCsv(const SourceSet& sources) {
  std::vector<CsvRow> rows;
  rows.push_back({"source", "component", "value"});
  for (const DataSource& source : sources.sources()) {
    for (const ComponentId component : source.SortedComponents()) {
      std::ostringstream value;
      value.precision(17);
      value << source.Value(component).value();
      rows.push_back(
          {source.name(), std::to_string(component), value.str()});
    }
  }
  return FormatCsv(rows);
}

Result<SourceSet> SourceSetFromCsv(const std::string& csv_text) {
  VASTATS_ASSIGN_OR_RETURN(const std::vector<CsvRow> rows,
                           ParseCsv(csv_text));
  if (rows.empty() || rows[0].size() != 3 || rows[0][0] != "source" ||
      rows[0][1] != "component" || rows[0][2] != "value") {
    return Status::InvalidArgument(
        "source set CSV must start with header 'source,component,value'");
  }
  SourceSet sources;
  std::unordered_map<std::string, int> source_index;
  for (size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    if (row.size() != 3) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + " has " + std::to_string(row.size()) +
          " fields, expected 3 (source,component,value)");
    }
    if (row[0].empty()) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     ", column 'source': empty source name");
    }
    const auto component = ParseComponentId(row[1]);
    if (!component.ok()) {
      return RowContext(r, "component", component.status());
    }
    const auto value = ParseDouble(row[2]);
    if (!value.ok()) return RowContext(r, "value", value.status());

    int index;
    const auto it = source_index.find(row[0]);
    if (it == source_index.end()) {
      index = sources.AddSource(DataSource(row[0]));
      source_index[row[0]] = index;
    } else {
      index = it->second;
    }
    if (sources.source(index).Has(*component)) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + ": duplicate binding for source '" +
          row[0] + "', component " + row[1]);
    }
    sources.mutable_source(index).Bind(*component, *value);
  }
  return sources;
}

Status WriteSourceSet(const std::string& path, const SourceSet& sources) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for write: " + path);
  out << SourceSetToCsv(sources);
  if (!out) return Status::Internal("error writing: " + path);
  return Status::Ok();
}

Result<SourceSet> ReadSourceSet(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open source set CSV: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return SourceSetFromCsv(buffer.str());
}

}  // namespace vastats
