// Hierarchical aggregation network — the distributed substrate the paper's
// system runs on ([25]'s decomposition aggregation queries; the §6
// comparison with sensor networks speaks of "the hierarchical aggregate
// network in our case"). Sources are leaves of a mediator-rooted tree;
// the query is decomposed downwards and *partial* aggregates flow back up,
// which is why "partial-final aggregates helps to distribute the
// computational load of each aggregation" (§4.2).
//
// The tree and its per-edge latencies are simulated, so the economics of
// hierarchical vs flat evaluation (message counts, transferred state,
// critical-path latency) can be measured deterministically — including the
// algebraic-vs-holistic contrast: algebraic aggregates ship O(1) state per
// edge, the holistic median ships its whole value buffer.

#ifndef VASTATS_INTEGRATION_HIERARCHY_H_
#define VASTATS_INTEGRATION_HIERARCHY_H_

#include <vector>

#include "datagen/source_set.h"
#include "stats/aggregate_query.h"
#include "sampling/query_processor.h"
#include "util/random.h"
#include "util/status.h"

namespace vastats {

struct HierarchyOptions {
  // Children per internal node (>= 2).
  int fanout = 4;
  // Per-edge latency: base plus a deterministic per-edge factor drawn once
  // at build time from exp(N(0, latency_sigma)).
  double edge_latency_ms = 10.0;
  double latency_sigma = 0.3;
  uint64_t seed = 13;

  Status Validate() const;
};

// Cost accounting of one evaluation.
struct HierarchyEvaluation {
  // The final aggregate (always equal to a flat evaluation of the same
  // assignment — checked by the tests).
  double value = 0.0;
  // Edges that carried a (non-empty) partial aggregate upwards.
  int messages = 0;
  // Scalars shipped upwards in the hierarchical plan: O(1) per message for
  // algebraic aggregates, buffered values for holistic ones.
  int state_transferred = 0;
  // Scalars the flat plan ships (every contributing leaf sends its raw
  // values straight to the mediator): exactly |C|.
  int flat_transferred = 0;
  // Simulated completion time: along each leaf-to-root path, a node can
  // forward only after its slowest contributing child arrived.
  double critical_path_ms = 0.0;
};

class AggregationHierarchy {
 public:
  // Builds a balanced tree whose leaves are the sources 0..num_sources-1.
  static Result<AggregationHierarchy> Build(int num_sources,
                                            const HierarchyOptions& options);

  int num_sources() const { return num_sources_; }
  int NumNodes() const { return static_cast<int>(parent_.size()); }
  int Depth() const;

  // Evaluates `query` under `assignment` (component i supplied by source
  // assignment[i]) by pushing partial aggregates up the tree.
  Result<HierarchyEvaluation> EvaluateAssignment(
      const SourceSet& sources, const AggregateQuery& query,
      const Assignment& assignment) const;

  // The node id of source `s`'s leaf (diagnostics/tests).
  int LeafNode(int source) const {
    return leaf_of_source_[static_cast<size_t>(source)];
  }
  int root() const { return root_; }

 private:
  AggregationHierarchy() = default;

  int num_sources_ = 0;
  int root_ = 0;
  std::vector<int> parent_;           // parent_[root_] == -1
  std::vector<double> edge_latency_;  // edge to parent, per node
  std::vector<int> leaf_of_source_;   // source index -> node id
};

}  // namespace vastats

#endif  // VASTATS_INTEGRATION_HIERARCHY_H_
