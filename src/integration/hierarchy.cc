#include "integration/hierarchy.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <unordered_map>

namespace vastats {

Status HierarchyOptions::Validate() const {
  if (fanout < 2) {
    return Status::InvalidArgument("HierarchyOptions.fanout must be >= 2");
  }
  if (!(edge_latency_ms >= 0.0) || latency_sigma < 0.0) {
    return Status::InvalidArgument("latency parameters must be >= 0");
  }
  return Status::Ok();
}

Result<AggregationHierarchy> AggregationHierarchy::Build(
    int num_sources, const HierarchyOptions& options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (num_sources < 1) {
    return Status::InvalidArgument("Build requires >= 1 source");
  }
  AggregationHierarchy hierarchy;
  hierarchy.num_sources_ = num_sources;
  Rng rng(options.seed);

  // Leaves first; then group `fanout` nodes under fresh parents until one
  // root remains. Node ids are allocated in creation order.
  std::vector<int> level(static_cast<size_t>(num_sources));
  hierarchy.leaf_of_source_.resize(static_cast<size_t>(num_sources));
  for (int s = 0; s < num_sources; ++s) {
    level[static_cast<size_t>(s)] = s;
    hierarchy.leaf_of_source_[static_cast<size_t>(s)] = s;
  }
  hierarchy.parent_.assign(static_cast<size_t>(num_sources), -1);
  hierarchy.edge_latency_.assign(static_cast<size_t>(num_sources), 0.0);

  while (level.size() > 1) {
    std::vector<int> next;
    for (size_t begin = 0; begin < level.size();
         begin += static_cast<size_t>(options.fanout)) {
      const size_t end = std::min(
          begin + static_cast<size_t>(options.fanout), level.size());
      if (end - begin == 1 && !next.empty()) {
        // Lone remainder: attach to the previous new parent instead of
        // creating a chain of single-child nodes.
        hierarchy.parent_[static_cast<size_t>(level[begin])] = next.back();
        hierarchy.edge_latency_[static_cast<size_t>(level[begin])] =
            options.edge_latency_ms *
            std::exp(rng.Normal(0.0, options.latency_sigma));
        continue;
      }
      const int parent = static_cast<int>(hierarchy.parent_.size());
      hierarchy.parent_.push_back(-1);
      hierarchy.edge_latency_.push_back(0.0);
      for (size_t i = begin; i < end; ++i) {
        hierarchy.parent_[static_cast<size_t>(level[i])] = parent;
        hierarchy.edge_latency_[static_cast<size_t>(level[i])] =
            options.edge_latency_ms *
            std::exp(rng.Normal(0.0, options.latency_sigma));
      }
      next.push_back(parent);
    }
    level = std::move(next);
  }
  hierarchy.root_ = level.front();
  return hierarchy;
}

int AggregationHierarchy::Depth() const {
  int depth = 0;
  for (int s = 0; s < num_sources_; ++s) {
    int node = LeafNode(s);
    int hops = 0;
    while (parent_[static_cast<size_t>(node)] >= 0) {
      node = parent_[static_cast<size_t>(node)];
      ++hops;
    }
    depth = std::max(depth, hops);
  }
  return depth;
}

Result<HierarchyEvaluation> AggregationHierarchy::EvaluateAssignment(
    const SourceSet& sources, const AggregateQuery& query,
    const Assignment& assignment) const {
  VASTATS_RETURN_IF_ERROR(query.Validate());
  if (assignment.size() != query.components.size()) {
    return Status::InvalidArgument("assignment arity mismatch");
  }

  // Per-node partial aggregate (created on demand) and arrival time.
  std::unordered_map<int, std::unique_ptr<PartialAggregator>> partials;
  std::unordered_map<int, double> ready_ms;
  auto partial_of = [&](int node) -> PartialAggregator& {
    auto& slot = partials[node];
    if (slot == nullptr) slot = NewAggregator(query.kind, query.quantile_q);
    return *slot;
  };

  HierarchyEvaluation evaluation;
  evaluation.flat_transferred = static_cast<int>(query.components.size());

  // Load the leaves from the assignment.
  for (size_t i = 0; i < assignment.size(); ++i) {
    const int source = assignment[i];
    if (source < 0 || source >= num_sources_) {
      return Status::OutOfRange("assignment names invalid source " +
                                std::to_string(source));
    }
    VASTATS_ASSIGN_OR_RETURN(
        const double value,
        sources.source(source).Value(query.components[i]));
    partial_of(LeafNode(source)).Add(value);
  }

  // Push partials upward in node-id order. Parents are always created
  // after their children... except the leaves (ids 0..n-1) whose parents
  // have larger ids too, so ascending id order is a valid schedule.
  const bool algebraic = IsAlgebraic(query.kind);
  for (int node = 0; node < NumNodes(); ++node) {
    const auto it = partials.find(node);
    if (it == partials.end() || node == root_) continue;
    const int parent = parent_[static_cast<size_t>(node)];
    VASTATS_RETURN_IF_ERROR(partial_of(parent).Merge(*it->second));
    ++evaluation.messages;
    evaluation.state_transferred +=
        algebraic ? 3 : static_cast<int>(it->second->Count());
    const double arrival = ready_ms[node] +
                           edge_latency_[static_cast<size_t>(node)];
    ready_ms[parent] = std::max(ready_ms[parent], arrival);
  }

  const auto root_it = partials.find(root_);
  if (root_it == partials.end()) {
    return Status::Internal("no data reached the mediator");
  }
  VASTATS_ASSIGN_OR_RETURN(evaluation.value, root_it->second->Finalize());
  evaluation.critical_path_ms = ready_ms[root_];
  return evaluation;
}

}  // namespace vastats
