// Grouped aggregate queries over the mediated schema — the query shape of
// the paper's introduction:
//
//   SELECT Average(Temp), Month(Date), Province(Location)
//   FROM SemIS
//   GROUP BY Province(Location), Month(Date)
//   HAVING Average(Temp) > 20
//
// A GroupedAggregateQuery partitions the component universe into groups
// (one per GROUP BY key) and evaluates the aggregate per group. In the
// viable-answer setting each group's answer is a *distribution*, so the
// HAVING predicate is itself probabilistic: a group may satisfy it for some
// source combinations and not others. The evaluator therefore reports, per
// group, the full answer statistics plus the probability that the HAVING
// predicate holds (the fraction of viable answers passing it).

#ifndef VASTATS_INTEGRATION_GROUPED_QUERY_H_
#define VASTATS_INTEGRATION_GROUPED_QUERY_H_

#include <string>
#include <vector>

#include "stats/aggregate_query.h"
#include "util/status.h"

namespace vastats {

// One GROUP BY bucket: a key (e.g. "BC/June") and the components whose
// values feed this group's aggregate.
struct QueryGroup {
  std::string key;
  std::vector<ComponentId> components;
};

// Comparison operator of the HAVING clause.
enum class HavingComparator { kGreater, kGreaterEqual, kLess, kLessEqual };

struct HavingClause {
  // Aggregate the predicate applies to (usually the SELECT aggregate).
  AggregateKind aggregate = AggregateKind::kAverage;
  HavingComparator comparator = HavingComparator::kGreater;
  double threshold = 0.0;

  // Evaluates the predicate on a single aggregate value.
  bool Test(double value) const;
};

struct GroupedAggregateQuery {
  std::string name;
  AggregateKind aggregate = AggregateKind::kAverage;
  std::vector<QueryGroup> groups;
  // Optional HAVING clause; inactive when `has_having` is false.
  bool has_having = false;
  HavingClause having;

  Status Validate() const;

  // The flat AggregateQuery for one group (for feeding samplers/extractors).
  AggregateQuery GroupQuery(size_t group_index) const;
};

// Convenience builder: groups components by an integer key function applied
// to the component id (e.g. "month of component" for climate data).
GroupedAggregateQuery GroupComponentsBy(
    std::string name, AggregateKind aggregate,
    const std::vector<ComponentId>& components,
    const std::vector<std::string>& keys);

}  // namespace vastats

#endif  // VASTATS_INTEGRATION_GROUPED_QUERY_H_
