// The mediated schema and mapping meta-information the paper assumes
// exists (§1/§3, citing [25]): before value-level heterogeneity can even be
// studied, schema-level heterogeneity ("temp" vs "temperature") and
// instance-level heterogeneity ("Vancouver Weather 2006/06/11" vs
// "06/11/2006") must be resolved. This module holds that meta-information:
//
//  * attribute synonyms mapping source-local column names onto canonical
//    mediated attributes;
//  * an entity dictionary mapping source-local entity spellings onto
//    canonical entities;
//  * date normalization covering the formats of the paper's Figure 1
//    ("10-June-06", "06/10/06", ISO "2006-06-10");
//  * a deterministic ComponentId assignment for each resolved
//    (attribute, entity, day) triple, with reverse lookup.

#ifndef VASTATS_INTEGRATION_MEDIATED_SCHEMA_H_
#define VASTATS_INTEGRATION_MEDIATED_SCHEMA_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "datagen/component.h"
#include "util/status.h"

namespace vastats {

// A calendar day; the normalization target for all source date formats.
struct CivilDay {
  int year = 0;   // four digits
  int month = 0;  // 1..12
  int day = 0;    // 1..31

  // Days since a fixed epoch; total order and compact encoding.
  int64_t Ordinal() const;

  friend bool operator==(const CivilDay& a, const CivilDay& b) {
    return a.year == b.year && a.month == b.month && a.day == b.day;
  }
};

// Parses "10-June-06", "10-Jun-06", "06/10/06" (month/day/yy),
// "2006-06-10", and "06/10/2006". Two-digit years are 20xx below 70,
// 19xx otherwise. Month names are case-insensitive.
Result<CivilDay> ParseDate(std::string_view text);

// The mediated schema: canonical attributes and entities plus the synonym /
// alias tables that map source vocabularies onto them.
class MediatedSchema {
 public:
  MediatedSchema() = default;

  // Declares a canonical attribute (e.g. "temperature"); returns its index.
  // Re-declaring an existing attribute returns the existing index.
  int DeclareAttribute(const std::string& canonical);

  // Maps a source-local attribute name onto a canonical one (e.g.
  // "Avg Temp" -> "temperature"). The canonical attribute is declared on
  // demand.
  void AddAttributeSynonym(const std::string& source_name,
                           const std::string& canonical);

  // Declares a canonical entity (e.g. "vancouver"); returns its index.
  int DeclareEntity(const std::string& canonical);

  // Maps a source-local entity spelling onto a canonical entity.
  void AddEntityAlias(const std::string& alias, const std::string& canonical);

  // Resolution: source vocabulary -> canonical index. Lookup is
  // case-insensitive and whitespace-trimmed; unmapped names resolve to a
  // NotFound status.
  Result<int> ResolveAttribute(std::string_view source_name) const;
  Result<int> ResolveEntity(std::string_view source_name) const;

  const std::vector<std::string>& attributes() const { return attributes_; }
  const std::vector<std::string>& entities() const { return entities_; }

  // Deterministic component id for a resolved (attribute, entity, day).
  ComponentId ComponentFor(int attribute, int entity,
                           const CivilDay& day) const;

  // Reverse lookup of ComponentFor; NotFound for ids this schema never
  // produced.
  Result<ComponentInfo> Describe(ComponentId id) const;

 private:
  static std::string Normalize(std::string_view text);

  std::vector<std::string> attributes_;
  std::vector<std::string> entities_;
  std::unordered_map<std::string, int> attribute_index_;
  std::unordered_map<std::string, int> entity_index_;
  // Remembers issued ids for Describe().
  mutable std::unordered_map<ComponentId, ComponentInfo> issued_;
};

}  // namespace vastats

#endif  // VASTATS_INTEGRATION_MEDIATED_SCHEMA_H_
