#include "integration/cost_model.h"

#include <cmath>
#include <string>

namespace vastats {

Status SourceCostModelOptions::Validate() const {
  if (!(base_ms >= 0.0) || !(per_component_ms >= 0.0)) {
    return Status::InvalidArgument("cost components must be >= 0");
  }
  if (jitter_sigma < 0.0 || source_sigma < 0.0) {
    return Status::InvalidArgument("sigmas must be >= 0");
  }
  return Status::Ok();
}

Result<SourceCostModel> SourceCostModel::Create(
    int num_sources, const SourceCostModelOptions& options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (num_sources <= 0) {
    return Status::InvalidArgument("num_sources must be > 0");
  }
  Rng rng(options.seed);
  std::vector<double> multipliers(static_cast<size_t>(num_sources));
  for (double& multiplier : multipliers) {
    multiplier = std::exp(rng.Normal(0.0, options.source_sigma));
  }
  return SourceCostModel(options, std::move(multipliers));
}

Result<double> SourceCostModel::SourceMultiplier(int source) const {
  if (source < 0 || source >= num_sources()) {
    return Status::OutOfRange("source index " + std::to_string(source) +
                              " outside the cost model");
  }
  return multipliers_[static_cast<size_t>(source)];
}

Result<double> SourceCostModel::VisitCost(int source, int components_taken,
                                          Rng& rng) const {
  VASTATS_ASSIGN_OR_RETURN(const double multiplier,
                           SourceMultiplier(source));
  if (components_taken < 0) {
    return Status::InvalidArgument("components_taken must be >= 0");
  }
  const double jitter = std::exp(rng.Normal(0.0, options_.jitter_sigma));
  return (options_.base_ms * multiplier +
          options_.per_component_ms * components_taken) *
         jitter;
}

Result<CostAwareSampler> CostAwareSampler::Create(
    const UniSSampler* sampler, const SourceCostModel* model) {
  if (sampler == nullptr || model == nullptr) {
    return Status::InvalidArgument(
        "CostAwareSampler needs a sampler and a cost model");
  }
  if (model->num_sources() < sampler->sources().NumSources()) {
    return Status::InvalidArgument(
        "cost model covers fewer sources than the sampler uses");
  }
  return CostAwareSampler(sampler, model);
}

Result<CostedSample> CostAwareSampler::SampleOne(Rng& rng) const {
  VASTATS_ASSIGN_OR_RETURN(const UniSSample sample,
                           sampler_->SampleOne(rng));
  CostedSample costed;
  costed.value = sample.value;
  costed.sources_visited = sample.sources_visited;
  for (const UniSVisit& visit : sample.visits) {
    VASTATS_ASSIGN_OR_RETURN(
        const double cost,
        model_->VisitCost(visit.source, visit.components_taken, rng));
    costed.cost_ms += cost;
  }
  return costed;
}

Result<CostedSampleBatch> CostAwareSampler::SampleWithBudget(
    double budget_ms, int max_n, Rng& rng) const {
  if (!(budget_ms > 0.0)) {
    return Status::InvalidArgument("budget_ms must be > 0");
  }
  if (max_n < 0) return Status::InvalidArgument("max_n must be >= 0");
  CostedSampleBatch batch;
  while (max_n == 0 || static_cast<int>(batch.values.size()) < max_n) {
    VASTATS_ASSIGN_OR_RETURN(const CostedSample sample, SampleOne(rng));
    if (batch.total_cost_ms + sample.cost_ms > budget_ms &&
        !batch.values.empty()) {
      batch.budget_exhausted = true;
      break;
    }
    batch.total_cost_ms += sample.cost_ms;
    batch.values.push_back(sample.value);
    if (batch.total_cost_ms >= budget_ms) {
      batch.budget_exhausted = true;
      break;
    }
  }
  return batch;
}

}  // namespace vastats
