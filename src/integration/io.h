// Persistence for source sets: a simple CSV interchange format so mediator
// deployments (and the bundled CLI example) can load real binding tables.
//
// Format: a header row `source,component,value`, then one row per binding.
// Source names are free-form strings; components are integer ids; values
// are decimal numbers. Rows of the same source may be scattered; source
// order of first appearance is preserved.

#ifndef VASTATS_INTEGRATION_IO_H_
#define VASTATS_INTEGRATION_IO_H_

#include <string>

#include "datagen/source_set.h"
#include "util/status.h"

namespace vastats {

// Renders `sources` in the interchange format.
std::string SourceSetToCsv(const SourceSet& sources);

// Parses the interchange format. Fails with InvalidArgument on a malformed
// header, non-numeric fields, or duplicate (source, component) rows.
Result<SourceSet> SourceSetFromCsv(const std::string& csv_text);

// File wrappers.
Status WriteSourceSet(const std::string& path, const SourceSet& sources);
Result<SourceSet> ReadSourceSet(const std::string& path);

}  // namespace vastats

#endif  // VASTATS_INTEGRATION_IO_H_
