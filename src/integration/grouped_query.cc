#include "integration/grouped_query.h"

#include <unordered_map>

namespace vastats {

bool HavingClause::Test(double value) const {
  switch (comparator) {
    case HavingComparator::kGreater:
      return value > threshold;
    case HavingComparator::kGreaterEqual:
      return value >= threshold;
    case HavingComparator::kLess:
      return value < threshold;
    case HavingComparator::kLessEqual:
      return value <= threshold;
  }
  return false;
}

Status GroupedAggregateQuery::Validate() const {
  if (groups.empty()) {
    return Status::InvalidArgument("grouped query '" + name +
                                   "' has no groups");
  }
  for (const QueryGroup& group : groups) {
    if (group.components.empty()) {
      return Status::InvalidArgument("group '" + group.key +
                                     "' has no components");
    }
  }
  return Status::Ok();
}

AggregateQuery GroupedAggregateQuery::GroupQuery(size_t group_index) const {
  const QueryGroup& group = groups[group_index];
  AggregateQuery query;
  query.name = name + "/" + group.key;
  query.kind = aggregate;
  query.components = group.components;
  return query;
}

GroupedAggregateQuery GroupComponentsBy(
    std::string name, AggregateKind aggregate,
    const std::vector<ComponentId>& components,
    const std::vector<std::string>& keys) {
  GroupedAggregateQuery query;
  query.name = std::move(name);
  query.aggregate = aggregate;
  std::unordered_map<std::string, size_t> index;
  for (size_t i = 0; i < components.size() && i < keys.size(); ++i) {
    const auto it = index.find(keys[i]);
    if (it == index.end()) {
      index[keys[i]] = query.groups.size();
      query.groups.push_back(QueryGroup{keys[i], {components[i]}});
    } else {
      query.groups[it->second].components.push_back(components[i]);
    }
  }
  return query;
}

}  // namespace vastats
