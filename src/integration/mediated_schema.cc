#include "integration/mediated_schema.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace vastats {
namespace {

constexpr const char* kMonthNames[12] = {
    "january", "february", "march",     "april",   "may",      "june",
    "july",    "august",   "september", "october", "november", "december"};

// Days per month in a non-leap year.
constexpr int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};

bool IsLeap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

Status InvalidDate(std::string_view text) {
  return Status::InvalidArgument("unrecognized date: '" + std::string(text) +
                                 "'");
}

int ExpandTwoDigitYear(int yy) { return yy < 70 ? 2000 + yy : 1900 + yy; }

// Matches a (possibly abbreviated, case-insensitive) month name; 0 on miss.
int MonthFromName(const std::string& name) {
  if (name.size() < 3) return 0;
  for (int m = 0; m < 12; ++m) {
    const std::string& full = kMonthNames[m];
    if (name.size() > full.size()) continue;
    if (std::equal(name.begin(), name.end(), full.begin())) return m + 1;
  }
  return 0;
}

Result<CivilDay> ValidateDay(CivilDay day, std::string_view original) {
  if (day.month < 1 || day.month > 12) return InvalidDate(original);
  int max_day = kDaysInMonth[day.month - 1];
  if (day.month == 2 && IsLeap(day.year)) max_day = 29;
  if (day.day < 1 || day.day > max_day) return InvalidDate(original);
  if (day.year < 1000 || day.year > 9999) return InvalidDate(original);
  return day;
}

}  // namespace

int64_t CivilDay::Ordinal() const {
  // Days since 0000-03-01 (Howard Hinnant's civil-days algorithm).
  const int y = year - (month <= 2 ? 1 : 0);
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = static_cast<unsigned>(
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe);
}

Result<CivilDay> ParseDate(std::string_view text) {
  // Tokenize on '-', '/', and spaces.
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (c == '-' || c == '/' || c == ' ') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  if (tokens.size() != 3) return InvalidDate(text);

  auto is_number = [](const std::string& token) {
    return !token.empty() &&
           std::all_of(token.begin(), token.end(), [](unsigned char c) {
             return std::isdigit(c) != 0;
           });
  };
  auto to_int = [](const std::string& token) {
    return static_cast<int>(std::strtol(token.c_str(), nullptr, 10));
  };

  CivilDay day;
  if (is_number(tokens[0]) && !is_number(tokens[1]) && is_number(tokens[2])) {
    // "10-June-06" / "10 Jun 2006": day, month-name, year.
    day.day = to_int(tokens[0]);
    day.month = MonthFromName(tokens[1]);
    if (day.month == 0) return InvalidDate(text);
    const int y = to_int(tokens[2]);
    day.year = tokens[2].size() <= 2 ? ExpandTwoDigitYear(y) : y;
    return ValidateDay(day, text);
  }
  if (is_number(tokens[0]) && is_number(tokens[1]) && is_number(tokens[2])) {
    if (tokens[0].size() == 4) {
      // ISO "2006-06-10": year, month, day.
      day.year = to_int(tokens[0]);
      day.month = to_int(tokens[1]);
      day.day = to_int(tokens[2]);
      return ValidateDay(day, text);
    }
    // US "06/10/06" or "06/10/2006": month, day, year.
    day.month = to_int(tokens[0]);
    day.day = to_int(tokens[1]);
    const int y = to_int(tokens[2]);
    day.year = tokens[2].size() <= 2 ? ExpandTwoDigitYear(y) : y;
    return ValidateDay(day, text);
  }
  return InvalidDate(text);
}

std::string MediatedSchema::Normalize(std::string_view text) {
  // Trim and lowercase; collapse internal whitespace runs to one space.
  std::string out;
  bool pending_space = false;
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

int MediatedSchema::DeclareAttribute(const std::string& canonical) {
  const std::string key = Normalize(canonical);
  const auto it = attribute_index_.find(key);
  if (it != attribute_index_.end()) return it->second;
  const int index = static_cast<int>(attributes_.size());
  attributes_.push_back(key);
  attribute_index_[key] = index;
  return index;
}

void MediatedSchema::AddAttributeSynonym(const std::string& source_name,
                                         const std::string& canonical) {
  const int index = DeclareAttribute(canonical);
  attribute_index_[Normalize(source_name)] = index;
}

int MediatedSchema::DeclareEntity(const std::string& canonical) {
  const std::string key = Normalize(canonical);
  const auto it = entity_index_.find(key);
  if (it != entity_index_.end()) return it->second;
  const int index = static_cast<int>(entities_.size());
  entities_.push_back(key);
  entity_index_[key] = index;
  return index;
}

void MediatedSchema::AddEntityAlias(const std::string& alias,
                                    const std::string& canonical) {
  const int index = DeclareEntity(canonical);
  entity_index_[Normalize(alias)] = index;
}

Result<int> MediatedSchema::ResolveAttribute(
    std::string_view source_name) const {
  const auto it = attribute_index_.find(Normalize(source_name));
  if (it == attribute_index_.end()) {
    return Status::NotFound("unmapped attribute: '" +
                            std::string(source_name) + "'");
  }
  return it->second;
}

Result<int> MediatedSchema::ResolveEntity(std::string_view source_name) const {
  const auto it = entity_index_.find(Normalize(source_name));
  if (it == entity_index_.end()) {
    return Status::NotFound("unmapped entity: '" + std::string(source_name) +
                            "'");
  }
  return it->second;
}

ComponentId MediatedSchema::ComponentFor(int attribute, int entity,
                                         const CivilDay& day) const {
  // Layout: attribute * 1e13 + entity * 1e7 + day ordinal. Day ordinals for
  // years 1000..9999 fit comfortably in 1e7; entity counts in 1e6.
  const ComponentId id = static_cast<ComponentId>(attribute) *
                             10'000'000'000'000LL +
                         static_cast<ComponentId>(entity) * 10'000'000LL +
                         day.Ordinal();
  ComponentInfo info;
  info.id = id;
  if (attribute >= 0 && attribute < static_cast<int>(attributes_.size())) {
    info.attribute = attributes_[static_cast<size_t>(attribute)];
  }
  if (entity >= 0 && entity < static_cast<int>(entities_.size())) {
    info.entity = entities_[static_cast<size_t>(entity)];
  }
  info.time_key = std::to_string(day.year) + "-" +
                  (day.month < 10 ? "0" : "") + std::to_string(day.month) +
                  "-" + (day.day < 10 ? "0" : "") + std::to_string(day.day);
  issued_[id] = std::move(info);
  return id;
}

Result<ComponentInfo> MediatedSchema::Describe(ComponentId id) const {
  const auto it = issued_.find(id);
  if (it == issued_.end()) {
    return Status::NotFound("unknown component id " + std::to_string(id));
  }
  return it->second;
}

}  // namespace vastats
