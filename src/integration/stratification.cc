#include "integration/stratification.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace vastats {

Result<std::vector<SourceBias>> EstimateSourceBiases(
    const SourceSet& sources, std::span<const ComponentId> components) {
  if (components.empty()) {
    return Status::InvalidArgument(
        "EstimateSourceBiases needs a component scope");
  }
  const size_t num_sources = static_cast<size_t>(sources.NumSources());
  std::vector<std::vector<double>> deviations(num_sources);

  for (const ComponentId component : components) {
    const std::vector<int> covering = sources.Covering(component);
    if (covering.size() < 2) continue;
    std::vector<double> values;
    values.reserve(covering.size());
    for (const int s : covering) {
      VASTATS_ASSIGN_OR_RETURN(const double v,
                               sources.source(s).Value(component));
      values.push_back(v);
    }
    VASTATS_ASSIGN_OR_RETURN(const double consensus, Median(values));
    for (size_t i = 0; i < covering.size(); ++i) {
      deviations[static_cast<size_t>(covering[i])].push_back(values[i] -
                                                             consensus);
    }
  }

  std::vector<SourceBias> biases(num_sources);
  for (size_t s = 0; s < num_sources; ++s) {
    biases[s].source = static_cast<int>(s);
    biases[s].support = static_cast<int>(deviations[s].size());
    if (!deviations[s].empty()) {
      VASTATS_ASSIGN_OR_RETURN(biases[s].bias, Median(deviations[s]));
    }
  }
  return biases;
}

Result<StratificationResult> StratifySources(
    const SourceSet& sources, std::span<const ComponentId> components,
    const StratificationOptions& options) {
  if (!(options.gap > 0.0)) {
    return Status::InvalidArgument("StratificationOptions.gap must be > 0");
  }
  if (options.min_support < 1) {
    return Status::InvalidArgument(
        "StratificationOptions.min_support must be >= 1");
  }
  VASTATS_ASSIGN_OR_RETURN(const std::vector<SourceBias> biases,
                           EstimateSourceBiases(sources, components));

  StratificationResult result;
  std::vector<SourceBias> placeable;
  for (const SourceBias& bias : biases) {
    if (bias.support >= options.min_support) {
      placeable.push_back(bias);
    } else {
      result.unplaced.push_back(bias.source);
    }
  }
  if (placeable.empty()) return result;

  std::sort(placeable.begin(), placeable.end(),
            [](const SourceBias& a, const SourceBias& b) {
              return a.bias < b.bias;
            });

  // Single-linkage: a gap wider than `options.gap` splits strata.
  SourceStratum current;
  double bias_sum = 0.0;
  auto flush = [&]() {
    if (current.sources.empty()) return;
    current.bias_center =
        bias_sum / static_cast<double>(current.sources.size());
    result.strata.push_back(current);
    current = SourceStratum{};
    bias_sum = 0.0;
  };
  for (size_t i = 0; i < placeable.size(); ++i) {
    if (!current.sources.empty() &&
        placeable[i].bias - placeable[i - 1].bias > options.gap) {
      flush();
    }
    if (current.sources.empty()) {
      current.bias_min = placeable[i].bias;
    }
    current.sources.push_back(placeable[i].source);
    current.bias_max = placeable[i].bias;
    bias_sum += placeable[i].bias;
  }
  flush();
  return result;
}

}  // namespace vastats
