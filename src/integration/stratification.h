// Source stratification — the last future-work item of §7: "using data
// stratification we can identify homogeneous data sources that apply
// similar semantics in their computations."
//
// Sources that apply the same semantics (same units, same aggregation
// window, same rounding) sit at a common systematic offset from the
// per-component consensus. Estimating each source's offset and clustering
// the offsets therefore recovers the semantic strata — e.g. the Celsius
// majority vs the Fahrenheit stragglers, or year-window vs half-year-window
// reporters.

#ifndef VASTATS_INTEGRATION_STRATIFICATION_H_
#define VASTATS_INTEGRATION_STRATIFICATION_H_

#include <span>
#include <vector>

#include "datagen/source_set.h"
#include "util/status.h"

namespace vastats {

// A source's estimated systematic offset from consensus.
struct SourceBias {
  int source = 0;
  // Median of (source value - per-component consensus) over the scored
  // bindings; 0 for sources with no overlap.
  double bias = 0.0;
  // Number of components the estimate is based on.
  int support = 0;
};

// One semantic stratum: sources whose biases cluster together.
struct SourceStratum {
  std::vector<int> sources;
  double bias_center = 0.0;  // mean bias of the members
  double bias_min = 0.0;
  double bias_max = 0.0;
};

struct StratificationOptions {
  // Two adjacent (sorted-by-bias) sources belong to different strata when
  // their biases differ by more than `gap`. Chosen relative to the data's
  // noise level; must be > 0.
  double gap = 1.0;
  // Sources with fewer scored components than this are left out of the
  // strata (their bias estimate is unreliable) and reported separately.
  int min_support = 3;
};

// Estimates each source's systematic bias against the per-component median
// over `components`. Sources binding none of the components get support 0.
Result<std::vector<SourceBias>> EstimateSourceBiases(
    const SourceSet& sources, std::span<const ComponentId> components);

struct StratificationResult {
  // Strata ordered by bias_center ascending; the largest stratum is usually
  // the "mainstream semantics" one.
  std::vector<SourceStratum> strata;
  // Sources with insufficient overlap to place.
  std::vector<int> unplaced;
};

// Single-linkage clustering of the biases with the given gap threshold.
Result<StratificationResult> StratifySources(
    const SourceSet& sources, std::span<const ComponentId> components,
    const StratificationOptions& options = {});

}  // namespace vastats

#endif  // VASTATS_INTEGRATION_STRATIFICATION_H_
