#include "integration/record_mapper.h"

#include <utility>

namespace vastats {
namespace {

std::string UnitKey(const std::string& source, int attribute) {
  return source + "\x1f" + std::to_string(attribute);
}

}  // namespace

UnitConverter FahrenheitToCelsius() {
  return [](double fahrenheit) { return (fahrenheit - 32.0) * 5.0 / 9.0; };
}

UnitConverter IdentityUnit() {
  return [](double value) { return value; };
}

UnitConverter LinearUnit(double scale, double offset) {
  return [scale, offset](double value) { return value * scale + offset; };
}

Status RecordMapper::DeclareSourceUnit(const std::string& source,
                                       const std::string& canonical_attribute,
                                       UnitConverter converter) {
  if (schema_ == nullptr) {
    return Status::FailedPrecondition("mapper has no schema");
  }
  if (!converter) {
    return Status::InvalidArgument("unit converter must be callable");
  }
  VASTATS_ASSIGN_OR_RETURN(const int attribute,
                           schema_->ResolveAttribute(canonical_attribute));
  unit_converters_[UnitKey(source, attribute)] = std::move(converter);
  return Status::Ok();
}

Result<SourceSet> RecordMapper::MapRecords(
    const std::vector<RawRecord>& records, MapperReport* report,
    bool strict) const {
  if (schema_ == nullptr) {
    return Status::FailedPrecondition("mapper has no schema");
  }
  SourceSet sources;
  std::unordered_map<std::string, int> source_index;
  MapperReport local_report;
  MapperReport& out = report != nullptr ? *report : local_report;

  for (const RawRecord& record : records) {
    // Resolve the three dimensions of heterogeneity in turn.
    const auto attribute = schema_->ResolveAttribute(record.attribute);
    const auto entity = schema_->ResolveEntity(record.entity);
    const auto day = ParseDate(record.date);
    Status failure;
    if (!attribute.ok()) {
      failure = attribute.status();
    } else if (!entity.ok()) {
      failure = entity.status();
    } else if (!day.ok()) {
      failure = day.status();
    }
    if (!failure.ok()) {
      if (strict) return failure;
      out.skipped.push_back(record.source + "/" + record.entity + "/" +
                            record.date + ": " + failure.ToString());
      continue;
    }

    int index;
    const auto it = source_index.find(record.source);
    if (it == source_index.end()) {
      index = sources.AddSource(DataSource(record.source));
      source_index[record.source] = index;
    } else {
      index = it->second;
    }

    double value = record.value;
    const auto converter_it =
        unit_converters_.find(UnitKey(record.source, attribute.value()));
    if (converter_it != unit_converters_.end()) {
      value = converter_it->second(value);
    }

    const ComponentId component = schema_->ComponentFor(
        attribute.value(), entity.value(), day.value());
    if (sources.source(index).Has(component)) ++out.duplicate_bindings;
    sources.mutable_source(index).Bind(component, value);
    ++out.mapped_records;
  }
  return sources;
}

}  // namespace vastats
