// Synthetic value distributions from Table 1 of the paper's empirical study:
//   D2 — a mixture of four Gaussians, means in [10,20], [25,35], [40,50],
//        [55,65], sigma = 0.5, weights 12:5:2:1;
//   D3 — a mixture of a Gaussian (sigma = 1), a Cauchy (undefined variance;
//        the table's sigma = inf), and a Gamma (sigma = 1).
// Component centers inside the listed ranges are drawn once, from the seed,
// at construction.

#ifndef VASTATS_DATAGEN_DISTRIBUTIONS_H_
#define VASTATS_DATAGEN_DISTRIBUTIONS_H_

#include <memory>
#include <utility>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace vastats {

// A sampleable scalar distribution.
class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual double Sample(Rng& rng) const = 0;
};

class NormalDistribution : public Distribution {
 public:
  NormalDistribution(double mean, double sigma) : mean_(mean), sigma_(sigma) {}
  double Sample(Rng& rng) const override { return rng.Normal(mean_, sigma_); }

 private:
  double mean_;
  double sigma_;
};

// Cauchy, optionally truncated to [location - clip, location + clip] by
// resampling (clip <= 0 disables truncation). Truncation keeps synthetic
// aggregates finite-ranged without destroying the heavy-tailed shape.
class CauchyDistribution : public Distribution {
 public:
  CauchyDistribution(double location, double scale, double clip = 0.0)
      : location_(location), scale_(scale), clip_(clip) {}
  double Sample(Rng& rng) const override;

 private:
  double location_;
  double scale_;
  double clip_;
};

// Gamma with the given shape/scale, shifted by `offset`.
class GammaDistribution : public Distribution {
 public:
  GammaDistribution(double shape, double scale, double offset = 0.0)
      : shape_(shape), scale_(scale), offset_(offset) {}
  double Sample(Rng& rng) const override {
    return offset_ + rng.Gamma(shape_, scale_);
  }

 private:
  double shape_;
  double scale_;
  double offset_;
};

class UniformDistribution : public Distribution {
 public:
  UniformDistribution(double lo, double hi) : lo_(lo), hi_(hi) {}
  double Sample(Rng& rng) const override { return rng.Uniform(lo_, hi_); }

 private:
  double lo_;
  double hi_;
};

// A weighted mixture of distributions.
class MixtureDistribution : public Distribution {
 public:
  // Adds a component with the given non-negative weight (weights are
  // normalized internally).
  void AddComponent(double weight, std::unique_ptr<Distribution> component);

  size_t NumComponents() const { return components_.size(); }

  // Samples a component proportionally to its weight, then samples it.
  // Requires >= 1 component with positive total weight.
  double Sample(Rng& rng) const override;

 private:
  std::vector<std::pair<double, std::unique_ptr<Distribution>>> components_;
  double total_weight_ = 0.0;
};

// Table 1's D2: four Gaussians, weights 12:5:2:1, sigma 0.5, means drawn
// uniformly from the listed ranges using `seed`.
std::unique_ptr<MixtureDistribution> MakeD2(uint64_t seed);

// Table 1's D3: Gaussian (mu in [10,20], sigma 1) + Cauchy (sigma = inf;
// truncated at +-60 around its location for bounded synthetic ranges) +
// Gamma (sigma = 1), equally weighted.
std::unique_ptr<MixtureDistribution> MakeD3(uint64_t seed);

}  // namespace vastats

#endif  // VASTATS_DATAGEN_DISTRIBUTIONS_H_
