#include "datagen/data_source.h"

#include <algorithm>

namespace vastats {

void DataSource::Bind(ComponentId component, double value) {
  bindings_[component] = value;
}

bool DataSource::Unbind(ComponentId component) {
  return bindings_.erase(component) > 0;
}

Result<double> DataSource::Value(ComponentId component) const {
  const auto it = bindings_.find(component);
  if (it == bindings_.end()) {
    return Status::NotFound("source '" + name_ +
                            "' has no binding for component " +
                            std::to_string(component));
  }
  return it->second;
}

std::vector<ComponentId> DataSource::SortedComponents() const {
  std::vector<ComponentId> ids;
  ids.reserve(bindings_.size());
  for (const auto& [id, value] : bindings_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<std::pair<ComponentId, double>> DataSource::SortedBindings()
    const {
  std::vector<std::pair<ComponentId, double>> entries;
  entries.reserve(bindings_.size());
  for (const auto& entry : bindings_) entries.push_back(entry);
  std::sort(entries.begin(), entries.end());
  return entries;
}

}  // namespace vastats
