#include "datagen/source_accessor.h"

#include <algorithm>
#include <utility>

namespace vastats {
namespace {

// Histogram buckets (simulated ms) for per-visit latency and per-retry
// backoff waits — doubling steps spanning sub-ms cache hits to multi-second
// outage-probe stalls.
constexpr double kLatencyBucketsMs[] = {0.5, 1, 2, 4,  8,   16,  32,
                                        64,  128, 256, 512, 1024, 4096};

uint8_t Severity(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return 0;
    case BreakerState::kHalfOpen:
      return 1;
    case BreakerState::kOpen:
      return 2;
  }
  return 0;
}

}  // namespace

std::string_view BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("RetryPolicy.max_attempts must be >= 1");
  }
  if (backoff_base_ms < 0.0) {
    return Status::InvalidArgument("backoff_base_ms must be >= 0");
  }
  if (backoff_multiplier < 1.0) {
    return Status::InvalidArgument("backoff_multiplier must be >= 1");
  }
  if (backoff_jitter < 0.0 || backoff_jitter > 1.0) {
    return Status::InvalidArgument("backoff_jitter must be in [0, 1]");
  }
  if (draw_deadline_ms < 0.0 || session_deadline_ms < 0.0) {
    return Status::InvalidArgument("deadline budgets must be >= 0");
  }
  return Status::Ok();
}

Status CircuitBreakerOptions::Validate() const {
  if (window < 1 || window > 64) {
    return Status::InvalidArgument(
        "CircuitBreakerOptions.window must be in [1, 64]");
  }
  if (min_samples < 1 || min_samples > window) {
    return Status::InvalidArgument("min_samples must be in [1, window]");
  }
  if (!(open_failure_rate > 0.0 && open_failure_rate <= 1.0)) {
    return Status::InvalidArgument("open_failure_rate must be in (0, 1]");
  }
  if (cooldown_ms < 0.0) {
    return Status::InvalidArgument("cooldown_ms must be >= 0");
  }
  if (half_open_successes < 1) {
    return Status::InvalidArgument("half_open_successes must be >= 1");
  }
  return Status::Ok();
}

int AccessStats::SourcesOpen() const {
  return static_cast<int>(
      std::count(breaker_severity.begin(), breaker_severity.end(), 2));
}

int AccessStats::SourcesHalfOpen() const {
  return static_cast<int>(
      std::count(breaker_severity.begin(), breaker_severity.end(), 1));
}

void AccessStats::Merge(const AccessStats& other) {
  visits += other.visits;
  attempts += other.attempts;
  retries += other.retries;
  transient_failures += other.transient_failures;
  failed_visits += other.failed_visits;
  breaker_open_skips += other.breaker_open_skips;
  corrupt_values_rejected += other.corrupt_values_rejected;
  breaker_transitions += other.breaker_transitions;
  deadline_truncated_draws += other.deadline_truncated_draws;
  virtual_ms += other.virtual_ms;
  backoff_ms += other.backoff_ms;
  if (breaker_severity.size() < other.breaker_severity.size()) {
    breaker_severity.resize(other.breaker_severity.size(), 0);
  }
  for (size_t s = 0; s < other.breaker_severity.size(); ++s) {
    breaker_severity[s] =
        std::max(breaker_severity[s], other.breaker_severity[s]);
  }
}

Result<SourceAccessor> SourceAccessor::Create(int num_sources,
                                              const FaultModel* model,
                                              RetryPolicy retry,
                                              CircuitBreakerOptions breaker) {
  if (num_sources <= 0) {
    return Status::InvalidArgument("SourceAccessor requires num_sources > 0");
  }
  if (model != nullptr && model->num_sources() < num_sources) {
    return Status::InvalidArgument(
        "FaultModel covers fewer sources than the accessor needs");
  }
  VASTATS_RETURN_IF_ERROR(retry.Validate());
  VASTATS_RETURN_IF_ERROR(breaker.Validate());
  return SourceAccessor(num_sources, model, retry, breaker);
}

AccessSession SourceAccessor::StartSession(MetricsRegistry* metrics,
                                           FlightRecorder* recorder,
                                           VisitTransport* transport) const {
  return AccessSession(this, metrics, recorder, transport);
}

AccessSession::AccessSession(const SourceAccessor* config,
                             MetricsRegistry* metrics,
                             FlightRecorder* recorder,
                             VisitTransport* transport)
    : config_(config),
      metrics_(metrics),
      recorder_(recorder),
      transport_(transport),
      breakers_(static_cast<size_t>(config->num_sources())) {
  if (recorder_ != nullptr) {
    transition_name_id_ = recorder_->InternName("breaker_transition");
  }
}

void AccessSession::BeginDraw(int64_t epoch) {
  epoch_ = epoch;
  next_auto_epoch_ = epoch + 1;
  draw_started_ms_ = clock_.NowMs();
}

int64_t AccessSession::BeginNextDraw() {
  BeginDraw(next_auto_epoch_);
  return epoch_;
}

void AccessSession::StageVisits(std::span<const int> order,
                                std::span<const int> counts) {
  if (transport_ != nullptr) {
    transport_->StageVisitOrder(epoch_, order, counts);
  }
}

bool AccessSession::DrawDeadlineExhausted() const {
  const double budget = config_->retry().draw_deadline_ms;
  if (budget <= 0.0) return SessionBudgetExhausted();
  return clock_.NowMs() - draw_started_ms_ >= budget ||
         SessionBudgetExhausted();
}

bool AccessSession::SessionBudgetExhausted() const {
  const double budget = config_->retry().session_deadline_ms;
  return budget > 0.0 && clock_.NowMs() >= budget;
}

void AccessSession::TransitionTo(Breaker& breaker, BreakerState next) {
  if (breaker.state == next) return;
  if (recorder_ != nullptr) {
    // Breakers live in the session-owned vector, so the index recovers the
    // source id without widening every call site's signature.
    const int source = static_cast<int>(&breaker - breakers_.data());
    recorder_->Record(
        FlightEventKind::kBreakerTransition, transition_name_id_,
        clock_.NowMs(),
        PackBreakerTransition(source, static_cast<int>(breaker.state),
                              static_cast<int>(next)));
  }
  breaker.state = next;
  ++stats_.breaker_transitions;
}

void AccessSession::PushWindow(Breaker& breaker, bool failure) {
  const CircuitBreakerOptions& options = config_->breaker();
  const uint64_t evict_mask = uint64_t{1}
                              << (static_cast<unsigned>(options.window) - 1);
  if (breaker.window_size == options.window) {
    if ((breaker.window_bits & evict_mask) != 0) --breaker.window_failures;
  } else {
    ++breaker.window_size;
  }
  breaker.window_bits = (breaker.window_bits << 1) & ((evict_mask << 1) - 1);
  if (failure) {
    breaker.window_bits |= 1;
    ++breaker.window_failures;
  }
}

void AccessSession::RecordOutcome(int source, bool success) {
  Breaker& breaker = breakers_[static_cast<size_t>(source)];
  const CircuitBreakerOptions& options = config_->breaker();
  switch (breaker.state) {
    case BreakerState::kHalfOpen:
      if (success) {
        if (++breaker.half_open_successes >= options.half_open_successes) {
          // Probe quota met: close and start from a clean window.
          TransitionTo(breaker, BreakerState::kClosed);
          breaker.window_bits = 0;
          breaker.window_size = 0;
          breaker.window_failures = 0;
        }
      } else {
        // A failing probe re-opens immediately for another cooldown.
        TransitionTo(breaker, BreakerState::kOpen);
        breaker.reopen_at_ms = clock_.NowMs() + options.cooldown_ms;
        breaker.half_open_successes = 0;
      }
      break;
    case BreakerState::kClosed: {
      PushWindow(breaker, !success);
      const double rate = static_cast<double>(breaker.window_failures) /
                          static_cast<double>(breaker.window_size);
      if (breaker.window_size >= options.min_samples &&
          rate >= options.open_failure_rate) {
        TransitionTo(breaker, BreakerState::kOpen);
        breaker.reopen_at_ms = clock_.NowMs() + options.cooldown_ms;
        breaker.half_open_successes = 0;
      }
      break;
    }
    case BreakerState::kOpen:
      // Unreachable from Visit (open sources are skipped or probed via
      // half-open), kept total for safety.
      break;
  }
}

AccessSession::VisitOutcome AccessSession::Visit(int source,
                                                 int num_components) {
  VisitOutcome outcome;
  Breaker& breaker = breakers_[static_cast<size_t>(source)];
  if (breaker.state == BreakerState::kOpen) {
    if (clock_.NowMs() < breaker.reopen_at_ms) {
      ++stats_.breaker_open_skips;
      outcome.skipped_breaker_open = true;
      return outcome;
    }
    // Cooldown elapsed: admit this visit as the half-open probe.
    TransitionTo(breaker, BreakerState::kHalfOpen);
    breaker.half_open_successes = 0;
  }

  const FaultModel* model = config_->model();
  const RetryPolicy& retry = config_->retry();
  ++stats_.visits;
  bool success = false;
  last_payload_ = {};
  const double visit_started_ms = clock_.NowMs();
  for (int attempt = 0; attempt < retry.max_attempts; ++attempt) {
    ++stats_.attempts;
    ++outcome.attempts;
    if (transport_ != nullptr) {
      // External dispatch: the transport performs (or awaits the
      // prefetched) attempt and reports the simulated cost to charge; the
      // retry/backoff/breaker policy below is identical to the inline path.
      const TransportAttemptResult attempt_result =
          transport_->PerformAttempt(source, epoch_, attempt, num_components);
      clock_.AdvanceMs(attempt_result.virtual_ms);
      if (!attempt_result.failed) {
        last_payload_ = attempt_result.payload;
        success = true;
        break;
      }
    } else if (model == nullptr) {
      success = true;
      break;
    } else {
      clock_.AdvanceMs(
          model->AttemptLatencyMs(source, epoch_, attempt, num_components));
      const bool failed = model->PermanentlyOut(source, epoch_) ||
                          model->AttemptFails(source, epoch_, attempt);
      if (!failed) {
        success = true;
        break;
      }
    }
    ++stats_.transient_failures;
    if (attempt + 1 >= retry.max_attempts || DrawDeadlineExhausted()) break;
    // Exponential backoff with deterministic jitter before the retry. The
    // jitter stream is client-side policy, so it comes from the session's
    // own model on the transport path too (attach the same model on both
    // sides for bit-parity with the simulated seam).
    double backoff = retry.backoff_base_ms;
    for (int i = 0; i < attempt; ++i) backoff *= retry.backoff_multiplier;
    if (retry.backoff_jitter > 0.0 && model != nullptr) {
      const double u = model->BackoffJitterU01(source, epoch_, attempt);
      backoff *= 1.0 + retry.backoff_jitter * (2.0 * u - 1.0);
    }
    clock_.AdvanceMs(backoff);
    stats_.backoff_ms += backoff;
    ++stats_.retries;
    if (metrics_ != nullptr) {
      metrics_->GetHistogram("source_access_backoff_ms", kLatencyBucketsMs)
          .Observe(backoff);
    }
  }
  if (!success) ++stats_.failed_visits;
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("source_access_visit_ms", kLatencyBucketsMs)
        .Observe(clock_.NowMs() - visit_started_ms);
  }
  RecordOutcome(source, success);
  outcome.ok = success;
  return outcome;
}

bool AccessSession::ValueCorrupted(int source, int component_pos) {
  const FaultModel* model = config_->model();
  if (model == nullptr) return false;
  if (!model->ValueCorrupted(source, epoch_, component_pos)) return false;
  ++stats_.corrupt_values_rejected;
  return true;
}

void AccessSession::RecordDeadlineTruncation() {
  ++stats_.deadline_truncated_draws;
}

AccessStats AccessSession::Finish() {
  if (finished_) return stats_;
  finished_ = true;
  stats_.virtual_ms = clock_.NowMs();
  stats_.breaker_severity.resize(breakers_.size(), 0);
  for (size_t s = 0; s < breakers_.size(); ++s) {
    stats_.breaker_severity[s] = Severity(breakers_[s].state);
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("source_access_visits_total")
        .Increment(stats_.visits);
    metrics_->GetCounter("source_access_attempts_total")
        .Increment(stats_.attempts);
    metrics_->GetCounter("source_access_retries_total")
        .Increment(stats_.retries);
    metrics_->GetCounter("source_access_failed_visits_total")
        .Increment(stats_.failed_visits);
    metrics_->GetCounter("source_breaker_open_skips_total")
        .Increment(stats_.breaker_open_skips);
    metrics_->GetCounter("source_breaker_transitions_total")
        .Increment(stats_.breaker_transitions);
    metrics_->GetCounter("source_corrupt_values_total")
        .Increment(stats_.corrupt_values_rejected);
  }
  return stats_;
}

}  // namespace vastats
