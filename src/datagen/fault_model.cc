#include "datagen/fault_model.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace vastats {
namespace {

// Domain-separation tags for the keyed decision streams: each kind of
// decision reads an independent-looking stream even for identical
// (source, epoch, attempt) identifiers.
constexpr uint64_t kFailTag = 0x7472616e7349656eULL;
constexpr uint64_t kCorruptTag = 0x636f727275707431ULL;
constexpr uint64_t kLatencyTag = 0x6c6174656e637931ULL;
constexpr uint64_t kJitterTag = 0x6a69747465723031ULL;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t MixFaultKey(uint64_t seed, uint64_t a, uint64_t b, uint64_t c) {
  uint64_t key = SplitMix64(seed ^ a);
  key = SplitMix64(key ^ b);
  key = SplitMix64(key ^ c);
  return key;
}

Status FaultModelOptions::Validate() const {
  const auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!probability(transient_failure_prob)) {
    return Status::InvalidArgument(
        "transient_failure_prob must be in [0, 1]");
  }
  if (!probability(corrupt_value_prob)) {
    return Status::InvalidArgument("corrupt_value_prob must be in [0, 1]");
  }
  if (!probability(outage_fraction)) {
    return Status::InvalidArgument("outage_fraction must be in [0, 1]");
  }
  if (failure_spread_sigma < 0.0 || latency_jitter_sigma < 0.0) {
    return Status::InvalidArgument("spread/jitter sigmas must be >= 0");
  }
  if (latency_base_ms < 0.0 || latency_per_component_ms < 0.0) {
    return Status::InvalidArgument("latency costs must be >= 0");
  }
  if (outage_epoch < 0) {
    return Status::InvalidArgument("outage_epoch must be >= 0");
  }
  return Status::Ok();
}

Result<FaultModel> FaultModel::Create(int num_sources,
                                      const FaultModelOptions& options) {
  if (num_sources <= 0) {
    return Status::InvalidArgument("FaultModel requires num_sources > 0");
  }
  VASTATS_RETURN_IF_ERROR(options.Validate());

  // Per-source parameters are drawn once here from a creation-time stream;
  // per-access decisions later use keyed streams and never touch this Rng.
  Rng rng(options.seed);
  std::vector<double> failure_prob(static_cast<size_t>(num_sources),
                                   options.transient_failure_prob);
  if (options.failure_spread_sigma > 0.0 &&
      options.transient_failure_prob > 0.0) {
    for (double& p : failure_prob) {
      p = std::clamp(
          p * std::exp(rng.Normal(0.0, options.failure_spread_sigma)), 0.0,
          1.0);
    }
  }

  std::vector<int64_t> outage_epoch(static_cast<size_t>(num_sources), -1);
  std::vector<int> outage_sources;
  const int num_out = static_cast<int>(
      options.outage_fraction * static_cast<double>(num_sources));
  if (num_out > 0) {
    std::vector<int> order = rng.Permutation(num_sources);
    outage_sources.assign(order.begin(), order.begin() + num_out);
    std::sort(outage_sources.begin(), outage_sources.end());
    for (const int s : outage_sources) {
      outage_epoch[static_cast<size_t>(s)] = options.outage_epoch;
    }
  }
  return FaultModel(options, std::move(failure_prob),
                    std::move(outage_epoch), std::move(outage_sources));
}

bool FaultModel::AttemptFails(int source, int64_t epoch, int attempt) const {
  const double p = failure_prob_[static_cast<size_t>(source)];
  if (p <= 0.0) return false;
  Rng rng(MixFaultKey(options_.seed ^ kFailTag,
                      static_cast<uint64_t>(source),
                      static_cast<uint64_t>(epoch),
                      static_cast<uint64_t>(attempt)));
  return rng.Bernoulli(p);
}

bool FaultModel::ValueCorrupted(int source, int64_t epoch,
                                int component_pos) const {
  if (options_.corrupt_value_prob <= 0.0) return false;
  Rng rng(MixFaultKey(options_.seed ^ kCorruptTag,
                      static_cast<uint64_t>(source),
                      static_cast<uint64_t>(epoch),
                      static_cast<uint64_t>(component_pos)));
  return rng.Bernoulli(options_.corrupt_value_prob);
}

double FaultModel::AttemptLatencyMs(int source, int64_t epoch, int attempt,
                                    int num_components) const {
  double latency = options_.latency_base_ms +
                   options_.latency_per_component_ms *
                       static_cast<double>(std::max(num_components, 0));
  if (options_.latency_jitter_sigma > 0.0 && latency > 0.0) {
    Rng rng(MixFaultKey(options_.seed ^ kLatencyTag,
                        static_cast<uint64_t>(source),
                        static_cast<uint64_t>(epoch),
                        static_cast<uint64_t>(attempt)));
    latency *= std::exp(rng.Normal(0.0, options_.latency_jitter_sigma));
  }
  return latency;
}

double FaultModel::BackoffJitterU01(int source, int64_t epoch,
                                    int attempt) const {
  Rng rng(MixFaultKey(options_.seed ^ kJitterTag,
                      static_cast<uint64_t>(source),
                      static_cast<uint64_t>(epoch),
                      static_cast<uint64_t>(attempt)));
  return rng.Uniform01();
}

}  // namespace vastats
