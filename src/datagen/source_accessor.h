// Fault-tolerant source access seam.
//
// Samplers never touch `SourceSet`/`DataSource` reads directly in degraded
// mode; they go through this layer, which wraps every source visit behind
// Result-style outcomes and adds the three production behaviours the
// paper's unreliable-source premise demands:
//
//  * retry with bounded attempts and exponential backoff (deterministic
//    jitter, drawn from the FaultModel's keyed streams), under per-draw and
//    per-session deadline budgets measured on the VirtualClock;
//  * a per-source circuit breaker (closed -> open -> half-open on a sliding
//    failure-rate window) so samplers stop hammering dead sources;
//  * corrupt-payload rejection: values the fault model marked corrupted
//    are dropped instead of bound (NaN never enters a partial aggregate).
//
// Determinism contract: `SourceAccessor` is immutable configuration, shared
// read-only across threads. All mutable state (breaker windows, the virtual
// clock, counters) lives in an `AccessSession`, and a session belongs to
// exactly ONE sampling stream — the serial batch, or one chunk of the
// chunk-indexed parallel driver. Fault decisions are keyed by (source,
// draw epoch, attempt), and epochs are global draw indices, so a chaos run
// is bit-identical across serial, thread-per-call, and pool execution of
// any width. No wall clocks anywhere (lint rule R7).

#ifndef VASTATS_DATAGEN_SOURCE_ACCESSOR_H_
#define VASTATS_DATAGEN_SOURCE_ACCESSOR_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "datagen/component.h"
#include "datagen/fault_model.h"
#include "obs/obs.h"
#include "util/status.h"

namespace vastats {

// Bounded-retry policy for one source visit. Backoff before retry a
// (0-based) is backoff_base_ms * backoff_multiplier^a, scaled by a
// deterministic jitter in [1 - backoff_jitter, 1 + backoff_jitter].
struct RetryPolicy {
  int max_attempts = 3;
  double backoff_base_ms = 10.0;
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.5;
  // Simulated-ms budget one draw may spend on accesses + backoff before it
  // stops visiting further sources (0 = unbounded). A truncated draw
  // finalizes over what it covered — degraded, not failed.
  double draw_deadline_ms = 0.0;
  // Simulated-ms budget for a whole session (one sampling stream); once
  // exhausted, remaining draws in the stream are abandoned (0 = unbounded).
  double session_deadline_ms = 0.0;

  Status Validate() const;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string_view BreakerStateToString(BreakerState state);

struct CircuitBreakerOptions {
  // Sliding window of per-visit outcomes tracked per source (<= 64).
  int window = 16;
  // Outcomes required in the window before the failure rate can trip it.
  int min_samples = 4;
  // Open when failures/window_size >= this rate.
  double open_failure_rate = 0.5;
  // Simulated ms an open breaker waits before letting one half-open probe
  // visit through.
  double cooldown_ms = 200.0;
  // Consecutive half-open successes required to close again.
  int half_open_successes = 1;

  Status Validate() const;
};

// Merged access telemetry for one or more sessions. Every count is exact
// and, for a fixed seed/model/policy, bit-identical across execution
// widths (sessions merge in chunk order).
struct AccessStats {
  uint64_t visits = 0;                   // visits dispatched (excl. skips)
  uint64_t attempts = 0;                 // individual attempts incl. retries
  uint64_t retries = 0;                  // backoff-then-retry transitions
  uint64_t transient_failures = 0;       // failed attempts (incl. outages)
  uint64_t failed_visits = 0;            // visits that exhausted retries
  uint64_t breaker_open_skips = 0;       // visits skipped on an open breaker
  uint64_t corrupt_values_rejected = 0;  // payload values dropped as corrupt
  uint64_t breaker_transitions = 0;      // state-machine edges taken
  uint64_t deadline_truncated_draws = 0; // draws cut short by the budget
  double virtual_ms = 0.0;               // simulated time spent, incl. backoff
  double backoff_ms = 0.0;               // simulated time spent backing off
  // Worst breaker severity seen per source across the merged sessions:
  // 0 = closed, 1 = half-open, 2 = open. Empty until a session finishes.
  std::vector<uint8_t> breaker_severity;

  int SourcesOpen() const;      // severity == 2
  int SourcesHalfOpen() const;  // severity == 1
  void Merge(const AccessStats& other);
};

// --- Transport seam --------------------------------------------------------
//
// The simulated path decides every attempt inline from the borrowed
// FaultModel. A *transport* externalizes the attempt instead: requests
// travel to source endpoints (worker threads, socket pairs, spool files —
// see src/transport) and come back with an outcome, the transferred
// payload, and the simulated cost to charge against the deadline budgets.
// The session keeps ALL policy — retry, backoff, breakers, budgets, stats —
// and only delegates "perform one attempt", so chaos semantics are
// identical in kind on both paths, and bit-identical when the endpoint
// derives outcomes from the same keyed FaultModel.

// One (component, value) binding transferred by a transport visit, in the
// source's sorted-binding order (DataSource::SortedBindings).
struct TransportBinding {
  ComponentId component = 0;
  double value = 0.0;
};

// Outcome of one transport attempt. `payload` is borrowed from the
// transport and stays valid until its next PerformAttempt call.
struct TransportAttemptResult {
  bool failed = true;
  // Simulated cost the session charges to its VirtualClock. Model-virtual
  // transports return the FaultModel's deterministic attempt latency
  // (bit-parity with the simulated seam); wall-mapped transports return
  // measured wall blocking time scaled onto the virtual budgets.
  double virtual_ms = 0.0;
  std::span<const TransportBinding> payload;
};

// Abstract per-stream visit dispatch. One channel serves exactly ONE
// session (the same single-stream contract as AccessSession itself), so
// implementations never need to lock against their caller.
class VisitTransport {
 public:
  virtual ~VisitTransport() = default;

  // Announces the visit order the coming draw intends (`counts[i]` is the
  // component count of `order[i]`'s visit), letting pipelined
  // implementations prefetch attempt-0 requests ahead of consumption. An
  // order is a hint: sources may be skipped (breaker open) and the draw may
  // stop early (coverage complete, deadline); the transport discards
  // whatever was staged but never consumed.
  virtual void StageVisitOrder(int64_t epoch, std::span<const int> order,
                               std::span<const int> counts) = 0;

  // Performs (or awaits the prefetched) attempt `attempt` of the visit to
  // `source` in draw `epoch`, transferring `num_components` values. Blocks
  // until an outcome is available.
  virtual TransportAttemptResult PerformAttempt(int source, int64_t epoch,
                                                int attempt,
                                                int num_components) = 0;
};

class AccessSession;

// Immutable access configuration over `num_sources` sources. `model` is
// borrowed and may be null: a null model degenerates every visit to an
// instant success (the samplers bypass the seam entirely in that case, so
// the default pipeline pays nothing for this layer existing).
class SourceAccessor {
 public:
  static Result<SourceAccessor> Create(int num_sources,
                                       const FaultModel* model,
                                       RetryPolicy retry = {},
                                       CircuitBreakerOptions breaker = {});

  int num_sources() const { return num_sources_; }
  const FaultModel* model() const { return model_; }
  const RetryPolicy& retry() const { return retry_; }
  const CircuitBreakerOptions& breaker() const { return breaker_; }

  // Starts a session for one sampling stream. `metrics` (nullable,
  // borrowed) receives per-visit latency/backoff histograms and the merged
  // counters on Finish(); worker sessions write to their own registry
  // shards, so chunked streams stay contention-free. `recorder` (nullable,
  // borrowed) journals breaker state transitions, stamped with both the
  // recorder's real clock and the session's VirtualClock ms. `transport`
  // (nullable, borrowed, must outlive the session) routes every attempt
  // through an external dispatch channel instead of the inline simulation;
  // like the session itself, a channel belongs to exactly one stream.
  AccessSession StartSession(MetricsRegistry* metrics = nullptr,
                             FlightRecorder* recorder = nullptr,
                             VisitTransport* transport = nullptr) const;

 private:
  SourceAccessor(int num_sources, const FaultModel* model, RetryPolicy retry,
                 CircuitBreakerOptions breaker)
      : num_sources_(num_sources),
        model_(model),
        retry_(retry),
        breaker_(breaker) {}

  int num_sources_;
  const FaultModel* model_;  // borrowed; may be null (= no faults)
  RetryPolicy retry_;
  CircuitBreakerOptions breaker_;
};

// Mutable per-stream access state: breaker windows, the virtual clock, and
// counters. NOT thread-safe — one session per stream by construction.
class AccessSession {
 public:
  // Outcome of one source visit.
  struct VisitOutcome {
    bool ok = false;
    bool skipped_breaker_open = false;
    int attempts = 0;
  };

  // Marks the start of the draw with global index `epoch`. Every later
  // Visit/ValueCorrupted call keys its fault decisions with this epoch.
  void BeginDraw(int64_t epoch);
  // BeginDraw with a session-local auto-incremented epoch (serial streams
  // that do not know a global slot index). Returns the epoch used.
  int64_t BeginNextDraw();

  // True once the current draw spent its deadline budget — the caller
  // should stop visiting sources and finalize the partial draw.
  bool DrawDeadlineExhausted() const;
  // True once the whole session's budget is gone.
  bool SessionBudgetExhausted() const;

  // Forwards the coming draw's visit order (and per-visit component
  // counts) to the attached transport so it can prefetch; no-op on the
  // simulated path. Call after BeginDraw, before the draw's first Visit.
  void StageVisits(std::span<const int> order, std::span<const int> counts);

  // True when visits are served by an attached transport channel;
  // successful visits then expose the transferred payload.
  bool transport_attached() const { return transport_ != nullptr; }

  // Payload of the most recent successful transported visit (empty on the
  // simulated path, where callers bind from their in-memory index).
  // Invalidated by the next Visit call.
  std::span<const TransportBinding> last_payload() const {
    return last_payload_;
  }

  // One visit to `source` transferring `num_components` values: breaker
  // check, then up to retry().max_attempts fault-injected attempts with
  // backoff. Advances the virtual clock and updates the breaker window.
  VisitOutcome Visit(int source, int num_components);

  // Whether the value at query position `component_pos` of the current
  // payload arrived corrupted (caller must drop it).
  bool ValueCorrupted(int source, int component_pos);

  // Records that the current draw was cut short by the deadline budget.
  void RecordDeadlineTruncation();

  BreakerState breaker_state(int source) const {
    return breakers_[static_cast<size_t>(source)].state;
  }
  const VirtualClock& clock() const { return clock_; }
  int64_t current_epoch() const { return epoch_; }

  // Finalizes the session: snapshots per-source breaker severity into the
  // stats, flushes the counters to the metrics registry (when attached),
  // and returns the stats. Call once, after the stream's last draw.
  AccessStats Finish();

 private:
  friend class SourceAccessor;

  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    uint64_t window_bits = 0;  // 1 = failure, LSB = most recent
    int window_size = 0;
    int window_failures = 0;
    double reopen_at_ms = 0.0;  // open -> half-open probe time
    int half_open_successes = 0;
  };

  AccessSession(const SourceAccessor* config, MetricsRegistry* metrics,
                FlightRecorder* recorder, VisitTransport* transport);

  void RecordOutcome(int source, bool success);
  void PushWindow(Breaker& breaker, bool failure);
  void TransitionTo(Breaker& breaker, BreakerState next);

  const SourceAccessor* config_;
  MetricsRegistry* metrics_;  // borrowed; may be null
  FlightRecorder* recorder_ = nullptr;  // borrowed; may be null
  VisitTransport* transport_ = nullptr;  // borrowed; null = simulated path
  std::span<const TransportBinding> last_payload_;
  uint32_t transition_name_id_ = 0;     // interned when recorder_ != null
  VirtualClock clock_;
  std::vector<Breaker> breakers_;
  AccessStats stats_;
  int64_t epoch_ = -1;
  int64_t next_auto_epoch_ = 0;
  double draw_started_ms_ = 0.0;
  bool finished_ = false;
};

}  // namespace vastats

#endif  // VASTATS_DATAGEN_SOURCE_ACCESSOR_H_
