// Synthetic Canadian climate archive — the stand-in for the paper's
// real-life dataset C (climate.weatheroffice.gc.ca monthly data for 2006:
// 1672 stations reporting for 104 measuring districts).
//
// The original archive is no longer downloadable, so this module generates a
// structurally equivalent one (documented in DESIGN.md §3): stations grouped
// into districts, per-district seasonal temperature curves, per-station
// systematic bias plus measurement noise, missing months, and a small
// fraction of stations that mistakenly report Fahrenheit — the unit-error
// mechanism the paper identifies behind the spurious second mode of
// Figure 7(a).

#ifndef VASTATS_DATAGEN_CLIMATE_H_
#define VASTATS_DATAGEN_CLIMATE_H_

#include <string>
#include <vector>

#include "datagen/source_set.h"
#include "stats/aggregate_query.h"
#include "util/status.h"

namespace vastats {

enum class ClimateAttribute { kMeanTemperature, kTotalRainfall };

struct ClimateArchiveOptions {
  int num_stations = 1672;  // matches the paper's archive
  int num_districts = 104;
  int year = 2006;
  // When in [1, 12], the archive additionally carries *daily* mean
  // temperatures for that month — the resolution of the paper's
  // introductory aggregation ("1470 data points: 49 cities in BC * 30
  // days"). 0 disables daily data.
  int daily_month = 0;
  // Per-station systematic offset (sensor siting, elevation, ...).
  double station_bias_sigma = 0.8;
  // Per-observation noise.
  double measurement_noise_sigma = 0.6;
  // Probability a station-month observation is missing ("data had not been
  // observed").
  double missing_prob = 0.05;
  // Fraction of stations whose temperature values are stored in Fahrenheit.
  double fahrenheit_station_fraction = 0.02;
  uint64_t seed = 2006;

  Status Validate() const;
};

struct Station {
  int id = 0;
  int district = 0;
  bool reports_fahrenheit = false;
  double bias = 0.0;
  std::string name;
};

class ClimateArchive {
 public:
  static Result<ClimateArchive> Build(const ClimateArchiveOptions& options);

  const ClimateArchiveOptions& options() const { return options_; }
  const std::vector<Station>& stations() const { return stations_; }

  // Ground-truth district-month value in Celsius (or mm for rainfall);
  // month in [1, 12], district in [0, num_districts).
  Result<double> Truth(ClimateAttribute attribute, int district,
                       int month) const;

  // Component id for (attribute, district, month): stable across runs.
  static ComponentId ComponentFor(ClimateAttribute attribute, int district,
                                  int month);

  // Component id for the daily temperature of (district, day) within the
  // configured daily month; disjoint from the monthly ids.
  static ComponentId DailyComponentFor(int district, int day);

  // Daily components for every district and days [first_day, last_day]
  // within the configured daily month. Fails when daily data is disabled
  // or the day range is invalid (days are 1..28/29/30/31 per the month).
  Result<std::vector<ComponentId>> DailyComponents(int first_day,
                                                   int last_day) const;

  // Ground-truth daily Celsius temperature.
  Result<double> DailyTruth(int district, int day) const;

  // Components for `attribute` over every district and months
  // [first_month, last_month].
  Result<std::vector<ComponentId>> Components(ClimateAttribute attribute,
                                              int first_month,
                                              int last_month) const;

  // One DataSource per station, binding the station's non-missing
  // observations for both attributes. Fahrenheit stations store converted
  // temperature values.
  Result<SourceSet> MakeSourceSet() const;

  // Exports station observations as CSV rows
  // (station, district, attribute, month, value).
  Status WriteCsv(const std::string& path) const;

 private:
  ClimateArchive() = default;

  ClimateArchiveOptions options_;
  std::vector<Station> stations_;
  int DaysInDailyMonth() const;

  // truth_[attribute][district * 12 + month - 1]
  std::vector<double> temperature_truth_;
  std::vector<double> rainfall_truth_;
  // observations_[station][month-1] per attribute; NaN = missing.
  std::vector<std::vector<double>> temperature_obs_;
  std::vector<std::vector<double>> rainfall_obs_;
  // Daily layer (present when options_.daily_month != 0):
  // daily_truth_[district * 31 + day - 1]; daily_obs_[station][day - 1].
  std::vector<double> daily_truth_;
  std::vector<std::vector<double>> daily_obs_;
};

}  // namespace vastats

#endif  // VASTATS_DATAGEN_CLIMATE_H_
