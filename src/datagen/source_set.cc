#include "datagen/source_set.h"

#include <algorithm>
#include <string>

namespace vastats {

SourceSet& SourceSet::operator=(const SourceSet& other) {
  if (this != &other) {
    sources_ = other.sources_;
    coverage_.clear();
    index_valid_.store(false, std::memory_order_release);
  }
  return *this;
}

SourceSet& SourceSet::operator=(SourceSet&& other) noexcept {
  if (this != &other) {
    sources_ = std::move(other.sources_);
    coverage_.clear();
    index_valid_.store(false, std::memory_order_release);
  }
  return *this;
}

int SourceSet::AddSource(DataSource source) {
  sources_.push_back(std::move(source));
  index_valid_.store(false, std::memory_order_release);
  return static_cast<int>(sources_.size()) - 1;
}

void SourceSet::EnsureIndex() const {
  if (index_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (index_valid_.load(std::memory_order_relaxed)) return;
  coverage_.clear();
  for (size_t s = 0; s < sources_.size(); ++s) {
    for (const auto& [component, value] : sources_[s].SortedBindings()) {
      coverage_[component].push_back(static_cast<int>(s));
    }
  }
  for (auto& [component, list] : coverage_) {
    std::sort(list.begin(), list.end());
  }
  index_valid_.store(true, std::memory_order_release);
}

std::vector<int> SourceSet::Covering(ComponentId component) const {
  EnsureIndex();
  const auto it = coverage_.find(component);
  if (it == coverage_.end()) return {};
  return it->second;
}

int SourceSet::CoverageCount(ComponentId component) const {
  EnsureIndex();
  const auto it = coverage_.find(component);
  return it == coverage_.end() ? 0 : static_cast<int>(it->second.size());
}

std::vector<ComponentId> SourceSet::Universe() const {
  EnsureIndex();
  std::vector<ComponentId> ids;
  ids.reserve(coverage_.size());
  for (const auto& [component, list] : coverage_) ids.push_back(component);
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status SourceSet::ValidateCoverage(
    std::span<const ComponentId> required) const {
  EnsureIndex();
  for (const ComponentId component : required) {
    if (CoverageCount(component) == 0) {
      return Status::FailedPrecondition(
          "component " + std::to_string(component) +
          " is not bound by any source");
    }
  }
  return Status::Ok();
}

Result<double> SourceSet::AverageCoverage(
    std::span<const ComponentId> components) const {
  if (components.empty()) {
    return Status::InvalidArgument("AverageCoverage of empty component list");
  }
  double total = 0.0;
  for (const ComponentId component : components) {
    total += static_cast<double>(CoverageCount(component));
  }
  return total / static_cast<double>(components.size());
}

Result<std::pair<double, double>> SourceSet::ValueRange(
    ComponentId component) const {
  const std::vector<int> covering = Covering(component);
  if (covering.empty()) {
    return Status::NotFound("component " + std::to_string(component) +
                            " is not bound by any source");
  }
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (const int s : covering) {
    VASTATS_ASSIGN_OR_RETURN(const double v, source(s).Value(component));
    if (first) {
      lo = hi = v;
      first = false;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  return std::make_pair(lo, hi);
}

}  // namespace vastats
