#include "datagen/climate.h"

#include <cmath>
#include <limits>

#include "util/csv.h"
#include "util/math.h"
#include "util/random.h"

namespace vastats {
namespace {

constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

double CelsiusToFahrenheit(double c) { return c * 9.0 / 5.0 + 32.0; }

}  // namespace

Status ClimateArchiveOptions::Validate() const {
  if (num_stations < 1) {
    return Status::InvalidArgument("num_stations must be >= 1");
  }
  if (daily_month < 0 || daily_month > 12) {
    return Status::InvalidArgument("daily_month must be 0 or in [1,12]");
  }
  if (num_districts < 1 || num_districts > num_stations) {
    return Status::InvalidArgument(
        "need 1 <= num_districts <= num_stations");
  }
  if (missing_prob < 0.0 || missing_prob >= 1.0) {
    return Status::InvalidArgument("missing_prob must be in [0,1)");
  }
  if (fahrenheit_station_fraction < 0.0 ||
      fahrenheit_station_fraction > 1.0) {
    return Status::InvalidArgument(
        "fahrenheit_station_fraction must be in [0,1]");
  }
  if (station_bias_sigma < 0.0 || measurement_noise_sigma < 0.0) {
    return Status::InvalidArgument("noise sigmas must be >= 0");
  }
  return Status::Ok();
}

Result<ClimateArchive> ClimateArchive::Build(
    const ClimateArchiveOptions& options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  ClimateArchive archive;
  archive.options_ = options;
  Rng rng(options.seed);

  // District climates: an annual-mean base varying with "latitude" plus a
  // seasonal sine peaking mid-summer; rainfall is wetter in winter.
  archive.temperature_truth_.resize(
      static_cast<size_t>(options.num_districts) * 12);
  archive.rainfall_truth_.resize(
      static_cast<size_t>(options.num_districts) * 12);
  for (int d = 0; d < options.num_districts; ++d) {
    const double base = rng.Uniform(-3.0, 12.0);
    const double amplitude = rng.Uniform(8.0, 15.0);
    const double wetness = rng.Uniform(20.0, 180.0);
    for (int month = 1; month <= 12; ++month) {
      const double phase =
          2.0 * kPi * (static_cast<double>(month) - 4.5) / 12.0;
      const size_t index = static_cast<size_t>(d) * 12 +
                           static_cast<size_t>(month - 1);
      archive.temperature_truth_[index] = base + amplitude * std::sin(phase);
      archive.rainfall_truth_[index] =
          std::max(0.0, wetness * (1.0 - 0.5 * std::sin(phase)) +
                            rng.Normal(0.0, 5.0));
    }
  }

  // Stations: round-robin district assignment guarantees every district has
  // at least one station; the rest of the properties are random.
  archive.stations_.reserve(static_cast<size_t>(options.num_stations));
  archive.temperature_obs_.resize(static_cast<size_t>(options.num_stations));
  archive.rainfall_obs_.resize(static_cast<size_t>(options.num_stations));
  for (int s = 0; s < options.num_stations; ++s) {
    Station station;
    station.id = s;
    station.district = s % options.num_districts;
    station.reports_fahrenheit =
        rng.Bernoulli(options.fahrenheit_station_fraction);
    station.bias = rng.Normal(0.0, options.station_bias_sigma);
    station.name = "station-" + std::to_string(s);

    auto& temps = archive.temperature_obs_[static_cast<size_t>(s)];
    auto& rains = archive.rainfall_obs_[static_cast<size_t>(s)];
    temps.assign(12, kMissing);
    rains.assign(12, kMissing);
    for (int month = 1; month <= 12; ++month) {
      const size_t truth_index =
          static_cast<size_t>(station.district) * 12 +
          static_cast<size_t>(month - 1);
      if (!rng.Bernoulli(options.missing_prob)) {
        double celsius = archive.temperature_truth_[truth_index] +
                         station.bias +
                         rng.Normal(0.0, options.measurement_noise_sigma);
        temps[static_cast<size_t>(month - 1)] =
            station.reports_fahrenheit ? CelsiusToFahrenheit(celsius)
                                       : celsius;
      }
      if (!rng.Bernoulli(options.missing_prob)) {
        rains[static_cast<size_t>(month - 1)] = std::max(
            0.0, archive.rainfall_truth_[truth_index] +
                     rng.Normal(0.0, 4.0 * options.measurement_noise_sigma));
      }
    }
    archive.stations_.push_back(std::move(station));
  }

  // Daily layer: a within-month weather trajectory per district (smooth
  // random walk around the monthly mean) plus per-station bias and noise.
  if (options.daily_month != 0) {
    const int days = archive.DaysInDailyMonth();
    archive.daily_truth_.assign(
        static_cast<size_t>(options.num_districts) * 31, 0.0);
    for (int d = 0; d < options.num_districts; ++d) {
      const double monthly_mean =
          archive.temperature_truth_[static_cast<size_t>(d) * 12 +
                                     static_cast<size_t>(
                                         options.daily_month - 1)];
      double walk = 0.0;
      for (int day = 1; day <= days; ++day) {
        walk = 0.7 * walk + rng.Normal(0.0, 1.2);
        archive.daily_truth_[static_cast<size_t>(d) * 31 +
                             static_cast<size_t>(day - 1)] =
            monthly_mean + walk;
      }
    }
    archive.daily_obs_.resize(static_cast<size_t>(options.num_stations));
    for (const Station& station : archive.stations_) {
      auto& observations =
          archive.daily_obs_[static_cast<size_t>(station.id)];
      observations.assign(static_cast<size_t>(days), kMissing);
      for (int day = 1; day <= days; ++day) {
        if (rng.Bernoulli(options.missing_prob)) continue;
        double celsius =
            archive.daily_truth_[static_cast<size_t>(station.district) * 31 +
                                 static_cast<size_t>(day - 1)] +
            station.bias +
            rng.Normal(0.0, options.measurement_noise_sigma);
        observations[static_cast<size_t>(day - 1)] =
            station.reports_fahrenheit ? CelsiusToFahrenheit(celsius)
                                       : celsius;
      }
    }
  }
  return archive;
}

int ClimateArchive::DaysInDailyMonth() const {
  if (options_.daily_month == 0) return 0;
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31,
                                30, 31};
  int days = kDays[options_.daily_month - 1];
  const int year = options_.year;
  const bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
  if (options_.daily_month == 2 && leap) days = 29;
  return days;
}

ComponentId ClimateArchive::DailyComponentFor(int district, int day) {
  // Attribute namespace 3 keeps daily ids disjoint from the monthly ones.
  return ComponentId{3} * 1'000'000 +
         static_cast<ComponentId>(district) * 32 + day;
}

Result<std::vector<ComponentId>> ClimateArchive::DailyComponents(
    int first_day, int last_day) const {
  const int days = DaysInDailyMonth();
  if (days == 0) {
    return Status::FailedPrecondition(
        "archive was built without daily data (daily_month == 0)");
  }
  if (first_day < 1 || last_day > days || first_day > last_day) {
    return Status::InvalidArgument("invalid day range");
  }
  std::vector<ComponentId> components;
  components.reserve(static_cast<size_t>(options_.num_districts) *
                     static_cast<size_t>(last_day - first_day + 1));
  for (int d = 0; d < options_.num_districts; ++d) {
    for (int day = first_day; day <= last_day; ++day) {
      components.push_back(DailyComponentFor(d, day));
    }
  }
  return components;
}

Result<double> ClimateArchive::DailyTruth(int district, int day) const {
  const int days = DaysInDailyMonth();
  if (days == 0) {
    return Status::FailedPrecondition("archive has no daily data");
  }
  if (district < 0 || district >= options_.num_districts || day < 1 ||
      day > days) {
    return Status::OutOfRange("invalid district/day");
  }
  return daily_truth_[static_cast<size_t>(district) * 31 +
                      static_cast<size_t>(day - 1)];
}

Result<double> ClimateArchive::Truth(ClimateAttribute attribute, int district,
                                     int month) const {
  if (district < 0 || district >= options_.num_districts || month < 1 ||
      month > 12) {
    return Status::OutOfRange("invalid district/month");
  }
  const size_t index =
      static_cast<size_t>(district) * 12 + static_cast<size_t>(month - 1);
  return attribute == ClimateAttribute::kMeanTemperature
             ? temperature_truth_[index]
             : rainfall_truth_[index];
}

ComponentId ClimateArchive::ComponentFor(ClimateAttribute attribute,
                                         int district, int month) {
  // Attribute namespace * 1e6 keeps ids disjoint across attributes.
  const ComponentId attr =
      attribute == ClimateAttribute::kMeanTemperature ? 1 : 2;
  return attr * 1'000'000 + static_cast<ComponentId>(district) * 16 + month;
}

Result<std::vector<ComponentId>> ClimateArchive::Components(
    ClimateAttribute attribute, int first_month, int last_month) const {
  if (first_month < 1 || last_month > 12 || first_month > last_month) {
    return Status::InvalidArgument("invalid month range");
  }
  std::vector<ComponentId> components;
  components.reserve(static_cast<size_t>(options_.num_districts) *
                     static_cast<size_t>(last_month - first_month + 1));
  for (int d = 0; d < options_.num_districts; ++d) {
    for (int month = first_month; month <= last_month; ++month) {
      components.push_back(ComponentFor(attribute, d, month));
    }
  }
  return components;
}

Result<SourceSet> ClimateArchive::MakeSourceSet() const {
  SourceSet set;
  for (const Station& station : stations_) {
    DataSource source(station.name);
    const auto& temps = temperature_obs_[static_cast<size_t>(station.id)];
    const auto& rains = rainfall_obs_[static_cast<size_t>(station.id)];
    for (int month = 1; month <= 12; ++month) {
      const double temp = temps[static_cast<size_t>(month - 1)];
      if (!std::isnan(temp)) {
        source.Bind(ComponentFor(ClimateAttribute::kMeanTemperature,
                                 station.district, month),
                    temp);
      }
      const double rain = rains[static_cast<size_t>(month - 1)];
      if (!std::isnan(rain)) {
        source.Bind(ComponentFor(ClimateAttribute::kTotalRainfall,
                                 station.district, month),
                    rain);
      }
    }
    if (!daily_obs_.empty()) {
      const auto& daily = daily_obs_[static_cast<size_t>(station.id)];
      for (int day = 1; day <= static_cast<int>(daily.size()); ++day) {
        const double value = daily[static_cast<size_t>(day - 1)];
        if (!std::isnan(value)) {
          source.Bind(DailyComponentFor(station.district, day), value);
        }
      }
    }
    set.AddSource(std::move(source));
  }
  return set;
}

Status ClimateArchive::WriteCsv(const std::string& path) const {
  std::vector<CsvRow> rows;
  rows.push_back({"station", "district", "attribute", "month", "value"});
  for (const Station& station : stations_) {
    for (int month = 1; month <= 12; ++month) {
      const double temp =
          temperature_obs_[static_cast<size_t>(station.id)]
                          [static_cast<size_t>(month - 1)];
      if (!std::isnan(temp)) {
        rows.push_back({std::to_string(station.id),
                        std::to_string(station.district), "temp",
                        std::to_string(month), std::to_string(temp)});
      }
      const double rain =
          rainfall_obs_[static_cast<size_t>(station.id)]
                       [static_cast<size_t>(month - 1)];
      if (!std::isnan(rain)) {
        rows.push_back({std::to_string(station.id),
                        std::to_string(station.district), "rain",
                        std::to_string(month), std::to_string(rain)});
      }
    }
  }
  return WriteCsvFile(path, rows);
}

}  // namespace vastats
