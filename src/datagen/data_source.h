// A single data source in the heterogeneous information system.
//
// After the mediator's mapping/binding meta-information has aligned schemas
// and instances, a source is — for the purposes of aggregate answering — a
// partial function from global ComponentId to a numeric value. Different
// sources may bind different values to the same component (value-level
// heterogeneity), and each source typically covers only a subset of the
// components a query needs.

#ifndef VASTATS_DATAGEN_DATA_SOURCE_H_
#define VASTATS_DATAGEN_DATA_SOURCE_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "datagen/component.h"
#include "util/status.h"

namespace vastats {

class DataSource {
 public:
  explicit DataSource(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Binds `value` to `component`, replacing any previous binding.
  void Bind(ComponentId component, double value);

  // Removes the binding for `component` if present; returns whether one
  // existed.
  bool Unbind(ComponentId component);

  bool Has(ComponentId component) const {
    return bindings_.find(component) != bindings_.end();
  }

  // The value this source holds for `component`.
  Result<double> Value(ComponentId component) const;

  size_t NumBindings() const { return bindings_.size(); }

  const std::unordered_map<ComponentId, double>& bindings() const {
    return bindings_;
  }

  // All bound component ids, ascending (deterministic iteration order for
  // reproducible experiments).
  std::vector<ComponentId> SortedComponents() const;

  // All (component, value) bindings ordered by ascending component id — the
  // sorted snapshot consumers must iterate instead of `bindings()` whenever
  // iteration order can reach an accumulator, a sampler's draw sequence, or
  // exported output (determinism rule A2).
  std::vector<std::pair<ComponentId, double>> SortedBindings() const;

 private:
  std::string name_;
  std::unordered_map<ComponentId, double> bindings_;
};

}  // namespace vastats

#endif  // VASTATS_DATAGEN_DATA_SOURCE_H_
