// Components — the conceptual data points an aggregate needs (paper §4.2:
// "we use the term component to indicate a data point that an aggregate
// requires, e.g. the temperature for Vancouver on 06/11/2006").
//
// A ComponentId is a global identifier assigned after schema- and
// instance-level heterogeneity have been resolved by the mediator's mapping
// meta-information (which the paper, following [25], assumes available).
// Value-level heterogeneity — several sources binding *different* values to
// the same ComponentId — is exactly what this library models.

#ifndef VASTATS_DATAGEN_COMPONENT_H_
#define VASTATS_DATAGEN_COMPONENT_H_

#include <cstdint>
#include <string>

namespace vastats {

using ComponentId = int64_t;

// Optional human-readable descriptor for a component, e.g.
// {id, "Vancouver", "2006-06-11", "temperature"}.
struct ComponentInfo {
  ComponentId id = 0;
  std::string entity;     // e.g. city or station district
  std::string time_key;   // e.g. date or month
  std::string attribute;  // e.g. "temp"
};

}  // namespace vastats

#endif  // VASTATS_DATAGEN_COMPONENT_H_
