#include "datagen/source_builder.h"

#include <algorithm>
#include <string>
#include <vector>

namespace vastats {

Status SyntheticSourceSetOptions::Validate() const {
  if (num_sources < 2) {
    return Status::InvalidArgument("num_sources must be >= 2");
  }
  if (num_components < 1) {
    return Status::InvalidArgument("num_components must be >= 1");
  }
  if (min_copies < 1 || max_copies < min_copies) {
    return Status::InvalidArgument(
        "need 1 <= min_copies <= max_copies");
  }
  if (max_copies > num_sources) {
    return Status::InvalidArgument("max_copies must be <= num_sources");
  }
  if (conflict_sigma < 0.0) {
    return Status::InvalidArgument("conflict_sigma must be >= 0");
  }
  if (unit_error_prob < 0.0 || unit_error_prob > 1.0 ||
      unit_error_source_fraction < 0.0 || unit_error_source_fraction > 1.0) {
    return Status::InvalidArgument("unit error rates must be in [0,1]");
  }
  return Status::Ok();
}

Result<SourceSet> BuildSyntheticSourceSet(
    const Distribution& value_distribution,
    const SyntheticSourceSetOptions& options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  Rng rng(options.seed);

  SourceSet set;
  std::vector<char> fahrenheit_source(
      static_cast<size_t>(options.num_sources), 0);
  for (int s = 0; s < options.num_sources; ++s) {
    set.AddSource(DataSource("synthetic-" + std::to_string(s)));
    fahrenheit_source[static_cast<size_t>(s)] =
        rng.Bernoulli(options.unit_error_source_fraction) ? 1 : 0;
  }

  std::vector<int> all_sources(static_cast<size_t>(options.num_sources));
  for (int s = 0; s < options.num_sources; ++s) {
    all_sources[static_cast<size_t>(s)] = s;
  }

  for (int c = 0; c < options.num_components; ++c) {
    const ComponentId component = options.first_component_id + c;
    const double base = value_distribution.Sample(rng);
    const int copies = static_cast<int>(
        rng.UniformInt(options.min_copies, options.max_copies));
    // Random distinct owners via a partial shuffle.
    for (int k = 0; k < copies; ++k) {
      const int j = static_cast<int>(
          rng.UniformInt(k, options.num_sources - 1));
      std::swap(all_sources[static_cast<size_t>(k)],
                all_sources[static_cast<size_t>(j)]);
    }
    for (int k = 0; k < copies; ++k) {
      const int owner = all_sources[static_cast<size_t>(k)];
      double value = base;
      switch (options.conflict_model) {
        case ConflictModel::kSharedBaseNoise:
          value = base + rng.Normal(0.0, options.conflict_sigma);
          break;
        case ConflictModel::kIndependentRedraw:
          value = value_distribution.Sample(rng);
          break;
      }
      const bool unit_error =
          fahrenheit_source[static_cast<size_t>(owner)] != 0 ||
          rng.Bernoulli(options.unit_error_prob);
      if (unit_error) value = value * 9.0 / 5.0 + 32.0;
      set.mutable_source(owner).Bind(component, value);
    }
  }
  return set;
}

Status AddConflictComponent(SourceSet& sources, ComponentId component,
                            int source_a, int source_b, double value,
                            double shift) {
  if (source_a < 0 || source_a >= sources.NumSources() || source_b < 0 ||
      source_b >= sources.NumSources() || source_a == source_b) {
    return Status::InvalidArgument(
        "AddConflictComponent requires two distinct valid source indices");
  }
  if (sources.CoverageCount(component) != 0) {
    return Status::InvalidArgument(
        "AddConflictComponent requires a fresh component id");
  }
  sources.mutable_source(source_a).Bind(component, value);
  sources.mutable_source(source_b).Bind(component, value + shift);
  return Status::Ok();
}

}  // namespace vastats
