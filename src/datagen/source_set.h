// SourceSet — the set of data sources D available to answer a query,
// together with the coverage index derived from their bindings.
//
// The coverage index (component -> list of source indices that bind it) is
// the integration meta-information the samplers use; it also yields the
// duplication statistics the stability analysis needs (the average number of
// sources per component backs the weight y in Theorem 4.2's change-ratio
// estimate).

#ifndef VASTATS_DATAGEN_SOURCE_SET_H_
#define VASTATS_DATAGEN_SOURCE_SET_H_

#include <atomic>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "datagen/data_source.h"
#include "util/status.h"

namespace vastats {

class SourceSet {
 public:
  SourceSet() = default;

  // Copies/moves transfer the sources only; the coverage index is rebuilt
  // lazily on the destination (its guts hold a mutex, and a copy made
  // while another thread reads the original must not share cache state).
  SourceSet(const SourceSet& other) : sources_(other.sources_) {}
  SourceSet& operator=(const SourceSet& other);
  SourceSet(SourceSet&& other) noexcept
      : sources_(std::move(other.sources_)) {}
  SourceSet& operator=(SourceSet&& other) noexcept;

  // Adds a source and returns its index within this set.
  int AddSource(DataSource source);

  int NumSources() const { return static_cast<int>(sources_.size()); }

  const DataSource& source(int index) const {
    return sources_[static_cast<size_t>(index)];
  }
  // Grants mutable access to a source; invalidates the coverage index.
  // Mutation is NOT thread-safe against concurrent readers — freeze the
  // set before sharing it (the samplers, servers, and transport all take
  // it const).
  DataSource& mutable_source(int index) {
    index_valid_.store(false, std::memory_order_release);
    return sources_[static_cast<size_t>(index)];
  }
  const std::vector<DataSource>& sources() const { return sources_; }

  // Indices of the sources binding `component` (empty when uncovered).
  // Ascending order.
  std::vector<int> Covering(ComponentId component) const;

  // Number of distinct sources binding `component`.
  int CoverageCount(ComponentId component) const;

  // All component ids bound by at least one source, ascending.
  std::vector<ComponentId> Universe() const;

  // OK when every component in `required` is bound by >= 1 source.
  Status ValidateCoverage(std::span<const ComponentId> required) const;

  // Mean number of sources binding each component of `components`
  // (the duplication factor; >= 1 when coverage is valid).
  Result<double> AverageCoverage(std::span<const ComponentId> components) const;

  // Lower/upper envelope of values each source holds for `component`.
  // Errors when the component is uncovered.
  Result<std::pair<double, double>> ValueRange(ComponentId component) const;

 private:
  void EnsureIndex() const;

  std::vector<DataSource> sources_;
  // Lazily built coverage index; invalidated when sources are added.
  // Concurrent const readers may race to build it (the serving batch path
  // fans source-closure lookups across pool workers), so the build is
  // guarded: the flag is the double-checked fast path, the mutex
  // serializes the one build.
  mutable std::mutex index_mutex_;
  mutable std::atomic<bool> index_valid_{false};
  mutable std::unordered_map<ComponentId, std::vector<int>> coverage_;
};

}  // namespace vastats

#endif  // VASTATS_DATAGEN_SOURCE_SET_H_
