#include "datagen/distributions.h"

#include <cmath>

namespace vastats {

double CauchyDistribution::Sample(Rng& rng) const {
  if (clip_ <= 0.0) return rng.Cauchy(location_, scale_);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double x = rng.Cauchy(location_, scale_);
    if (std::fabs(x - location_) <= clip_) return x;
  }
  return location_;  // Vanishingly unlikely with any reasonable clip.
}

void MixtureDistribution::AddComponent(
    double weight, std::unique_ptr<Distribution> component) {
  if (weight <= 0.0 || component == nullptr) return;
  total_weight_ += weight;
  components_.emplace_back(weight, std::move(component));
}

double MixtureDistribution::Sample(Rng& rng) const {
  double pick = rng.Uniform(0.0, total_weight_);
  for (const auto& [weight, component] : components_) {
    if (pick < weight) return component->Sample(rng);
    pick -= weight;
  }
  // Floating-point edge: fall through to the last component.
  return components_.back().second->Sample(rng);
}

std::unique_ptr<MixtureDistribution> MakeD2(uint64_t seed) {
  Rng rng(seed);
  auto mixture = std::make_unique<MixtureDistribution>();
  constexpr double kSigma = 0.5;
  const double weights[] = {12.0, 5.0, 2.0, 1.0};
  const double ranges[][2] = {{10, 20}, {25, 35}, {40, 50}, {55, 65}};
  for (int i = 0; i < 4; ++i) {
    const double mu = rng.Uniform(ranges[i][0], ranges[i][1]);
    mixture->AddComponent(weights[i],
                          std::make_unique<NormalDistribution>(mu, kSigma));
  }
  return mixture;
}

std::unique_ptr<MixtureDistribution> MakeD3(uint64_t seed) {
  Rng rng(seed);
  auto mixture = std::make_unique<MixtureDistribution>();
  const double gauss_mu = rng.Uniform(10.0, 20.0);
  mixture->AddComponent(1.0,
                        std::make_unique<NormalDistribution>(gauss_mu, 1.0));
  const double cauchy_loc = rng.Uniform(30.0, 40.0);
  mixture->AddComponent(
      1.0, std::make_unique<CauchyDistribution>(cauchy_loc, 1.0,
                                                /*clip=*/60.0));
  // Gamma with shape 2, scale 1/sqrt(2) has sigma = 1 (Table 1).
  const double gamma_offset = rng.Uniform(50.0, 60.0);
  mixture->AddComponent(
      1.0, std::make_unique<GammaDistribution>(2.0, 1.0 / std::sqrt(2.0),
                                               gamma_offset));
  return mixture;
}

}  // namespace vastats
