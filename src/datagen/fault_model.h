// Deterministic fault injection for source access.
//
// The paper's premise is that sources are independently managed and
// unreliable (§4.4 models "r sources may leave the system"); a production
// deployment against remote sources sees transient failures, latency
// spikes, corrupt payloads, and permanent outages as steady state. This
// module lets every one of those be *simulated, bit-reproducibly*:
//
//  * `FaultModel` assigns each source a transient-failure probability, a
//    latency distribution, a payload-corruption probability, and an
//    optional scheduled permanent outage starting at draw epoch k. All
//    per-access decisions are PURE FUNCTIONS of (seed, source, epoch,
//    attempt) via keyed sub-streams of the seeded Rng facade — no shared
//    mutable RNG state — so the same fault hits the same access no matter
//    how draws are scheduled across threads or pools.
//  * `VirtualClock` extends the simulated-milliseconds idea of
//    integration/cost_model.h to the fault layer: access latencies and
//    retry backoffs advance simulated time, never wall clocks, so deadline
//    budgets and breaker cooldowns are deterministic and chaos experiments
//    run instantly. (tools/lint_invariants.py rule R7 keeps real
//    std::chrono clock reads out of this code.)

#ifndef VASTATS_DATAGEN_FAULT_MODEL_H_
#define VASTATS_DATAGEN_FAULT_MODEL_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace vastats {

// Simulated-milliseconds clock. Starts at zero; only ever advanced by the
// access layer (latencies, backoff waits). Cheap value type — each access
// session owns one, which is what keeps chaos runs independent of how
// sessions are scheduled onto threads.
class VirtualClock {
 public:
  double NowMs() const { return now_ms_; }

  // Advances simulated time; negative advances are ignored (a fault model
  // jitter draw can never rewind time).
  void AdvanceMs(double ms) {
    if (ms > 0.0) now_ms_ += ms;
  }

 private:
  double now_ms_ = 0.0;
};

struct FaultModelOptions {
  // Baseline probability that one access attempt to a source fails
  // transiently (timeouts, connection resets, 5xx).
  double transient_failure_prob = 0.0;
  // Per-source spread: source s fails with probability
  // clamp(transient_failure_prob * exp(N(0, failure_spread_sigma)), 0, 1),
  // drawn once per source at model creation — some peers are flakier.
  double failure_spread_sigma = 0.0;
  // Probability that an individual component value inside a successful
  // payload arrives corrupted (the accessor surfaces it as NaN and rejects
  // it rather than binding garbage).
  double corrupt_value_prob = 0.0;
  // Simulated access latency: base + per-component transfer cost, scaled
  // by exp(N(0, latency_jitter_sigma)) per attempt.
  double latency_base_ms = 1.0;
  double latency_per_component_ms = 0.05;
  double latency_jitter_sigma = 0.0;
  // Scheduled permanent outage: a deterministic `outage_fraction` of the
  // sources goes dark for every draw epoch >= `outage_epoch` (epoch = the
  // global draw index within an extraction). 0 disables outages.
  double outage_fraction = 0.0;
  int64_t outage_epoch = 0;
  // Seed of every keyed decision stream; equal seeds + options + ids give
  // bit-identical fault schedules.
  uint64_t seed = 0xfa017ULL;

  Status Validate() const;
};

// Immutable per-source fault parameters plus the keyed decision streams.
// Shared read-only across threads; all methods are const and state-free.
class FaultModel {
 public:
  static Result<FaultModel> Create(int num_sources,
                                   const FaultModelOptions& options);

  int num_sources() const { return static_cast<int>(failure_prob_.size()); }
  const FaultModelOptions& options() const { return options_; }

  // Source s's effective per-attempt transient-failure probability.
  double TransientFailureProb(int source) const {
    return failure_prob_[static_cast<size_t>(source)];
  }

  // True when `source` is scheduled dark at draw `epoch`.
  bool PermanentlyOut(int source, int64_t epoch) const {
    const int64_t start = outage_epoch_[static_cast<size_t>(source)];
    return start >= 0 && epoch >= start;
  }

  // Sources carrying a scheduled outage (ascending).
  const std::vector<int>& outage_sources() const { return outage_sources_; }

  // Keyed per-access decisions — pure functions of the identifiers.
  bool AttemptFails(int source, int64_t epoch, int attempt) const;
  bool ValueCorrupted(int source, int64_t epoch, int component_pos) const;
  double AttemptLatencyMs(int source, int64_t epoch, int attempt,
                          int num_components) const;
  // Uniform [0,1) used by the retry policy's deterministic backoff jitter.
  double BackoffJitterU01(int source, int64_t epoch, int attempt) const;

 private:
  FaultModel(FaultModelOptions options, std::vector<double> failure_prob,
             std::vector<int64_t> outage_epoch,
             std::vector<int> outage_sources)
      : options_(options),
        failure_prob_(std::move(failure_prob)),
        outage_epoch_(std::move(outage_epoch)),
        outage_sources_(std::move(outage_sources)) {}

  FaultModelOptions options_;
  std::vector<double> failure_prob_;   // per source, in [0, 1]
  std::vector<int64_t> outage_epoch_;  // per source; -1 = never
  std::vector<int> outage_sources_;
};

// Mixes a seed and up to three identifiers into a decorrelated 64-bit
// stream key (splitmix64 finalization per word). Exposed for tests.
uint64_t MixFaultKey(uint64_t seed, uint64_t a, uint64_t b, uint64_t c);

}  // namespace vastats

#endif  // VASTATS_DATAGEN_FAULT_MODEL_H_
