// Builds synthetic heterogeneous source sets: overlapping sources holding
// duplicated components with conflicting values — the workload shape of the
// paper's empirical study (|D| = 100 sources, |C| = 500 components, values
// from the D2/D3 mixtures of Table 1).

#ifndef VASTATS_DATAGEN_SOURCE_BUILDER_H_
#define VASTATS_DATAGEN_SOURCE_BUILDER_H_

#include "datagen/distributions.h"
#include "datagen/source_set.h"
#include "util/status.h"

namespace vastats {

// How the duplicated copies of a component disagree across sources.
enum class ConflictModel {
  // One base value per component; each source's copy adds Gaussian noise of
  // sigma `conflict_sigma` (semantic ambiguity / measurement error).
  kSharedBaseNoise,
  // Every copy is an independent draw from the value distribution
  // (maximal value-level heterogeneity).
  kIndependentRedraw,
};

struct SyntheticSourceSetOptions {
  int num_sources = 100;    // |D| (Table 2 default)
  int num_components = 500;  // |C| (Table 2 default)
  // Number of sources holding each component, drawn uniformly per component.
  int min_copies = 2;
  int max_copies = 6;
  ConflictModel conflict_model = ConflictModel::kSharedBaseNoise;
  double conflict_sigma = 0.5;
  // Probability that an individual binding is accidentally stored in
  // Fahrenheit (v -> v * 9/5 + 32) — the unit-error mechanism the paper's
  // §7 identifies behind the second mode of Figure 7(a).
  double unit_error_prob = 0.0;
  // Fraction of *sources* that store every value in Fahrenheit.
  double unit_error_source_fraction = 0.0;
  ComponentId first_component_id = 0;
  uint64_t seed = 1;

  Status Validate() const;
};

// Generates the source set. Every component ends up bound by at least
// `min_copies` sources; component ids are
// [first_component_id, first_component_id + num_components).
Result<SourceSet> BuildSyntheticSourceSet(
    const Distribution& value_distribution,
    const SyntheticSourceSetOptions& options);

// Adds one semantic-ambiguity conflict: `component` is bound by exactly the
// two given sources, the second storing `value + shift` (two sources that
// apply different — individually correct — semantics, per the discussion of
// [19] in the paper's §6). When uniS samples, the aggregate absorbs the
// shift with probability 1/2, which is what splits the viable answer
// distribution into the multi-modal lattices of Figure 7(c)/(d).
Status AddConflictComponent(SourceSet& sources, ComponentId component,
                            int source_a, int source_b, double value,
                            double shift);

}  // namespace vastats

#endif  // VASTATS_DATAGEN_SOURCE_BUILDER_H_
