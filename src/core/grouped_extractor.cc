#include "core/grouped_extractor.h"

namespace vastats {

std::vector<std::string> GroupedAnswer::PassingKeys(
    double min_probability) const {
  std::vector<std::string> keys;
  for (const GroupAnswer& group : groups) {
    if (group.having_probability >= min_probability) {
      keys.push_back(group.key);
    }
  }
  return keys;
}

Result<GroupedQueryEvaluator> GroupedQueryEvaluator::Create(
    const SourceSet* sources, GroupedAggregateQuery query,
    ExtractorOptions options) {
  if (sources == nullptr) {
    return Status::InvalidArgument("GroupedQueryEvaluator needs a SourceSet");
  }
  VASTATS_RETURN_IF_ERROR(query.Validate());
  VASTATS_RETURN_IF_ERROR(options.Validate());
  for (const QueryGroup& group : query.groups) {
    VASTATS_RETURN_IF_ERROR(sources->ValidateCoverage(group.components));
  }
  return GroupedQueryEvaluator(sources, std::move(query), std::move(options));
}

Result<GroupedAnswer> GroupedQueryEvaluator::Evaluate() const {
  GroupedAnswer answer;
  answer.groups.reserve(query_.groups.size());
  for (size_t g = 0; g < query_.groups.size(); ++g) {
    ExtractorOptions options = options_;
    options.seed = options_.seed + g;
    VASTATS_ASSIGN_OR_RETURN(
        const AnswerStatisticsExtractor extractor,
        AnswerStatisticsExtractor::Create(sources_, query_.GroupQuery(g),
                                          options));
    VASTATS_ASSIGN_OR_RETURN(AnswerStatistics stats, extractor.Extract());

    double having_probability = 1.0;
    if (query_.has_having) {
      // Pass probability over the viable answer samples. When the HAVING
      // aggregate differs from the SELECT aggregate, draw a dedicated
      // sample of the HAVING aggregate's viable answers.
      std::vector<double> having_samples;
      if (query_.having.aggregate == query_.aggregate) {
        having_samples = stats.samples;
      } else {
        AggregateQuery having_query = query_.GroupQuery(g);
        having_query.kind = query_.having.aggregate;
        VASTATS_ASSIGN_OR_RETURN(
            const UniSSampler having_sampler,
            UniSSampler::Create(sources_, having_query));
        Rng rng(options.seed ^ 0x9e3779b9ULL);
        VASTATS_ASSIGN_OR_RETURN(
            having_samples,
            having_sampler.Sample(
                static_cast<int>(stats.samples.size()), rng));
      }
      int passing = 0;
      for (const double v : having_samples) {
        if (query_.having.Test(v)) ++passing;
      }
      having_probability =
          having_samples.empty()
              ? 0.0
              : static_cast<double>(passing) /
                    static_cast<double>(having_samples.size());
    }
    answer.groups.push_back(GroupAnswer{query_.groups[g].key,
                                        std::move(stats),
                                        having_probability});
  }
  return answer;
}

}  // namespace vastats
