#include "core/stability.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "stats/descriptive.h"
#include "util/math.h"

namespace vastats {

Result<double> ChangeRatio(double y, int num_sources, int r,
                           ChangeRatioEstimator estimator) {
  if (num_sources < 2) {
    return Status::InvalidArgument("ChangeRatio requires >= 2 sources");
  }
  if (r <= 0 || r >= num_sources) {
    return Status::InvalidArgument(
        "ChangeRatio requires 0 < r < num_sources");
  }
  const double d = static_cast<double>(num_sources);
  y = std::clamp(y, 0.0, d);
  switch (estimator) {
    case ChangeRatioEstimator::kGeometric:
      return 1.0 - std::pow(1.0 - y / d, static_cast<double>(r));
    case ChangeRatioEstimator::kCombinatorial: {
      // (C(|D|,r) - C(|D|-y,r)) / C(|D|,r), with y rounded to an integer
      // source count.
      const int yi = static_cast<int>(std::lround(y));
      if (num_sources - yi < r) return 1.0;  // removal always hits
      VASTATS_ASSIGN_OR_RETURN(const double log_all,
                               LogBinomial(num_sources, r));
      VASTATS_ASSIGN_OR_RETURN(const double log_miss,
                               LogBinomial(num_sources - yi, r));
      return 1.0 - std::exp(log_miss - log_all);
    }
  }
  return Status::Internal("unknown ChangeRatioEstimator");
}

double MutualImpactPsiExact(std::span<const double> samples,
                            double bandwidth) {
  const double inv = 1.0 / (4.0 * bandwidth * bandwidth);
  double psi = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    for (size_t j = i + 1; j < samples.size(); ++j) {
      const double d = samples[i] - samples[j];
      psi += std::exp(-d * d * inv);
    }
  }
  return psi;
}

double MutualImpactPsi(std::span<const double> samples, double bandwidth) {
  // exp(-d^2/4h^2) < 1e-16 once d > ~12.14 h; such pairs are dropped.
  const double cutoff = 12.15 * bandwidth;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double inv = 1.0 / (4.0 * bandwidth * bandwidth);
  double psi = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    for (size_t j = i + 1; j < sorted.size(); ++j) {
      const double d = sorted[j] - sorted[i];
      if (d > cutoff) break;
      psi += std::exp(-d * d * inv);
    }
  }
  return psi;
}

namespace {

Status ValidateSamplesAndBandwidth(std::span<const double> samples,
                                   double bandwidth) {
  if (samples.size() < 2) {
    return Status::InvalidArgument("stability scores require >= 2 samples");
  }
  if (!(bandwidth > 0.0)) {
    return Status::InvalidArgument("stability scores require bandwidth > 0");
  }
  return Status::Ok();
}

}  // namespace

Result<double> StabilityL2(std::span<const double> samples, double bandwidth,
                           double change_ratio) {
  VASTATS_RETURN_IF_ERROR(ValidateSamplesAndBandwidth(samples, bandwidth));
  if (!(change_ratio > 0.0 && change_ratio < 1.0)) {
    return Status::InvalidArgument("change_ratio must be in (0,1)");
  }
  const double n = static_cast<double>(samples.size());
  const double psi = MutualImpactPsi(samples, bandwidth);
  // Eq. (4.3); the factor (1 - 2 Psi / (n(n-1))) is 0 when every sample
  // coincides, in which case the distribution cannot change -> +inf score.
  const double spread = 1.0 - 2.0 * psi / (n * (n - 1.0));
  const double expected_sq_distance =
      (1.0 / (2.0 * n * bandwidth * std::sqrt(kPi))) *
      (change_ratio / (1.0 - change_ratio)) * std::max(0.0, spread);
  if (expected_sq_distance <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return -0.5 * std::log(expected_sq_distance);
}

Result<double> StabilityBhattacharyya(std::span<const double> samples,
                                      double bandwidth) {
  VASTATS_RETURN_IF_ERROR(ValidateSamplesAndBandwidth(samples, bandwidth));
  const double n = static_cast<double>(samples.size());
  const double psi = MutualImpactPsi(samples, bandwidth);
  // Eq. (4.4).
  const double value = 1.0 / (2.0 * n * bandwidth * std::sqrt(kPi)) +
                       psi / (n * n * bandwidth * std::sqrt(kPi));
  return -std::log(value);
}

Result<StabilityReport> ComputeStability(std::span<const double> samples,
                                         double bandwidth, double y,
                                         int num_sources, int r,
                                         ChangeRatioEstimator estimator) {
  StabilityReport report;
  report.bandwidth = bandwidth;
  report.y = y;
  report.r = r;
  VASTATS_ASSIGN_OR_RETURN(report.change_ratio,
                           ChangeRatio(y, num_sources, r, estimator));
  report.psi = MutualImpactPsi(samples, bandwidth);
  VASTATS_ASSIGN_OR_RETURN(report.stab_l2,
                           StabilityL2(samples, bandwidth,
                                       report.change_ratio));
  VASTATS_ASSIGN_OR_RETURN(report.stab_bh,
                           StabilityBhattacharyya(samples, bandwidth));
  return report;
}

Result<double> SimulateStability(const UniSSampler& sampler,
                                 const GridDensity& base_density,
                                 const SimulatedStabilityOptions& options,
                                 Rng& rng) {
  if (options.trials <= 0 || options.samples_per_trial < 2) {
    return Status::InvalidArgument(
        "SimulateStability needs trials > 0 and samples_per_trial >= 2");
  }
  const int num_sources = sampler.sources().NumSources();
  if (options.r <= 0 || options.r >= num_sources) {
    return Status::InvalidArgument(
        "SimulateStability requires 0 < r < num_sources");
  }
  const bool squared = options.distance == DistanceKind::kL2 ||
                       options.distance == DistanceKind::kSquaredL2;

  // Fix the KDE grid to the base density's so distances are well-posed.
  KdeOptions kde = options.kde;
  kde.x_min = base_density.x_min();
  kde.x_max = base_density.x_max();
  kde.grid_size = base_density.size();
  // The inherited grid size need not be a power of two (the base density
  // may come from anywhere); the binned DCT path requires one, so route
  // such grids through direct summation.
  if (kde.binned && !IsPowerOfTwo(kde.grid_size)) kde.binned = false;

  double total = 0.0;
  int completed = 0;
  constexpr int kMaxRetriesPerTrial = 50;
  for (int trial = 0; trial < options.trials; ++trial) {
    std::vector<int> removed;
    bool found = false;
    for (int attempt = 0; attempt < kMaxRetriesPerTrial; ++attempt) {
      removed.clear();
      while (static_cast<int>(removed.size()) < options.r) {
        const int s = static_cast<int>(rng.UniformInt(0, num_sources - 1));
        if (std::find(removed.begin(), removed.end(), s) == removed.end()) {
          removed.push_back(s);
        }
      }
      if (sampler.CoverableWithout(removed)) {
        found = true;
        break;
      }
    }
    if (!found) continue;

    VASTATS_ASSIGN_OR_RETURN(
        const std::vector<double> samples,
        sampler.SampleExcluding(options.samples_per_trial, removed, rng));
    VASTATS_ASSIGN_OR_RETURN(const Kde removed_kde,
                             EstimateKde(samples, kde));
    VASTATS_ASSIGN_OR_RETURN(
        const double distance,
        DensityDistance(base_density, removed_kde.density,
                        squared ? DistanceKind::kSquaredL2
                                : options.distance));
    total += distance;
    ++completed;
  }
  if (completed == 0) {
    return Status::FailedPrecondition(
        "SimulateStability: no removal left the query coverable");
  }
  const double expected = total / static_cast<double>(completed);
  if (!(expected > 0.0)) return std::numeric_limits<double>::infinity();
  return squared ? -0.5 * std::log(expected) : -std::log(expected);
}

Result<std::vector<DeviationPoint>> DeviationMap(const UniSSampler& sampler,
                                                 double base_mean,
                                                 int samples_per_removal,
                                                 Rng& rng) {
  if (samples_per_removal <= 0) {
    return Status::InvalidArgument(
        "DeviationMap requires samples_per_removal > 0");
  }
  if (base_mean == 0.0) {
    return Status::InvalidArgument(
        "DeviationMap: base mean of 0 makes relative deviation undefined");
  }
  std::vector<DeviationPoint> points;
  const int num_sources = sampler.sources().NumSources();
  for (int s = 0; s < num_sources; ++s) {
    const int removed[] = {s};
    if (!sampler.CoverableWithout(removed)) continue;
    VASTATS_ASSIGN_OR_RETURN(
        const std::vector<double> samples,
        sampler.SampleExcluding(samples_per_removal, removed, rng));
    const double mean = ComputeMoments(samples).mean();
    points.push_back(DeviationPoint{
        s, std::fabs(mean - base_mean) / std::fabs(base_mean)});
  }
  return points;
}

}  // namespace vastats
