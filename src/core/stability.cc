#include "core/stability.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "stats/descriptive.h"
#include "util/math.h"

namespace vastats {

Result<double> ChangeRatio(double y, int num_sources, int r,
                           ChangeRatioEstimator estimator) {
  if (num_sources < 2) {
    return Status::InvalidArgument("ChangeRatio requires >= 2 sources");
  }
  if (r <= 0 || r >= num_sources) {
    return Status::InvalidArgument(
        "ChangeRatio requires 0 < r < num_sources");
  }
  const double d = static_cast<double>(num_sources);
  y = std::clamp(y, 0.0, d);
  switch (estimator) {
    case ChangeRatioEstimator::kGeometric:
      return 1.0 - std::pow(1.0 - y / d, static_cast<double>(r));
    case ChangeRatioEstimator::kCombinatorial: {
      // (C(|D|,r) - C(|D|-y,r)) / C(|D|,r). Fractional y interpolates
      // between floor(y) and ceil(y): rounding would collapse any y < 0.5
      // to an exactly-zero change ratio, which the L2 score's (0,1) domain
      // then rejects for perfectly valid small-churn inputs.
      VASTATS_ASSIGN_OR_RETURN(const double log_all,
                               LogBinomial(num_sources, r));
      const auto miss_ratio = [&](int yi) -> Result<double> {
        if (num_sources - yi < r) return 0.0;  // removal always hits
        VASTATS_ASSIGN_OR_RETURN(const double log_miss,
                                 LogBinomial(num_sources - yi, r));
        return std::exp(log_miss - log_all);
      };
      const int y_floor = static_cast<int>(std::floor(y));
      VASTATS_ASSIGN_OR_RETURN(const double miss_floor, miss_ratio(y_floor));
      const double frac = y - static_cast<double>(y_floor);
      if (frac == 0.0) return 1.0 - miss_floor;
      VASTATS_ASSIGN_OR_RETURN(const double miss_ceil,
                               miss_ratio(y_floor + 1));
      return 1.0 - ((1.0 - frac) * miss_floor + frac * miss_ceil);
    }
  }
  return Status::Internal("unknown ChangeRatioEstimator");
}

double MutualImpactPsiExact(std::span<const double> samples,
                            double bandwidth) {
  const double inv = 1.0 / (4.0 * bandwidth * bandwidth);
  double psi = 0.0;
  for (size_t i = 0; i < samples.size(); ++i) {
    for (size_t j = i + 1; j < samples.size(); ++j) {
      const double d = samples[i] - samples[j];
      psi += std::exp(-d * d * inv);
    }
  }
  return psi;
}

double MutualImpactPsiSorted(std::span<const double> samples,
                             double bandwidth) {
  // exp(-d^2/4h^2) < 1e-16 once d > ~12.14 h; such pairs are dropped.
  const double cutoff = 12.15 * bandwidth;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double inv = 1.0 / (4.0 * bandwidth * bandwidth);
  double psi = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    for (size_t j = i + 1; j < sorted.size(); ++j) {
      const double d = sorted[j] - sorted[i];
      if (d > cutoff) break;
      psi += std::exp(-d * d * inv);
    }
  }
  return psi;
}

namespace {

Status ValidateSamplesAndBandwidth(std::span<const double> samples,
                                   double bandwidth) {
  if (samples.size() < 2) {
    return Status::InvalidArgument("stability scores require >= 2 samples");
  }
  if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
    return Status::InvalidArgument(
        "stability scores require a finite bandwidth > 0");
  }
  return Status::Ok();
}

Status ValidateFiniteSamples(std::span<const double> samples) {
  // A NaN sample would reach LinearBinning's double->size_t cast (UB), so
  // the binned path rejects non-finite input up front, like EstimateKde.
  for (const double x : samples) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("stability samples must be finite");
    }
  }
  return Status::Ok();
}

// Grid geometry of the binned Gauss transform for one (samples, h) pair.
struct PsiGrid {
  double lo = 0.0;
  double hi = 0.0;
  double step = 0.0;
  // All samples coincide: Psi = C(n,2) in closed form, no transform.
  bool coincident = false;
};

PsiGrid ComputePsiGrid(std::span<const double> samples, double bandwidth,
                       const StabilityOptions& options) {
  PsiGrid grid;
  const auto [min_it, max_it] =
      std::minmax_element(samples.begin(), samples.end());
  if (!(*max_it > *min_it)) {
    grid.coincident = true;
    return grid;
  }
  // The cross kernel exp(-d^2/4h^2) is a Gaussian of scale sigma = sqrt(2)h.
  // Padding by >= 4 sigma keeps every sample >= 4 sigma from the boundary,
  // so the DCT's reflective images (at >= 8 sigma from their originals)
  // contribute < exp(-32) ~ 1e-14 per pair.
  const double sigma = kSqrt2 * bandwidth;
  const double span = *max_it - *min_it;
  const double pad = std::max(options.padding_fraction * span, 4.0 * sigma);
  grid.lo = *min_it - pad;
  grid.hi = *max_it + pad;
  grid.step = (grid.hi - grid.lo) /
              static_cast<double>(options.grid_size - 1);
  return grid;
}

// The binned fast Gauss transform on an already-computed grid. See
// DESIGN.md ("Binned stability Psi") for the derivation: smoothing the raw
// bin counts with the heat kernel of variance 2h^2 (spectral multiplier
// exp(-0.5 k^2 pi^2 t), t = 2 (h/r)^2) and taking the self-weighted sum
// reproduces the double cross-kernel sum up to linear-binning error.
Result<double> BinnedPsiOnGrid(std::span<const double> samples,
                               double bandwidth, const PsiGrid& grid,
                               size_t m, DctPlan& plan) {
  const double n = static_cast<double>(samples.size());
  const std::vector<double> bins = LinearBinning(samples, grid.lo, grid.hi, m);
  std::vector<double> dct;
  VASTATS_RETURN_IF_ERROR(plan.Dct2(bins, dct));
  const double r = grid.hi - grid.lo;
  const double sigma = kSqrt2 * bandwidth;
  const double t = (sigma / r) * (sigma / r);
  // exp(-0.5 k^2 pi^2 t) by the same two-factor recurrence as the binned
  // KDE smoothing; once the factor underflows the rest are exact zeros.
  const double c = 0.5 * kPi * kPi * t;
  const double q2 = std::exp(-2.0 * c);
  double e = 1.0;             // exp(-c * 0^2)
  double gap = std::exp(-c);  // e_{k+1} / e_k at k = 0
  for (size_t k = 0; k < m; ++k) {
    dct[k] *= e;
    e *= gap;
    gap *= q2;
    if (e < 1e-300) {
      std::fill(dct.begin() + static_cast<ptrdiff_t>(k) + 1, dct.end(), 0.0);
      break;
    }
  }
  std::vector<double> smooth;
  VASTATS_RETURN_IF_ERROR(plan.Dct3(dct, smooth));
  double weighted = 0.0;
  for (size_t i = 0; i < m; ++i) weighted += bins[i] * smooth[i];
  // Dct3(Dct2(x)) = (m/2) x, so the smoothed counts are (2/m) * smooth;
  // they carry the *normalized* kernel N(0, sigma) times the bin width
  // r/(m-1), while Psi's kernel is unnormalized, so the weighted sum scales
  // by sigma * sqrt(2 pi) / step = 2 h sqrt(pi) (m-1) / r. That total
  // counts every ordered pair including i = j; each self pair contributes
  // exactly K(0) = 1, and the remaining cross sum double-counts Psi.
  const double total = weighted * (2.0 / static_cast<double>(m)) *
                       2.0 * bandwidth * std::sqrt(kPi) *
                       static_cast<double>(m - 1) / r;
  const double psi = 0.5 * (total - n);
  return std::clamp(psi, 0.0, 0.5 * n * (n - 1.0));
}

}  // namespace

Status StabilityOptions::Validate() const {
  if (mode == StabilityPsiMode::kBinned &&
      (!IsPowerOfTwo(grid_size) || grid_size < 16)) {
    return Status::InvalidArgument(
        "binned stability Psi requires a power-of-two grid_size >= 16");
  }
  if (!(padding_fraction >= 0.0)) {
    return Status::InvalidArgument(
        "StabilityOptions.padding_fraction must be >= 0");
  }
  return Status::Ok();
}

Result<PsiEvaluation> EvaluateMutualImpactPsi(std::span<const double> samples,
                                              double bandwidth,
                                              const StabilityOptions& options,
                                              const ObsOptions& obs,
                                              DctPlan* plan) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  VASTATS_RETURN_IF_ERROR(ValidateSamplesAndBandwidth(samples, bandwidth));
  ScopedSpan span(obs, "stability_psi");
  span.Annotate("samples", static_cast<int64_t>(samples.size()));
  PsiEvaluation eval;
  if (options.mode == StabilityPsiMode::kBinned) {
    VASTATS_RETURN_IF_ERROR(ValidateFiniteSamples(samples));
    const PsiGrid grid = ComputePsiGrid(samples, bandwidth, options);
    if (grid.coincident) {
      // Every pair contributes exactly 1; cheaper and exacter than either
      // evaluation path (the grid itself would be degenerate).
      const double n = static_cast<double>(samples.size());
      eval.psi = 0.5 * n * (n - 1.0);
      eval.mode = StabilityPsiMode::kExact;
      span.Annotate("path", "coincident");
      return eval;
    }
    // A kernel narrower than ~1.5 grid cells aliases between grid points
    // (the same resolution limit the binned KDE clamps at); h is a given
    // here, so route such calls to the exact sum instead. Narrow kernels
    // make the sorted cutoff near-linear anyway.
    if (bandwidth >= 1.5 * grid.step) {
      DctPlan local_plan;
      DctPlan& dct_plan = plan != nullptr ? *plan : local_plan;
      VASTATS_ASSIGN_OR_RETURN(
          eval.psi,
          BinnedPsiOnGrid(samples, bandwidth, grid, options.grid_size,
                          dct_plan));
      eval.mode = StabilityPsiMode::kBinned;
      span.Annotate("path", "binned");
      span.Annotate("grid_size", static_cast<int64_t>(options.grid_size));
      obs.GetCounter("stability_psi_binned_total").Increment();
      return eval;
    }
    span.Annotate("resolution_fallback", true);
    obs.GetCounter("stability_psi_resolution_fallbacks_total").Increment();
  }
  eval.psi = MutualImpactPsiSorted(samples, bandwidth);
  eval.mode = StabilityPsiMode::kExact;
  span.Annotate("path", "exact");
  obs.GetCounter("stability_psi_exact_total").Increment();
  return eval;
}

Result<double> MutualImpactPsi(std::span<const double> samples,
                               double bandwidth,
                               const StabilityOptions& options,
                               const ObsOptions& obs, DctPlan* plan) {
  VASTATS_ASSIGN_OR_RETURN(
      const PsiEvaluation eval,
      EvaluateMutualImpactPsi(samples, bandwidth, options, obs, plan));
  return eval.psi;
}

Result<double> MutualImpactPsiBinned(std::span<const double> samples,
                                     double bandwidth,
                                     const StabilityOptions& options,
                                     const ObsOptions& obs, DctPlan* plan) {
  StabilityOptions binned = options;
  binned.mode = StabilityPsiMode::kBinned;
  VASTATS_RETURN_IF_ERROR(binned.Validate());
  VASTATS_RETURN_IF_ERROR(ValidateSamplesAndBandwidth(samples, bandwidth));
  VASTATS_RETURN_IF_ERROR(ValidateFiniteSamples(samples));
  const PsiGrid grid = ComputePsiGrid(samples, bandwidth, binned);
  if (grid.coincident) {
    const double n = static_cast<double>(samples.size());
    return 0.5 * n * (n - 1.0);
  }
  ScopedSpan span(obs, "stability_psi");
  span.Annotate("samples", static_cast<int64_t>(samples.size()));
  span.Annotate("path", "binned");
  span.Annotate("grid_size", static_cast<int64_t>(binned.grid_size));
  obs.GetCounter("stability_psi_binned_total").Increment();
  DctPlan local_plan;
  DctPlan& dct_plan = plan != nullptr ? *plan : local_plan;
  return BinnedPsiOnGrid(samples, bandwidth, grid, binned.grid_size,
                         dct_plan);
}

Result<double> StabilityL2FromPsi(double n, double bandwidth,
                                  double change_ratio, double psi) {
  if (!(n >= 2.0)) {
    return Status::InvalidArgument("stability scores require >= 2 samples");
  }
  if (!(bandwidth > 0.0)) {
    return Status::InvalidArgument("stability scores require bandwidth > 0");
  }
  if (!(change_ratio > 0.0 && change_ratio < 1.0)) {
    return Status::InvalidArgument("change_ratio must be in (0,1)");
  }
  // Eq. (4.3); the factor (1 - 2 Psi / (n(n-1))) is 0 when every sample
  // coincides, in which case the distribution cannot change -> +inf score.
  const double spread = 1.0 - 2.0 * psi / (n * (n - 1.0));
  const double expected_sq_distance =
      (1.0 / (2.0 * n * bandwidth * std::sqrt(kPi))) *
      (change_ratio / (1.0 - change_ratio)) * std::max(0.0, spread);
  if (expected_sq_distance <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return -0.5 * std::log(expected_sq_distance);
}

Result<double> StabilityBhattacharyyaFromPsi(double n, double bandwidth,
                                             double psi) {
  if (!(n >= 2.0)) {
    return Status::InvalidArgument("stability scores require >= 2 samples");
  }
  if (!(bandwidth > 0.0)) {
    return Status::InvalidArgument("stability scores require bandwidth > 0");
  }
  // Eq. (4.4).
  const double value = 1.0 / (2.0 * n * bandwidth * std::sqrt(kPi)) +
                       psi / (n * n * bandwidth * std::sqrt(kPi));
  return -std::log(value);
}

Result<double> StabilityL2(std::span<const double> samples, double bandwidth,
                           double change_ratio,
                           const StabilityOptions& options,
                           const ObsOptions& obs, DctPlan* plan) {
  VASTATS_RETURN_IF_ERROR(ValidateSamplesAndBandwidth(samples, bandwidth));
  if (!(change_ratio > 0.0 && change_ratio < 1.0)) {
    return Status::InvalidArgument("change_ratio must be in (0,1)");
  }
  VASTATS_ASSIGN_OR_RETURN(
      const double psi, MutualImpactPsi(samples, bandwidth, options, obs,
                                        plan));
  return StabilityL2FromPsi(static_cast<double>(samples.size()), bandwidth,
                            change_ratio, psi);
}

Result<double> StabilityBhattacharyya(std::span<const double> samples,
                                      double bandwidth,
                                      const StabilityOptions& options,
                                      const ObsOptions& obs, DctPlan* plan) {
  VASTATS_RETURN_IF_ERROR(ValidateSamplesAndBandwidth(samples, bandwidth));
  VASTATS_ASSIGN_OR_RETURN(
      const double psi, MutualImpactPsi(samples, bandwidth, options, obs,
                                        plan));
  return StabilityBhattacharyyaFromPsi(static_cast<double>(samples.size()),
                                       bandwidth, psi);
}

Result<StabilityReport> ComputeStability(std::span<const double> samples,
                                         double bandwidth, double y,
                                         int num_sources, int r,
                                         ChangeRatioEstimator estimator,
                                         const StabilityOptions& options,
                                         const ObsOptions& obs,
                                         DctPlan* plan) {
  StabilityReport report;
  report.bandwidth = bandwidth;
  report.y = y;
  report.r = r;
  VASTATS_ASSIGN_OR_RETURN(report.change_ratio,
                           ChangeRatio(y, num_sources, r, estimator));
  // One Psi evaluation feeds both scores (the former per-score calls
  // re-evaluated the identical cross sum three times).
  VASTATS_ASSIGN_OR_RETURN(
      const PsiEvaluation psi,
      EvaluateMutualImpactPsi(samples, bandwidth, options, obs, plan));
  report.psi = psi.psi;
  report.psi_mode = psi.mode;
  const double n = static_cast<double>(samples.size());
  VASTATS_ASSIGN_OR_RETURN(
      report.stab_l2,
      StabilityL2FromPsi(n, bandwidth, report.change_ratio, report.psi));
  VASTATS_ASSIGN_OR_RETURN(
      report.stab_bh,
      StabilityBhattacharyyaFromPsi(n, bandwidth, report.psi));
  return report;
}

Result<double> SimulateStability(const UniSSampler& sampler,
                                 const GridDensity& base_density,
                                 const SimulatedStabilityOptions& options,
                                 Rng& rng) {
  if (options.trials <= 0 || options.samples_per_trial < 2) {
    return Status::InvalidArgument(
        "SimulateStability needs trials > 0 and samples_per_trial >= 2");
  }
  const int num_sources = sampler.sources().NumSources();
  if (options.r <= 0 || options.r >= num_sources) {
    return Status::InvalidArgument(
        "SimulateStability requires 0 < r < num_sources");
  }
  const bool squared = options.distance == DistanceKind::kL2 ||
                       options.distance == DistanceKind::kSquaredL2;

  // Fix the KDE grid to the base density's so distances are well-posed.
  KdeOptions kde = options.kde;
  kde.x_min = base_density.x_min();
  kde.x_max = base_density.x_max();
  kde.grid_size = base_density.size();
  // The inherited grid size need not be a power of two (the base density
  // may come from anywhere); the binned DCT path requires one, so route
  // such grids through direct summation.
  if (kde.binned && !IsPowerOfTwo(kde.grid_size)) kde.binned = false;

  double total = 0.0;
  int completed = 0;
  constexpr int kMaxRetriesPerTrial = 50;
  for (int trial = 0; trial < options.trials; ++trial) {
    std::vector<int> removed;
    bool found = false;
    for (int attempt = 0; attempt < kMaxRetriesPerTrial; ++attempt) {
      removed.clear();
      while (static_cast<int>(removed.size()) < options.r) {
        const int s = static_cast<int>(rng.UniformInt(0, num_sources - 1));
        if (std::find(removed.begin(), removed.end(), s) == removed.end()) {
          removed.push_back(s);
        }
      }
      if (sampler.CoverableWithout(removed)) {
        found = true;
        break;
      }
    }
    if (!found) continue;

    VASTATS_ASSIGN_OR_RETURN(
        const std::vector<double> samples,
        sampler.SampleExcluding(options.samples_per_trial, removed, rng));
    VASTATS_ASSIGN_OR_RETURN(const Kde removed_kde,
                             EstimateKde(samples, kde));
    VASTATS_ASSIGN_OR_RETURN(
        const double distance,
        DensityDistance(base_density, removed_kde.density,
                        squared ? DistanceKind::kSquaredL2
                                : options.distance));
    total += distance;
    ++completed;
  }
  if (completed == 0) {
    return Status::FailedPrecondition(
        "SimulateStability: no removal left the query coverable");
  }
  const double expected = total / static_cast<double>(completed);
  if (!(expected > 0.0)) return std::numeric_limits<double>::infinity();
  return squared ? -0.5 * std::log(expected) : -std::log(expected);
}

Result<DeviationMapResult> DeviationMap(const UniSSampler& sampler,
                                        double base_mean,
                                        int samples_per_removal, Rng& rng) {
  if (samples_per_removal <= 0) {
    return Status::InvalidArgument(
        "DeviationMap requires samples_per_removal > 0");
  }
  if (!std::isfinite(base_mean)) {
    return Status::InvalidArgument(
        "DeviationMap requires a finite base mean");
  }
  // Per-removal means are collected first; the denominator is only chosen
  // once the pooled sample spread is known, so a near-zero base mean (which
  // would inflate relative deviations astronomically) can be detected
  // against the data's own scale instead of an exact-zero check.
  std::vector<std::pair<int, double>> means;
  double pooled_count = 0.0;
  double pooled_mean = 0.0;
  double pooled_m2 = 0.0;
  const int num_sources = sampler.sources().NumSources();
  for (int s = 0; s < num_sources; ++s) {
    const int removed[] = {s};
    if (!sampler.CoverableWithout(removed)) continue;
    VASTATS_ASSIGN_OR_RETURN(
        const std::vector<double> samples,
        sampler.SampleExcluding(samples_per_removal, removed, rng));
    means.emplace_back(s, ComputeMoments(samples).mean());
    for (const double x : samples) {
      pooled_count += 1.0;
      const double delta = x - pooled_mean;
      pooled_mean += delta / pooled_count;
      pooled_m2 += delta * (x - pooled_mean);
    }
  }
  const double spread =
      pooled_count > 1.0 ? std::sqrt(pooled_m2 / (pooled_count - 1.0)) : 0.0;

  DeviationMapResult result;
  result.denominator = std::fabs(base_mean);
  // A base mean below a billionth of the sample spread is numerically zero
  // at this data's scale; fall back to the spread as the unit.
  constexpr double kMeanFloorVsSpread = 1e-9;
  if (result.denominator <= kMeanFloorVsSpread * spread) {
    result.denominator = spread;
    result.spread_fallback = true;
  }
  if (!(result.denominator > 0.0)) {
    return Status::InvalidArgument(
        "DeviationMap: base mean and sample spread are both zero; "
        "deviation is undefined");
  }
  result.points.reserve(means.size());
  for (const auto& [source, mean] : means) {
    result.points.push_back(DeviationPoint{
        source, std::fabs(mean - base_mean) / result.denominator});
  }
  return result;
}

}  // namespace vastats
