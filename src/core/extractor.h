// AnswerStatisticsExtractor — the paper's Algorithm 1, end to end:
//
//   1. uniS-sample viable answers from the data sources        (§4.2)
//   2. bootstrap-resample the answer set                        (§2.1)
//   3. bagged point estimates: mean, variance, skewness         (§4.2)
//   4. BCa confidence intervals for each point estimate         (§4.2)
//   5. bagged KDE of the viable answer distribution             (§4.3)
//   6. greedy CIO high-coverage intervals                       (§4.3)
//   7. analytic stability scores                                (§4.4)
//
// Defaults follow Table 2: |S_uniS| = 400, |S_boot| = 50,
// |B^i_boot| = |S_uniS|, confidence level 90%, theta = 0.9, L2 distance.

#ifndef VASTATS_CORE_EXTRACTOR_H_
#define VASTATS_CORE_EXTRACTOR_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/cio.h"
#include "core/stability.h"
#include "density/bagged_kde.h"
#include "sampling/adaptive.h"
#include "sampling/parallel.h"
#include "sampling/unis.h"
#include "stats/bootstrap.h"
#include "stats/confidence.h"
#include "util/status.h"

namespace vastats {

namespace transport {
class AsyncSourceTransport;
}  // namespace transport

// Fault-tolerant sampling configuration (see datagen/source_accessor.h).
// Attached to ExtractorOptions.fault_tolerance; when absent the sampling
// phase never touches the access seam and pays nothing for it existing.
struct FaultToleranceOptions {
  // Borrowed fault model driving the injected chaos; may be null, in which
  // case the seam still applies (visits always succeed instantly, breakers
  // never trip) — useful for exercising the degraded plumbing alone.
  const FaultModel* model = nullptr;
  RetryPolicy retry;
  CircuitBreakerOptions breaker;
  // Draws whose component coverage falls below this floor are dropped
  // instead of entering S_uniS; draws at or above it are kept as partial
  // viable answers (the paper's require_full_coverage = false path).
  double min_draw_coverage = 0.5;
  // Borrowed async transport (src/transport); null — the default — keeps
  // the deterministic inline fault simulation. When set, every sampling
  // session routes its source visits through a transport channel:
  // prefetched pipelined requests to worker-thread endpoints, optionally
  // hedged. Retry/backoff, breakers, and deadline budgets still run in the
  // session; build the transport over the SAME `model` and the extraction
  // (samples, DegradationReport, breaker transitions) is bit-identical to
  // the simulated run. Must outlive every Extract call that uses it.
  transport::AsyncSourceTransport* transport = nullptr;

  Status Validate() const;
};

// Seams a serving layer uses to share work across extractions. Every hook is
// optional (a default-constructed struct changes nothing), and every hook
// must preserve the bit-identity contract: a bandwidth served from a cache
// must be the exact double a cold selector run would have produced for the
// same samples and options, and a plan provider only moves where transform
// tables live — never what the transforms compute.
struct ExtractionCacheHooks {
  // Returns the DctPlan the *calling* thread should use for the KDE and
  // stability transforms. Invoked on whichever thread runs the transform
  // (pooled bagged-KDE workers included), so implementations must hand out
  // one plan per thread; plans are unsynchronized by design.
  std::function<DctPlan*()> plan_provider;
  // Botev bandwidth cache, consulted only under BandwidthMode::kShared with
  // no manual override. `bandwidth_lookup` returns the previously stored h
  // for this extraction's identity (or nullopt on a miss);
  // `bandwidth_store` publishes a freshly selected h for later hits.
  std::function<std::optional<double>()> bandwidth_lookup;
  std::function<void(double)> bandwidth_store;
};

struct ExtractorOptions {
  // |S_uniS| (Table 2 default 400); ignored when `adaptive` is set.
  int initial_sample_size = 400;
  BootstrapOptions bootstrap;           // 50 sets, |B| = |S_uniS|
  double confidence_level = 0.90;       // 1 - alpha
  CiMethod ci_method = CiMethod::kBca;  // paper uses BCa
  BagAggregator bag_aggregator = BagAggregator::kMean;
  KdeOptions kde;                       // 4096-point grid, Botev bandwidth
  // How the bagged density picks per-set bandwidths: kPerSet (paper
  // fidelity, one selector run per bootstrap set) or kShared (one selector
  // run on S_uniS reused across all sets — eliminates ~|S_boot| Botev runs
  // per extraction). Bit-identical across pool widths either way.
  BandwidthMode kde_bandwidth_mode = BandwidthMode::kPerSet;
  CioOptions cio;                       // theta = 0.9
  // Stability parameters: r sources removed, c_r estimator, probes used to
  // estimate the per-answer weight y, and how Psi is evaluated (binned
  // Gauss transform by default; see core/stability.h).
  int stability_r = 1;
  ChangeRatioEstimator change_ratio_estimator = ChangeRatioEstimator::kGeometric;
  int weight_probes = 20;
  StabilityOptions stability;
  // Optional adaptive sample growth (§4.2) replacing the fixed initial size.
  std::optional<AdaptiveSamplingOptions> adaptive;
  // Optional fault-tolerant sampling: when set, phase 1 routes every source
  // visit through the SourceAccessor seam (retry/backoff, per-source
  // circuit breakers, corruption rejection) and the pipeline degrades to
  // partial draws instead of failing when sources misbehave. The resulting
  // AnswerStatistics carries a DegradationReport. Chaos runs use the
  // chunk-indexed driver at every execution width, so with a fixed seed the
  // extraction is bit-identical across serial, thread-per-call, and pooled
  // sampling of any width.
  std::optional<FaultToleranceOptions> fault_tolerance;
  // uniS worker threads for the sampling phase: 1 = in-line (default),
  // 0 = hardware concurrency, k = k threads. Ignored under `adaptive`
  // (whose growth loop is inherently sequential). The parallel sampler's
  // RNG streams are chunk-indexed, so the drawn samples are identical for
  // every thread count > 1 (and for any pool size); only the dispatch
  // differs. A request that resolves to one worker collapses onto the
  // serial sampler (note its samples come from the serial seed stream, not
  // the chunk-indexed one).
  int sampling_threads = 1;
  // Borrowed persistent worker pool (optional, may be null). When set, the
  // parallel sampling phase, the per-set bootstrap statistic evaluations,
  // and the per-set KDE fits run as pool tasks instead of spawning threads
  // per call. Results are bit-identical with or without a pool.
  ThreadPool* pool = nullptr;
  // RNG seed; runs with equal seeds and options are bit-identical.
  uint64_t seed = 0x5eed;
  // Optional cross-extraction sharing seams (see ExtractionCacheHooks).
  // Default-constructed hooks are inert; results are bit-identical with or
  // without them by contract.
  ExtractionCacheHooks cache_hooks;
  // Optional telemetry sinks (borrowed, may both be null = disabled). With a
  // trace attached, every pipeline phase records a span under one `extract`
  // root, and PhaseTimings is derived from those same spans; with a metrics
  // registry attached, the samplers/KDE/CIO/stability stages publish
  // counters and histograms through it.
  ObsOptions obs;

  Status Validate() const;
};

struct PointEstimate {
  double value = 0.0;  // bagged estimate
  ConfidenceInterval ci;
};

// Wall-clock breakdown of the pipeline phases (drives Figure 6).
struct PhaseTimings {
  double sampling_seconds = 0.0;
  double bootstrap_seconds = 0.0;
  double point_statistics_seconds = 0.0;
  double kde_seconds = 0.0;
  double cio_seconds = 0.0;
  double stability_seconds = 0.0;

  double TotalSeconds() const {
    return sampling_seconds + bootstrap_seconds + point_statistics_seconds +
           kde_seconds + cio_seconds + stability_seconds;
  }
};

// Resolves ExtractorOptions.sampling_threads against a hardware concurrency
// reading: k > 0 stays k; 0 becomes max(1, hardware_concurrency). Exposed so
// the "resolved width 1 equals the serial sampler" routing is testable on
// any host.
int ResolveSamplingThreads(int sampling_threads, unsigned hardware_concurrency);

// Guards the Figure 6 invariant that the per-phase breakdown never exceeds
// the measured wall time of the whole pipeline (a phase counted twice would
// silently inflate the table). Returns true when TotalSeconds() is within
// `tolerance_fraction` of `total_elapsed_seconds`; otherwise scales every
// phase down proportionally so the sum equals the elapsed total and returns
// false.
bool ReconcilePhaseTimings(PhaseTimings& timings, double total_elapsed_seconds,
                           double tolerance_fraction = 0.05);

// How degraded an extraction ran. Populated only on the fault-tolerant
// path; a default-constructed report (degraded == false, coverage == 1)
// means the extraction never touched the access seam.
struct DegradationReport {
  // True when anything fell short of the fault-free ideal: dropped draws,
  // partial coverage, failed visits, breaker activity, or truncation.
  bool degraded = false;
  int draws_requested = 0;
  int draws_kept = 0;
  int draws_dropped = 0;
  // Coverage over the KEPT draws (min and mean); 1.0 when all were full.
  double min_coverage = 1.0;
  double mean_coverage = 1.0;
  // Merged access telemetry: retries, failures, breaker transitions and
  // per-source worst breaker severity (feeds the monitor's prioritization).
  AccessStats access;
};

// Everything Algorithm 1 returns (its grey-shaded outputs in Figure 3).
struct AnswerStatistics {
  PointEstimate mean;
  PointEstimate variance;
  PointEstimate std_dev;
  PointEstimate skewness;

  GridDensity density;          // the estimated viable answer distribution
  CoverageResult coverage;      // (I, L, C)
  StabilityReport stability;

  // Sampling metadata.
  std::vector<double> samples;  // S_uniS
  double answer_weight_y = 0.0;
  PhaseTimings timings;
  DegradationReport degradation;
};

class AnswerStatisticsExtractor {
 public:
  // `sources` must outlive the extractor.
  static Result<AnswerStatisticsExtractor> Create(const SourceSet* sources,
                                                  AggregateQuery query,
                                                  ExtractorOptions options);

  // Runs the full pipeline (draws fresh samples). Re-entrant: all mutable
  // state is call-local, so one extractor may serve concurrent Extract()
  // calls (the serving layer leans on this) — provided the attached obs
  // sinks are the thread-safe ones (metrics/recorder, no Trace) and any
  // cache hooks are themselves thread-safe.
  Result<AnswerStatistics> Extract() const;

  // Runs phases 2-7 on a pre-drawn viable answer sample (used by the
  // experiment harnesses to share one expensive sampling pass).
  Result<AnswerStatistics> ExtractFromSamples(std::vector<double> samples,
                                              Rng& rng) const;

  const UniSSampler& sampler() const { return sampler_; }
  const ExtractorOptions& options() const { return options_; }

 private:
  AnswerStatisticsExtractor(UniSSampler sampler, ExtractorOptions options)
      : sampler_(std::move(sampler)), options_(std::move(options)) {}

  Result<PointEstimate> EstimatePoint(
      MomentStatistic statistic, std::span<const double> samples,
      std::span<const std::vector<double>> sets) const;

  // Phase 1 under options_.fault_tolerance: draws S_uniS through the access
  // seam (adaptive loop or chunk-indexed driver) and fills the report.
  Result<DegradationReport> SampleDegradedPhase(
      Rng& rng, std::vector<double>* samples) const;

  UniSSampler sampler_;
  ExtractorOptions options_;
};

}  // namespace vastats

#endif  // VASTATS_CORE_EXTRACTOR_H_
