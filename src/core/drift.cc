#include "core/drift.h"

#include <cmath>
#include <limits>

namespace vastats {

Status DriftOptions::Validate() const {
  if (!(tolerance_factor > 0.0)) {
    return Status::InvalidArgument("tolerance_factor must be > 0");
  }
  return Status::Ok();
}

Result<DriftReport> AssessDrift(const GridDensity& previous_density,
                                double previous_stab_l2,
                                const GridDensity& current_density,
                                const DriftOptions& options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  DriftReport report;
  VASTATS_ASSIGN_OR_RETURN(
      report.realized_l2,
      DensityDistance(previous_density, current_density, DistanceKind::kL2));
  if (std::isinf(previous_stab_l2)) {
    // An infinitely stable epoch predicts zero drift: any realized change
    // is anomalous by definition.
    report.predicted_rms_l2 = 0.0;
    report.ratio =
        report.realized_l2 > 0.0
            ? std::numeric_limits<double>::infinity()
            : 0.0;
    report.anomalous = report.realized_l2 > 0.0;
    return report;
  }
  if (!std::isfinite(previous_stab_l2)) {
    return Status::InvalidArgument("previous_stab_l2 must not be NaN");
  }
  report.predicted_rms_l2 = std::exp(-previous_stab_l2);
  report.ratio = report.realized_l2 / report.predicted_rms_l2;
  report.anomalous = report.ratio > options.tolerance_factor;
  return report;
}

Result<DriftReport> AssessDrift(const AnswerStatistics& previous,
                                const AnswerStatistics& current,
                                const DriftOptions& options) {
  return AssessDrift(previous.density, previous.stability.stab_l2,
                     current.density, options);
}

}  // namespace vastats
