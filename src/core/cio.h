// Coverage Interval Optimization (paper §4.3, Definitions 3-5, Algorithm 2).
//
// Given the estimated viable answer density f and a coverage threshold
// theta, CIO asks for a set of intervals of minimal total length whose
// probability mass is at least theta. For multi-modal densities the answer
// is a small set of intervals hugging the modes — far more informative than
// one wide interval around the mean.
//
// Three solvers:
//  * GreedyCio      — Algorithm 2: water-level descent over the mode
//                     heights, plus the final 1/t*(theta-C) top-up around
//                     the last mode. Fast; optimal when Theorem 4.1's
//                     conditions hold, an approximation otherwise.
//  * DualGreedyCio  — Definition 5: maximize coverage subject to a total
//                     length budget gamma.
//  * SlicingCio     — the "optimal" baseline of Table 4: slice the range
//                     uniformly and greedily keep the densest slices. Tight
//                     but possibly discontinuous intervals.

#ifndef VASTATS_CORE_CIO_H_
#define VASTATS_CORE_CIO_H_

#include <vector>

#include "density/grid_density.h"
#include "obs/obs.h"
#include "util/status.h"

namespace vastats {

// One reported high-coverage interval I_i with its coverage C_i.
struct CoverageInterval {
  double lo = 0.0;
  double hi = 0.0;
  double coverage = 0.0;  // integral of f over [lo, hi]

  double Length() const { return hi - lo; }
};

// The (I, L, C) triple Algorithm 2 returns.
struct CoverageResult {
  std::vector<CoverageInterval> intervals;  // disjoint, ascending
  // L: total interval length as a fraction of the viable range |W|.
  double total_length_fraction = 0.0;
  // C: total coverage (probability mass captured).
  double total_coverage = 0.0;

  double TotalLength() const;
};

// How an interval around a mode is carved at a water level.
enum class CioExpansion {
  // Exact level-crossing points on both sides (lines 5-6 of Algorithm 2
  // taken literally). The resulting union is a superlevel set, which is the
  // optimal interval family for its coverage.
  kWaterLevel,
  // Symmetric half-width equal to the *farther* of the two crossing points.
  // This matches the behaviour the published evaluation exhibits (Table 4's
  // greedy/optimal ratios of 1.38/1.08 on asymmetric multi-modal densities,
  // exactly 1.0 on symmetric ones) and is kept as the faithful baseline.
  kSymmetric,
};

struct CioOptions {
  // Desired coverage theta in (0, 1).
  double theta = 0.9;
  // Modes below this fraction of the tallest mode are treated as estimation
  // noise and ignored.
  double min_mode_relative_height = 0.01;
  // When > 0, additionally requires each mode's topographic prominence to
  // reach this fraction of the tallest mode (see
  // GridDensity::FindProminentModes). 0 keeps the paper-faithful behavior
  // of descending through every local maximum.
  double min_mode_prominence = 0.0;
  // Caps the number of modes considered (0 = no cap).
  int max_modes = 0;
  // Ablation switch: instead of the paper's 1/t*(theta-C) top-up, continue
  // a continuous water-level descent until the coverage actually reaches
  // theta.
  bool top_up_to_theta = false;
  // Interval carving rule (see CioExpansion).
  CioExpansion expansion = CioExpansion::kWaterLevel;

  Status Validate() const;
};

// Algorithm 2 over a normalized density. `obs` (optional) records a
// `cio_greedy` span (modes, water-level iterations, resulting intervals)
// and the CIO counters.
Result<CoverageResult> GreedyCio(const GridDensity& density,
                                 const CioOptions& options,
                                 const ObsOptions& obs = {});

// Dual CIO: stop the same greedy descent once the total interval length
// reaches `total_length` (absolute units of the density's x axis).
Result<CoverageResult> DualGreedyCio(const GridDensity& density,
                                     double total_length,
                                     const CioOptions& options = {});

// Top-slices baseline: split the range into `num_slices` equal slices and
// keep the most massive ones until theta is covered. `obs` (optional)
// records a `cio_slicing` span and slice counters.
Result<CoverageResult> SlicingCio(const GridDensity& density, double theta,
                                  int num_slices = 4096,
                                  const ObsOptions& obs = {});

}  // namespace vastats

#endif  // VASTATS_CORE_CIO_H_
