// Drift assessment between extraction epochs — the operational closure of
// §4.4's stability analysis. The analytic score predicts the change a
// source departure would cause *before it happens*:
//
//   Stab_L2 = -1/2 log E[d_L2^2]   =>   predicted RMS L2 drift = exp(-Stab_L2).
//
// When the query is later re-extracted (source churn, value updates), the
// realized drift is the L2 distance between the two epochs' densities.
// Comparing realized against predicted tells the maintainer whether the
// change was within expectations (ordinary churn at the assumed rate) or an
// anomaly worth investigating (mass source loss, a semantic break, a
// mapping regression).

#ifndef VASTATS_CORE_DRIFT_H_
#define VASTATS_CORE_DRIFT_H_

#include "core/extractor.h"
#include "density/distance.h"
#include "density/grid_density.h"
#include "util/status.h"

namespace vastats {

struct DriftReport {
  // Realized L2 distance between the two epochs' densities.
  double realized_l2 = 0.0;
  // exp(-Stab_L2) of the *previous* epoch: the RMS distance expected from
  // one r-source removal at that time.
  double predicted_rms_l2 = 0.0;
  // realized / predicted; <= ~1 means "within one churn event's worth".
  double ratio = 0.0;
  // realized exceeds `tolerance_factor` times the prediction.
  bool anomalous = false;
};

struct DriftOptions {
  // How many predicted churn-events' worth of drift counts as ordinary.
  double tolerance_factor = 3.0;

  Status Validate() const;
};

// Compares the previous epoch's density and stability score against the
// current epoch's density. `previous_stab_l2` must be finite (an infinitely
// stable previous epoch makes every non-zero drift anomalous).
Result<DriftReport> AssessDrift(const GridDensity& previous_density,
                                double previous_stab_l2,
                                const GridDensity& current_density,
                                const DriftOptions& options = {});

// Convenience over two full extraction results.
Result<DriftReport> AssessDrift(const AnswerStatistics& previous,
                                const AnswerStatistics& current,
                                const DriftOptions& options = {});

}  // namespace vastats

#endif  // VASTATS_CORE_DRIFT_H_
