// Stability-driven maintenance of continuous aggregate queries.
//
// Paper §4.4: "the stability score ... can be used to prioritize the
// re-evaluation and update of queries, especially in a scenario where
// multiple continuous queries are managed. Note that the system needs to
// maintain neither the sampled viable answers nor the density estimation. A
// priority queue of the stability scores for the continuous queries is
// sufficient for maintenance."
//
// ContinuousQueryMonitor keeps that priority queue: register queries once,
// ask for the refresh order whenever sources churn, and refresh the least
// stable queries first under a budget.

#ifndef VASTATS_CORE_MONITOR_H_
#define VASTATS_CORE_MONITOR_H_

#include <string>
#include <vector>

#include "core/drift.h"
#include "core/extractor.h"
#include "sampling/weighted.h"

namespace vastats {

// Identifier of a registered continuous query.
using QueryId = int;

// Receives source-drift notifications from the monitor. The serving layer's
// caches implement this: a drift notice on source k bumps k's epoch and
// evicts every cached answer/bandwidth whose source closure includes k.
// Implementations must be thread-safe (the monitor may be driven from any
// thread) and must not call back into the monitor.
class SourceDriftListener {
 public:
  virtual ~SourceDriftListener() = default;
  // Source `source` changed (reported churn, or realized drift beyond what
  // the previous epoch's stability predicted).
  virtual void OnSourceDrift(int source) = 0;
};

class ContinuousQueryMonitor {
 public:
  // `sources` must outlive the monitor; `base_options` seeds each query's
  // extractor (per-query/per-refresh seeds are derived from it).
  explicit ContinuousQueryMonitor(const SourceSet* sources,
                                  ExtractorOptions base_options = {});

  // Registers a query and runs its initial extraction.
  Result<QueryId> Register(AggregateQuery query);

  int NumQueries() const { return static_cast<int>(entries_.size()); }

  // Latest statistics of a registered query.
  Result<AnswerStatistics> Statistics(QueryId id) const;

  // Latest stability score of a registered query.
  Result<double> Stability(QueryId id) const;

  // Query ids in refresh priority order. Within the queue, queries whose
  // last extraction saw open circuit breakers come first (their statistics
  // were computed against partially dark sources and are the most suspect),
  // then queries that degraded at all, then everything else — each group
  // ordered least stable first (the paper's §4.4 priority).
  std::vector<QueryId> RefreshOrder() const;

  // Re-extracts one query (e.g. after source churn). Queries whose coverage
  // broke return the failure without corrupting the stored statistics.
  Status Refresh(QueryId id);

  // Refresh(id) plus a drift assessment of the new epoch against the
  // previous one: how much the answer distribution actually moved, compared
  // with what the previous epoch's stability score predicted (see
  // core/drift.h). On failure the stored statistics stay untouched.
  Result<DriftReport> RefreshWithDrift(QueryId id,
                                       const DriftOptions& options = {});

  // Refreshes the `budget` least stable queries; returns the ids refreshed
  // (queries that fail to refresh are skipped and not counted against the
  // budget result, but are reported in `failed` when non-null). Each call
  // advances the quarantine clock by one tick: queries that failed their
  // recent refreshes are quarantined for exponentially growing tick spans
  // (capped) and skipped here without consuming budget, so one persistently
  // broken query cannot starve the healthy ones. A successful refresh
  // decays the failure streak (halves it) rather than erasing it.
  Result<std::vector<QueryId>> RefreshLeastStable(
      int budget, std::vector<QueryId>* failed = nullptr);

  // Attaches a drift listener (borrowed, may be null to detach). The
  // listener outlives the monitor or is detached first.
  void SetDriftListener(SourceDriftListener* listener) {
    drift_listener_ = listener;
  }

  // Reports that source `source` changed (the caller observed churn —
  // a binding update, a schema change, an upstream reload). Forwards to the
  // attached listener and counts `monitor_source_drift_notices_total`.
  Status NotifySourceChanged(int source);

  // Severity-adjusted quality priors for rebuilding a weighted sampler
  // over this query's scope: EstimateSourceQuality over the query's
  // components, discounted by the worst breaker severities the query's
  // last extraction recorded (ApplyBreakerSeverityPriors). Sources whose
  // breakers opened are actively avoided by the next weighted run instead
  // of merely being refreshed first by RefreshOrder(); a query that never
  // degraded returns the plain quality estimate unchanged.
  Result<std::vector<double>> QualityPriors(
      QueryId id, const SourceQualityOptions& quality = {},
      const BreakerSeverityPriorOptions& severity = {}) const;

  // How often each query has been (re-)extracted.
  Result<int> RefreshCount(QueryId id) const;

  // Consecutive-failure streak driving the quarantine backoff.
  Result<int> ConsecutiveFailures(QueryId id) const;

  // True while the query sits out RefreshLeastStable rounds.
  Result<bool> Quarantined(QueryId id) const;

 private:
  struct Entry {
    AggregateQuery query;
    AnswerStatistics statistics;
    int refreshes = 0;
    // Consecutive Refresh() failures (decays on success).
    int consecutive_failures = 0;
    // RefreshLeastStable tick until which the query is quarantined.
    int64_t quarantined_until_tick = 0;
  };

  Status CheckId(QueryId id) const;

  const SourceSet* sources_;
  ExtractorOptions base_options_;
  SourceDriftListener* drift_listener_ = nullptr;
  std::vector<Entry> entries_;
  // Advances once per RefreshLeastStable call — the quarantine clock.
  int64_t tick_ = 0;
};

}  // namespace vastats

#endif  // VASTATS_CORE_MONITOR_H_
