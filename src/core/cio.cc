#include "core/cio.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace vastats {
namespace {

using RawInterval = std::pair<double, double>;

// Expands from the mode at grid index `mode_index` outwards until the
// density falls to `level`, returning the crossing points with sub-cell
// (linear interpolation) precision. This realizes lines 5-6 / 9-10 of
// Algorithm 2: the largest x < x_i and smallest x > x_i with f(x) = level.
RawInterval ExpandModeToLevel(const GridDensity& density, size_t mode_index,
                              double level) {
  const std::span<const double> f = density.values();
  const size_t n = f.size();

  double lo = density.x_min();
  for (size_t k = mode_index; k > 0; --k) {
    if (f[k - 1] <= level) {
      const double denom = f[k] - f[k - 1];
      const double frac = (denom > 0.0) ? (level - f[k - 1]) / denom : 0.0;
      lo = density.XAt(k - 1) + frac * density.step();
      break;
    }
  }

  double hi = density.x_max();
  for (size_t k = mode_index; k + 1 < n; ++k) {
    if (f[k + 1] <= level) {
      const double denom = f[k] - f[k + 1];
      const double frac = (denom > 0.0) ? (f[k] - level) / denom : 1.0;
      hi = density.XAt(k) + frac * density.step();
      break;
    }
  }
  return {lo, hi};
}

// Sorts and merges overlapping raw intervals.
std::vector<RawInterval> MergeIntervals(std::vector<RawInterval> intervals) {
  std::sort(intervals.begin(), intervals.end());
  std::vector<RawInterval> merged;
  for (const RawInterval& interval : intervals) {
    if (!merged.empty() && interval.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, interval.second);
    } else {
      merged.push_back(interval);
    }
  }
  return merged;
}

double MassOf(const GridDensity& density,
              const std::vector<RawInterval>& merged) {
  double mass = 0.0;
  for (const RawInterval& interval : merged) {
    mass += density.IntegrateRange(interval.first, interval.second);
  }
  return mass;
}

double LengthOf(const std::vector<RawInterval>& merged) {
  double length = 0.0;
  for (const RawInterval& interval : merged) {
    length += interval.second - interval.first;
  }
  return length;
}

CoverageResult Finalize(const GridDensity& density,
                        const std::vector<RawInterval>& merged) {
  CoverageResult result;
  result.intervals.reserve(merged.size());
  for (const RawInterval& interval : merged) {
    CoverageInterval out;
    out.lo = interval.first;
    out.hi = interval.second;
    out.coverage = density.IntegrateRange(interval.first, interval.second);
    result.intervals.push_back(out);
    result.total_coverage += out.coverage;
    result.total_length_fraction += out.Length();
  }
  result.total_length_fraction /= density.range();
  return result;
}

// Union of the expansions of the top `active` modes at `level`.
std::vector<RawInterval> LevelIntervals(const GridDensity& density,
                                        const std::vector<Mode>& modes,
                                        size_t active, double level,
                                        CioExpansion expansion) {
  std::vector<RawInterval> raw;
  raw.reserve(active);
  for (size_t j = 0; j < active; ++j) {
    RawInterval interval = ExpandModeToLevel(density, modes[j].index, level);
    if (expansion == CioExpansion::kSymmetric) {
      const double x = modes[j].x;
      const double half =
          std::max(x - interval.first, interval.second - x);
      interval.first = std::max(density.x_min(), x - half);
      interval.second = std::min(density.x_max(), x + half);
    }
    raw.push_back(interval);
  }
  return MergeIntervals(std::move(raw));
}

// Grows a cell-granularity interval around `mode_index`, always extending
// towards the denser neighbor, until `target_mass` has been added (lines
// 17-18 of Algorithm 2).
RawInterval GrowAroundMode(const GridDensity& density, size_t mode_index,
                           double target_mass) {
  const std::span<const double> f = density.values();
  const size_t n = f.size();
  size_t lo = mode_index;
  size_t hi = mode_index;
  double mass = 0.0;
  while (mass < target_mass && (lo > 0 || hi + 1 < n)) {
    const double left = (lo > 0) ? f[lo - 1] : -1.0;
    const double right = (hi + 1 < n) ? f[hi + 1] : -1.0;
    if (left >= right) {
      mass += density.IntegrateRange(density.XAt(lo - 1), density.XAt(lo));
      --lo;
    } else {
      mass += density.IntegrateRange(density.XAt(hi), density.XAt(hi + 1));
      ++hi;
    }
  }
  return {density.XAt(lo), density.XAt(hi)};
}

// Mode list filtered and truncated per the options; tallest first.
Result<std::vector<Mode>> SelectModes(const GridDensity& density,
                                      const CioOptions& options) {
  std::vector<Mode> modes = density.FindModes(options.min_mode_relative_height);
  if (options.min_mode_prominence > 0.0 && !modes.empty()) {
    const double threshold = options.min_mode_prominence * modes[0].height;
    std::vector<Mode> prominent;
    for (const Mode& mode : modes) {
      if (density.ModeProminence(mode.index) >= threshold) {
        prominent.push_back(mode);
      }
    }
    modes = std::move(prominent);
  }
  if (modes.empty()) {
    return Status::FailedPrecondition("density has no modes");
  }
  if (options.max_modes > 0 &&
      modes.size() > static_cast<size_t>(options.max_modes)) {
    modes.resize(static_cast<size_t>(options.max_modes));
  }
  return modes;
}

// Smallest level whose mode expansions reach `target` mass (continuous
// water-level descent below the last mode height); bisection on the level.
std::vector<RawInterval> DescendToMass(const GridDensity& density,
                                       const std::vector<Mode>& modes,
                                       double target,
                                       CioExpansion expansion) {
  std::vector<RawInterval> best =
      LevelIntervals(density, modes, modes.size(), 0.0, expansion);
  double level_lo = 0.0;
  double level_hi = modes.back().height;
  for (int iter = 0; iter < 60; ++iter) {
    const double level = 0.5 * (level_lo + level_hi);
    std::vector<RawInterval> candidate =
        LevelIntervals(density, modes, modes.size(), level, expansion);
    if (MassOf(density, candidate) >= target) {
      level_lo = level;
      best = std::move(candidate);
    } else {
      level_hi = level;
    }
  }
  return best;
}

}  // namespace

double CoverageResult::TotalLength() const {
  double length = 0.0;
  for (const CoverageInterval& interval : intervals) {
    length += interval.Length();
  }
  return length;
}

Status CioOptions::Validate() const {
  if (!(theta > 0.0 && theta < 1.0)) {
    return Status::InvalidArgument("CioOptions.theta must be in (0,1)");
  }
  if (min_mode_relative_height < 0.0 || min_mode_relative_height >= 1.0) {
    return Status::InvalidArgument(
        "CioOptions.min_mode_relative_height must be in [0,1)");
  }
  if (min_mode_prominence < 0.0 || min_mode_prominence >= 1.0) {
    return Status::InvalidArgument(
        "CioOptions.min_mode_prominence must be in [0,1)");
  }
  if (max_modes < 0) {
    return Status::InvalidArgument("CioOptions.max_modes must be >= 0");
  }
  return Status::Ok();
}

Result<CoverageResult> GreedyCio(const GridDensity& density,
                                 const CioOptions& options,
                                 const ObsOptions& obs) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  VASTATS_ASSIGN_OR_RETURN(const std::vector<Mode> modes,
                           SelectModes(density, options));
  const size_t t = modes.size();

  ScopedSpan span(obs, "cio_greedy");
  span.Annotate("modes", static_cast<int64_t>(t));
  span.Annotate("theta", options.theta);

  std::vector<RawInterval> merged;
  double coverage = 0.0;
  uint64_t descents = 0;
  // Water-level descent: at step i the intervals around the top-i modes are
  // carved at the height of mode i+1 (Algorithm 2 lines 4-15).
  for (size_t i = 1; i <= t - 1 && coverage < options.theta; ++i) {
    merged =
        LevelIntervals(density, modes, i, modes[i].height, options.expansion);
    coverage = MassOf(density, merged);
    ++descents;
  }

  if (coverage <= options.theta) {
    if (options.top_up_to_theta) {
      merged =
          DescendToMass(density, modes, options.theta, options.expansion);
    } else {
      // Paper's final step: one more interval around the last mode covering
      // (theta - C) / t additional mass.
      const double target =
          (options.theta - coverage) / static_cast<double>(t);
      if (target > 0.0) {
        merged.push_back(GrowAroundMode(density, modes[t - 1].index, target));
        merged = MergeIntervals(std::move(merged));
      }
    }
  }
  CoverageResult result = Finalize(density, merged);
  span.Annotate("water_level_iterations", static_cast<int64_t>(descents));
  span.Annotate("intervals", static_cast<int64_t>(result.intervals.size()));
  span.Annotate("coverage", result.total_coverage);
  if (obs.metrics != nullptr) {
    obs.GetCounter("cio_runs_total").Increment();
    obs.GetCounter("cio_water_level_iterations_total").Increment(descents);
    obs.GetCounter("cio_intervals_total")
        .Increment(static_cast<uint64_t>(result.intervals.size()));
  }
  return result;
}

Result<CoverageResult> DualGreedyCio(const GridDensity& density,
                                     double total_length,
                                     const CioOptions& options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (!(total_length > 0.0)) {
    return Status::InvalidArgument("DualGreedyCio requires total_length > 0");
  }
  VASTATS_ASSIGN_OR_RETURN(const std::vector<Mode> modes,
                           SelectModes(density, options));
  const size_t t = modes.size();

  std::vector<RawInterval> merged;
  for (size_t i = 1; i <= t - 1; ++i) {
    std::vector<RawInterval> candidate =
        LevelIntervals(density, modes, i, modes[i].height,
                       options.expansion);
    if (LengthOf(candidate) > total_length) break;
    merged = std::move(candidate);
    if (LengthOf(merged) >= total_length) break;
  }
  if (LengthOf(merged) < total_length) {
    // Continuous descent below the last explored level until the budget is
    // spent; interval length grows monotonically as the level drops.
    double level_lo = 0.0;
    double level_hi = modes.back().height;
    for (int iter = 0; iter < 60; ++iter) {
      const double level = 0.5 * (level_lo + level_hi);
      std::vector<RawInterval> candidate =
          LevelIntervals(density, modes, t, level, options.expansion);
      if (LengthOf(candidate) <= total_length) {
        merged = std::move(candidate);
        level_hi = level;
      } else {
        level_lo = level;
      }
    }
  }
  if (merged.empty()) {
    // Budget smaller than even the tallest mode's first carve: spend it
    // symmetrically around the tallest mode.
    const double x = modes[0].x;
    merged.push_back({std::max(density.x_min(), x - total_length / 2.0),
                      std::min(density.x_max(), x + total_length / 2.0)});
  }
  return Finalize(density, merged);
}

Result<CoverageResult> SlicingCio(const GridDensity& density, double theta,
                                  int num_slices, const ObsOptions& obs) {
  if (!(theta > 0.0 && theta < 1.0)) {
    return Status::InvalidArgument("SlicingCio requires theta in (0,1)");
  }
  if (num_slices < 2) {
    return Status::InvalidArgument("SlicingCio requires num_slices >= 2");
  }
  ScopedSpan span(obs, "cio_slicing");
  span.Annotate("slices", static_cast<int64_t>(num_slices));
  span.Annotate("theta", theta);
  const double width = density.range() / static_cast<double>(num_slices);
  struct Slice {
    int index;
    double mass;
  };
  std::vector<Slice> slices;
  slices.reserve(static_cast<size_t>(num_slices));
  for (int i = 0; i < num_slices; ++i) {
    const double lo = density.x_min() + width * static_cast<double>(i);
    slices.push_back(Slice{i, density.IntegrateRange(lo, lo + width)});
  }
  std::sort(slices.begin(), slices.end(),
            [](const Slice& a, const Slice& b) { return a.mass > b.mass; });

  std::vector<RawInterval> raw;
  double covered = 0.0;
  const double target = theta * density.TotalMass();
  for (const Slice& slice : slices) {
    if (covered >= target) break;
    const double lo = density.x_min() + width * static_cast<double>(slice.index);
    raw.push_back({lo, lo + width});
    covered += slice.mass;
  }
  span.Annotate("slices_kept", static_cast<int64_t>(raw.size()));
  obs.GetCounter("cio_slicing_runs_total").Increment();
  obs.GetCounter("cio_slices_kept_total")
      .Increment(static_cast<uint64_t>(raw.size()));
  return Finalize(density, MergeIntervals(std::move(raw)));
}

}  // namespace vastats
