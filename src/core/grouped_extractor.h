// Evaluation of grouped aggregate queries (GROUP BY / HAVING) on top of the
// answer-statistics extractor: one viable answer distribution per group,
// plus the probability that each group satisfies the HAVING predicate.
//
// In a heterogeneous information system the HAVING clause of the paper's
// introductory query ("HAVING Average(Temp) > 20") is not a crisp filter:
// a group may pass for some source/value combinations and fail for others.
// The evaluator reports that pass probability so clients can threshold it
// (e.g. keep groups passing with >= 95% of viable answers).

#ifndef VASTATS_CORE_GROUPED_EXTRACTOR_H_
#define VASTATS_CORE_GROUPED_EXTRACTOR_H_

#include <string>
#include <vector>

#include "core/extractor.h"
#include "integration/grouped_query.h"

namespace vastats {

struct GroupAnswer {
  std::string key;
  AnswerStatistics statistics;
  // Fraction of the group's viable answer samples satisfying the HAVING
  // clause (1.0 when the query has none).
  double having_probability = 1.0;
};

struct GroupedAnswer {
  std::vector<GroupAnswer> groups;

  // Keys of the groups whose HAVING pass probability reaches
  // `min_probability`.
  std::vector<std::string> PassingKeys(double min_probability) const;
};

class GroupedQueryEvaluator {
 public:
  // `sources` must outlive the evaluator.
  static Result<GroupedQueryEvaluator> Create(const SourceSet* sources,
                                              GroupedAggregateQuery query,
                                              ExtractorOptions options);

  // Runs Algorithm 1 per group; group g uses seed options.seed + g so runs
  // are reproducible and groups independent.
  Result<GroupedAnswer> Evaluate() const;

  const GroupedAggregateQuery& query() const { return query_; }

 private:
  GroupedQueryEvaluator(const SourceSet* sources, GroupedAggregateQuery query,
                        ExtractorOptions options)
      : sources_(sources),
        query_(std::move(query)),
        options_(std::move(options)) {}

  const SourceSet* sources_;
  GroupedAggregateQuery query_;
  ExtractorOptions options_;
};

}  // namespace vastats

#endif  // VASTATS_CORE_GROUPED_EXTRACTOR_H_
