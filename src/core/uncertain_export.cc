#include "core/uncertain_export.h"

namespace vastats {

double UncertainAttribute::TotalProbability() const {
  double total = 0.0;
  for (const UncertainAlternative& alternative : alternatives) {
    total += alternative.probability;
  }
  return total;
}

Result<UncertainAttribute> ToUncertainAttribute(
    const CoverageResult& coverage, std::string name, bool normalized) {
  if (coverage.intervals.empty()) {
    return Status::InvalidArgument(
        "cannot export an empty coverage result");
  }
  if (normalized && !(coverage.total_coverage > 0.0)) {
    return Status::FailedPrecondition(
        "cannot normalize a zero-coverage result");
  }
  UncertainAttribute attribute;
  attribute.name = std::move(name);
  attribute.alternatives.reserve(coverage.intervals.size());
  for (const CoverageInterval& interval : coverage.intervals) {
    UncertainAlternative alternative;
    alternative.lo = interval.lo;
    alternative.hi = interval.hi;
    alternative.probability =
        normalized ? interval.coverage / coverage.total_coverage
                   : interval.coverage;
    attribute.alternatives.push_back(alternative);
  }
  return attribute;
}

Result<double> UncertainExpectedValue(const UncertainAttribute& attribute) {
  const double total = attribute.TotalProbability();
  if (!(total > 0.0)) {
    return Status::FailedPrecondition(
        "attribute has zero total probability");
  }
  double expectation = 0.0;
  for (const UncertainAlternative& alternative : attribute.alternatives) {
    expectation += alternative.probability * alternative.Midpoint();
  }
  return expectation / total;
}

}  // namespace vastats
