#include "core/monitor.h"

#include <algorithm>
#include <utility>

namespace vastats {

ContinuousQueryMonitor::ContinuousQueryMonitor(const SourceSet* sources,
                                               ExtractorOptions base_options)
    : sources_(sources), base_options_(std::move(base_options)) {}

Status ContinuousQueryMonitor::CheckId(QueryId id) const {
  if (id < 0 || id >= NumQueries()) {
    return Status::OutOfRange("unknown query id " + std::to_string(id));
  }
  return Status::Ok();
}

Result<QueryId> ContinuousQueryMonitor::Register(AggregateQuery query) {
  if (sources_ == nullptr) {
    return Status::FailedPrecondition("monitor has no source set");
  }
  const ObsOptions& obs = base_options_.obs;
  ScopedSpan span(obs.trace, "monitor_register");
  const QueryId id = NumQueries();
  span.Annotate("query_id", static_cast<int64_t>(id));
  ExtractorOptions options = base_options_;
  options.seed = base_options_.seed + static_cast<uint64_t>(id) * 7919;
  VASTATS_ASSIGN_OR_RETURN(
      const AnswerStatisticsExtractor extractor,
      AnswerStatisticsExtractor::Create(sources_, query, options));
  VASTATS_ASSIGN_OR_RETURN(AnswerStatistics stats, extractor.Extract());
  entries_.push_back(Entry{std::move(query), std::move(stats), 1});
  if (obs.metrics != nullptr) {
    obs.GetCounter("monitor_registrations_total").Increment();
    obs.GetGauge("monitor_queue_depth").Set(static_cast<double>(NumQueries()));
  }
  return id;
}

Result<AnswerStatistics> ContinuousQueryMonitor::Statistics(
    QueryId id) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  return entries_[static_cast<size_t>(id)].statistics;
}

Result<double> ContinuousQueryMonitor::Stability(QueryId id) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  return entries_[static_cast<size_t>(id)].statistics.stability.stab_l2;
}

std::vector<QueryId> ContinuousQueryMonitor::RefreshOrder() const {
  std::vector<QueryId> order(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    order[i] = static_cast<QueryId>(i);
  }
  std::sort(order.begin(), order.end(), [this](QueryId a, QueryId b) {
    return entries_[static_cast<size_t>(a)].statistics.stability.stab_l2 <
           entries_[static_cast<size_t>(b)].statistics.stability.stab_l2;
  });
  return order;
}

Status ContinuousQueryMonitor::Refresh(QueryId id) {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  const ObsOptions& obs = base_options_.obs;
  ScopedSpan span(obs.trace, "monitor_refresh");
  span.Annotate("query_id", static_cast<int64_t>(id));
  Entry& entry = entries_[static_cast<size_t>(id)];
  ExtractorOptions options = base_options_;
  options.seed = base_options_.seed + static_cast<uint64_t>(id) * 7919 +
                 static_cast<uint64_t>(entry.refreshes);
  // Re-create the extractor so changed bindings (and broken coverage) are
  // observed.
  auto extractor =
      AnswerStatisticsExtractor::Create(sources_, entry.query, options);
  if (!extractor.ok()) {
    obs.GetCounter("monitor_refresh_failures_total").Increment();
    return extractor.status();
  }
  auto stats = extractor->Extract();
  if (!stats.ok()) {
    obs.GetCounter("monitor_refresh_failures_total").Increment();
    return stats.status();
  }
  entry.statistics = std::move(stats).value();
  ++entry.refreshes;
  obs.GetCounter("monitor_refreshes_total").Increment();
  return Status::Ok();
}

Result<DriftReport> ContinuousQueryMonitor::RefreshWithDrift(
    QueryId id, const DriftOptions& options) {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  const ObsOptions& obs = base_options_.obs;
  ScopedSpan span(obs.trace, "monitor_refresh_with_drift");
  span.Annotate("query_id", static_cast<int64_t>(id));
  // Snapshot what the drift must be measured against before refreshing.
  const GridDensity previous_density =
      entries_[static_cast<size_t>(id)].statistics.density;
  const double previous_stability =
      entries_[static_cast<size_t>(id)].statistics.stability.stab_l2;
  VASTATS_RETURN_IF_ERROR(Refresh(id));
  VASTATS_ASSIGN_OR_RETURN(
      const DriftReport report,
      AssessDrift(previous_density, previous_stability,
                  entries_[static_cast<size_t>(id)].statistics.density,
                  options));
  span.Annotate("realized_l2", report.realized_l2);
  span.Annotate("drift_ratio", report.ratio);
  span.Annotate("anomalous", report.anomalous);
  if (obs.metrics != nullptr) {
    obs.GetCounter("monitor_drift_checks_total").Increment();
    if (report.anomalous) {
      obs.GetCounter("monitor_drift_anomalies_total").Increment();
    }
    // Buckets in units of the predicted one-churn-event drift; the
    // anomaly threshold (tolerance_factor, default 3) sits mid-range.
    static constexpr double kRatioBuckets[] = {0.25, 0.5, 1.0, 2.0,
                                               3.0,  5.0, 10.0};
    obs.GetHistogram("monitor_drift_ratio", kRatioBuckets)
        .Observe(report.ratio);
  }
  return report;
}

Result<std::vector<QueryId>> ContinuousQueryMonitor::RefreshLeastStable(
    int budget, std::vector<QueryId>* failed) {
  if (budget <= 0) {
    return Status::InvalidArgument("RefreshLeastStable needs budget > 0");
  }
  const ObsOptions& obs = base_options_.obs;
  ScopedSpan span(obs.trace, "monitor_refresh_least_stable");
  span.Annotate("budget", static_cast<int64_t>(budget));
  std::vector<QueryId> refreshed;
  for (const QueryId id : RefreshOrder()) {
    if (static_cast<int>(refreshed.size()) >= budget) break;
    const Status status = Refresh(id);
    if (status.ok()) {
      refreshed.push_back(id);
    } else if (failed != nullptr) {
      failed->push_back(id);
    }
  }
  span.Annotate("refreshed", static_cast<int64_t>(refreshed.size()));
  return refreshed;
}

Result<int> ContinuousQueryMonitor::RefreshCount(QueryId id) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  return entries_[static_cast<size_t>(id)].refreshes;
}

}  // namespace vastats
