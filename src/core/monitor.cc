#include "core/monitor.h"

#include <algorithm>
#include <utility>

namespace vastats {
namespace {

// Quarantine span after the k-th consecutive failure: 0, 1, 2, 4, ...
// ticks. A single failure may be transient, so it costs nothing; repeat
// failures back off exponentially, capped so a long-broken query is still
// re-probed regularly.
constexpr int kMaxQuarantineShift = 6;  // cap: 64 ticks

int64_t QuarantineTicks(int consecutive_failures) {
  if (consecutive_failures <= 1) return 0;
  const int shift = std::min(consecutive_failures - 2, kMaxQuarantineShift);
  return int64_t{1} << shift;
}

// Refresh urgency of an entry, most urgent first: 0 = the last extraction
// ended with breakers still open (statistics computed against dark
// sources), 1 = it degraded in any other way, 2 = clean.
int DegradationRank(const AnswerStatistics& statistics) {
  if (statistics.degradation.access.SourcesOpen() > 0) return 0;
  if (statistics.degradation.degraded) return 1;
  return 2;
}

}  // namespace

ContinuousQueryMonitor::ContinuousQueryMonitor(const SourceSet* sources,
                                               ExtractorOptions base_options)
    : sources_(sources), base_options_(std::move(base_options)) {}

Status ContinuousQueryMonitor::CheckId(QueryId id) const {
  if (id < 0 || id >= NumQueries()) {
    return Status::OutOfRange("unknown query id " + std::to_string(id));
  }
  return Status::Ok();
}

Result<QueryId> ContinuousQueryMonitor::Register(AggregateQuery query) {
  if (sources_ == nullptr) {
    return Status::FailedPrecondition("monitor has no source set");
  }
  const ObsOptions& obs = base_options_.obs;
  ScopedSpan span(obs, "monitor_register");
  const QueryId id = NumQueries();
  span.Annotate("query_id", static_cast<int64_t>(id));
  ExtractorOptions options = base_options_;
  options.seed = base_options_.seed + static_cast<uint64_t>(id) * 7919;
  VASTATS_ASSIGN_OR_RETURN(
      const AnswerStatisticsExtractor extractor,
      AnswerStatisticsExtractor::Create(sources_, query, options));
  VASTATS_ASSIGN_OR_RETURN(AnswerStatistics stats, extractor.Extract());
  entries_.push_back(Entry{std::move(query), std::move(stats), 1});
  if (obs.metrics != nullptr) {
    obs.GetCounter("monitor_registrations_total").Increment();
    obs.GetGauge("monitor_queue_depth").Set(static_cast<double>(NumQueries()));
  }
  return id;
}

Result<AnswerStatistics> ContinuousQueryMonitor::Statistics(
    QueryId id) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  return entries_[static_cast<size_t>(id)].statistics;
}

Result<double> ContinuousQueryMonitor::Stability(QueryId id) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  return entries_[static_cast<size_t>(id)].statistics.stability.stab_l2;
}

std::vector<QueryId> ContinuousQueryMonitor::RefreshOrder() const {
  std::vector<QueryId> order(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    order[i] = static_cast<QueryId>(i);
  }
  std::sort(order.begin(), order.end(), [this](QueryId a, QueryId b) {
    const AnswerStatistics& sa = entries_[static_cast<size_t>(a)].statistics;
    const AnswerStatistics& sb = entries_[static_cast<size_t>(b)].statistics;
    const int rank_a = DegradationRank(sa);
    const int rank_b = DegradationRank(sb);
    if (rank_a != rank_b) return rank_a < rank_b;
    return sa.stability.stab_l2 < sb.stability.stab_l2;
  });
  return order;
}

Result<std::vector<double>> ContinuousQueryMonitor::QualityPriors(
    QueryId id, const SourceQualityOptions& quality,
    const BreakerSeverityPriorOptions& severity) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  const Entry& entry = entries_[static_cast<size_t>(id)];
  VASTATS_ASSIGN_OR_RETURN(
      std::vector<double> weights,
      EstimateSourceQuality(*sources_, entry.query.components, quality));
  return ApplyBreakerSeverityPriors(
      std::move(weights),
      entry.statistics.degradation.access.breaker_severity, severity);
}

Status ContinuousQueryMonitor::Refresh(QueryId id) {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  const ObsOptions& obs = base_options_.obs;
  ScopedSpan span(obs, "monitor_refresh");
  span.Annotate("query_id", static_cast<int64_t>(id));
  Entry& entry = entries_[static_cast<size_t>(id)];
  ExtractorOptions options = base_options_;
  options.seed = base_options_.seed + static_cast<uint64_t>(id) * 7919 +
                 static_cast<uint64_t>(entry.refreshes);
  // Re-create the extractor so changed bindings (and broken coverage) are
  // observed.
  auto extractor =
      AnswerStatisticsExtractor::Create(sources_, entry.query, options);
  auto stats = extractor.ok() ? extractor->Extract() : extractor.status();
  if (!stats.ok()) {
    obs.GetCounter("monitor_refresh_failures_total").Increment();
    // Exponential quarantine backoff: 1, 2, 4, ... ticks (capped), so a
    // persistently failing query sits out RefreshLeastStable rounds.
    ++entry.consecutive_failures;
    entry.quarantined_until_tick =
        tick_ + QuarantineTicks(entry.consecutive_failures);
    obs.GetGauge("monitor_quarantined_queries")
        .Set(static_cast<double>(std::count_if(
            entries_.begin(), entries_.end(), [this](const Entry& e) {
              return e.quarantined_until_tick > tick_;
            })));
    return stats.status();
  }
  entry.statistics = std::move(stats).value();
  ++entry.refreshes;
  // Decay, not reset: one lucky refresh of a flaky query halves the streak
  // so its next failure re-quarantines with history intact.
  entry.consecutive_failures /= 2;
  entry.quarantined_until_tick = 0;
  obs.GetCounter("monitor_refreshes_total").Increment();
  if (obs.metrics != nullptr && entry.statistics.degradation.degraded) {
    obs.GetCounter("monitor_degraded_refreshes_total").Increment();
  }
  return Status::Ok();
}

Result<DriftReport> ContinuousQueryMonitor::RefreshWithDrift(
    QueryId id, const DriftOptions& options) {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  const ObsOptions& obs = base_options_.obs;
  ScopedSpan span(obs, "monitor_refresh_with_drift");
  span.Annotate("query_id", static_cast<int64_t>(id));
  // Snapshot what the drift must be measured against before refreshing.
  const GridDensity previous_density =
      entries_[static_cast<size_t>(id)].statistics.density;
  const double previous_stability =
      entries_[static_cast<size_t>(id)].statistics.stability.stab_l2;
  VASTATS_RETURN_IF_ERROR(Refresh(id));
  VASTATS_ASSIGN_OR_RETURN(
      const DriftReport report,
      AssessDrift(previous_density, previous_stability,
                  entries_[static_cast<size_t>(id)].statistics.density,
                  options));
  span.Annotate("realized_l2", report.realized_l2);
  span.Annotate("drift_ratio", report.ratio);
  span.Annotate("anomalous", report.anomalous);
  if (report.anomalous && drift_listener_ != nullptr) {
    // The drift assessment sees only the answer distribution, not which
    // source moved it — so conservatively notify every source in the
    // query's closure. Downstream caches over any of those sources must
    // not serve pre-drift entries.
    const AggregateQuery& query = entries_[static_cast<size_t>(id)].query;
    std::vector<char> notified(
        static_cast<size_t>(sources_->NumSources()), 0);
    for (const ComponentId component : query.components) {
      for (const int s : sources_->Covering(component)) {
        if (notified[static_cast<size_t>(s)]) continue;
        notified[static_cast<size_t>(s)] = 1;
        VASTATS_RETURN_IF_ERROR(NotifySourceChanged(s));
      }
    }
  }
  if (obs.metrics != nullptr) {
    obs.GetCounter("monitor_drift_checks_total").Increment();
    if (report.anomalous) {
      obs.GetCounter("monitor_drift_anomalies_total").Increment();
    }
    // Buckets in units of the predicted one-churn-event drift; the
    // anomaly threshold (tolerance_factor, default 3) sits mid-range.
    static constexpr double kRatioBuckets[] = {0.25, 0.5, 1.0, 2.0,
                                               3.0,  5.0, 10.0};
    obs.GetHistogram("monitor_drift_ratio", kRatioBuckets)
        .Observe(report.ratio);
  }
  return report;
}

Status ContinuousQueryMonitor::NotifySourceChanged(int source) {
  if (source < 0 || source >= sources_->NumSources()) {
    return Status::OutOfRange("NotifySourceChanged: source " +
                              std::to_string(source) + " out of [0, " +
                              std::to_string(sources_->NumSources()) + ")");
  }
  base_options_.obs.GetCounter("monitor_source_drift_notices_total")
      .Increment();
  if (drift_listener_ != nullptr) drift_listener_->OnSourceDrift(source);
  return Status::Ok();
}

Result<std::vector<QueryId>> ContinuousQueryMonitor::RefreshLeastStable(
    int budget, std::vector<QueryId>* failed) {
  if (budget <= 0) {
    return Status::InvalidArgument("RefreshLeastStable needs budget > 0");
  }
  const ObsOptions& obs = base_options_.obs;
  ScopedSpan span(obs, "monitor_refresh_least_stable");
  span.Annotate("budget", static_cast<int64_t>(budget));
  ++tick_;
  int quarantine_skips = 0;
  std::vector<QueryId> refreshed;
  for (const QueryId id : RefreshOrder()) {
    if (static_cast<int>(refreshed.size()) >= budget) break;
    if (entries_[static_cast<size_t>(id)].quarantined_until_tick >= tick_) {
      ++quarantine_skips;
      continue;
    }
    const Status status = Refresh(id);
    if (status.ok()) {
      refreshed.push_back(id);
    } else if (failed != nullptr) {
      failed->push_back(id);
    }
  }
  if (obs.metrics != nullptr && quarantine_skips > 0) {
    obs.GetCounter("monitor_quarantine_skips_total")
        .Increment(static_cast<uint64_t>(quarantine_skips));
  }
  span.Annotate("refreshed", static_cast<int64_t>(refreshed.size()));
  span.Annotate("quarantine_skips", static_cast<int64_t>(quarantine_skips));
  return refreshed;
}

Result<int> ContinuousQueryMonitor::RefreshCount(QueryId id) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  return entries_[static_cast<size_t>(id)].refreshes;
}

Result<int> ContinuousQueryMonitor::ConsecutiveFailures(QueryId id) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  return entries_[static_cast<size_t>(id)].consecutive_failures;
}

Result<bool> ContinuousQueryMonitor::Quarantined(QueryId id) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  return entries_[static_cast<size_t>(id)].quarantined_until_tick > tick_;
}

}  // namespace vastats
