#include "core/monitor.h"

#include <algorithm>
#include <utility>

namespace vastats {

ContinuousQueryMonitor::ContinuousQueryMonitor(const SourceSet* sources,
                                               ExtractorOptions base_options)
    : sources_(sources), base_options_(std::move(base_options)) {}

Status ContinuousQueryMonitor::CheckId(QueryId id) const {
  if (id < 0 || id >= NumQueries()) {
    return Status::OutOfRange("unknown query id " + std::to_string(id));
  }
  return Status::Ok();
}

Result<QueryId> ContinuousQueryMonitor::Register(AggregateQuery query) {
  if (sources_ == nullptr) {
    return Status::FailedPrecondition("monitor has no source set");
  }
  const QueryId id = NumQueries();
  ExtractorOptions options = base_options_;
  options.seed = base_options_.seed + static_cast<uint64_t>(id) * 7919;
  VASTATS_ASSIGN_OR_RETURN(
      const AnswerStatisticsExtractor extractor,
      AnswerStatisticsExtractor::Create(sources_, query, options));
  VASTATS_ASSIGN_OR_RETURN(AnswerStatistics stats, extractor.Extract());
  entries_.push_back(Entry{std::move(query), std::move(stats), 1});
  return id;
}

Result<AnswerStatistics> ContinuousQueryMonitor::Statistics(
    QueryId id) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  return entries_[static_cast<size_t>(id)].statistics;
}

Result<double> ContinuousQueryMonitor::Stability(QueryId id) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  return entries_[static_cast<size_t>(id)].statistics.stability.stab_l2;
}

std::vector<QueryId> ContinuousQueryMonitor::RefreshOrder() const {
  std::vector<QueryId> order(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    order[i] = static_cast<QueryId>(i);
  }
  std::sort(order.begin(), order.end(), [this](QueryId a, QueryId b) {
    return entries_[static_cast<size_t>(a)].statistics.stability.stab_l2 <
           entries_[static_cast<size_t>(b)].statistics.stability.stab_l2;
  });
  return order;
}

Status ContinuousQueryMonitor::Refresh(QueryId id) {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  Entry& entry = entries_[static_cast<size_t>(id)];
  ExtractorOptions options = base_options_;
  options.seed = base_options_.seed + static_cast<uint64_t>(id) * 7919 +
                 static_cast<uint64_t>(entry.refreshes);
  // Re-create the extractor so changed bindings (and broken coverage) are
  // observed.
  auto extractor =
      AnswerStatisticsExtractor::Create(sources_, entry.query, options);
  if (!extractor.ok()) return extractor.status();
  auto stats = extractor->Extract();
  if (!stats.ok()) return stats.status();
  entry.statistics = std::move(stats).value();
  ++entry.refreshes;
  return Status::Ok();
}

Result<DriftReport> ContinuousQueryMonitor::RefreshWithDrift(
    QueryId id, const DriftOptions& options) {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  // Snapshot what the drift must be measured against before refreshing.
  const GridDensity previous_density =
      entries_[static_cast<size_t>(id)].statistics.density;
  const double previous_stability =
      entries_[static_cast<size_t>(id)].statistics.stability.stab_l2;
  VASTATS_RETURN_IF_ERROR(Refresh(id));
  return AssessDrift(previous_density, previous_stability,
                     entries_[static_cast<size_t>(id)].statistics.density,
                     options);
}

Result<std::vector<QueryId>> ContinuousQueryMonitor::RefreshLeastStable(
    int budget, std::vector<QueryId>* failed) {
  if (budget <= 0) {
    return Status::InvalidArgument("RefreshLeastStable needs budget > 0");
  }
  std::vector<QueryId> refreshed;
  for (const QueryId id : RefreshOrder()) {
    if (static_cast<int>(refreshed.size()) >= budget) break;
    const Status status = Refresh(id);
    if (status.ok()) {
      refreshed.push_back(id);
    } else if (failed != nullptr) {
      failed->push_back(id);
    }
  }
  return refreshed;
}

Result<int> ContinuousQueryMonitor::RefreshCount(QueryId id) const {
  VASTATS_RETURN_IF_ERROR(CheckId(id));
  return entries_[static_cast<size_t>(id)].refreshes;
}

}  // namespace vastats
