#include "core/extractor.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "stats/descriptive.h"
#include "stats/jackknife.h"
#include "transport/async_transport.h"

namespace vastats {

Status FaultToleranceOptions::Validate() const {
  VASTATS_RETURN_IF_ERROR(retry.Validate());
  VASTATS_RETURN_IF_ERROR(breaker.Validate());
  if (!(min_draw_coverage >= 0.0 && min_draw_coverage <= 1.0)) {
    return Status::InvalidArgument("min_draw_coverage must be in [0, 1]");
  }
  return Status::Ok();
}

Status ExtractorOptions::Validate() const {
  if (initial_sample_size < 8) {
    return Status::InvalidArgument(
        "ExtractorOptions.initial_sample_size must be >= 8");
  }
  VASTATS_RETURN_IF_ERROR(bootstrap.Validate());
  if (!(confidence_level > 0.0 && confidence_level < 1.0)) {
    return Status::InvalidArgument("confidence_level must be in (0,1)");
  }
  VASTATS_RETURN_IF_ERROR(kde.Validate());
  VASTATS_RETURN_IF_ERROR(cio.Validate());
  if (stability_r <= 0) {
    return Status::InvalidArgument("stability_r must be > 0");
  }
  VASTATS_RETURN_IF_ERROR(stability.Validate());
  if (weight_probes <= 0) {
    return Status::InvalidArgument("weight_probes must be > 0");
  }
  if (adaptive.has_value()) {
    VASTATS_RETURN_IF_ERROR(adaptive->Validate());
  }
  if (fault_tolerance.has_value()) {
    VASTATS_RETURN_IF_ERROR(fault_tolerance->Validate());
  }
  if (sampling_threads < 0) {
    return Status::InvalidArgument("sampling_threads must be >= 0");
  }
  return Status::Ok();
}

Result<AnswerStatisticsExtractor> AnswerStatisticsExtractor::Create(
    const SourceSet* sources, AggregateQuery query, ExtractorOptions options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  VASTATS_ASSIGN_OR_RETURN(UniSSampler sampler,
                           UniSSampler::Create(sources, std::move(query)));
  return AnswerStatisticsExtractor(std::move(sampler), std::move(options));
}

int ResolveSamplingThreads(int sampling_threads, unsigned hardware_concurrency) {
  if (sampling_threads > 0) return sampling_threads;
  return static_cast<int>(std::max(1u, hardware_concurrency));
}

Result<PointEstimate> AnswerStatisticsExtractor::EstimatePoint(
    MomentStatistic statistic, std::span<const double> samples,
    std::span<const std::vector<double>> sets) const {
  // Replicates over the shared bootstrap sets, bagged into the estimate
  // (evaluated as pool tasks when a pool is attached).
  VASTATS_ASSIGN_OR_RETURN(
      const std::vector<double> replicates,
      ReplicatesFromSets(sets, MomentStatisticFn(statistic), options_.pool,
                         options_.obs.metrics, options_.obs.recorder));
  PointEstimate estimate;
  VASTATS_ASSIGN_OR_RETURN(estimate.value,
                           Bag(replicates, options_.bag_aggregator));

  std::vector<double> jackknife;
  if (options_.ci_method == CiMethod::kBca) {
    VASTATS_ASSIGN_OR_RETURN(jackknife, JackknifeMoment(samples, statistic));
  }
  // BCa centers on the plug-in estimate of the original sample.
  const double plug_in = EvaluateMomentStatistic(statistic, samples);
  VASTATS_ASSIGN_OR_RETURN(
      estimate.ci,
      ComputeBootstrapCi(options_.ci_method, replicates, plug_in,
                         options_.confidence_level, jackknife));
  return estimate;
}

bool ReconcilePhaseTimings(PhaseTimings& timings, double total_elapsed_seconds,
                           double tolerance_fraction) {
  const double sum = timings.TotalSeconds();
  if (sum <= 0.0) return true;
  if (sum <= total_elapsed_seconds * (1.0 + tolerance_fraction)) return true;
  const double scale = std::max(total_elapsed_seconds, 0.0) / sum;
  timings.sampling_seconds *= scale;
  timings.bootstrap_seconds *= scale;
  timings.point_statistics_seconds *= scale;
  timings.kde_seconds *= scale;
  timings.cio_seconds *= scale;
  timings.stability_seconds *= scale;
  return false;
}

Result<AnswerStatistics> AnswerStatisticsExtractor::Extract() const {
  const ObsOptions& obs = options_.obs;
  ScopedSpan extract_span(obs, "extract");
  Rng rng(options_.seed);

  // Phase 1: uniS sampling (Algorithm 1 line 2).
  ScopedSpan sampling_span(obs, "sampling");
  std::vector<double> samples;
  DegradationReport degradation;
  if (options_.fault_tolerance.has_value()) {
    VASTATS_ASSIGN_OR_RETURN(degradation,
                             SampleDegradedPhase(rng, &samples));
  } else if (options_.adaptive.has_value()) {
    VASTATS_ASSIGN_OR_RETURN(
        AdaptiveSamplingResult adaptive,
        AdaptiveUniSSampling(sampler_, *options_.adaptive, rng, obs));
    samples = std::move(adaptive.samples);
  } else if (ResolveSamplingThreads(options_.sampling_threads,
                                    std::thread::hardware_concurrency()) > 1) {
    // A request that resolves to a single worker (including
    // sampling_threads = 0 on a 1-core host) falls through to the serial
    // sampler below instead of paying the parallel dispatch machinery.
    ParallelSampleOptions parallel;
    parallel.num_threads = options_.sampling_threads;
    parallel.seed = options_.seed ^ 0xfeedfaceULL;
    parallel.pool = options_.pool;
    parallel.obs = obs;
    VASTATS_ASSIGN_OR_RETURN(
        samples, ParallelUniSSample(sampler_, options_.initial_sample_size,
                                    parallel));
  } else {
    VASTATS_ASSIGN_OR_RETURN(
        samples, sampler_.Sample(options_.initial_sample_size, rng, obs));
  }
  const double sampling_seconds = sampling_span.Close();

  VASTATS_ASSIGN_OR_RETURN(AnswerStatistics stats,
                           ExtractFromSamples(std::move(samples), rng));
  stats.timings.sampling_seconds = sampling_seconds;
  stats.degradation = std::move(degradation);

  const double total_seconds = extract_span.Close();
  if (!ReconcilePhaseTimings(stats.timings, total_seconds)) {
    obs.GetCounter("phase_timing_clamps_total").Increment();
  }
  return stats;
}

Result<DegradationReport> AnswerStatisticsExtractor::SampleDegradedPhase(
    Rng& rng, std::vector<double>* samples) const {
  const FaultToleranceOptions& fault = *options_.fault_tolerance;
  const ObsOptions& obs = options_.obs;
  VASTATS_ASSIGN_OR_RETURN(
      const SourceAccessor accessor,
      SourceAccessor::Create(sampler_.sources().NumSources(), fault.model,
                             fault.retry, fault.breaker));

  DegradationReport report;
  std::vector<double> coverages;
  if (options_.adaptive.has_value()) {
    // The adaptive growth loop is inherently sequential: one session spans
    // the whole phase, and epochs advance per draw — so it uses one
    // transport channel for the whole phase, too.
    std::unique_ptr<transport::TransportChannel> channel;
    if (fault.transport != nullptr) {
      VASTATS_ASSIGN_OR_RETURN(
          channel, fault.transport->OpenChannel(obs.metrics, obs.recorder));
    }
    AccessSession session =
        accessor.StartSession(obs.metrics, obs.recorder, channel.get());
    VASTATS_ASSIGN_OR_RETURN(
        AdaptiveSamplingResult adaptive,
        AdaptiveUniSSamplingDegraded(sampler_, *options_.adaptive, session,
                                     fault.min_draw_coverage, rng, obs));
    *samples = std::move(adaptive.samples);
    coverages = std::move(adaptive.coverages);
    report.draws_requested = adaptive.draws_requested;
    report.draws_dropped = adaptive.dropped_draws;
    report.access = session.Finish();
  } else {
    // Chaos runs route through the chunk-indexed driver at EVERY width —
    // including a resolved width of one — so the drawn samples, the fault
    // schedule, and the breaker transitions are bit-identical across
    // serial, thread-per-call, and pooled execution.
    ParallelSampleOptions parallel;
    parallel.num_threads = options_.sampling_threads;
    parallel.seed = options_.seed ^ 0xfeedfaceULL;
    parallel.pool = options_.pool;
    parallel.obs = obs;
    if (fault.transport != nullptr) {
      // Each chunk stream opens its own channel; endpoint outcomes stay
      // keyed by global slot epochs, so transported chunks keep the
      // width-invariance contract. A channel that cannot open (fd
      // exhaustion under the socket-pair backend) falls back to the
      // simulated seam for that chunk — same keyed outcomes, no transport.
      transport::AsyncSourceTransport* async = fault.transport;
      parallel.transport_factory =
          [async, &obs]() -> std::unique_ptr<VisitTransport> {
        Result<std::unique_ptr<transport::TransportChannel>> channel =
            async->OpenChannel(obs.metrics, obs.recorder);
        if (!channel.ok()) return nullptr;
        return std::move(channel).value();
      };
    }
    VASTATS_ASSIGN_OR_RETURN(
        FaultAwareSampleResult result,
        ParallelUniSSampleWithFaults(sampler_, options_.initial_sample_size,
                                     accessor, fault.min_draw_coverage,
                                     parallel));
    *samples = std::move(result.values);
    coverages = std::move(result.coverages);
    report.draws_requested = options_.initial_sample_size;
    report.draws_dropped = result.dropped_draws;
    report.access = std::move(result.access);
  }

  report.draws_kept = static_cast<int>(samples->size());
  if (!coverages.empty()) {
    double min_cov = 1.0;
    double sum = 0.0;
    for (const double c : coverages) {
      min_cov = std::min(min_cov, c);
      sum += c;
    }
    report.min_coverage = min_cov;
    report.mean_coverage = sum / static_cast<double>(coverages.size());
  }
  report.degraded = report.draws_dropped > 0 || report.min_coverage < 1.0 ||
                    report.access.failed_visits > 0 ||
                    report.access.transient_failures > 0 ||
                    report.access.breaker_open_skips > 0 ||
                    report.access.deadline_truncated_draws > 0;
  if (obs.metrics != nullptr && report.degraded) {
    obs.GetCounter("extract_degraded_total").Increment();
  }
  if (samples->size() < 8) {
    // The one way a degraded extraction still fails: not even a minimal
    // answer sample survived (e.g. some component lost every live source).
    return Status::FailedPrecondition(
        "degraded sampling kept only " + std::to_string(samples->size()) +
        " of " + std::to_string(report.draws_requested) +
        " draws (>= 8 needed); sources too degraded to extract");
  }
  return report;
}

Result<AnswerStatistics> AnswerStatisticsExtractor::ExtractFromSamples(
    std::vector<double> samples, Rng& rng) const {
  if (samples.size() < 8) {
    return Status::InvalidArgument(
        "ExtractFromSamples requires >= 8 viable answer samples");
  }
  AnswerStatistics stats{
      .mean = {},
      .variance = {},
      .std_dev = {},
      .skewness = {},
      .density = GridDensity::Create(0.0, 1.0, {0.0, 0.0}).value(),
      .coverage = {},
      .stability = {},
      .samples = std::move(samples),
      .answer_weight_y = 0.0,
      .timings = {},
      .degradation = {}};
  const ObsOptions& obs = options_.obs;
  ScopedSpan pipeline_span(obs, "extract_from_samples");
  pipeline_span.Annotate("samples", static_cast<int64_t>(stats.samples.size()));
  obs.GetCounter("extractions_total").Increment();

  // Phase 2: bootstrap resampling (line 3). Each PhaseTimings entry is the
  // Close() of the phase's own span, so the Figure 6 table and an exported
  // trace are two views of one measurement.
  ScopedSpan bootstrap_span(obs, "bootstrap");
  bootstrap_span.Annotate("pool", options_.pool != nullptr);
  VASTATS_ASSIGN_OR_RETURN(
      const std::vector<std::vector<double>> sets,
      BootstrapSets(stats.samples, options_.bootstrap, rng));
  stats.timings.bootstrap_seconds = bootstrap_span.Close();

  // Phases 3-4: bagged point statistics + confidence intervals (lines 4-5).
  ScopedSpan point_span(obs, "point_statistics");
  VASTATS_ASSIGN_OR_RETURN(
      stats.mean, EstimatePoint(MomentStatistic::kMean, stats.samples, sets));
  VASTATS_ASSIGN_OR_RETURN(
      stats.variance,
      EstimatePoint(MomentStatistic::kVariance, stats.samples, sets));
  VASTATS_ASSIGN_OR_RETURN(
      stats.std_dev,
      EstimatePoint(MomentStatistic::kStdDev, stats.samples, sets));
  VASTATS_ASSIGN_OR_RETURN(
      stats.skewness,
      EstimatePoint(MomentStatistic::kSkewness, stats.samples, sets));
  stats.timings.point_statistics_seconds = point_span.Close();

  // Phase 5: bagged density estimation (line 6).
  ScopedSpan kde_span(obs, "kde");
  BaggedKdeOptions bagged_options;
  bagged_options.kde = options_.kde;
  bagged_options.bandwidth_mode = options_.kde_bandwidth_mode;
  bagged_options.plan_provider = options_.cache_hooks.plan_provider;
  // Bandwidth cache seam: only the shared-bandwidth mode runs the selector
  // exactly once on S_uniS, so only there can a cached h stand in for the
  // whole selector run. A hit is injected as a manual override — the
  // selector returns overrides verbatim, so the density is bit-identical to
  // the cold run that stored the value.
  const bool bandwidth_cacheable =
      options_.kde_bandwidth_mode == BandwidthMode::kShared &&
      !(options_.kde.bandwidth > 0.0);
  bool bandwidth_from_cache = false;
  if (bandwidth_cacheable && options_.cache_hooks.bandwidth_lookup) {
    if (const std::optional<double> cached =
            options_.cache_hooks.bandwidth_lookup()) {
      bagged_options.kde.bandwidth = *cached;
      bandwidth_from_cache = true;
    }
  }
  VASTATS_ASSIGN_OR_RETURN(
      const BaggedKde kde,
      EstimateBaggedKde(sets, stats.samples, bagged_options, obs,
                        options_.pool));
  if (bandwidth_cacheable && !bandwidth_from_cache &&
      options_.cache_hooks.bandwidth_store) {
    options_.cache_hooks.bandwidth_store(kde.bandwidth);
  }
  stats.density = kde.density;
  stats.timings.kde_seconds = kde_span.Close();

  // Phase 6: high coverage intervals (line 7).
  ScopedSpan cio_span(obs, "cio");
  VASTATS_ASSIGN_OR_RETURN(stats.coverage,
                           GreedyCio(stats.density, options_.cio, obs));
  stats.timings.cio_seconds = cio_span.Close();

  // Phase 7: stability score (line 8) — analytic, no removal simulation.
  ScopedSpan stability_span(obs, "stability");
  VASTATS_ASSIGN_OR_RETURN(
      stats.answer_weight_y,
      sampler_.EstimateSourcesPerAnswer(options_.weight_probes, rng, obs));
  thread_local DctPlan stability_plan;  // lint-invariants: allow(A5)
  DctPlan* const plan = options_.cache_hooks.plan_provider
                            ? options_.cache_hooks.plan_provider()
                            : &stability_plan;
  const uint64_t plan_evictions_before = plan->evictions();
  VASTATS_ASSIGN_OR_RETURN(
      stats.stability,
      ComputeStability(stats.samples, kde.bandwidth, stats.answer_weight_y,
                       sampler_.sources().NumSources(), options_.stability_r,
                       options_.change_ratio_estimator, options_.stability,
                       obs, plan));
  if (plan->evictions() > plan_evictions_before) {
    obs.GetCounter("dct_plan_evictions_total")
        .Increment(plan->evictions() - plan_evictions_before);
  }
  stability_span.Annotate(
      "psi_mode", stats.stability.psi_mode == StabilityPsiMode::kBinned
                      ? "binned"
                      : "exact");
  stability_span.Annotate(
      "psi_grid_size", static_cast<int64_t>(options_.stability.grid_size));
  stats.timings.stability_seconds = stability_span.Close();
  return stats;
}

}  // namespace vastats
