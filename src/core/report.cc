#include "core/report.h"

#include <cstdio>

#include "util/json_writer.h"

namespace vastats {
namespace {

void WritePointEstimate(JsonWriter& json, std::string_view name,
                        const PointEstimate& estimate) {
  json.Key(name);
  json.BeginObject();
  json.KeyValue("value", estimate.value);
  json.Key("ci");
  json.BeginObject();
  json.KeyValue("lo", estimate.ci.lo);
  json.KeyValue("hi", estimate.ci.hi);
  json.KeyValue("level", estimate.ci.level);
  json.EndObject();
  json.EndObject();
}

}  // namespace

std::string AnswerStatisticsToJson(const AnswerStatistics& stats,
                                   const ReportOptions& options) {
  JsonWriter json;
  json.BeginObject();

  json.Key("point_estimates");
  json.BeginObject();
  WritePointEstimate(json, "mean", stats.mean);
  WritePointEstimate(json, "variance", stats.variance);
  WritePointEstimate(json, "stddev", stats.std_dev);
  WritePointEstimate(json, "skewness", stats.skewness);
  json.EndObject();

  json.Key("coverage");
  json.BeginObject();
  json.KeyValue("total_coverage", stats.coverage.total_coverage);
  json.KeyValue("total_length_fraction",
                stats.coverage.total_length_fraction);
  json.Key("intervals");
  json.BeginArray();
  for (const CoverageInterval& interval : stats.coverage.intervals) {
    json.BeginObject();
    json.KeyValue("lo", interval.lo);
    json.KeyValue("hi", interval.hi);
    json.KeyValue("coverage", interval.coverage);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  json.Key("stability");
  json.BeginObject();
  json.KeyValue("stab_l2", stats.stability.stab_l2);
  json.KeyValue("stab_bh", stats.stability.stab_bh);
  json.KeyValue("change_ratio", stats.stability.change_ratio);
  json.KeyValue("sources_per_answer", stats.stability.y);
  json.KeyValue("bandwidth", stats.stability.bandwidth);
  json.KeyValue("r", static_cast<int64_t>(stats.stability.r));
  json.EndObject();

  json.Key("sampling");
  json.BeginObject();
  json.KeyValue("num_samples",
                static_cast<int64_t>(stats.samples.size()));
  json.KeyValue("answer_weight_y", stats.answer_weight_y);
  json.KeyValue("sampling_seconds", stats.timings.sampling_seconds);
  json.KeyValue("extraction_seconds",
                stats.timings.TotalSeconds() -
                    stats.timings.sampling_seconds);
  json.EndObject();

  if (options.density_points > 1) {
    json.Key("density");
    json.BeginObject();
    json.KeyValue("x_min", stats.density.x_min());
    json.KeyValue("x_max", stats.density.x_max());
    json.Key("f");
    json.BeginArray();
    const int points = options.density_points;
    for (int i = 0; i < points; ++i) {
      const double x = stats.density.x_min() +
                       stats.density.range() * static_cast<double>(i) /
                           static_cast<double>(points - 1);
      json.Number(stats.density.ValueAt(x));
    }
    json.EndArray();
    json.EndObject();
  }

  if (options.include_samples) {
    json.Key("samples");
    json.BeginArray();
    for (const double v : stats.samples) json.Number(v);
    json.EndArray();
  }

  json.EndObject();
  return std::move(json).Finish();
}

std::string AnswerStatisticsToText(const AnswerStatistics& stats) {
  std::string out;
  char line[256];
  auto append = [&](const char* format, auto... args) {
    std::snprintf(line, sizeof(line), format, args...);
    out += line;
  };
  const double level = stats.mean.ci.level * 100.0;
  append("mean:       %.6g   %.0f%% CI [%.6g, %.6g]\n", stats.mean.value,
         level, stats.mean.ci.lo, stats.mean.ci.hi);
  append("stddev:     %.6g   %.0f%% CI [%.6g, %.6g]\n", stats.std_dev.value,
         level, stats.std_dev.ci.lo, stats.std_dev.ci.hi);
  append("skewness:   %.6g\n", stats.skewness.value);
  append("coverage intervals:\n");
  for (const CoverageInterval& interval : stats.coverage.intervals) {
    append("  [%.6g, %.6g]  %.1f%%\n", interval.lo, interval.hi,
           interval.coverage * 100.0);
  }
  append("  L = %.4f of range, C = %.4f\n",
         stats.coverage.total_length_fraction,
         stats.coverage.total_coverage);
  append("stability:  Stab_L2 = %.4f, Stab_Bh = %.4f (r = %d)\n",
         stats.stability.stab_l2, stats.stability.stab_bh, stats.stability.r);
  return out;
}

}  // namespace vastats
