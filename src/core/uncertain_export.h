// Export of high coverage intervals as uncertain-database attributes
// (paper §4.3: "high coverage intervals can be applied in uncertain and
// probabilistic databases [22]. Such databases represent an attribute as a
// set of value and probability pairs att = {(A, Pr(A))} ... High coverage
// intervals can be used to produce normalized probability measures
// att = (I_i, C_i / C), or simply att = (I_i, C_i)").

#ifndef VASTATS_CORE_UNCERTAIN_EXPORT_H_
#define VASTATS_CORE_UNCERTAIN_EXPORT_H_

#include <string>
#include <vector>

#include "core/cio.h"
#include "util/status.h"

namespace vastats {

// One alternative of an uncertain attribute: a value interval with its
// probability.
struct UncertainAlternative {
  double lo = 0.0;
  double hi = 0.0;
  double probability = 0.0;

  double Midpoint() const { return 0.5 * (lo + hi); }
};

// An attribute of an uncertain/probabilistic database (x-tuple style):
// disjoint alternatives with probabilities summing to <= 1.
struct UncertainAttribute {
  std::string name;
  std::vector<UncertainAlternative> alternatives;

  double TotalProbability() const;
};

// Builds the attribute from a coverage result. With `normalized` the
// probabilities are C_i / C (summing to 1); otherwise they are the raw
// coverages C_i (summing to C, leaving 1-C for "somewhere else").
Result<UncertainAttribute> ToUncertainAttribute(
    const CoverageResult& coverage, std::string name, bool normalized);

// Expected value of the attribute under midpoint semantics (each
// alternative contributes its interval midpoint). Errors for an attribute
// with zero total probability.
Result<double> UncertainExpectedValue(const UncertainAttribute& attribute);

}  // namespace vastats

#endif  // VASTATS_CORE_UNCERTAIN_EXPORT_H_
