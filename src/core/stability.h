// Stability scores for aggregate answers (paper §4.4 and Appendix A).
//
// Stability measures how much the viable answer distribution would change if
// r of the |D| sources left the system:
//   Stab_d = -log( E[ d(f^D, f^{D\Q}) ] )
// with the expectation over the uniformly random removed set Q. Theorem 4.2
// shows that for the squared-L2 distance and a Gaussian-KDE density this
// expectation is available in closed form from the sample set alone:
//   Stab_L2 = -1/2 log( 1/(2nh*sqrt(pi)) * c_r/(1-c_r)
//                       * (1 - 2*Psi/(n(n-1))) )
// where Psi = sum_{i<j} exp(-(x_i-x_j)^2 / 4h^2) is the mutual impact
// factor and c_r estimates the fraction of answers invalidated by the
// removal. Corollary 4.1 gives the analogous Bhattacharyya-based score
//   Stab_Bh = -log( 1/(2nh*sqrt(pi)) + Psi/(n^2 h sqrt(pi)) ).
// Neither requires simulating source removal; a simulation baseline and the
// Figure 8 deviation map are provided for validation.
//
// Psi itself has two evaluation paths, mirroring the binned-vs-direct KDE
// split in density/kde.h:
//  * binned (the production default): the cross-kernel sum is a Gauss
//    transform, so linear binning + one Dct2/Dct3 round trip evaluates it in
//    O(grid log grid) regardless of |S| (see DESIGN.md for the derivation
//    and the self-pair correction);
//  * exact: the sorted cutoff-truncated pairwise sum, O(|S|^2) worst case —
//    kept as the accuracy oracle, and the automatic fallback when the
//    kernel is too narrow for the grid to resolve.

#ifndef VASTATS_CORE_STABILITY_H_
#define VASTATS_CORE_STABILITY_H_

#include <span>
#include <vector>

#include "density/distance.h"
#include "density/kde.h"
#include "obs/obs.h"
#include "sampling/unis.h"
#include "util/fft.h"
#include "util/random.h"
#include "util/status.h"

namespace vastats {

// How the change ratio c_r (expected fraction of invalidated answers when r
// of |D| sources are removed) is estimated from the answer weight y (average
// sources per answer). Both estimators come from the proof of Theorem 4.2.
enum class ChangeRatioEstimator {
  // c_r = 1 - (1 - y/|D|)^r (uniform contribution assumption; the paper's
  // primary estimate).
  kGeometric,
  // c_r = (C(|D|,r) - C(|D|-y,r)) / C(|D|,r); fractional y interpolates
  // linearly between floor(y) and ceil(y) so a small answer weight does not
  // round down to an exactly-zero change ratio.
  kCombinatorial,
};

// Estimates c_r; `y` is clamped to [0, num_sources]. Requires
// 0 < r < num_sources.
Result<double> ChangeRatio(double y, int num_sources, int r,
                           ChangeRatioEstimator estimator);

// How the mutual impact factor Psi is evaluated.
enum class StabilityPsiMode {
  // Linear binning + DCT Gauss transform on a shared power-of-two grid,
  // O(grid log grid). Falls back to kExact when the kernel scale drops
  // below ~1.5 grid cells (the binned sum can no longer resolve it).
  kBinned,
  // Sorted cutoff-truncated pairwise sum; the accuracy oracle.
  kExact,
};

// Evaluation seam for the analytic stability scores.
struct StabilityOptions {
  StabilityPsiMode mode = StabilityPsiMode::kBinned;
  // Grid of the binned Gauss transform (power of two; the KDE default).
  size_t grid_size = 4096;
  // Fraction of the sample span padded on each side of the grid. The binned
  // path additionally pads by >= 4 kernel scales so the DCT's reflective
  // images contribute < 1e-14 per pair.
  double padding_fraction = 0.1;

  Status Validate() const;
};

// Which path an evaluation actually took, plus the value.
struct PsiEvaluation {
  double psi = 0.0;
  // kBinned only when the binned transform actually ran; a resolution
  // fallback reports kExact.
  StabilityPsiMode mode = StabilityPsiMode::kExact;
};

// Psi = sum_{i<j} exp(-(x_i - x_j)^2 / (4 h^2)), evaluated per
// `options.mode` (with the resolution fallback above). Requires n >= 2 and
// h > 0. `obs` (optional) records a `stability_psi` span annotated with the
// path and grid size plus the path counters; `plan` (optional, borrowed,
// per-thread) caches the DCT tables across calls.
Result<PsiEvaluation> EvaluateMutualImpactPsi(std::span<const double> samples,
                                              double bandwidth,
                                              const StabilityOptions& options,
                                              const ObsOptions& obs = {},
                                              DctPlan* plan = nullptr);

// Convenience wrapper over EvaluateMutualImpactPsi returning only the value.
Result<double> MutualImpactPsi(std::span<const double> samples,
                               double bandwidth,
                               const StabilityOptions& options = {},
                               const ObsOptions& obs = {},
                               DctPlan* plan = nullptr);

// Forced binned evaluation (no resolution fallback): bins the samples onto
// the power-of-two grid, smooths the counts with the Gaussian cross-kernel
// via one Dct2 + one Dct3, and recovers Psi as half the self-excluded
// weighted sum. Accuracy degrades once h drops below ~1.5 grid cells; the
// dispatcher above falls back to the exact sum there.
Result<double> MutualImpactPsiBinned(std::span<const double> samples,
                                     double bandwidth,
                                     const StabilityOptions& options = {},
                                     const ObsOptions& obs = {},
                                     DctPlan* plan = nullptr);

// Accuracy oracle: sorts a copy and truncates pairs farther apart than ~12h
// (contribution < 1e-16). O(|S|^2) worst case, near-linear on well-spread
// data with a narrow kernel.
double MutualImpactPsiSorted(std::span<const double> samples,
                             double bandwidth);

// Plain O(n^2) all-pairs evaluation, kept for validating the oracle itself.
double MutualImpactPsiExact(std::span<const double> samples,
                            double bandwidth);

// Theorem 4.2 / Corollary 4.1 closed forms from an already-evaluated Psi.
// Requires n >= 2, h > 0 (and change_ratio in (0, 1) for the L2 score).
// StabilityL2FromPsi returns +infinity when the expected squared distance
// vanishes (every sample coincides).
Result<double> StabilityL2FromPsi(double n, double bandwidth,
                                  double change_ratio, double psi);
Result<double> StabilityBhattacharyyaFromPsi(double n, double bandwidth,
                                             double psi);

// Theorem 4.2. Returns +infinity when all samples coincide (zero distance).
// Requires n >= 2, h > 0, and change_ratio in (0, 1).
Result<double> StabilityL2(std::span<const double> samples, double bandwidth,
                           double change_ratio,
                           const StabilityOptions& options = {},
                           const ObsOptions& obs = {},
                           DctPlan* plan = nullptr);

// Corollary 4.1. Requires n >= 2 and h > 0.
Result<double> StabilityBhattacharyya(std::span<const double> samples,
                                      double bandwidth,
                                      const StabilityOptions& options = {},
                                      const ObsOptions& obs = {},
                                      DctPlan* plan = nullptr);

struct StabilityReport {
  double stab_l2 = 0.0;
  double stab_bh = 0.0;
  double change_ratio = 0.0;
  double y = 0.0;          // average sources per answer
  double bandwidth = 0.0;  // h used
  double psi = 0.0;
  // The path Psi actually took (kBinned only when the transform ran).
  StabilityPsiMode psi_mode = StabilityPsiMode::kExact;
  int r = 1;
};

// Computes both analytic scores from a sample set, its KDE bandwidth, and
// the sampler-estimated weight y. Psi is evaluated once (per
// `options.mode`) and shared by both scores.
Result<StabilityReport> ComputeStability(std::span<const double> samples,
                                         double bandwidth, double y,
                                         int num_sources, int r,
                                         ChangeRatioEstimator estimator =
                                             ChangeRatioEstimator::kGeometric,
                                         const StabilityOptions& options = {},
                                         const ObsOptions& obs = {},
                                         DctPlan* plan = nullptr);

struct SimulatedStabilityOptions {
  int r = 1;                  // sources removed per trial
  int trials = 20;            // number of random removal sets Q
  int samples_per_trial = 200;  // uniS draws for each f^{D\Q}
  DistanceKind distance = DistanceKind::kL2;
  KdeOptions kde;
};

// Monte-Carlo baseline: actually removes sources, re-samples, re-estimates
// the density, and averages the distance. For the L2 distance the squared
// distance is averaged and the score halved, matching Theorem 4.2's
// Stab_{L2} convention. Trials whose removal breaks coverage are redrawn
// (and counted as failures after too many retries).
Result<double> SimulateStability(const UniSSampler& sampler,
                                 const GridDensity& base_density,
                                 const SimulatedStabilityOptions& options,
                                 Rng& rng);

// One point of the Figure 8 deviation map.
struct DeviationPoint {
  int source = 0;
  // |mu^{D\{s}} - mu^D| / denominator (see DeviationMapResult).
  double relative_deviation = 0.0;
};

// The deviation map plus the denominator it was normalized by.
struct DeviationMapResult {
  std::vector<DeviationPoint> points;
  // Normally |base_mean|. When the base mean is zero or negligible against
  // the pooled sample spread (|base_mean| < 1e-9 * spread), relative
  // deviations would explode, so the spread itself is used instead and
  // `spread_fallback` is set.
  double denominator = 0.0;
  bool spread_fallback = false;
};

// Removes each source in turn (skipping removals that break coverage),
// draws `samples_per_removal` answers from the remainder, and reports the
// shift of the sample mean relative to `base_mean` (or to the pooled sample
// spread when the base mean is degenerate — see DeviationMapResult).
Result<DeviationMapResult> DeviationMap(const UniSSampler& sampler,
                                        double base_mean,
                                        int samples_per_removal, Rng& rng);

}  // namespace vastats

#endif  // VASTATS_CORE_STABILITY_H_
