// Stability scores for aggregate answers (paper §4.4 and Appendix A).
//
// Stability measures how much the viable answer distribution would change if
// r of the |D| sources left the system:
//   Stab_d = -log( E[ d(f^D, f^{D\Q}) ] )
// with the expectation over the uniformly random removed set Q. Theorem 4.2
// shows that for the squared-L2 distance and a Gaussian-KDE density this
// expectation is available in closed form from the sample set alone:
//   Stab_L2 = -1/2 log( 1/(2nh*sqrt(pi)) * c_r/(1-c_r)
//                       * (1 - 2*Psi/(n(n-1))) )
// where Psi = sum_{i<j} exp(-(x_i-x_j)^2 / 4h^2) is the mutual impact
// factor and c_r estimates the fraction of answers invalidated by the
// removal. Corollary 4.1 gives the analogous Bhattacharyya-based score
//   Stab_Bh = -log( 1/(2nh*sqrt(pi)) + Psi/(n^2 h sqrt(pi)) ).
// Neither requires simulating source removal; a simulation baseline and the
// Figure 8 deviation map are provided for validation.

#ifndef VASTATS_CORE_STABILITY_H_
#define VASTATS_CORE_STABILITY_H_

#include <span>
#include <vector>

#include "density/distance.h"
#include "density/kde.h"
#include "sampling/unis.h"
#include "util/random.h"
#include "util/status.h"

namespace vastats {

// How the change ratio c_r (expected fraction of invalidated answers when r
// of |D| sources are removed) is estimated from the answer weight y (average
// sources per answer). Both estimators come from the proof of Theorem 4.2.
enum class ChangeRatioEstimator {
  // c_r = 1 - (1 - y/|D|)^r (uniform contribution assumption; the paper's
  // primary estimate).
  kGeometric,
  // c_r = (C(|D|,r) - C(|D|-y,r)) / C(|D|,r).
  kCombinatorial,
};

// Estimates c_r; `y` is clamped to [0, num_sources]. Requires
// 0 < r < num_sources.
Result<double> ChangeRatio(double y, int num_sources, int r,
                           ChangeRatioEstimator estimator);

// Psi = sum_{i<j} exp(-(x_i - x_j)^2 / (4 h^2)). Sorts a copy and truncates
// pairs farther apart than ~12h (contribution < 1e-16), giving near-linear
// cost on well-spread data.
double MutualImpactPsi(std::span<const double> samples, double bandwidth);

// Exact O(n^2) evaluation, kept for validation.
double MutualImpactPsiExact(std::span<const double> samples,
                            double bandwidth);

// Theorem 4.2. Returns +infinity when all samples coincide (zero distance).
// Requires n >= 2, h > 0, and change_ratio in (0, 1).
Result<double> StabilityL2(std::span<const double> samples, double bandwidth,
                           double change_ratio);

// Corollary 4.1. Requires n >= 2 and h > 0.
Result<double> StabilityBhattacharyya(std::span<const double> samples,
                                      double bandwidth);

struct StabilityReport {
  double stab_l2 = 0.0;
  double stab_bh = 0.0;
  double change_ratio = 0.0;
  double y = 0.0;          // average sources per answer
  double bandwidth = 0.0;  // h used
  double psi = 0.0;
  int r = 1;
};

// Computes both analytic scores from a sample set, its KDE bandwidth, and
// the sampler-estimated weight y.
Result<StabilityReport> ComputeStability(std::span<const double> samples,
                                         double bandwidth, double y,
                                         int num_sources, int r,
                                         ChangeRatioEstimator estimator =
                                             ChangeRatioEstimator::kGeometric);

struct SimulatedStabilityOptions {
  int r = 1;                  // sources removed per trial
  int trials = 20;            // number of random removal sets Q
  int samples_per_trial = 200;  // uniS draws for each f^{D\Q}
  DistanceKind distance = DistanceKind::kL2;
  KdeOptions kde;
};

// Monte-Carlo baseline: actually removes sources, re-samples, re-estimates
// the density, and averages the distance. For the L2 distance the squared
// distance is averaged and the score halved, matching Theorem 4.2's
// Stab_{L2} convention. Trials whose removal breaks coverage are redrawn
// (and counted as failures after too many retries).
Result<double> SimulateStability(const UniSSampler& sampler,
                                 const GridDensity& base_density,
                                 const SimulatedStabilityOptions& options,
                                 Rng& rng);

// One point of the Figure 8 deviation map.
struct DeviationPoint {
  int source = 0;
  // |mu^{D\{s}} - mu^D| / |mu^D|.
  double relative_deviation = 0.0;
};

// Removes each source in turn (skipping removals that break coverage),
// draws `samples_per_removal` answers from the remainder, and reports the
// relative shift of the sample mean.
Result<std::vector<DeviationPoint>> DeviationMap(const UniSSampler& sampler,
                                                 double base_mean,
                                                 int samples_per_removal,
                                                 Rng& rng);

}  // namespace vastats

#endif  // VASTATS_CORE_STABILITY_H_
