// Rendering of answer statistics for downstream consumption: a JSON
// document (for services) and a plain-text summary (for terminals). The
// JSON covers every Algorithm-1 output — point estimates with CIs, the
// coverage intervals with (I, L, C), stability, sampling metadata, and an
// optional downsampled density series for plotting.

#ifndef VASTATS_CORE_REPORT_H_
#define VASTATS_CORE_REPORT_H_

#include <string>

#include "core/extractor.h"
#include "util/status.h"

namespace vastats {

struct ReportOptions {
  // Number of (x, f) pairs of the density included in the JSON; 0 omits the
  // series.
  int density_points = 0;
  // Include the raw uniS samples (can be large).
  bool include_samples = false;
};

// Serializes `stats` as a single JSON object.
std::string AnswerStatisticsToJson(const AnswerStatistics& stats,
                                   const ReportOptions& options = {});

// Multi-line human-readable summary (the csv_query_tool output format).
std::string AnswerStatisticsToText(const AnswerStatistics& stats);

}  // namespace vastats

#endif  // VASTATS_CORE_REPORT_H_
