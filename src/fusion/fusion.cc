#include "fusion/fusion.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace vastats {
namespace {

// Clusters sorted values with the agree-within-tolerance relation
// (single linkage) and returns (cluster mean, cluster size) pairs.
std::vector<std::pair<double, int>> ClusterValues(std::vector<double> values,
                                                  double tolerance) {
  std::sort(values.begin(), values.end());
  std::vector<std::pair<double, int>> clusters;
  double sum = 0.0;
  int count = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (count > 0 && values[i] - values[i - 1] > tolerance) {
      clusters.emplace_back(sum / count, count);
      sum = 0.0;
      count = 0;
    }
    sum += values[i];
    ++count;
  }
  if (count > 0) clusters.emplace_back(sum / count, count);
  return clusters;
}

Result<double> VoteFuse(const std::vector<double>& values, double tolerance) {
  const auto clusters = ClusterValues(values, tolerance);
  VASTATS_ASSIGN_OR_RETURN(const double overall_median, Median(values));
  const std::pair<double, int>* best = nullptr;
  for (const auto& cluster : clusters) {
    if (best == nullptr || cluster.second > best->second ||
        (cluster.second == best->second &&
         std::fabs(cluster.first - overall_median) <
             std::fabs(best->first - overall_median))) {
      best = &cluster;
    }
  }
  return best->first;
}

struct ComponentValues {
  ComponentId component;
  std::vector<int> sources;
  std::vector<double> values;
};

Result<std::vector<ComponentValues>> CollectValues(
    const SourceSet& sources, std::span<const ComponentId> components) {
  std::vector<ComponentValues> collected;
  collected.reserve(components.size());
  for (const ComponentId component : components) {
    ComponentValues entry;
    entry.component = component;
    entry.sources = sources.Covering(component);
    if (entry.sources.empty()) {
      return Status::FailedPrecondition(
          "component " + std::to_string(component) + " is uncovered");
    }
    for (const int s : entry.sources) {
      VASTATS_ASSIGN_OR_RETURN(const double v,
                               sources.source(s).Value(component));
      entry.values.push_back(v);
    }
    collected.push_back(std::move(entry));
  }
  return collected;
}

// Simplified TruthFinder: alternate value-confidence and source-trust
// updates; resolve each component to its highest-confidence cluster mean.
Result<FusionResult> TruthFinderFuse(
    const SourceSet& sources, const std::vector<ComponentValues>& collected,
    const FusionOptions& options) {
  const size_t num_sources = static_cast<size_t>(sources.NumSources());
  std::vector<double> trust(num_sources, 0.5);

  for (int iteration = 0; iteration < options.truth_finder_iterations;
       ++iteration) {
    std::vector<double> support_sum(num_sources, 0.0);
    std::vector<int> support_count(num_sources, 0);
    for (const ComponentValues& entry : collected) {
      // Confidence of each asserted value = sum of trusts of sources whose
      // value agrees with it (within tolerance), normalized per component.
      double max_confidence = 1e-12;
      std::vector<double> confidence(entry.values.size(), 0.0);
      for (size_t i = 0; i < entry.values.size(); ++i) {
        for (size_t j = 0; j < entry.values.size(); ++j) {
          if (std::fabs(entry.values[i] - entry.values[j]) <=
              options.vote_tolerance) {
            confidence[i] += trust[static_cast<size_t>(entry.sources[j])];
          }
        }
        max_confidence = std::max(max_confidence, confidence[i]);
      }
      for (size_t i = 0; i < entry.values.size(); ++i) {
        support_sum[static_cast<size_t>(entry.sources[i])] +=
            confidence[i] / max_confidence;
        ++support_count[static_cast<size_t>(entry.sources[i])];
      }
    }
    for (size_t s = 0; s < num_sources; ++s) {
      if (support_count[s] > 0) {
        trust[s] = support_sum[s] / static_cast<double>(support_count[s]);
      }
    }
  }

  FusionResult result;
  result.source_trust = trust;
  for (const ComponentValues& entry : collected) {
    // Trust-weighted confidence per value; pick the best-supported one.
    double best_confidence = -1.0;
    double best_value = entry.values.front();
    for (size_t i = 0; i < entry.values.size(); ++i) {
      double confidence = 0.0;
      for (size_t j = 0; j < entry.values.size(); ++j) {
        if (std::fabs(entry.values[i] - entry.values[j]) <=
            options.vote_tolerance) {
          confidence += trust[static_cast<size_t>(entry.sources[j])];
        }
      }
      if (confidence > best_confidence) {
        best_confidence = confidence;
        best_value = entry.values[i];
      }
    }
    result.fused_values[entry.component] = best_value;
  }
  return result;
}

}  // namespace

Status FusionOptions::Validate() const {
  if (vote_tolerance < 0.0) {
    return Status::InvalidArgument("vote_tolerance must be >= 0");
  }
  if (truth_finder_iterations < 1) {
    return Status::InvalidArgument("truth_finder_iterations must be >= 1");
  }
  return Status::Ok();
}

Result<FusionResult> FuseComponents(const SourceSet& sources,
                                    std::span<const ComponentId> components,
                                    const FusionOptions& options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (components.empty()) {
    return Status::InvalidArgument("FuseComponents needs >= 1 component");
  }
  VASTATS_ASSIGN_OR_RETURN(const std::vector<ComponentValues> collected,
                           CollectValues(sources, components));
  if (options.rule == FusionRule::kTruthFinder) {
    return TruthFinderFuse(sources, collected, options);
  }
  FusionResult result;
  for (const ComponentValues& entry : collected) {
    double fused = 0.0;
    switch (options.rule) {
      case FusionRule::kVote: {
        VASTATS_ASSIGN_OR_RETURN(
            fused, VoteFuse(entry.values, options.vote_tolerance));
        break;
      }
      case FusionRule::kMedian: {
        VASTATS_ASSIGN_OR_RETURN(fused, Median(entry.values));
        break;
      }
      case FusionRule::kMean:
        fused = ComputeMoments(entry.values).mean();
        break;
      case FusionRule::kTruthFinder:
        break;  // handled above
    }
    result.fused_values[entry.component] = fused;
  }
  return result;
}

Result<double> FusedAggregate(const SourceSet& sources,
                              const AggregateQuery& query,
                              const FusionOptions& options) {
  VASTATS_RETURN_IF_ERROR(query.Validate());
  VASTATS_ASSIGN_OR_RETURN(const FusionResult fused,
                           FuseComponents(sources, query.components, options));
  std::vector<double> values;
  values.reserve(query.components.size());
  for (const ComponentId component : query.components) {
    values.push_back(fused.fused_values.at(component));
  }
  return EvaluateAggregate(query.kind, values, query.quantile_q);
}

}  // namespace vastats
