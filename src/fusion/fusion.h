// Data-fusion baselines — the contrast class of the paper's §6: "Data
// fusion [5, 11] ... assumes a single true value for each component in a
// data set, and attempts to resolve value conflicts among the sources. ...
// In our work, however, [we] do not assume a single true value ... instead
// we report a range of possible answers."
//
// These baselines make the comparison concrete: each resolves every
// component to ONE value (so aggregates become scalars), by majority vote,
// median, mean, or a simplified truth-discovery iteration (joint source
// trust / value confidence estimation in the spirit of [18]/TruthFinder).
// bench/baseline_fusion.cc pits them against the viable answer distribution
// on workloads where the "single truth" assumption breaks (unit errors,
// semantic strata).

#ifndef VASTATS_FUSION_FUSION_H_
#define VASTATS_FUSION_FUSION_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "datagen/source_set.h"
#include "stats/aggregate_query.h"
#include "util/status.h"

namespace vastats {

enum class FusionRule {
  // Largest cluster of agreeing values (values within `vote_tolerance` of
  // each other agree); the cluster mean wins. Ties break towards the
  // cluster nearest the overall median.
  kVote,
  kMedian,
  kMean,
  // Iterative joint estimation: a value's confidence is the sum of its
  // supporters' trust; a source's trust is the mean confidence of the
  // values it asserts (normalized each round).
  kTruthFinder,
};

struct FusionOptions {
  FusionRule rule = FusionRule::kVote;
  // Values closer than this agree (supports/votes); relative to the data's
  // scale, must be >= 0.
  double vote_tolerance = 0.5;
  int truth_finder_iterations = 20;

  Status Validate() const;
};

struct FusionResult {
  // One resolved value per requested component.
  std::unordered_map<ComponentId, double> fused_values;
  // Per-source trust scores in [0, 1] (kTruthFinder only; empty otherwise).
  std::vector<double> source_trust;
};

// Resolves each component of `components` to a single value. Every
// component must be covered by >= 1 source.
Result<FusionResult> FuseComponents(const SourceSet& sources,
                                    std::span<const ComponentId> components,
                                    const FusionOptions& options);

// The scalar a fusion-then-aggregate system would report for `query`.
Result<double> FusedAggregate(const SourceSet& sources,
                              const AggregateQuery& query,
                              const FusionOptions& options);

}  // namespace vastats

#endif  // VASTATS_FUSION_FUSION_H_
