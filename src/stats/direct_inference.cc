#include "stats/direct_inference.h"

#include <cmath>

#include "util/math.h"

namespace vastats {
namespace {

Status ValidateLevel(double level) {
  if (!(level > 0.0 && level < 1.0)) {
    return Status::InvalidArgument("confidence level must be in (0,1)");
  }
  return Status::Ok();
}

// Multiplier k such that the CI is mean +- k * s / sqrt(n).
Result<double> MeanMultiplier(double level, DirectMethod method) {
  const double alpha = 1.0 - level;
  switch (method) {
    case DirectMethod::kChebyshev:
      return 1.0 / std::sqrt(alpha);
    case DirectMethod::kClt:
      return NormalQuantile(1.0 - alpha / 2.0);
  }
  return Status::Internal("unknown DirectMethod");
}

}  // namespace

Result<ConfidenceInterval> DirectMeanCi(const Moments& moments, double level,
                                        DirectMethod method) {
  VASTATS_RETURN_IF_ERROR(ValidateLevel(level));
  if (moments.count() < 2) {
    return Status::InvalidArgument("DirectMeanCi needs >= 2 observations");
  }
  VASTATS_ASSIGN_OR_RETURN(const double k, MeanMultiplier(level, method));
  const double half_width =
      k * moments.SampleStdDev() / std::sqrt(static_cast<double>(moments.count()));
  return ConfidenceInterval{moments.mean() - half_width,
                            moments.mean() + half_width, level};
}

Result<ConfidenceInterval> DirectVarianceCi(const Moments& moments,
                                            double level) {
  VASTATS_RETURN_IF_ERROR(ValidateLevel(level));
  if (moments.count() < 2) {
    return Status::InvalidArgument("DirectVarianceCi needs >= 2 observations");
  }
  const double alpha = 1.0 - level;
  const double dof = static_cast<double>(moments.count() - 1);
  VASTATS_ASSIGN_OR_RETURN(const double chi_hi,
                           ChiSquareQuantile(1.0 - alpha / 2.0, dof));
  VASTATS_ASSIGN_OR_RETURN(const double chi_lo,
                           ChiSquareQuantile(alpha / 2.0, dof));
  const double scaled = dof * moments.SampleVariance();
  return ConfidenceInterval{scaled / chi_hi, scaled / chi_lo, level};
}

Result<ConfidenceInterval> DirectSkewnessCi(const Moments& moments,
                                            double level) {
  VASTATS_RETURN_IF_ERROR(ValidateLevel(level));
  const double n = static_cast<double>(moments.count());
  if (moments.count() < 4) {
    return Status::InvalidArgument("DirectSkewnessCi needs >= 4 observations");
  }
  const double alpha = 1.0 - level;
  VASTATS_ASSIGN_OR_RETURN(const double z, NormalQuantile(1.0 - alpha / 2.0));
  const double se =
      std::sqrt(6.0 * n * (n - 1.0) / ((n - 2.0) * (n + 1.0) * (n + 3.0)));
  const double g1 = moments.Skewness();
  return ConfidenceInterval{g1 - z * se, g1 + z * se, level};
}

Result<double> DirectMeanRequiredSampleSize(double std_dev, double level,
                                            double target_length,
                                            DirectMethod method) {
  VASTATS_RETURN_IF_ERROR(ValidateLevel(level));
  if (!(std_dev >= 0.0)) {
    return Status::InvalidArgument("std_dev must be >= 0");
  }
  if (!(target_length > 0.0)) {
    return Status::InvalidArgument("target_length must be > 0");
  }
  VASTATS_ASSIGN_OR_RETURN(const double k, MeanMultiplier(level, method));
  // Solve 2 * k * s / sqrt(n) = target_length for n.
  const double root = 2.0 * k * std_dev / target_length;
  return root * root;
}

}  // namespace vastats
