#include "stats/confidence.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "stats/jackknife.h"
#include "util/math.h"

namespace vastats {
namespace {

Status ValidateLevel(double level) {
  if (!(level > 0.0 && level < 1.0)) {
    return Status::InvalidArgument("confidence level must be in (0,1)");
  }
  return Status::Ok();
}

Status ValidateReplicates(std::span<const double> replicates) {
  if (replicates.size() < 2) {
    return Status::InvalidArgument(
        "confidence interval needs >= 2 bootstrap replicates");
  }
  return Status::Ok();
}

}  // namespace

std::string_view CiMethodToString(CiMethod method) {
  switch (method) {
    case CiMethod::kNormal:
      return "normal";
    case CiMethod::kPercentile:
      return "percentile";
    case CiMethod::kBasic:
      return "basic";
    case CiMethod::kBca:
      return "BCa";
  }
  return "unknown";
}

Result<ConfidenceInterval> NormalCi(std::span<const double> replicates,
                                    double point_estimate, double level) {
  VASTATS_RETURN_IF_ERROR(ValidateLevel(level));
  VASTATS_RETURN_IF_ERROR(ValidateReplicates(replicates));
  const double alpha = 1.0 - level;
  VASTATS_ASSIGN_OR_RETURN(const double z, NormalQuantile(1.0 - alpha / 2.0));
  const double sd = ComputeMoments(replicates).SampleStdDev();
  return ConfidenceInterval{point_estimate - z * sd, point_estimate + z * sd,
                            level};
}

Result<ConfidenceInterval> PercentileCi(std::span<const double> replicates,
                                        double level) {
  VASTATS_RETURN_IF_ERROR(ValidateLevel(level));
  VASTATS_RETURN_IF_ERROR(ValidateReplicates(replicates));
  const double alpha = 1.0 - level;
  std::vector<double> sorted(replicates.begin(), replicates.end());
  std::sort(sorted.begin(), sorted.end());
  VASTATS_ASSIGN_OR_RETURN(const double lo,
                           QuantileSorted(sorted, alpha / 2.0));
  VASTATS_ASSIGN_OR_RETURN(const double hi,
                           QuantileSorted(sorted, 1.0 - alpha / 2.0));
  return ConfidenceInterval{lo, hi, level};
}

Result<ConfidenceInterval> BasicCi(std::span<const double> replicates,
                                   double point_estimate, double level) {
  VASTATS_ASSIGN_OR_RETURN(const ConfidenceInterval pct,
                           PercentileCi(replicates, level));
  return ConfidenceInterval{2.0 * point_estimate - pct.hi,
                            2.0 * point_estimate - pct.lo, level};
}

Result<ConfidenceInterval> BcaCi(std::span<const double> replicates,
                                 double point_estimate, double level,
                                 std::span<const double> jackknife_estimates) {
  VASTATS_RETURN_IF_ERROR(ValidateLevel(level));
  VASTATS_RETURN_IF_ERROR(ValidateReplicates(replicates));
  const double alpha = 1.0 - level;
  const double b = static_cast<double>(replicates.size());

  // Bias correction z0 from the fraction of replicates below theta_hat.
  double below = 0.0;
  for (const double r : replicates) {
    if (r < point_estimate) below += 1.0;
  }
  // Clamp away from 0 and 1 so z0 stays finite for extreme ensembles.
  double fraction = below / b;
  fraction = std::clamp(fraction, 0.5 / b, 1.0 - 0.5 / b);
  VASTATS_ASSIGN_OR_RETURN(const double z0, NormalQuantile(fraction));

  // Acceleration from the jackknife replicates.
  VASTATS_ASSIGN_OR_RETURN(const double a,
                           JackknifeAcceleration(jackknife_estimates));

  VASTATS_ASSIGN_OR_RETURN(const double z_lo, NormalQuantile(alpha / 2.0));
  VASTATS_ASSIGN_OR_RETURN(const double z_hi,
                           NormalQuantile(1.0 - alpha / 2.0));

  auto adjusted = [&](double z) {
    const double num = z0 + z;
    const double denom = 1.0 - a * num;
    // The BCa map is only monotone while 1 - a*(z0+z) > 0. At or past the
    // pole (denom <= 0, reachable for |z0| + |z| >~ 1/|a| under heavy skew)
    // the adjusted quantile flips to the wrong tail, so fall back to the
    // a = 0 bias-corrected percentile endpoint Phi(2*z0 + z).
    if (denom <= 0.0) return NormalCdf(z0 + num);
    return NormalCdf(z0 + num / denom);
  };
  double alpha1 = adjusted(z_lo);
  double alpha2 = adjusted(z_hi);
  alpha1 = std::clamp(alpha1, 0.0, 1.0);
  alpha2 = std::clamp(alpha2, 0.0, 1.0);
  if (alpha1 > alpha2) std::swap(alpha1, alpha2);

  std::vector<double> sorted(replicates.begin(), replicates.end());
  std::sort(sorted.begin(), sorted.end());
  VASTATS_ASSIGN_OR_RETURN(const double lo, QuantileSorted(sorted, alpha1));
  VASTATS_ASSIGN_OR_RETURN(const double hi, QuantileSorted(sorted, alpha2));
  return ConfidenceInterval{lo, hi, level};
}

Result<ConfidenceInterval> ComputeBootstrapCi(
    CiMethod method, std::span<const double> replicates, double point_estimate,
    double level, std::span<const double> jackknife_estimates) {
  switch (method) {
    case CiMethod::kNormal:
      return NormalCi(replicates, point_estimate, level);
    case CiMethod::kPercentile:
      return PercentileCi(replicates, level);
    case CiMethod::kBasic:
      return BasicCi(replicates, point_estimate, level);
    case CiMethod::kBca:
      if (jackknife_estimates.empty()) {
        return Status::InvalidArgument(
            "BCa requires jackknife estimates of the statistic");
      }
      return BcaCi(replicates, point_estimate, level, jackknife_estimates);
  }
  return Status::Internal("unknown CiMethod");
}

}  // namespace vastats
