// Bootstrap resampling and bagging (Breiman 1996), per paper §2.1.
//
// Starting from an initial uniS sample set, the library draws
// `num_sets` bootstrap sample sets of `set_size` points each (with
// replacement), applies an estimator to each set to get an ensemble of
// replicates, and bags (aggregates) the ensemble into a single, lower
// variance estimate. The replicates also feed the confidence-interval
// machinery in stats/confidence.h.

#ifndef VASTATS_STATS_BOOTSTRAP_H_
#define VASTATS_STATS_BOOTSTRAP_H_

#include <span>
#include <vector>

#include "stats/jackknife.h"
#include "util/random.h"
#include "util/status.h"

namespace vastats {

struct BootstrapOptions {
  // Number of bootstrap sample sets, |S_boot| (paper default 50).
  int num_sets = 50;
  // Size of each bootstrap set, |B^i_boot|; 0 means "same as the data".
  int set_size = 0;

  Status Validate() const;
};

// Draws `options.num_sets` bootstrap sample sets from `data`.
Result<std::vector<std::vector<double>>> BootstrapSets(
    std::span<const double> data, const BootstrapOptions& options, Rng& rng);

// Evaluates `statistic` on each bootstrap set of `data` and returns the
// ensemble of replicates (one value per set).
Result<std::vector<double>> BootstrapReplicates(std::span<const double> data,
                                                const StatisticFn& statistic,
                                                const BootstrapOptions& options,
                                                Rng& rng);

// Evaluates `statistic` on already-materialized bootstrap sets.
Result<std::vector<double>> ReplicatesFromSets(
    std::span<const std::vector<double>> sets, const StatisticFn& statistic);

// How the replicate ensemble is bagged into a single estimate.
enum class BagAggregator { kMean, kMedian };

// Aggregates a replicate ensemble (paper §2.1: "combining, e.g. averaging,
// this ensemble of estimates").
Result<double> Bag(std::span<const double> replicates,
                   BagAggregator aggregator);

}  // namespace vastats

#endif  // VASTATS_STATS_BOOTSTRAP_H_
