// Bootstrap resampling and bagging (Breiman 1996), per paper §2.1.
//
// Starting from an initial uniS sample set, the library draws
// `num_sets` bootstrap sample sets of `set_size` points each (with
// replacement), applies an estimator to each set to get an ensemble of
// replicates, and bags (aggregates) the ensemble into a single, lower
// variance estimate. The replicates also feed the confidence-interval
// machinery in stats/confidence.h.
//
// Batched form: `BootstrapIndexSets` draws all resampling indices up front
// through `Rng::ResampleIndices` (the bootstrap resampling primitive), so
// the RNG stream is consumed in one deterministic pass and the per-set
// statistic evaluations become independent tasks. Every evaluation entry
// point accepts an optional persistent `ThreadPool`; the pooled result is
// bit-identical to the serial one (replicate `s` is always the statistic of
// set `s` — only the execution order changes).

#ifndef VASTATS_STATS_BOOTSTRAP_H_
#define VASTATS_STATS_BOOTSTRAP_H_

#include <span>
#include <vector>

#include "stats/jackknife.h"
#include "util/random.h"
#include "util/status.h"

namespace vastats {

class FlightRecorder;
class MetricsRegistry;
class ThreadPool;

struct BootstrapOptions {
  // Number of bootstrap sample sets, |S_boot| (paper default 50).
  int num_sets = 50;
  // Size of each bootstrap set, |B^i_boot|; 0 means "same as the data".
  int set_size = 0;

  Status Validate() const;
};

// Draws the resampling indices for `options.num_sets` bootstrap sets over a
// data vector of `data_size` points (one index vector per set, built on
// Rng::ResampleIndices). The index stream is identical to the value stream
// of BootstrapSets under the same seed.
Result<std::vector<std::vector<int>>> BootstrapIndexSets(
    int data_size, const BootstrapOptions& options, Rng& rng);

// Draws `options.num_sets` bootstrap sample sets from `data`.
Result<std::vector<std::vector<double>>> BootstrapSets(
    std::span<const double> data, const BootstrapOptions& options, Rng& rng);

// Evaluates `statistic` on each bootstrap set of `data` and returns the
// ensemble of replicates (one value per set). With a `pool`, the per-set
// evaluations run as pool tasks after the indices are drawn in one batch;
// `metrics` and `recorder` (optional, borrowed) receive the pool's task
// telemetry.
Result<std::vector<double>> BootstrapReplicates(
    std::span<const double> data, const StatisticFn& statistic,
    const BootstrapOptions& options, Rng& rng, ThreadPool* pool = nullptr,
    MetricsRegistry* metrics = nullptr, FlightRecorder* recorder = nullptr);

// Evaluates `statistic` on already-materialized bootstrap sets.
Result<std::vector<double>> ReplicatesFromSets(
    std::span<const std::vector<double>> sets, const StatisticFn& statistic,
    ThreadPool* pool = nullptr, MetricsRegistry* metrics = nullptr,
    FlightRecorder* recorder = nullptr);

// Index-based twin of ReplicatesFromSets: evaluates `statistic` on the set
// gathered from `data` by each index vector, without materializing the sets.
Result<std::vector<double>> ReplicatesFromIndexSets(
    std::span<const double> data,
    std::span<const std::vector<int>> index_sets, const StatisticFn& statistic,
    ThreadPool* pool = nullptr, MetricsRegistry* metrics = nullptr,
    FlightRecorder* recorder = nullptr);

// How the replicate ensemble is bagged into a single estimate.
enum class BagAggregator { kMean, kMedian };

// Aggregates a replicate ensemble (paper §2.1: "combining, e.g. averaging,
// this ensemble of estimates").
Result<double> Bag(std::span<const double> replicates,
                   BagAggregator aggregator);

}  // namespace vastats

#endif  // VASTATS_STATS_BOOTSTRAP_H_
