#include "stats/aggregate_query.h"

namespace vastats {

AggregateQuery MakeRangeQuery(std::string name, AggregateKind kind,
                              ComponentId first_id, int count) {
  AggregateQuery query;
  query.name = std::move(name);
  query.kind = kind;
  query.components.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    query.components.push_back(first_id + i);
  }
  return query;
}

}  // namespace vastats
