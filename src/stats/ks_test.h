// Kolmogorov-Smirnov goodness-of-fit utilities.
//
// Used by the test suite and the validation harnesses to check sampler
// correctness *statistically*: e.g. that uniS's empirical answer
// distribution matches the exhaustive permutation enumeration, or that two
// sampler implementations draw from the same distribution.

#ifndef VASTATS_STATS_KS_TEST_H_
#define VASTATS_STATS_KS_TEST_H_

#include <functional>
#include <span>

#include "util/status.h"

namespace vastats {

// One-sample KS statistic D_n = sup_x |F_n(x) - F(x)| against a reference
// CDF. Requires a non-empty sample. The CDF must be *continuous*; for
// distributions with atoms use KsStatisticDiscrete (the order-statistic
// formula used here overestimates D at ties).
Result<double> KsStatistic(std::span<const double> samples,
                           const std::function<double(double)>& cdf);

// One-sample KS statistic against a discrete distribution given by its
// atoms (strictly ascending) and their probabilities (non-negative, summing
// to ~1). Evaluates the supremum at each atom and just left of it, which is
// where it can occur. The Kolmogorov p-value is conservative for discrete
// distributions.
Result<double> KsStatisticDiscrete(std::span<const double> samples,
                                   std::span<const double> atoms,
                                   std::span<const double> probabilities);

// Two-sample KS statistic sup_x |F_n(x) - G_m(x)|.
Result<double> KsStatisticTwoSample(std::span<const double> a,
                                    std::span<const double> b);

// The Kolmogorov distribution K(x) = P(sup|B(t)| <= x)
// = 1 - 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2); 0 for x <= 0.
double KolmogorovCdf(double x);

// Asymptotic p-value of the one-sample statistic `d` at sample size n
// (with the Stephens small-sample correction).
Result<double> KsPValue(double d, int n);

// Asymptotic p-value of the two-sample statistic for sizes n and m.
Result<double> KsPValueTwoSample(double d, int n, int m);

}  // namespace vastats

#endif  // VASTATS_STATS_KS_TEST_H_
