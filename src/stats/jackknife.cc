#include "stats/jackknife.h"

#include <cmath>

#include "stats/descriptive.h"

namespace vastats {

double EvaluateMomentStatistic(MomentStatistic statistic,
                               std::span<const double> values) {
  const Moments moments = ComputeMoments(values);
  switch (statistic) {
    case MomentStatistic::kMean:
      return moments.mean();
    case MomentStatistic::kVariance:
      return moments.SampleVariance();
    case MomentStatistic::kStdDev:
      return moments.SampleStdDev();
    case MomentStatistic::kSkewness:
      return moments.Skewness();
  }
  return 0.0;
}

StatisticFn MomentStatisticFn(MomentStatistic statistic) {
  return [statistic](std::span<const double> values) {
    return EvaluateMomentStatistic(statistic, values);
  };
}

Result<std::vector<double>> JackknifeGeneric(std::span<const double> values,
                                             const StatisticFn& statistic) {
  const size_t n = values.size();
  if (n < 2) {
    return Status::InvalidArgument("Jackknife requires at least 2 points");
  }
  std::vector<double> holdout(n - 1);
  std::vector<double> estimates(n);
  for (size_t i = 0; i < n; ++i) {
    size_t k = 0;
    for (size_t j = 0; j < n; ++j) {
      if (j != i) holdout[k++] = values[j];
    }
    estimates[i] = statistic(holdout);
  }
  return estimates;
}

Result<std::vector<double>> JackknifeMoment(std::span<const double> values,
                                            MomentStatistic statistic) {
  const size_t n = values.size();
  const size_t min_n = (statistic == MomentStatistic::kSkewness) ? 4 : 3;
  if (n < min_n) {
    return Status::InvalidArgument(
        "JackknifeMoment requires more observations");
  }
  // Raw power sums; leave-one-out sums are O(1) each.
  double p1 = 0.0, p2 = 0.0, p3 = 0.0;
  for (const double x : values) {
    p1 += x;
    p2 += x * x;
    p3 += x * x * x;
  }
  std::vector<double> estimates(n);
  const double m = static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) {
    const double x = values[i];
    const double s1 = p1 - x;
    const double s2 = p2 - x * x;
    const double s3 = p3 - x * x * x;
    const double mean = s1 / m;
    // Central moments of the leave-one-out sample from raw sums.
    const double c2 = s2 / m - mean * mean;
    const double c3 = s3 / m - 3.0 * mean * (s2 / m) + 2.0 * mean * mean * mean;
    switch (statistic) {
      case MomentStatistic::kMean:
        estimates[i] = mean;
        break;
      case MomentStatistic::kVariance:
        estimates[i] = (m > 1.0) ? c2 * m / (m - 1.0) : 0.0;
        break;
      case MomentStatistic::kStdDev:
        estimates[i] =
            (m > 1.0 && c2 > 0.0) ? std::sqrt(c2 * m / (m - 1.0)) : 0.0;
        break;
      case MomentStatistic::kSkewness:
        estimates[i] = (c2 > 0.0) ? c3 / std::pow(c2, 1.5) : 0.0;
        break;
    }
  }
  return estimates;
}

Result<double> JackknifeAcceleration(
    std::span<const double> jackknife_estimates) {
  if (jackknife_estimates.size() < 2) {
    return Status::InvalidArgument(
        "JackknifeAcceleration requires at least 2 replicates");
  }
  double sum = 0.0;
  for (const double t : jackknife_estimates) sum += t;
  const double mean = sum / static_cast<double>(jackknife_estimates.size());
  double sum_sq = 0.0, sum_cu = 0.0;
  for (const double t : jackknife_estimates) {
    const double d = mean - t;
    sum_sq += d * d;
    sum_cu += d * d * d;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum_cu / (6.0 * std::pow(sum_sq, 1.5));
}

}  // namespace vastats
