// Descriptive statistics: numerically stable streaming moments (Welford /
// Pebay update with merge support), quantiles, and a one-call summary.
//
// Skewness follows the moment-coefficient convention used by the paper
// (gamma_1 = m3 / m2^(3/2) on central sample moments); variance is the
// unbiased sample variance.

#ifndef VASTATS_STATS_DESCRIPTIVE_H_
#define VASTATS_STATS_DESCRIPTIVE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace vastats {

// Streaming accumulator of the first four central moments.
//
// Supports one-pass `Add` and pairwise `Merge` (the merge property makes it
// usable for the partial/final aggregate decomposition in the query layer).
class Moments {
 public:
  Moments() = default;

  // Incorporates one observation.
  void Add(double x);

  // Incorporates every observation of `other` (Chan/Pebay parallel update).
  void Merge(const Moments& other);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }

  // Unbiased sample variance (n-1 denominator); 0 when count < 2.
  double SampleVariance() const;

  // Population variance (n denominator); 0 when count == 0.
  double PopulationVariance() const;

  double SampleStdDev() const;

  // Moment-coefficient skewness gamma_1 = m3 / m2^(3/2); 0 for degenerate
  // samples (fewer than 3 points or zero variance).
  double Skewness() const;

  // Excess kurtosis m4 / m2^2 - 3; 0 for degenerate samples.
  double ExcessKurtosis() const;

  double Sum() const { return mean_ * static_cast<double>(count_); }

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum (x - mean)^2
  double m3_ = 0.0;  // sum (x - mean)^3
  double m4_ = 0.0;  // sum (x - mean)^4
  double min_ = 0.0;
  double max_ = 0.0;
};

// Computes `Moments` over a whole span in one call.
Moments ComputeMoments(std::span<const double> values);

// Linear-interpolation quantile (R type-7) for q in [0, 1].
// Sorts a copy of `values`; requires a non-empty span.
Result<double> Quantile(std::span<const double> values, double q);

// Quantile for data that is already sorted ascending.
Result<double> QuantileSorted(std::span<const double> sorted, double q);

// Median convenience wrapper.
Result<double> Median(std::span<const double> values);

// A compact snapshot of a sample's distributional properties.
struct SampleSummary {
  int64_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // unbiased
  double std_dev = 0.0;
  double skewness = 0.0;
  double excess_kurtosis = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

// Summarizes `values`; requires a non-empty span.
Result<SampleSummary> Summarize(std::span<const double> values);

}  // namespace vastats

#endif  // VASTATS_STATS_DESCRIPTIVE_H_
