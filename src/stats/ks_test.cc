#include "stats/ks_test.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace vastats {

Result<double> KsStatistic(std::span<const double> samples,
                           const std::function<double(double)>& cdf) {
  if (samples.empty()) {
    return Status::InvalidArgument("KsStatistic needs a non-empty sample");
  }
  if (!cdf) {
    return Status::InvalidArgument("KsStatistic needs a callable CDF");
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double upper = static_cast<double>(i + 1) / n - f;
    const double lower = f - static_cast<double>(i) / n;
    d = std::max({d, upper, lower});
  }
  return d;
}

Result<double> KsStatisticDiscrete(std::span<const double> samples,
                                   std::span<const double> atoms,
                                   std::span<const double> probabilities) {
  if (samples.empty()) {
    return Status::InvalidArgument(
        "KsStatisticDiscrete needs a non-empty sample");
  }
  if (atoms.empty() || atoms.size() != probabilities.size()) {
    return Status::InvalidArgument(
        "KsStatisticDiscrete needs matching atoms and probabilities");
  }
  double total = 0.0;
  for (size_t k = 0; k < atoms.size(); ++k) {
    if (k > 0 && !(atoms[k] > atoms[k - 1])) {
      return Status::InvalidArgument("atoms must be strictly ascending");
    }
    if (!(probabilities[k] >= 0.0)) {
      return Status::InvalidArgument("probabilities must be >= 0");
    }
    total += probabilities[k];
  }
  if (std::fabs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("probabilities must sum to 1");
  }

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  double cumulative = 0.0;
  for (size_t k = 0; k < atoms.size(); ++k) {
    // Empirical CDF just left of the atom and at the atom.
    const auto first = std::lower_bound(sorted.begin(), sorted.end(),
                                        atoms[k]);
    const auto last = std::upper_bound(first, sorted.end(), atoms[k]);
    const double empirical_left =
        static_cast<double>(first - sorted.begin()) / n;
    const double empirical_at =
        static_cast<double>(last - sorted.begin()) / n;
    d = std::max(d, std::fabs(empirical_left - cumulative));
    cumulative += probabilities[k];
    d = std::max(d, std::fabs(empirical_at - cumulative));
  }
  return d;
}

Result<double> KsStatisticTwoSample(std::span<const double> a,
                                    std::span<const double> b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "KsStatisticTwoSample needs two non-empty samples");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  size_t i = 0, j = 0;
  double d = 0.0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(sa.size());
    const double fb = static_cast<double>(j) / static_cast<double>(sb.size());
    d = std::max(d, std::fabs(fa - fb));
  }
  return d;
}

double KolmogorovCdf(double x) {
  if (x <= 0.0) return 0.0;
  // Alternating series; converges very fast for x > 0.2. For tiny x the
  // CDF is numerically 0 anyway.
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * x * x);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-16) break;
  }
  return std::clamp(1.0 - 2.0 * sum, 0.0, 1.0);
}

Result<double> KsPValue(double d, int n) {
  if (!(d >= 0.0)) return Status::InvalidArgument("d must be >= 0");
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  // Stephens' correction improves the asymptotic for moderate n.
  const double x = d * (sqrt_n + 0.12 + 0.11 / sqrt_n);
  return 1.0 - KolmogorovCdf(x);
}

Result<double> KsPValueTwoSample(double d, int n, int m) {
  if (!(d >= 0.0)) return Status::InvalidArgument("d must be >= 0");
  if (n < 1 || m < 1) {
    return Status::InvalidArgument("sample sizes must be >= 1");
  }
  const double effective = std::sqrt(static_cast<double>(n) *
                                     static_cast<double>(m) /
                                     static_cast<double>(n + m));
  return 1.0 - KolmogorovCdf(d * effective);
}

}  // namespace vastats
