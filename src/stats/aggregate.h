// Aggregate functions with partial-final decomposition (paper §4.2).
//
// uniS maintains a *partial* aggregate incrementally as it visits sources
// and finalizes it once the component set is covered — e.g. for a final
// avg() the partial aggregate is (sum, count). Algebraic aggregates
// (sum/avg/count/min/max/variance/stddev) carry O(1) partial state and merge
// in O(1); the holistic median buffers its inputs.

#ifndef VASTATS_STATS_AGGREGATE_H_
#define VASTATS_STATS_AGGREGATE_H_

#include <memory>
#include <span>
#include <string_view>

#include "util/status.h"

namespace vastats {

// The aggregate functions the paper considers (§3: sum, average, median,
// variance, standard deviation), plus count/min/max which fall out of the
// same machinery.
enum class AggregateKind {
  kSum,
  kAverage,
  kCount,
  kMin,
  kMax,
  kVariance,  // population variance, matching Eq. (1.1)-style averaging
  kStdDev,
  kMedian,
  // Arbitrary quantile (parameterized by AggregateQuery::quantile_q or the
  // factory argument); kMedian is the 0.5 special case.
  kQuantile,
};

std::string_view AggregateKindToString(AggregateKind kind);

// Parses "sum", "avg"/"average", "median", ... (case-sensitive, lowercase).
Result<AggregateKind> ParseAggregateKind(std::string_view text);

// Incrementally maintained partial aggregate.
class PartialAggregator {
 public:
  virtual ~PartialAggregator() = default;

  // Incorporates one component value.
  virtual void Add(double value) = 0;

  // Merges another partial aggregate of the same kind into this one.
  // Returns InvalidArgument on kind mismatch.
  virtual Status Merge(const PartialAggregator& other) = 0;

  // Number of values absorbed so far.
  virtual int64_t Count() const = 0;

  // Final aggregate value; errors when no value was added (except kCount).
  virtual Result<double> Finalize() const = 0;

  // Fresh empty aggregator of the same kind.
  virtual std::unique_ptr<PartialAggregator> NewEmpty() const = 0;

  virtual AggregateKind kind() const = 0;
};

// Factory for the aggregator implementing `kind`. `quantile_q` applies to
// kQuantile only (clamped to [0, 1]).
std::unique_ptr<PartialAggregator> NewAggregator(AggregateKind kind,
                                                 double quantile_q = 0.5);

// One-shot evaluation of `kind` over `values` (reference semantics used by
// tests and by exhaustive enumeration).
Result<double> EvaluateAggregate(AggregateKind kind,
                                 std::span<const double> values,
                                 double quantile_q = 0.5);

// True when the aggregate decomposes into bounded partial state (everything
// except the holistic median).
bool IsAlgebraic(AggregateKind kind);

// True when per-component min/max envelopes give the aggregate's exact
// viable range (monotone in each component value): sum, average, min, max.
bool IsComponentwiseMonotone(AggregateKind kind);

}  // namespace vastats

#endif  // VASTATS_STATS_AGGREGATE_H_
