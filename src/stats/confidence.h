// Bootstrap confidence intervals: normal, percentile, basic, and BCa
// (bias-corrected and accelerated, Efron 1987 — the method Algorithm 1 uses
// to get tight intervals from small initial uniS samples).

#ifndef VASTATS_STATS_CONFIDENCE_H_
#define VASTATS_STATS_CONFIDENCE_H_

#include <span>
#include <string_view>

#include "util/status.h"

namespace vastats {

struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  // Confidence level 1 - alpha (e.g. 0.90).
  double level = 0.0;

  double Length() const { return hi - lo; }
  bool Contains(double x) const { return x >= lo && x <= hi; }
};

enum class CiMethod { kNormal, kPercentile, kBasic, kBca };

std::string_view CiMethodToString(CiMethod method);

// Normal-approximation interval: theta_hat +- z * sd(replicates).
Result<ConfidenceInterval> NormalCi(std::span<const double> replicates,
                                    double point_estimate, double level);

// Percentile interval: [q_{alpha/2}, q_{1-alpha/2}] of the replicates.
Result<ConfidenceInterval> PercentileCi(std::span<const double> replicates,
                                        double level);

// Basic (reverse-percentile) interval:
// [2*theta_hat - q_{1-alpha/2}, 2*theta_hat - q_{alpha/2}].
Result<ConfidenceInterval> BasicCi(std::span<const double> replicates,
                                   double point_estimate, double level);

// BCa interval. `jackknife_estimates` are the leave-one-out replicates of
// the same statistic on the original data (see stats/jackknife.h).
Result<ConfidenceInterval> BcaCi(std::span<const double> replicates,
                                 double point_estimate, double level,
                                 std::span<const double> jackknife_estimates);

// Dispatches on `method`; `jackknife_estimates` may be empty for non-BCa
// methods.
Result<ConfidenceInterval> ComputeBootstrapCi(
    CiMethod method, std::span<const double> replicates, double point_estimate,
    double level, std::span<const double> jackknife_estimates = {});

}  // namespace vastats

#endif  // VASTATS_STATS_CONFIDENCE_H_
