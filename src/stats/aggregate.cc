#include "stats/aggregate.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "stats/descriptive.h"

namespace vastats {
namespace {

Status KindMismatch(AggregateKind expected, AggregateKind got) {
  return Status::InvalidArgument(
      std::string("cannot merge aggregator of kind ") +
      std::string(AggregateKindToString(got)) + " into " +
      std::string(AggregateKindToString(expected)));
}

Status EmptyAggregate(AggregateKind kind) {
  return Status::FailedPrecondition(
      std::string(AggregateKindToString(kind)) +
      " aggregate over zero values is undefined");
}

// Sum / count / average / variance / stddev share (sum, sum_sq, count)
// partial state.
class MomentAggregator : public PartialAggregator {
 public:
  explicit MomentAggregator(AggregateKind kind) : kind_(kind) {}

  void Add(double value) override {
    sum_ += value;
    sum_sq_ += value * value;
    ++count_;
  }

  Status Merge(const PartialAggregator& other) override {
    if (other.kind() != kind_) return KindMismatch(kind_, other.kind());
    const auto& rhs = static_cast<const MomentAggregator&>(other);
    sum_ += rhs.sum_;
    sum_sq_ += rhs.sum_sq_;
    count_ += rhs.count_;
    return Status::Ok();
  }

  int64_t Count() const override { return count_; }

  Result<double> Finalize() const override {
    if (kind_ == AggregateKind::kCount) return static_cast<double>(count_);
    if (count_ == 0) return EmptyAggregate(kind_);
    const double n = static_cast<double>(count_);
    switch (kind_) {
      case AggregateKind::kSum:
        return sum_;
      case AggregateKind::kAverage:
        return sum_ / n;
      case AggregateKind::kVariance:
        return std::max(0.0, sum_sq_ / n - (sum_ / n) * (sum_ / n));
      case AggregateKind::kStdDev:
        return std::sqrt(
            std::max(0.0, sum_sq_ / n - (sum_ / n) * (sum_ / n)));
      case AggregateKind::kCount:
        return static_cast<double>(count_);  // handled above; kept exhaustive
      case AggregateKind::kMin:
      case AggregateKind::kMax:
      case AggregateKind::kMedian:
      case AggregateKind::kQuantile:
        return Status::Internal("MomentAggregator: unexpected kind");
    }
    return Status::Internal("MomentAggregator: unexpected kind");
  }

  std::unique_ptr<PartialAggregator> NewEmpty() const override {
    return std::make_unique<MomentAggregator>(kind_);
  }

  AggregateKind kind() const override { return kind_; }

 private:
  AggregateKind kind_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  int64_t count_ = 0;
};

class ExtremeAggregator : public PartialAggregator {
 public:
  explicit ExtremeAggregator(AggregateKind kind) : kind_(kind) {}

  void Add(double value) override {
    if (count_ == 0) {
      extreme_ = value;
    } else if (kind_ == AggregateKind::kMin) {
      extreme_ = std::min(extreme_, value);
    } else {
      extreme_ = std::max(extreme_, value);
    }
    ++count_;
  }

  Status Merge(const PartialAggregator& other) override {
    if (other.kind() != kind_) return KindMismatch(kind_, other.kind());
    const auto& rhs = static_cast<const ExtremeAggregator&>(other);
    if (rhs.count_ == 0) return Status::Ok();
    if (count_ == 0) {
      extreme_ = rhs.extreme_;
    } else if (kind_ == AggregateKind::kMin) {
      extreme_ = std::min(extreme_, rhs.extreme_);
    } else {
      extreme_ = std::max(extreme_, rhs.extreme_);
    }
    count_ += rhs.count_;
    return Status::Ok();
  }

  int64_t Count() const override { return count_; }

  Result<double> Finalize() const override {
    if (count_ == 0) return EmptyAggregate(kind_);
    return extreme_;
  }

  std::unique_ptr<PartialAggregator> NewEmpty() const override {
    return std::make_unique<ExtremeAggregator>(kind_);
  }

  AggregateKind kind() const override { return kind_; }

 private:
  AggregateKind kind_;
  double extreme_ = 0.0;
  int64_t count_ = 0;
};

// Holistic aggregates (median / arbitrary quantile): keep the raw values.
class QuantileAggregator : public PartialAggregator {
 public:
  QuantileAggregator(AggregateKind kind, double q) : kind_(kind), q_(q) {}

  void Add(double value) override { values_.push_back(value); }

  Status Merge(const PartialAggregator& other) override {
    if (other.kind() != kind_) {
      return KindMismatch(kind_, other.kind());
    }
    const auto& rhs = static_cast<const QuantileAggregator&>(other);
    values_.insert(values_.end(), rhs.values_.begin(), rhs.values_.end());
    return Status::Ok();
  }

  int64_t Count() const override {
    return static_cast<int64_t>(values_.size());
  }

  Result<double> Finalize() const override {
    if (values_.empty()) return EmptyAggregate(kind_);
    return Quantile(values_, q_);
  }

  std::unique_ptr<PartialAggregator> NewEmpty() const override {
    return std::make_unique<QuantileAggregator>(kind_, q_);
  }

  AggregateKind kind() const override { return kind_; }

 private:
  AggregateKind kind_;
  double q_;
  std::vector<double> values_;
};

}  // namespace

std::string_view AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kAverage:
      return "avg";
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kVariance:
      return "var";
    case AggregateKind::kStdDev:
      return "stddev";
    case AggregateKind::kMedian:
      return "median";
    case AggregateKind::kQuantile:
      return "quantile";
  }
  return "unknown";
}

Result<AggregateKind> ParseAggregateKind(std::string_view text) {
  if (text == "sum") return AggregateKind::kSum;
  if (text == "avg" || text == "average") return AggregateKind::kAverage;
  if (text == "count") return AggregateKind::kCount;
  if (text == "min") return AggregateKind::kMin;
  if (text == "max") return AggregateKind::kMax;
  if (text == "var" || text == "variance") return AggregateKind::kVariance;
  if (text == "stddev" || text == "std") return AggregateKind::kStdDev;
  if (text == "median") return AggregateKind::kMedian;
  if (text == "quantile") return AggregateKind::kQuantile;
  return Status::InvalidArgument("unknown aggregate kind: " +
                                 std::string(text));
}

std::unique_ptr<PartialAggregator> NewAggregator(AggregateKind kind,
                                                 double quantile_q) {
  switch (kind) {
    case AggregateKind::kSum:
    case AggregateKind::kAverage:
    case AggregateKind::kCount:
    case AggregateKind::kVariance:
    case AggregateKind::kStdDev:
      return std::make_unique<MomentAggregator>(kind);
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return std::make_unique<ExtremeAggregator>(kind);
    case AggregateKind::kMedian:
      return std::make_unique<QuantileAggregator>(kind, 0.5);
    case AggregateKind::kQuantile:
      return std::make_unique<QuantileAggregator>(
          kind, std::clamp(quantile_q, 0.0, 1.0));
  }
  return nullptr;
}

Result<double> EvaluateAggregate(AggregateKind kind,
                                 std::span<const double> values,
                                 double quantile_q) {
  const std::unique_ptr<PartialAggregator> agg =
      NewAggregator(kind, quantile_q);
  for (const double v : values) agg->Add(v);
  return agg->Finalize();
}

bool IsAlgebraic(AggregateKind kind) {
  return kind != AggregateKind::kMedian && kind != AggregateKind::kQuantile;
}

bool IsComponentwiseMonotone(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kSum:
    case AggregateKind::kAverage:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
    case AggregateKind::kMedian:
    case AggregateKind::kQuantile:
      return true;
    case AggregateKind::kCount:
    case AggregateKind::kVariance:
    case AggregateKind::kStdDev:
      return false;
  }
  return false;
}

}  // namespace vastats
