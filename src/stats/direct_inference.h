// Direct-inference confidence intervals — the baseline Table 3 compares
// bootstrapping against.
//
// "Direct inference" derives an interval from the sample and a theoretical
// bound, without resampling:
//  * kChebyshev (the paper's distribution-free baseline, driven by the
//    "theoretical upper-bound of variance"): P(|Xbar - mu| >= k*s/sqrt(n))
//    <= 1/k^2 gives a level-(1-alpha) interval of half-width
//    s / sqrt(alpha * n).
//  * kClt: the classical normal-approximation interval z * s / sqrt(n).
//
// Variance and skewness get their classical direct intervals (chi-square and
// asymptotic-normal respectively) for completeness.

#ifndef VASTATS_STATS_DIRECT_INFERENCE_H_
#define VASTATS_STATS_DIRECT_INFERENCE_H_

#include "stats/confidence.h"
#include "stats/descriptive.h"
#include "util/status.h"

namespace vastats {

enum class DirectMethod { kChebyshev, kClt };

// CI for the mean from summary statistics of a sample.
Result<ConfidenceInterval> DirectMeanCi(const Moments& moments, double level,
                                        DirectMethod method);

// Chi-square CI for the variance (assumes approximate normality; used as the
// classical textbook baseline).
Result<ConfidenceInterval> DirectVarianceCi(const Moments& moments,
                                            double level);

// Asymptotic-normal CI for skewness with
// SE = sqrt(6n(n-1) / ((n-2)(n+1)(n+3))).
Result<ConfidenceInterval> DirectSkewnessCi(const Moments& moments,
                                            double level);

// The sample size direct inference would need for its mean CI to reach
// `target_length` — the quantity behind Table 3's saving ratio
// s_r = |S_di| / |S_uniS|.
Result<double> DirectMeanRequiredSampleSize(double std_dev, double level,
                                            double target_length,
                                            DirectMethod method);

}  // namespace vastats

#endif  // VASTATS_STATS_DIRECT_INFERENCE_H_
