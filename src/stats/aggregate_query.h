// An aggregate query over a set of components, e.g. "Sum(Temp) for all
// (district, month) pairs in BC during June 2006". The component list is the
// set C of data points the aggregate requires; which source supplies each
// component is decided at sampling time.

#ifndef VASTATS_STATS_AGGREGATE_QUERY_H_
#define VASTATS_STATS_AGGREGATE_QUERY_H_

#include <string>
#include <vector>

#include "datagen/component.h"
#include "stats/aggregate.h"
#include "util/status.h"

namespace vastats {

struct AggregateQuery {
  std::string name;  // label used in experiment output
  AggregateKind kind = AggregateKind::kSum;
  std::vector<ComponentId> components;
  // Quantile level for kind == kQuantile (ignored otherwise).
  double quantile_q = 0.5;

  Status Validate() const {
    if (components.empty()) {
      return Status::InvalidArgument("query '" + name +
                                     "' has no components");
    }
    if (!(quantile_q >= 0.0 && quantile_q <= 1.0)) {
      return Status::InvalidArgument("query '" + name +
                                     "' has quantile_q outside [0,1]");
    }
    return Status::Ok();
  }
};

// Builds a query over components [first_id, first_id + count).
AggregateQuery MakeRangeQuery(std::string name, AggregateKind kind,
                              ComponentId first_id, int count);

}  // namespace vastats

#endif  // VASTATS_STATS_AGGREGATE_QUERY_H_
