// Jackknife (leave-one-out) resampling.
//
// Used by the BCa confidence-interval method (Efron 1987), which needs the
// acceleration constant a-hat computed from leave-one-out replicates of the
// point estimator. Moment statistics (mean/variance/skewness) have an O(n)
// fast path based on raw power sums; arbitrary statistics fall back to the
// O(n^2) generic path.

#ifndef VASTATS_STATS_JACKKNIFE_H_
#define VASTATS_STATS_JACKKNIFE_H_

#include <functional>
#include <span>
#include <vector>

#include "util/status.h"

namespace vastats {

// A statistic evaluated over a sample (e.g. mean, variance, skewness).
using StatisticFn = std::function<double(std::span<const double>)>;

// The moment statistics the paper reports (Table 2 / Algorithm 1).
enum class MomentStatistic { kMean, kVariance, kStdDev, kSkewness };

// Evaluates a moment statistic over `values` (variance is unbiased,
// skewness is gamma_1); convenience for building StatisticFn closures.
double EvaluateMomentStatistic(MomentStatistic statistic,
                               std::span<const double> values);

// Returns a StatisticFn wrapper for `statistic`.
StatisticFn MomentStatisticFn(MomentStatistic statistic);

// Leave-one-out replicates of an arbitrary statistic. O(n^2) evaluations of
// O(n) work each. Requires at least 2 observations.
Result<std::vector<double>> JackknifeGeneric(std::span<const double> values,
                                             const StatisticFn& statistic);

// Leave-one-out replicates of a moment statistic in O(n) total, using raw
// power sums. Requires at least 3 observations (4 for skewness).
Result<std::vector<double>> JackknifeMoment(std::span<const double> values,
                                            MomentStatistic statistic);

// BCa acceleration a-hat = sum((tbar - ti)^3) / (6 * (sum((tbar - ti)^2))^1.5)
// over the leave-one-out replicates; 0 when the replicates are constant.
Result<double> JackknifeAcceleration(
    std::span<const double> jackknife_estimates);

}  // namespace vastats

#endif  // VASTATS_STATS_JACKKNIFE_H_
