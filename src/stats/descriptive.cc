#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace vastats {

void Moments::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double n1 = static_cast<double>(count_);
  ++count_;
  const double n = static_cast<double>(count_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void Moments::Merge(const Moments& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double merged_mean = mean_ + delta * nb / n;
  const double merged_m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double merged_m3 = m3_ + other.m3_ +
                           delta3 * na * nb * (na - nb) / (n * n) +
                           3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double merged_m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = merged_mean;
  m2_ = merged_m2;
  m3_ = merged_m3;
  m4_ = merged_m4;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Moments::SampleVariance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Moments::PopulationVariance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double Moments::SampleStdDev() const { return std::sqrt(SampleVariance()); }

double Moments::Skewness() const {
  if (count_ < 3) return 0.0;
  const double n = static_cast<double>(count_);
  const double variance = m2_ / n;
  if (variance <= 0.0) return 0.0;
  return (m3_ / n) / std::pow(variance, 1.5);
}

double Moments::ExcessKurtosis() const {
  if (count_ < 4) return 0.0;
  const double n = static_cast<double>(count_);
  const double variance = m2_ / n;
  if (variance <= 0.0) return 0.0;
  return (m4_ / n) / (variance * variance) - 3.0;
}

Moments ComputeMoments(std::span<const double> values) {
  Moments moments;
  for (const double v : values) moments.Add(v);
  return moments;
}

Result<double> QuantileSorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) {
    return Status::InvalidArgument("Quantile of empty sample");
  }
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("Quantile requires q in [0,1]");
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Result<double> Quantile(std::span<const double> values, double q) {
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  return QuantileSorted(copy, q);
}

Result<double> Median(std::span<const double> values) {
  return Quantile(values, 0.5);
}

Result<SampleSummary> Summarize(std::span<const double> values) {
  if (values.empty()) {
    return Status::InvalidArgument("Summarize of empty sample");
  }
  const Moments moments = ComputeMoments(values);
  SampleSummary summary;
  summary.count = moments.count();
  summary.mean = moments.mean();
  summary.variance = moments.SampleVariance();
  summary.std_dev = moments.SampleStdDev();
  summary.skewness = moments.Skewness();
  summary.excess_kurtosis = moments.ExcessKurtosis();
  summary.min = moments.min();
  summary.max = moments.max();
  VASTATS_ASSIGN_OR_RETURN(summary.median, Median(values));
  return summary;
}

}  // namespace vastats
