#include "stats/bootstrap.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "stats/descriptive.h"
#include "util/thread_pool.h"

namespace vastats {
namespace {

// Evaluates replicates[s] = statistic(set_s) for s in [0, num_sets), either
// inline or as pool tasks. `evaluate` must be safe to run concurrently for
// distinct s (it only reads shared data and writes its own slot).
Result<std::vector<double>> EvaluateReplicates(
    int num_sets, ThreadPool* pool, MetricsRegistry* metrics,
    FlightRecorder* recorder, const std::function<double(int)>& evaluate) {
  std::vector<double> replicates(static_cast<size_t>(num_sets));
  auto task = [&](int s) -> Status {
    replicates[static_cast<size_t>(s)] = evaluate(s);
    return Status::Ok();
  };
  if (pool != nullptr) {
    PoolMetricsObserver pool_observer(metrics, recorder);
    VASTATS_RETURN_IF_ERROR(pool->ParallelFor(num_sets, task, &pool_observer));
  } else {
    for (int s = 0; s < num_sets; ++s) {
      VASTATS_RETURN_IF_ERROR(task(s));
    }
  }
  return replicates;
}

}  // namespace

Status BootstrapOptions::Validate() const {
  if (num_sets <= 0) {
    return Status::InvalidArgument("BootstrapOptions.num_sets must be > 0");
  }
  if (set_size < 0) {
    return Status::InvalidArgument("BootstrapOptions.set_size must be >= 0");
  }
  return Status::Ok();
}

Result<std::vector<std::vector<int>>> BootstrapIndexSets(
    int data_size, const BootstrapOptions& options, Rng& rng) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (data_size <= 0) {
    return Status::InvalidArgument("BootstrapIndexSets requires data_size > 0");
  }
  const int set_size = options.set_size > 0 ? options.set_size : data_size;
  std::vector<std::vector<int>> index_sets;
  index_sets.reserve(static_cast<size_t>(options.num_sets));
  for (int s = 0; s < options.num_sets; ++s) {
    index_sets.push_back(rng.ResampleIndices(data_size, set_size));
  }
  return index_sets;
}

Result<std::vector<std::vector<double>>> BootstrapSets(
    std::span<const double> data, const BootstrapOptions& options, Rng& rng) {
  if (data.empty()) {
    return Status::InvalidArgument("BootstrapSets requires non-empty data");
  }
  VASTATS_ASSIGN_OR_RETURN(
      const std::vector<std::vector<int>> index_sets,
      BootstrapIndexSets(static_cast<int>(data.size()), options, rng));
  std::vector<std::vector<double>> sets;
  sets.reserve(index_sets.size());
  for (const std::vector<int>& indices : index_sets) {
    std::vector<double> set(indices.size());
    for (size_t i = 0; i < indices.size(); ++i) {
      set[i] = data[static_cast<size_t>(indices[i])];
    }
    sets.push_back(std::move(set));
  }
  return sets;
}

Result<std::vector<double>> BootstrapReplicates(
    std::span<const double> data, const StatisticFn& statistic,
    const BootstrapOptions& options, Rng& rng, ThreadPool* pool,
    MetricsRegistry* metrics, FlightRecorder* recorder) {
  if (data.empty()) {
    return Status::InvalidArgument(
        "BootstrapReplicates requires non-empty data");
  }
  VASTATS_ASSIGN_OR_RETURN(
      const std::vector<std::vector<int>> index_sets,
      BootstrapIndexSets(static_cast<int>(data.size()), options, rng));
  return ReplicatesFromIndexSets(data, index_sets, statistic, pool, metrics,
                                 recorder);
}

Result<std::vector<double>> ReplicatesFromSets(
    std::span<const std::vector<double>> sets, const StatisticFn& statistic,
    ThreadPool* pool, MetricsRegistry* metrics, FlightRecorder* recorder) {
  if (sets.empty()) {
    return Status::InvalidArgument("ReplicatesFromSets requires >= 1 set");
  }
  for (const std::vector<double>& set : sets) {
    if (set.empty()) {
      return Status::InvalidArgument("ReplicatesFromSets: empty sample set");
    }
  }
  return EvaluateReplicates(
      static_cast<int>(sets.size()), pool, metrics, recorder,
      [&](int s) { return statistic(sets[static_cast<size_t>(s)]); });
}

Result<std::vector<double>> ReplicatesFromIndexSets(
    std::span<const double> data,
    std::span<const std::vector<int>> index_sets, const StatisticFn& statistic,
    ThreadPool* pool, MetricsRegistry* metrics, FlightRecorder* recorder) {
  if (data.empty()) {
    return Status::InvalidArgument(
        "ReplicatesFromIndexSets requires non-empty data");
  }
  if (index_sets.empty()) {
    return Status::InvalidArgument(
        "ReplicatesFromIndexSets requires >= 1 index set");
  }
  for (const std::vector<int>& indices : index_sets) {
    if (indices.empty()) {
      return Status::InvalidArgument(
          "ReplicatesFromIndexSets: empty index set");
    }
    for (const int index : indices) {
      if (index < 0 || static_cast<size_t>(index) >= data.size()) {
        return Status::OutOfRange(
            "ReplicatesFromIndexSets: index outside the data");
      }
    }
  }
  return EvaluateReplicates(
      static_cast<int>(index_sets.size()), pool, metrics, recorder, [&](int s) {
        const std::vector<int>& indices = index_sets[static_cast<size_t>(s)];
        // Gathered into a task-local buffer so concurrent evaluations never
        // share scratch space.
        std::vector<double> buffer(indices.size());
        for (size_t i = 0; i < indices.size(); ++i) {
          buffer[i] = data[static_cast<size_t>(indices[i])];
        }
        return statistic(buffer);
      });
}

Result<double> Bag(std::span<const double> replicates,
                   BagAggregator aggregator) {
  if (replicates.empty()) {
    return Status::InvalidArgument("Bag requires >= 1 replicate");
  }
  switch (aggregator) {
    case BagAggregator::kMean:
      return ComputeMoments(replicates).mean();
    case BagAggregator::kMedian:
      return Median(replicates);
  }
  return Status::Internal("unknown BagAggregator");
}

}  // namespace vastats
