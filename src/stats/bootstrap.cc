#include "stats/bootstrap.h"

#include "stats/descriptive.h"

namespace vastats {

Status BootstrapOptions::Validate() const {
  if (num_sets <= 0) {
    return Status::InvalidArgument("BootstrapOptions.num_sets must be > 0");
  }
  if (set_size < 0) {
    return Status::InvalidArgument("BootstrapOptions.set_size must be >= 0");
  }
  return Status::Ok();
}

Result<std::vector<std::vector<double>>> BootstrapSets(
    std::span<const double> data, const BootstrapOptions& options, Rng& rng) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (data.empty()) {
    return Status::InvalidArgument("BootstrapSets requires non-empty data");
  }
  const int n = static_cast<int>(data.size());
  const int set_size = options.set_size > 0 ? options.set_size : n;
  std::vector<std::vector<double>> sets;
  sets.reserve(static_cast<size_t>(options.num_sets));
  for (int s = 0; s < options.num_sets; ++s) {
    std::vector<double> set(static_cast<size_t>(set_size));
    for (double& value : set) {
      value = data[static_cast<size_t>(rng.UniformInt(0, n - 1))];
    }
    sets.push_back(std::move(set));
  }
  return sets;
}

Result<std::vector<double>> BootstrapReplicates(std::span<const double> data,
                                                const StatisticFn& statistic,
                                                const BootstrapOptions& options,
                                                Rng& rng) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (data.empty()) {
    return Status::InvalidArgument(
        "BootstrapReplicates requires non-empty data");
  }
  const int n = static_cast<int>(data.size());
  const int set_size = options.set_size > 0 ? options.set_size : n;
  std::vector<double> buffer(static_cast<size_t>(set_size));
  std::vector<double> replicates(static_cast<size_t>(options.num_sets));
  for (int s = 0; s < options.num_sets; ++s) {
    for (double& value : buffer) {
      value = data[static_cast<size_t>(rng.UniformInt(0, n - 1))];
    }
    replicates[static_cast<size_t>(s)] = statistic(buffer);
  }
  return replicates;
}

Result<std::vector<double>> ReplicatesFromSets(
    std::span<const std::vector<double>> sets, const StatisticFn& statistic) {
  if (sets.empty()) {
    return Status::InvalidArgument("ReplicatesFromSets requires >= 1 set");
  }
  std::vector<double> replicates;
  replicates.reserve(sets.size());
  for (const std::vector<double>& set : sets) {
    if (set.empty()) {
      return Status::InvalidArgument("ReplicatesFromSets: empty sample set");
    }
    replicates.push_back(statistic(set));
  }
  return replicates;
}

Result<double> Bag(std::span<const double> replicates,
                   BagAggregator aggregator) {
  if (replicates.empty()) {
    return Status::InvalidArgument("Bag requires >= 1 replicate");
  }
  switch (aggregator) {
    case BagAggregator::kMean:
      return ComputeMoments(replicates).mean();
    case BagAggregator::kMedian:
      return Median(replicates);
  }
  return Status::Internal("unknown BagAggregator");
}

}  // namespace vastats
