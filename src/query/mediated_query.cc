#include "query/mediated_query.h"

#include <string>

namespace vastats {
namespace {

// Iterates days first_day..last_day inclusive via ordinals.
Result<std::vector<CivilDay>> ExpandDays(const CivilDay& first,
                                         const CivilDay& last) {
  const int64_t begin = first.Ordinal();
  const int64_t end = last.Ordinal();
  if (begin > end) {
    return Status::InvalidArgument("first_day is after last_day");
  }
  if (end - begin > 100'000) {
    return Status::InvalidArgument("day range too large (> 100000 days)");
  }
  std::vector<CivilDay> days;
  days.reserve(static_cast<size_t>(end - begin + 1));
  CivilDay cursor = first;
  for (int64_t ordinal = begin; ordinal <= end; ++ordinal) {
    days.push_back(cursor);
    // Advance one civil day.
    static const int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30,
                                         31, 31, 30, 31, 30, 31};
    const bool leap = (cursor.year % 4 == 0 && cursor.year % 100 != 0) ||
                      cursor.year % 400 == 0;
    int month_days = kDaysInMonth[cursor.month - 1];
    if (cursor.month == 2 && leap) month_days = 29;
    if (++cursor.day > month_days) {
      cursor.day = 1;
      if (++cursor.month > 12) {
        cursor.month = 1;
        ++cursor.year;
      }
    }
  }
  return days;
}

}  // namespace

Result<PlannedQuery> PlanMediatedQuery(const MediatedSchema& schema,
                                       const SourceSet& sources,
                                       const MediatedQuery& spec,
                                       bool require_full_coverage) {
  VASTATS_ASSIGN_OR_RETURN(const int attribute,
                           schema.ResolveAttribute(spec.attribute));

  std::vector<int> entities;
  if (spec.entities.empty()) {
    for (int e = 0; e < static_cast<int>(schema.entities().size()); ++e) {
      entities.push_back(e);
    }
    if (entities.empty()) {
      return Status::InvalidArgument("schema declares no entities");
    }
  } else {
    entities.reserve(spec.entities.size());
    for (const std::string& name : spec.entities) {
      VASTATS_ASSIGN_OR_RETURN(const int entity,
                               schema.ResolveEntity(name));
      entities.push_back(entity);
    }
  }
  VASTATS_ASSIGN_OR_RETURN(const std::vector<CivilDay> days,
                           ExpandDays(spec.first_day, spec.last_day));

  PlannedQuery plan;
  plan.query.name = spec.name;
  plan.query.kind = spec.kind;
  for (const int entity : entities) {
    for (const CivilDay& day : days) {
      const ComponentId component =
          schema.ComponentFor(attribute, entity, day);
      if (sources.CoverageCount(component) > 0) {
        plan.query.components.push_back(component);
      } else {
        plan.uncovered.push_back(component);
      }
    }
  }
  if (!plan.uncovered.empty() && require_full_coverage) {
    return Status::FailedPrecondition(
        "plan has " + std::to_string(plan.uncovered.size()) +
        " uncovered components (e.g. component " +
        std::to_string(plan.uncovered.front()) + ")");
  }
  if (plan.query.components.empty()) {
    return Status::FailedPrecondition(
        "no covered components match the query spec");
  }
  return plan;
}

}  // namespace vastats
