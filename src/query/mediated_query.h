// Mediated-schema query planning: phrase an aggregate against the mediated
// vocabulary ("Sum of temperature over {Vancouver, Burnaby, Surrey} for
// June 2006") and derive the concrete component list — the decomposition
// step of the decomposition-aggregation queries of [25] that the paper's
// system sits on.

#ifndef VASTATS_QUERY_MEDIATED_QUERY_H_
#define VASTATS_QUERY_MEDIATED_QUERY_H_

#include <string>
#include <vector>

#include "integration/mediated_schema.h"
#include "datagen/source_set.h"
#include "stats/aggregate_query.h"
#include "util/status.h"

namespace vastats {

struct MediatedQuery {
  std::string name;
  AggregateKind kind = AggregateKind::kSum;
  // Canonical (or aliased) attribute, e.g. "temperature".
  std::string attribute;
  // Canonical (or aliased) entities; empty = every declared entity.
  std::vector<std::string> entities;
  // Inclusive day range.
  CivilDay first_day;
  CivilDay last_day;
};

struct PlannedQuery {
  AggregateQuery query;
  // Components the sources cannot cover (dropped from `query` when
  // `require_full_coverage` is false).
  std::vector<ComponentId> uncovered;
};

// Expands `spec` into one component per (entity, day) pair and checks
// coverage against `sources`. With `require_full_coverage` (default) any
// uncovered component fails the plan; otherwise uncovered components are
// dropped and reported, so the aggregate runs over the covered subset.
Result<PlannedQuery> PlanMediatedQuery(const MediatedSchema& schema,
                                       const SourceSet& sources,
                                       const MediatedQuery& spec,
                                       bool require_full_coverage = true);

}  // namespace vastats

#endif  // VASTATS_QUERY_MEDIATED_QUERY_H_
