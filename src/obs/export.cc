#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <vector>

#include "util/csv.h"
#include "util/json_writer.h"

namespace vastats {
namespace {

// Shortest rendering of a double that parses back exactly.
std::string RenderDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  double parsed = 0.0;
  if (std::sscanf(buf, "%lf", &parsed) != 1 || parsed != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

std::string RenderUint64(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

// Prometheus' text format spells non-finite values `NaN`, `+Inf`, `-Inf`
// (printf would emit `nan`/`inf`, which scrapers reject).
std::string RenderPrometheusDouble(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  return RenderDouble(value);
}

// The quantiles surfaced alongside histogram buckets (summary-style).
constexpr double kSummaryQuantiles[] = {0.5, 0.9, 0.99};
constexpr const char* kSummaryQuantileLabels[] = {"0.5", "0.9", "0.99"};
constexpr const char* kSummaryQuantileKeys[] = {"p50", "p90", "p99"};

Status CheckName(std::string_view kind, std::string_view name) {
  if (!IsSnakeCaseName(name)) {
    return Status::InvalidArgument(std::string(kind) + " name `" +
                                   std::string(name) +
                                   "` is not snake_case ([a-z][a-z0-9_]*)");
  }
  return Status::Ok();
}

void EmitSpan(JsonWriter& json, const Trace& trace,
              const std::vector<std::vector<int>>& children, int id) {
  const SpanRecord& span = trace.spans()[static_cast<size_t>(id)];
  json.BeginObject();
  json.KeyValue("name", std::string_view(span.name));
  json.KeyValue("start_seconds", span.start_seconds);
  json.KeyValue("elapsed_seconds", span.elapsed_seconds);
  if (!span.annotations.empty()) {
    json.Key("annotations");
    json.BeginObject();
    for (const SpanAnnotation& annotation : span.annotations) {
      json.KeyValue(annotation.key, std::string_view(annotation.value));
    }
    json.EndObject();
  }
  const std::vector<int>& kids = children[static_cast<size_t>(id)];
  if (!kids.empty()) {
    json.Key("children");
    json.BeginArray();
    for (const int child : kids) EmitSpan(json, trace, children, child);
    json.EndArray();
  }
  json.EndObject();
}

}  // namespace

bool IsSnakeCaseName(std::string_view name) {
  if (name.empty()) return false;
  if (!(name[0] >= 'a' && name[0] <= 'z')) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

Result<std::string> TraceToJson(const Trace& trace) {
  const std::span<const SpanRecord> spans = trace.spans();
  const size_t n = spans.size();
  std::vector<std::vector<int>> children(n);
  std::vector<int> roots;
  for (size_t i = 0; i < n; ++i) {
    const SpanRecord& span = spans[i];
    VASTATS_RETURN_IF_ERROR(CheckName("span", span.name));
    if (span.open) {
      return Status::FailedPrecondition("span `" + span.name +
                                        "` is still open; close every span "
                                        "before exporting the trace");
    }
    if (span.parent < 0) {
      roots.push_back(static_cast<int>(i));
    } else {
      children[static_cast<size_t>(span.parent)].push_back(
          static_cast<int>(i));
    }
  }
  JsonWriter json;
  json.BeginObject();
  json.Key("spans");
  json.BeginArray();
  for (const int root : roots) EmitSpan(json, trace, children, root);
  json.EndArray();
  json.EndObject();
  return std::move(json).Finish();
}

Result<std::string> SnapshotToJson(const MetricsSnapshot& snapshot) {
  JsonWriter json;
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const CounterSample& sample : snapshot.counters) {
    VASTATS_RETURN_IF_ERROR(CheckName("counter", sample.name));
    json.KeyValue(sample.name, static_cast<int64_t>(sample.value));
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const GaugeSample& sample : snapshot.gauges) {
    VASTATS_RETURN_IF_ERROR(CheckName("gauge", sample.name));
    json.KeyValue(sample.name, sample.value);
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const HistogramSample& sample : snapshot.histograms) {
    VASTATS_RETURN_IF_ERROR(CheckName("histogram", sample.name));
    json.Key(sample.name);
    json.BeginObject();
    json.Key("upper_bounds");
    json.BeginArray();
    for (const double bound : sample.upper_bounds) json.Number(bound);
    json.EndArray();
    json.Key("bucket_counts");
    json.BeginArray();
    for (const uint64_t count : sample.bucket_counts) {
      json.Int(static_cast<int64_t>(count));
    }
    json.EndArray();
    json.KeyValue("count", static_cast<int64_t>(sample.count));
    json.KeyValue("sum", sample.sum);
    // Estimated quantiles; null when the histogram is empty (JSON has no
    // NaN).
    for (size_t qi = 0; qi < std::size(kSummaryQuantiles); ++qi) {
      json.KeyValue(kSummaryQuantileKeys[qi],
                    sample.EstimateQuantile(kSummaryQuantiles[qi]));
    }
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return std::move(json).Finish();
}

Result<std::string> SnapshotToCsv(const MetricsSnapshot& snapshot) {
  std::vector<CsvRow> rows;
  rows.push_back(CsvRow{"kind", "name", "field", "value"});
  for (const CounterSample& sample : snapshot.counters) {
    VASTATS_RETURN_IF_ERROR(CheckName("counter", sample.name));
    rows.push_back(
        CsvRow{"counter", sample.name, "value", RenderUint64(sample.value)});
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    VASTATS_RETURN_IF_ERROR(CheckName("gauge", sample.name));
    rows.push_back(
        CsvRow{"gauge", sample.name, "value", RenderDouble(sample.value)});
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    VASTATS_RETURN_IF_ERROR(CheckName("histogram", sample.name));
    for (size_t b = 0; b < sample.bucket_counts.size(); ++b) {
      const std::string field =
          b < sample.upper_bounds.size()
              ? "le_" + RenderDouble(sample.upper_bounds[b])
              : std::string("le_inf");
      rows.push_back(CsvRow{"histogram", sample.name, field,
                            RenderUint64(sample.bucket_counts[b])});
    }
    rows.push_back(CsvRow{"histogram", sample.name, "count",
                          RenderUint64(sample.count)});
    rows.push_back(
        CsvRow{"histogram", sample.name, "sum", RenderDouble(sample.sum)});
  }
  return FormatCsv(rows);
}

Result<std::string> SnapshotToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSample& sample : snapshot.counters) {
    VASTATS_RETURN_IF_ERROR(CheckName("counter", sample.name));
    out += "# TYPE " + sample.name + " counter\n";
    out += sample.name + " " + RenderUint64(sample.value) + "\n";
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    VASTATS_RETURN_IF_ERROR(CheckName("gauge", sample.name));
    out += "# TYPE " + sample.name + " gauge\n";
    out += sample.name + " " + RenderPrometheusDouble(sample.value) + "\n";
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    VASTATS_RETURN_IF_ERROR(CheckName("histogram", sample.name));
    out += "# TYPE " + sample.name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < sample.bucket_counts.size(); ++b) {
      cumulative += sample.bucket_counts[b];
      const std::string le = b < sample.upper_bounds.size()
                                 ? RenderPrometheusDouble(sample.upper_bounds[b])
                                 : std::string("+Inf");
      out += sample.name + "_bucket{le=\"" + le + "\"} " +
             RenderUint64(cumulative) + "\n";
    }
    // Summary-style estimated quantiles next to the buckets. Prometheus'
    // format spells an unanswerable quantile (empty histogram) as NaN.
    for (size_t qi = 0; qi < std::size(kSummaryQuantiles); ++qi) {
      out += sample.name + "{quantile=\"" +
             std::string(kSummaryQuantileLabels[qi]) + "\"} " +
             RenderPrometheusDouble(
                 sample.EstimateQuantile(kSummaryQuantiles[qi])) +
             "\n";
    }
    out += sample.name + "_sum " + RenderPrometheusDouble(sample.sum) + "\n";
    out += sample.name + "_count " + RenderUint64(sample.count) + "\n";
  }
  return out;
}

namespace {

// Microseconds since the recorder epoch — the trace-event time unit.
double ToTraceMicros(double seconds) { return seconds * 1e6; }

std::string TrackName(uint32_t track) {
  return track == 0 ? std::string("main")
                    : "worker_" + std::to_string(track);
}

std::string_view BreakerStateName(int state) {
  // Mirrors datagen's BreakerState enumerators; obs sits below datagen in
  // the layer DAG, so the spelling is duplicated here instead of included.
  switch (state) {
    case 0:
      return "closed";
    case 1:
      return "open";
    case 2:
      return "half_open";
    default:
      return "unknown";
  }
}

// Emits the common head of one trace event. The caller finishes the object.
void BeginTraceEvent(JsonWriter& json, std::string_view name,
                     std::string_view phase, uint32_t track, double ts_micros) {
  json.BeginObject();
  json.KeyValue("name", name);
  json.KeyValue("ph", phase);
  json.KeyValue("ts", ts_micros);
  json.KeyValue("pid", int64_t{1});
  json.KeyValue("tid", static_cast<int64_t>(track));
}

}  // namespace

Result<std::string> ExportChromeTrace(const FlightSnapshot& snapshot) {
  JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents");
  json.BeginArray();

  // Thread-name metadata, one per track, so Perfetto labels the lanes.
  for (int track = 0; track < snapshot.num_tracks; ++track) {
    json.BeginObject();
    json.KeyValue("name", "thread_name");
    json.KeyValue("ph", "M");
    json.KeyValue("pid", int64_t{1});
    json.KeyValue("tid", static_cast<int64_t>(track));
    json.Key("args");
    json.BeginObject();
    json.KeyValue("name",
                  std::string_view(TrackName(static_cast<uint32_t>(track))));
    json.EndObject();
    json.EndObject();
  }

  // Span begin/end matching is per track: events arrive sorted by
  // (track, seq), so a stack per track pairs each end with the innermost
  // open begin of the same name id. Orphans (the partner record was
  // overwritten by a ring wrap, or the span is still open) are skipped.
  struct OpenSpan {
    uint32_t name_id = 0;
    double begin_seconds = 0.0;
  };
  std::vector<OpenSpan> open_stack;
  uint32_t stack_track = 0;
  uint64_t orphaned = 0;

  for (const EventRecord& event : snapshot.events) {
    if (event.track != stack_track) {
      orphaned += open_stack.size();
      open_stack.clear();
      stack_track = event.track;
    }
    switch (event.kind) {
      case FlightEventKind::kSpanBegin:
        open_stack.push_back(OpenSpan{event.name_id, event.time_seconds});
        break;
      case FlightEventKind::kSpanEnd: {
        // Pop to the matching begin; mismatched names mean the begin was
        // lost to a wrap, so everything above it is orphaned too.
        int match = -1;
        for (int i = static_cast<int>(open_stack.size()) - 1; i >= 0; --i) {
          if (open_stack[static_cast<size_t>(i)].name_id == event.name_id) {
            match = i;
            break;
          }
        }
        if (match < 0) {
          ++orphaned;
          break;
        }
        const OpenSpan& begin = open_stack[static_cast<size_t>(match)];
        BeginTraceEvent(json, snapshot.NameOf(event), "X", event.track,
                        ToTraceMicros(begin.begin_seconds));
        json.KeyValue("dur",
                      ToTraceMicros(event.time_seconds - begin.begin_seconds));
        json.KeyValue("cat", "span");
        json.EndObject();
        orphaned += open_stack.size() - static_cast<size_t>(match) - 1;
        open_stack.resize(static_cast<size_t>(match));
        break;
      }
      case FlightEventKind::kCounterSample:
      case FlightEventKind::kGaugeSample: {
        BeginTraceEvent(json, snapshot.NameOf(event), "C", event.track,
                        ToTraceMicros(event.time_seconds));
        json.Key("args");
        json.BeginObject();
        json.KeyValue("value", event.value);
        json.EndObject();
        json.EndObject();
        break;
      }
      case FlightEventKind::kTaskEnqueue: {
        BeginTraceEvent(json, snapshot.NameOf(event), "i", event.track,
                        ToTraceMicros(event.time_seconds));
        json.KeyValue("s", "t");
        json.KeyValue("cat", "pool");
        json.Key("args");
        json.BeginObject();
        json.KeyValue("num_tasks", static_cast<int64_t>(event.aux));
        json.KeyValue("queue_depth", event.value);
        json.EndObject();
        json.EndObject();
        break;
      }
      case FlightEventKind::kTaskDequeue: {
        // The claim happened at `time_seconds` after `value` seconds of
        // queue wait: render the wait as the interval leading up to it.
        BeginTraceEvent(json, "pool_queue_wait", "X", event.track,
                        ToTraceMicros(event.time_seconds - event.value));
        json.KeyValue("dur", ToTraceMicros(event.value));
        json.KeyValue("cat", "pool");
        json.Key("args");
        json.BeginObject();
        json.KeyValue("task_index", static_cast<int64_t>(event.aux));
        json.EndObject();
        json.EndObject();
        break;
      }
      case FlightEventKind::kTaskComplete: {
        BeginTraceEvent(json, "pool_task_run", "X", event.track,
                        ToTraceMicros(event.time_seconds - event.value));
        json.KeyValue("dur", ToTraceMicros(event.value));
        json.KeyValue("cat", "pool");
        json.Key("args");
        json.BeginObject();
        json.KeyValue("task_index", static_cast<int64_t>(event.aux));
        json.EndObject();
        json.EndObject();
        break;
      }
      case FlightEventKind::kBreakerTransition: {
        int source = 0;
        int from_state = 0;
        int to_state = 0;
        UnpackBreakerTransition(event.aux, &source, &from_state, &to_state);
        BeginTraceEvent(json, "breaker_transition", "i", event.track,
                        ToTraceMicros(event.time_seconds));
        json.KeyValue("s", "g");
        json.KeyValue("cat", "breaker");
        json.Key("args");
        json.BeginObject();
        json.KeyValue("source", static_cast<int64_t>(source));
        json.KeyValue("from", BreakerStateName(from_state));
        json.KeyValue("to", BreakerStateName(to_state));
        json.KeyValue("virtual_ms", event.value);
        json.EndObject();
        json.EndObject();
        break;
      }
      case FlightEventKind::kSchedulerAdmit:
      case FlightEventKind::kSchedulerReject: {
        // The instant marks the decision; the interned name is the
        // in-flight gauge's, so a paired "C" sample draws the admission
        // level as a counter track right under the instants.
        const bool admit = event.kind == FlightEventKind::kSchedulerAdmit;
        BeginTraceEvent(json, admit ? "scheduler_admit" : "scheduler_reject",
                        "i", event.track, ToTraceMicros(event.time_seconds));
        json.KeyValue("s", "t");
        json.KeyValue("cat", "scheduler");
        json.Key("args");
        json.BeginObject();
        json.KeyValue("query_fingerprint", static_cast<int64_t>(event.aux));
        json.KeyValue(admit ? "in_flight" : "queued_waiters", event.value);
        json.EndObject();
        json.EndObject();
        if (admit) {
          BeginTraceEvent(json, snapshot.NameOf(event), "C", event.track,
                          ToTraceMicros(event.time_seconds));
          json.Key("args");
          json.BeginObject();
          json.KeyValue("value", event.value);
          json.EndObject();
          json.EndObject();
        }
        break;
      }
      case FlightEventKind::kSchedulerDeadlineExpired: {
        BeginTraceEvent(json, "scheduler_deadline_expired", "i", event.track,
                        ToTraceMicros(event.time_seconds));
        json.KeyValue("s", "t");
        json.KeyValue("cat", "scheduler");
        json.Key("args");
        json.BeginObject();
        json.KeyValue("query_fingerprint", static_cast<int64_t>(event.aux));
        json.KeyValue("deadline_virtual_ms", event.value);
        json.EndObject();
        json.EndObject();
        break;
      }
      case FlightEventKind::kCacheHit:
      case FlightEventKind::kCacheMiss: {
        const bool hit = event.kind == FlightEventKind::kCacheHit;
        BeginTraceEvent(json, hit ? "cache_hit" : "cache_miss", "i",
                        event.track, ToTraceMicros(event.time_seconds));
        json.KeyValue("s", "t");
        json.KeyValue("cat", "cache");
        json.Key("args");
        json.BeginObject();
        // The interned name says which cache ("answer_cache", ...).
        json.KeyValue("cache", snapshot.NameOf(event));
        json.KeyValue("query_fingerprint", static_cast<int64_t>(event.aux));
        json.EndObject();
        json.EndObject();
        break;
      }
      case FlightEventKind::kTransportPrefetchIssued:
      case FlightEventKind::kTransportPrefetchCompleted: {
        // The record value is the channel's in-flight request depth after
        // the event; the interned name is the depth gauge's, so the pair of
        // kinds draws one counter track tracing the pipeline's fill level.
        BeginTraceEvent(json, snapshot.NameOf(event), "C", event.track,
                        ToTraceMicros(event.time_seconds));
        json.Key("args");
        json.BeginObject();
        json.KeyValue("value", event.value);
        json.EndObject();
        json.EndObject();
        break;
      }
      case FlightEventKind::kTransportHedgeFired:
      case FlightEventKind::kTransportHedgeWon:
      case FlightEventKind::kTransportHedgeCancelled: {
        int source = 0;
        int64_t epoch = 0;
        int attempt = 0;
        UnpackTransportVisit(event.aux, &source, &epoch, &attempt);
        const char* name =
            event.kind == FlightEventKind::kTransportHedgeFired
                ? "transport_hedge_fired"
                : event.kind == FlightEventKind::kTransportHedgeWon
                      ? "transport_hedge_won"
                      : "transport_hedge_cancelled";
        const char* ms_key =
            event.kind == FlightEventKind::kTransportHedgeFired
                ? "cutoff_wall_ms"
                : "wall_ms";
        BeginTraceEvent(json, name, "i", event.track,
                        ToTraceMicros(event.time_seconds));
        json.KeyValue("s", "t");
        json.KeyValue("cat", "transport");
        json.Key("args");
        json.BeginObject();
        json.KeyValue("source", static_cast<int64_t>(source));
        json.KeyValue("epoch", epoch);
        json.KeyValue("attempt", static_cast<int64_t>(attempt));
        json.KeyValue(ms_key, event.value);
        json.EndObject();
        json.EndObject();
        break;
      }
    }
  }
  orphaned += open_stack.size();

  json.EndArray();
  json.KeyValue("displayTimeUnit", "ms");
  json.Key("otherData");
  json.BeginObject();
  json.KeyValue("num_tracks", static_cast<int64_t>(snapshot.num_tracks));
  json.KeyValue("dropped_events",
                static_cast<int64_t>(snapshot.TotalDropped()));
  json.KeyValue("orphaned_events", static_cast<int64_t>(orphaned));
  json.EndObject();
  json.EndObject();
  return std::move(json).Finish();
}

Status ExportChromeTraceToFile(const FlightSnapshot& snapshot,
                               const std::string& path) {
  VASTATS_ASSIGN_OR_RETURN(const std::string trace,
                           ExportChromeTrace(snapshot));
  return WriteTextFile(path, trace);
}

Status WriteTextFile(const std::string& path, std::string_view content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::NotFound("cannot open `" + path + "` for writing");
  }
  const size_t written =
      content.empty()
          ? 0
          : std::fwrite(content.data(), 1, content.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != content.size() || !flushed) {
    return Status::Internal("short write to `" + path + "`");
  }
  return Status::Ok();
}

}  // namespace vastats
