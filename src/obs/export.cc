#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "util/csv.h"
#include "util/json_writer.h"

namespace vastats {
namespace {

// Shortest rendering of a double that parses back exactly.
std::string RenderDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  double parsed = 0.0;
  if (std::sscanf(buf, "%lf", &parsed) != 1 || parsed != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

std::string RenderUint64(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

Status CheckName(std::string_view kind, std::string_view name) {
  if (!IsSnakeCaseName(name)) {
    return Status::InvalidArgument(std::string(kind) + " name `" +
                                   std::string(name) +
                                   "` is not snake_case ([a-z][a-z0-9_]*)");
  }
  return Status::Ok();
}

void EmitSpan(JsonWriter& json, const Trace& trace,
              const std::vector<std::vector<int>>& children, int id) {
  const SpanRecord& span = trace.spans()[static_cast<size_t>(id)];
  json.BeginObject();
  json.KeyValue("name", std::string_view(span.name));
  json.KeyValue("start_seconds", span.start_seconds);
  json.KeyValue("elapsed_seconds", span.elapsed_seconds);
  if (!span.annotations.empty()) {
    json.Key("annotations");
    json.BeginObject();
    for (const SpanAnnotation& annotation : span.annotations) {
      json.KeyValue(annotation.key, std::string_view(annotation.value));
    }
    json.EndObject();
  }
  const std::vector<int>& kids = children[static_cast<size_t>(id)];
  if (!kids.empty()) {
    json.Key("children");
    json.BeginArray();
    for (const int child : kids) EmitSpan(json, trace, children, child);
    json.EndArray();
  }
  json.EndObject();
}

}  // namespace

bool IsSnakeCaseName(std::string_view name) {
  if (name.empty()) return false;
  if (!(name[0] >= 'a' && name[0] <= 'z')) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

Result<std::string> TraceToJson(const Trace& trace) {
  const std::span<const SpanRecord> spans = trace.spans();
  const size_t n = spans.size();
  std::vector<std::vector<int>> children(n);
  std::vector<int> roots;
  for (size_t i = 0; i < n; ++i) {
    const SpanRecord& span = spans[i];
    VASTATS_RETURN_IF_ERROR(CheckName("span", span.name));
    if (span.open) {
      return Status::FailedPrecondition("span `" + span.name +
                                        "` is still open; close every span "
                                        "before exporting the trace");
    }
    if (span.parent < 0) {
      roots.push_back(static_cast<int>(i));
    } else {
      children[static_cast<size_t>(span.parent)].push_back(
          static_cast<int>(i));
    }
  }
  JsonWriter json;
  json.BeginObject();
  json.Key("spans");
  json.BeginArray();
  for (const int root : roots) EmitSpan(json, trace, children, root);
  json.EndArray();
  json.EndObject();
  return std::move(json).Finish();
}

Result<std::string> SnapshotToJson(const MetricsSnapshot& snapshot) {
  JsonWriter json;
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const CounterSample& sample : snapshot.counters) {
    VASTATS_RETURN_IF_ERROR(CheckName("counter", sample.name));
    json.KeyValue(sample.name, static_cast<int64_t>(sample.value));
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const GaugeSample& sample : snapshot.gauges) {
    VASTATS_RETURN_IF_ERROR(CheckName("gauge", sample.name));
    json.KeyValue(sample.name, sample.value);
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const HistogramSample& sample : snapshot.histograms) {
    VASTATS_RETURN_IF_ERROR(CheckName("histogram", sample.name));
    json.Key(sample.name);
    json.BeginObject();
    json.Key("upper_bounds");
    json.BeginArray();
    for (const double bound : sample.upper_bounds) json.Number(bound);
    json.EndArray();
    json.Key("bucket_counts");
    json.BeginArray();
    for (const uint64_t count : sample.bucket_counts) {
      json.Int(static_cast<int64_t>(count));
    }
    json.EndArray();
    json.KeyValue("count", static_cast<int64_t>(sample.count));
    json.KeyValue("sum", sample.sum);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return std::move(json).Finish();
}

Result<std::string> SnapshotToCsv(const MetricsSnapshot& snapshot) {
  std::vector<CsvRow> rows;
  rows.push_back(CsvRow{"kind", "name", "field", "value"});
  for (const CounterSample& sample : snapshot.counters) {
    VASTATS_RETURN_IF_ERROR(CheckName("counter", sample.name));
    rows.push_back(
        CsvRow{"counter", sample.name, "value", RenderUint64(sample.value)});
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    VASTATS_RETURN_IF_ERROR(CheckName("gauge", sample.name));
    rows.push_back(
        CsvRow{"gauge", sample.name, "value", RenderDouble(sample.value)});
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    VASTATS_RETURN_IF_ERROR(CheckName("histogram", sample.name));
    for (size_t b = 0; b < sample.bucket_counts.size(); ++b) {
      const std::string field =
          b < sample.upper_bounds.size()
              ? "le_" + RenderDouble(sample.upper_bounds[b])
              : std::string("le_inf");
      rows.push_back(CsvRow{"histogram", sample.name, field,
                            RenderUint64(sample.bucket_counts[b])});
    }
    rows.push_back(CsvRow{"histogram", sample.name, "count",
                          RenderUint64(sample.count)});
    rows.push_back(
        CsvRow{"histogram", sample.name, "sum", RenderDouble(sample.sum)});
  }
  return FormatCsv(rows);
}

Result<std::string> SnapshotToPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSample& sample : snapshot.counters) {
    VASTATS_RETURN_IF_ERROR(CheckName("counter", sample.name));
    out += "# TYPE " + sample.name + " counter\n";
    out += sample.name + " " + RenderUint64(sample.value) + "\n";
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    VASTATS_RETURN_IF_ERROR(CheckName("gauge", sample.name));
    out += "# TYPE " + sample.name + " gauge\n";
    out += sample.name + " " + RenderDouble(sample.value) + "\n";
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    VASTATS_RETURN_IF_ERROR(CheckName("histogram", sample.name));
    out += "# TYPE " + sample.name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < sample.bucket_counts.size(); ++b) {
      cumulative += sample.bucket_counts[b];
      const std::string le = b < sample.upper_bounds.size()
                                 ? RenderDouble(sample.upper_bounds[b])
                                 : std::string("+Inf");
      out += sample.name + "_bucket{le=\"" + le + "\"} " +
             RenderUint64(cumulative) + "\n";
    }
    out += sample.name + "_sum " + RenderDouble(sample.sum) + "\n";
    out += sample.name + "_count " + RenderUint64(sample.count) + "\n";
  }
  return out;
}

Status WriteTextFile(const std::string& path, std::string_view content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::NotFound("cannot open `" + path + "` for writing");
  }
  const size_t written =
      content.empty()
          ? 0
          : std::fwrite(content.data(), 1, content.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != content.size() || !flushed) {
    return Status::Internal("short write to `" + path + "`");
  }
  return Status::Ok();
}

}  // namespace vastats
