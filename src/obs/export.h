// Exporters for the observability layer: traces and metric snapshots to
// JSON (via util/json_writer), CSV (via util/csv), and Prometheus text
// exposition format.
//
// This module is the only place in src/obs allowed to touch the
// filesystem (see tools/lint_invariants.py, IO-discipline allowlist); the
// To* functions are pure string builders, WriteTextFile is the single IO
// escape hatch for callers that want artifacts on disk.
//
// Metric and span names must be snake_case (`[a-z][a-z0-9_]*`); the
// exporters validate and fail with InvalidArgument on violations instead of
// silently emitting series that a Prometheus scraper would reject.

#ifndef VASTATS_OBS_EXPORT_H_
#define VASTATS_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace vastats {

// True when `name` is non-empty snake_case: [a-z][a-z0-9_]*.
bool IsSnakeCaseName(std::string_view name);

// Span tree as nested JSON:
//   {"spans": [{"name": ..., "start_seconds": ..., "elapsed_seconds": ...,
//               "annotations": {...}, "children": [...]}]}
// Fails on open spans (close them first) or non-snake_case names.
Result<std::string> TraceToJson(const Trace& trace);

// Snapshot as one JSON object:
//   {"counters": {...}, "gauges": {...},
//    "histograms": {name: {"upper_bounds": [...], "bucket_counts": [...],
//                          "count": n, "sum": s}}}
Result<std::string> SnapshotToJson(const MetricsSnapshot& snapshot);

// Snapshot as CSV rows `kind,name,field,value`; histograms emit one row per
// bucket (field `le_<bound>` / `le_inf`) plus `count` and `sum` rows.
Result<std::string> SnapshotToCsv(const MetricsSnapshot& snapshot);

// Snapshot in the Prometheus text exposition format (version 0.0.4):
// `# TYPE` comments, `_bucket{le="..."}` series for histograms with
// cumulative counts, `_sum` / `_count` series, plus summary-style
// `{quantile="0.5|0.9|0.99"}` lines estimated from the buckets. Non-finite
// values render as the format's `NaN` / `+Inf` / `-Inf` spellings.
Result<std::string> SnapshotToPrometheus(const MetricsSnapshot& snapshot);

// A drained flight-recorder snapshot as Chrome trace-event JSON — the
// format Perfetto and chrome://tracing open directly:
//   {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}
// One thread track per recorder track ("main" for track 0, "worker_<k>"
// after), named via "M" thread_name metadata. Span begin/end pairs become
// "X" duration events; pool task dequeue/complete become "pool_queue_wait"
// and "pool_task_run" duration events on the claiming worker's track;
// counter/gauge samples become "C" counter events; breaker transitions
// become "i" instant events. Records orphaned by a ring wrap (an end whose
// begin was overwritten, or vice versa) are skipped and tallied in
// otherData alongside the per-track drop counts.
Result<std::string> ExportChromeTrace(const FlightSnapshot& snapshot);

// ExportChromeTrace + WriteTextFile in one call, for `--trace-out` style
// flags.
Status ExportChromeTraceToFile(const FlightSnapshot& snapshot,
                               const std::string& path);

// Writes `content` to `path`, replacing any existing file.
Status WriteTextFile(const std::string& path, std::string_view content);

}  // namespace vastats

#endif  // VASTATS_OBS_EXPORT_H_
