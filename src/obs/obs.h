// Observability context threaded through the extraction pipeline.
//
// `ObsOptions` bundles the three telemetry sinks — a hierarchical `Trace`,
// a sharded `MetricsRegistry`, and a per-thread `FlightRecorder` event
// journal — as borrowed, nullable pointers. A default-constructed
// ObsOptions disables telemetry: spans degenerate to a stopwatch read and
// metric handles to a null check, so the instrumented hot paths stay
// within noise of the uninstrumented build.
//
// Usage (per-run opt-in through ExtractorOptions):
//
//   Trace trace;
//   MetricsRegistry metrics;
//   ExtractorOptions options;
//   options.obs.trace = &trace;
//   options.obs.metrics = &metrics;
//   auto stats = extractor->Extract();
//   std::string json = TraceToJson(trace).value();       // obs/export.h
//
// Both sinks must outlive every pipeline call they are attached to. The
// Trace may only be driven from one thread; worker threads (parallel uniS)
// report through the registry's per-thread shards only.

#ifndef VASTATS_OBS_OBS_H_
#define VASTATS_OBS_OBS_H_

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vastats {

struct ObsOptions {
  Trace* trace = nullptr;              // borrowed; null = tracing off
  MetricsRegistry* metrics = nullptr;  // borrowed; null = metrics off
  // Borrowed; null = no event journal. Unlike the Trace, the recorder is
  // thread-safe: worker threads journal into their own rings.
  FlightRecorder* recorder = nullptr;

  bool enabled() const {
    return trace != nullptr || metrics != nullptr || recorder != nullptr;
  }

  // Handle getters that tolerate a null registry; instrumentation sites
  // call these unconditionally and get no-op handles when disabled.
  Counter GetCounter(std::string_view name) const {
    return metrics == nullptr ? Counter() : metrics->GetCounter(name);
  }
  Gauge GetGauge(std::string_view name) const {
    return metrics == nullptr ? Gauge() : metrics->GetGauge(name);
  }
  Histogram GetHistogram(std::string_view name,
                         std::span<const double> upper_bounds = {}) const {
    return metrics == nullptr ? Histogram()
                              : metrics->GetHistogram(name, upper_bounds);
  }
};

}  // namespace vastats

#endif  // VASTATS_OBS_OBS_H_
