// Hierarchical tracing for the extraction pipeline (observability layer).
//
// A `Trace` owns a flat arena of spans forming a tree: `BeginSpan` opens a
// span under the currently open one, `EndSpan` closes it and records its
// monotonic elapsed time. `ScopedSpan` is the RAII handle instrumentation
// sites use; constructed with a null `Trace*` it degenerates to a bare
// stopwatch read, so disabled telemetry costs roughly one clock query per
// phase and no allocation.
//
// Span names are snake_case string literals (enforced by
// tools/lint_invariants.py rule R6); key/value annotations attach scalar
// facts (grid sizes, iteration counts, chosen code paths) to a span.
//
// Threading: a Trace may only be driven from one thread at a time. Worker
// threads report through the sharded MetricsRegistry instead (obs/metrics.h).

#ifndef VASTATS_OBS_TRACE_H_
#define VASTATS_OBS_TRACE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.h"

namespace vastats {

class FlightRecorder;
struct ObsOptions;

// One key/value fact attached to a span. Values are stored pre-rendered;
// numeric annotations keep enough digits to round-trip.
struct SpanAnnotation {
  std::string key;
  std::string value;
};

// One node of the span tree, in begin order. `parent` indexes the owning
// Trace's span arena; -1 marks a root.
struct SpanRecord {
  std::string name;
  int parent = -1;
  int depth = 0;
  // Seconds since the trace was constructed, monotonic clock.
  double start_seconds = 0.0;
  double elapsed_seconds = 0.0;
  bool open = true;
  std::vector<SpanAnnotation> annotations;
};

class Trace {
 public:
  Trace() = default;

  // Not copyable (span ids are positions in this arena).
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  // Opens a span under the innermost open span and returns its id.
  int BeginSpan(std::string_view name);

  // Closes span `id`, recording its elapsed time, and returns that elapsed
  // time in seconds. Any still-open descendants are closed first (a span
  // cannot outlive its parent). Closing an already-closed span is a no-op
  // returning the recorded time. Out-of-range ids return 0.
  double EndSpan(int id);

  void Annotate(int id, std::string_view key, std::string_view value);
  // String literals would otherwise prefer the bool overload (const char*
  // converts to bool by a standard conversion, beating the user-defined
  // conversion to string_view).
  void Annotate(int id, std::string_view key, const char* value) {
    Annotate(id, key, std::string_view(value));
  }
  void Annotate(int id, std::string_view key, double value);
  void Annotate(int id, std::string_view key, int64_t value);
  void Annotate(int id, std::string_view key, bool value);

  std::span<const SpanRecord> spans() const { return spans_; }
  int NumSpans() const { return static_cast<int>(spans_.size()); }
  bool empty() const { return spans_.empty(); }

  // First span (in begin order) with the given name, or nullptr.
  const SpanRecord* Find(std::string_view name) const;

  // Sum of elapsed seconds over every span named `name`. Benchmarks use
  // this to aggregate repeated runs recorded into one trace.
  double TotalSecondsOf(std::string_view name) const;

  // Number of spans named `name`.
  int CountOf(std::string_view name) const;

  // Drops all spans; the epoch is NOT reset (start times keep growing), so
  // relative ordering across Reset calls stays meaningful.
  void Reset() {
    spans_.clear();
    open_stack_.clear();
  }

 private:
  Stopwatch epoch_;
  std::vector<SpanRecord> spans_;
  // Ids of the currently open spans, outermost first.
  std::vector<int> open_stack_;
};

// RAII span handle. Always measures elapsed time (null-trace fast path is a
// stopwatch read); records into the trace only when one is attached.
//
//   ScopedSpan span(obs, "kde");  // or ScopedSpan(obs.trace, "kde")
//   ... work ...
//   span.Annotate("grid_size", int64_t{4096});
//   double seconds = span.Close();  // or let the destructor close it
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->BeginSpan(name);
  }

  // Obs-aware form: drives the trace like the pointer form AND journals a
  // span begin/end event pair into the flight recorder when one is
  // attached. Defined in trace.cc (obs.h cannot be included here).
  ScopedSpan(const ObsOptions& obs, std::string_view name);

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { Close(); }

  // Ends the span (idempotent) and returns its elapsed seconds. With a
  // trace attached the trace's recorded elapsed time is returned, so
  // PhaseTimings derived from Close() agree exactly with the exported span.
  double Close() {
    if (closed_) return elapsed_;
    closed_ = true;
    elapsed_ = (trace_ != nullptr) ? trace_->EndSpan(id_)
                                   : watch_.ElapsedSeconds();
    if (recorder_ != nullptr) RecordEnd();
    return elapsed_;
  }

  void Annotate(std::string_view key, std::string_view value) {
    if (trace_ != nullptr && !closed_) trace_->Annotate(id_, key, value);
  }
  // See Trace::Annotate: keeps string literals off the bool overload.
  void Annotate(std::string_view key, const char* value) {
    Annotate(key, std::string_view(value));
  }
  void Annotate(std::string_view key, double value) {
    if (trace_ != nullptr && !closed_) trace_->Annotate(id_, key, value);
  }
  void Annotate(std::string_view key, int64_t value) {
    if (trace_ != nullptr && !closed_) trace_->Annotate(id_, key, value);
  }
  void Annotate(std::string_view key, bool value) {
    if (trace_ != nullptr && !closed_) trace_->Annotate(id_, key, value);
  }

  // Elapsed seconds so far without closing the span.
  double ElapsedSeconds() const {
    return closed_ ? elapsed_ : watch_.ElapsedSeconds();
  }

  bool recording() const { return trace_ != nullptr; }

 private:
  // Out-of-line flight-recorder journaling (trace.cc; the header cannot
  // see the FlightRecorder definition).
  void RecordEnd();

  Trace* trace_;
  FlightRecorder* recorder_ = nullptr;
  uint32_t recorder_name_id_ = 0;
  int id_ = -1;
  Stopwatch watch_;
  bool closed_ = false;
  double elapsed_ = 0.0;
};

}  // namespace vastats

#endif  // VASTATS_OBS_TRACE_H_
