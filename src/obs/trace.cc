#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/obs.h"

namespace vastats {
namespace {

// Shortest round-trippable rendering of a double (%.17g is exact; try %.15g
// first to keep the common case readable).
std::string RenderDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  double parsed = 0.0;
  if (std::sscanf(buf, "%lf", &parsed) != 1 || parsed != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

}  // namespace

int Trace::BeginSpan(std::string_view name) {
  SpanRecord span;
  span.name.assign(name);
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.depth = static_cast<int>(open_stack_.size());
  span.start_seconds = epoch_.ElapsedSeconds();
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_stack_.push_back(id);
  return id;
}

double Trace::EndSpan(int id) {
  if (id < 0 || id >= NumSpans()) return 0.0;
  SpanRecord& span = spans_[static_cast<size_t>(id)];
  if (!span.open) return span.elapsed_seconds;
  const double now = epoch_.ElapsedSeconds();
  // Close any still-open descendants first: a child span cannot outlive its
  // parent. The open stack is innermost-last, so pop until `id` goes.
  while (!open_stack_.empty()) {
    const int top = open_stack_.back();
    open_stack_.pop_back();
    SpanRecord& open_span = spans_[static_cast<size_t>(top)];
    open_span.open = false;
    open_span.elapsed_seconds = now - open_span.start_seconds;
    if (top == id) break;
  }
  return span.elapsed_seconds;
}

void Trace::Annotate(int id, std::string_view key, std::string_view value) {
  if (id < 0 || id >= NumSpans()) return;
  spans_[static_cast<size_t>(id)].annotations.push_back(
      SpanAnnotation{std::string(key), std::string(value)});
}

void Trace::Annotate(int id, std::string_view key, double value) {
  Annotate(id, key, std::string_view(RenderDouble(value)));
}

void Trace::Annotate(int id, std::string_view key, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  Annotate(id, key, std::string_view(buf));
}

void Trace::Annotate(int id, std::string_view key, bool value) {
  Annotate(id, key, value ? std::string_view("true")
                          : std::string_view("false"));
}

ScopedSpan::ScopedSpan(const ObsOptions& obs, std::string_view name)
    : trace_(obs.trace), recorder_(obs.recorder) {
  if (trace_ != nullptr) id_ = trace_->BeginSpan(name);
  if (recorder_ != nullptr) {
    recorder_name_id_ = recorder_->InternName(name);
    recorder_->RecordSpanBegin(recorder_name_id_);
  }
}

void ScopedSpan::RecordEnd() {
  // Only reachable with recorder_ set, i.e. after a matching RecordSpanBegin
  // in the obs-aware constructor.
  recorder_->RecordSpanEnd(recorder_name_id_, elapsed_);
}

const SpanRecord* Trace::Find(std::string_view name) const {
  for (const SpanRecord& span : spans_) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

double Trace::TotalSecondsOf(std::string_view name) const {
  double total = 0.0;
  for (const SpanRecord& span : spans_) {
    if (span.name == name) total += span.elapsed_seconds;
  }
  return total;
}

int Trace::CountOf(std::string_view name) const {
  int count = 0;
  for (const SpanRecord& span : spans_) {
    if (span.name == name) ++count;
  }
  return count;
}

}  // namespace vastats
