// Flight recorder: an always-available, bounded-memory event journal for
// whole-run, per-thread timelines (observability layer).
//
// Where the `Trace` span tree aggregates *how long* each phase took on the
// driving thread and the `MetricsRegistry` aggregates *how often* things
// happened, the flight recorder answers *when* each worker did *what*: every
// thread that records lands fixed-size binary `EventRecord`s in its own ring
// buffer (single producer — the thread; single consumer — the drain), so the
// hot path never contends with other writers. Rings are bounded: when one
// wraps, the oldest records are overwritten and counted as dropped, so a
// long run keeps its most recent history at a fixed memory cost.
//
// Event kinds cover span begin/end (with thread-track and per-track sequence
// ids), counter/gauge samples, pool task enqueue/dequeue/complete, and
// circuit-breaker state transitions. Real timestamps come from the
// recorder's `Stopwatch` epoch; simulated-clock sites (breaker transitions)
// additionally carry their `VirtualClock` milliseconds in the record value.
//
// `Drain()` snapshots and clears every ring; the merged view is ordered by
// `(track, seq)` — deterministic for a fixed set of recorded events, however
// the threads interleaved. `ExportChromeTrace` (obs/export.h) turns a
// snapshot into a Chrome trace-event JSON that opens in Perfetto or
// chrome://tracing with one track per worker.
//
// Null-sink contract: every instrumentation site takes a nullable
// `FlightRecorder*` (via ObsOptions) and degenerates to one pointer check
// when it is null, matching the <2% disabled-overhead budget of the rest of
// src/obs. Enabled, a record is a clock read plus an uncontended ring write.
//
// The recorder must outlive every thread that records into it... is too
// strong: like MetricsRegistry, ring storage is owned by the recorder and
// the thread-local lookup keys on a never-reused uid, so threads may outlive
// the recorder and recorders may outlive the threads.

#ifndef VASTATS_OBS_FLIGHT_RECORDER_H_
#define VASTATS_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/stopwatch.h"

namespace vastats {

// What one record describes. Values are stable — they are written into
// exported artifacts.
enum class FlightEventKind : uint8_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kCounterSample = 2,     // value = cumulative or per-batch count
  kGaugeSample = 3,       // value = sampled gauge
  kTaskEnqueue = 4,       // aux = tasks in the batch; value = queue depth
  kTaskDequeue = 5,       // aux = task index; value = queue-wait seconds
  kTaskComplete = 6,      // aux = task index; value = run seconds
  kBreakerTransition = 7, // aux = packed (source, from, to); value = virtual ms
  // Serving-layer events (src/serving). Scheduler events intern the
  // in-flight gauge's name so the exporter can mirror them onto one
  // counter track; cache events intern the cache's name ("answer_cache",
  // "bandwidth_cache", ...).
  kSchedulerAdmit = 8,      // aux = query fingerprint; value = in-flight after
  kSchedulerReject = 9,     // aux = query fingerprint; value = queued waiters
  kSchedulerDeadlineExpired = 10,  // aux = fingerprint; value = deadline ms
  kCacheHit = 11,           // aux = query fingerprint
  kCacheMiss = 12,          // aux = query fingerprint
  // Transport-channel events (src/transport). Prefetch events intern the
  // "transport_in_flight" gauge name so the exporter mirrors the channel's
  // in-flight request depth onto one counter track; hedge events intern
  // the hedge instant's own name. aux packs (source, epoch, attempt) via
  // PackTransportVisit.
  kTransportPrefetchIssued = 13,     // value = in-flight depth after issue
  kTransportPrefetchCompleted = 14,  // value = in-flight depth after arrival
  kTransportHedgeFired = 15,         // value = cutoff wall ms that tripped
  kTransportHedgeWon = 16,           // value = wall ms the hedge took
  kTransportHedgeCancelled = 17,     // value = wasted duplicate's wall ms
};

std::string_view FlightEventKindToString(FlightEventKind kind);

// Fixed-size binary journal record. `track` is the recording thread's
// journal track (0 = first thread that recorded, usually the driver);
// `seq` increases by one per record within a track and never resets, so
// `(track, seq)` totally orders a drained snapshot.
struct EventRecord {
  uint64_t seq = 0;
  double time_seconds = 0.0;  // since the recorder's construction (epoch)
  double value = 0.0;         // kind-specific, see FlightEventKind
  uint64_t aux = 0;           // kind-specific payload (task index, ...)
  uint32_t name_id = 0;       // index into the interned name table
  uint32_t track = 0;
  FlightEventKind kind = FlightEventKind::kSpanBegin;
  uint8_t padding[7] = {};    // keeps the record layout an explicit 48 bytes
};
static_assert(sizeof(EventRecord) == 48, "EventRecord layout drifted");

// Packs a breaker transition into EventRecord::aux. States use the
// BreakerState enumerator values (0 closed, 1 open, 2 half-open).
uint64_t PackBreakerTransition(int source, int from_state, int to_state);
void UnpackBreakerTransition(uint64_t aux, int* source, int* from_state,
                             int* to_state);

// Packs a transport visit key into EventRecord::aux: source in the top 16
// bits, attempt in the next 8, the draw epoch's low 40 bits below.
uint64_t PackTransportVisit(int source, int64_t epoch, int attempt);
void UnpackTransportVisit(uint64_t aux, int* source, int64_t* epoch,
                          int* attempt);

// One drained journal: every ring's records merged and sorted by
// (track, seq), plus the interned names and per-track drop accounting.
struct FlightSnapshot {
  std::vector<EventRecord> events;
  std::vector<std::string> names;          // index = name_id
  std::vector<uint64_t> dropped_by_track;  // records lost to ring wraps
  int num_tracks = 0;

  uint64_t TotalDropped() const;
  // Convenience for tests: name of an event (empty when out of range).
  std::string_view NameOf(const EventRecord& event) const;
};

struct FlightRecorderOptions {
  // Ring capacity in records per recording thread. Values < 16 are
  // clamped up; the default keeps a thread's ring under 400 KiB.
  int ring_capacity = 8192;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});
  ~FlightRecorder() = default;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Interns `name` and returns its id; repeated calls with one name return
  // the same id. Safe from any thread. Instrumentation sites intern once
  // (construction / first use) and record with the id afterwards.
  uint32_t InternName(std::string_view name);

  // Appends one record to the calling thread's ring (allocating the ring on
  // first use). The timestamp is taken here, from the recorder's epoch.
  void Record(FlightEventKind kind, uint32_t name_id, double value = 0.0,
              uint64_t aux = 0);

  // Convenience wrappers used by the instrumentation seams.
  void RecordSpanBegin(uint32_t name_id) {
    Record(FlightEventKind::kSpanBegin, name_id);
  }
  void RecordSpanEnd(uint32_t name_id, double elapsed_seconds) {
    Record(FlightEventKind::kSpanEnd, name_id, elapsed_seconds);
  }
  void RecordCounterSample(uint32_t name_id, double value) {
    Record(FlightEventKind::kCounterSample, name_id, value);
  }
  void RecordGaugeSample(uint32_t name_id, double value) {
    Record(FlightEventKind::kGaugeSample, name_id, value);
  }

  // Snapshots and clears every ring. Sequence counters and track ids are
  // NOT reset, so records straddling two drains stay totally ordered.
  FlightSnapshot Drain();

  // Seconds since the recorder was constructed, on its own epoch.
  double NowSeconds() const { return epoch_.ElapsedSeconds(); }

  int ring_capacity() const { return ring_capacity_; }

 private:
  // One thread's journal. Only the owning thread appends; the drain locks
  // the same mutex, which is uncontended in steady state.
  struct Ring {
    std::mutex mutex;
    std::vector<EventRecord> records;  // capacity-sized circular storage
    uint64_t next_seq = 0;             // also counts total appends
    uint64_t dropped = 0;              // overwritten before a drain
    uint32_t track = 0;
    int size = 0;   // live records
    int head = 0;   // index of the oldest live record
  };

  Ring& LocalRing();

  const uint64_t uid_;  // never reused; keys the thread-local ring cache
  const int ring_capacity_;
  Stopwatch epoch_;

  // Guards the name table and the ring list (not the per-ring payloads).
  mutable std::mutex mutex_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace vastats

#endif  // VASTATS_OBS_FLIGHT_RECORDER_H_
