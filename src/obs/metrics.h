// Metrics registry: counters, gauges, and fixed-bucket histograms for the
// extraction pipeline (observability layer).
//
// Write-side design: counter and histogram updates land in a per-thread
// shard, each with its own mutex, so concurrent writers (e.g. the parallel
// uniS workers) never contend with each other — a thread only ever locks
// its own, uncontended shard. `Snapshot()` merges the shards into one
// consistent, name-sorted view. Gauges are last-write-wins and live at the
// registry level.
//
// Handles (`Counter`, `Gauge`, `Histogram`) are cheap value types bound to
// a registry slot; a default-constructed handle is a no-op sink, so
// instrumentation sites can be written unconditionally:
//
//   Counter draws = obs.metrics == nullptr
//       ? Counter() : obs.metrics->GetCounter("unis_draws_total");
//   draws.Increment();
//
// Metric names are snake_case string literals (linter rule R6). Counter
// names end in `_total` by convention; histogram bucket bounds are fixed at
// first registration. Names are namespaced per metric kind — do not reuse
// one name across kinds (the exporters would emit colliding series).
//
// The registry must outlive every handle bound to it. Threads may outlive
// the registry (shard storage is owned by the registry; the thread-local
// lookup keys on a never-reused registry uid).

#ifndef VASTATS_OBS_METRICS_H_
#define VASTATS_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/thread_pool.h"

namespace vastats {

class MetricsRegistry;

// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  void Increment(uint64_t delta = 1);
  bool attached() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, int id) : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  int id_ = -1;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  void Set(double value);
  bool attached() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, int id) : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  int id_ = -1;
};

// Fixed-bucket distribution; bucket i counts observations <= bounds[i],
// with one extra overflow bucket for values above the last bound.
class Histogram {
 public:
  Histogram() = default;
  void Observe(double value);
  bool attached() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, int id,
            const std::vector<double>* bounds)
      : registry_(registry), id_(id), bounds_(bounds) {}
  MetricsRegistry* registry_ = nullptr;
  int id_ = -1;
  // Immutable after registration; read lock-free by Observe.
  const std::vector<double>* bounds_ = nullptr;
};

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> upper_bounds;
  // upper_bounds.size() + 1 entries; the last is the +inf overflow bucket.
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0.0;

  // Estimates the `q`-quantile (q in [0, 1]) from the bucket counts the way
  // PromQL's histogram_quantile does: find the bucket holding the q·count-th
  // observation and interpolate linearly inside it. The first bucket's
  // lower edge is 0 when its bound is positive (latency-style ladders),
  // else the bound itself (no interpolation). Observations landing in the
  // +inf overflow bucket clamp to the last finite bound. Returns NaN when
  // the sample is empty or q is outside [0, 1] — bucketed data cannot
  // answer either.
  double EstimateQuantile(double q) const;
};

// A merged, name-sorted view of every registered metric.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // Convenience lookups (nullptr when absent); linear scans, test-oriented.
  const CounterSample* FindCounter(std::string_view name) const;
  const GaugeSample* FindGauge(std::string_view name) const;
  const HistogramSample* FindHistogram(std::string_view name) const;
};

class FlightRecorder;
struct ObsOptions;

// Routes ThreadPool telemetry into a MetricsRegistry and, when attached,
// the flight-recorder event journal:
//   - `thread_pool_tasks_total` counter, `thread_pool_queue_depth` gauge,
//     `thread_pool_task_latency_seconds` histogram (run time);
//   - `thread_pool_task_queue_wait_seconds` histogram — enqueue-to-claim
//     wait per task, split from run time;
//   - `thread_pool_worker_utilization` gauge — fraction of the batch's
//     (elapsed × workers) budget spent running tasks;
//   - `thread_pool_chunk_imbalance_ratio` histogram — slowest task over
//     mean task run time per ParallelFor, the chunk-imbalance signal;
//   - journal events for batch enqueue, task dequeue/complete, and the
//     utilization sample, so pool contention shows up on the Perfetto
//     timeline per worker.
// The registry lookups happen on the reporting thread, so writes land in
// that thread's shard like every other instrumentation site. Null sinks
// make the observer a no-op, so call sites construct one unconditionally.
//
// This adapter is obs's side of the ThreadPoolObserver seam
// (util/thread_pool.h): the pool stays metrics-agnostic so util never
// includes obs (layer rule A1).
class PoolMetricsObserver final : public ThreadPoolObserver {
 public:
  explicit PoolMetricsObserver(MetricsRegistry* metrics,
                               FlightRecorder* recorder = nullptr);
  // Convenience: pulls both sinks out of an ObsOptions (defined in
  // metrics.cc; obs.h cannot be included here).
  explicit PoolMetricsObserver(const ObsOptions& obs);

  void OnBatchQueued(int num_tasks, int queue_depth) override;
  void OnTaskStart(const TaskTiming& timing) override;
  void OnTaskComplete(const TaskTiming& timing) override;
  void OnBatchComplete(const BatchTiming& timing) override;

  // Bucket ladder for `thread_pool_chunk_imbalance_ratio` (1 = perfectly
  // balanced chunks).
  static std::span<const double> ImbalanceRatioBuckets();

 private:
  MetricsRegistry* metrics_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  // Interned once at construction so the per-task hot path records by id.
  uint32_t batch_name_id_ = 0;
  uint32_t task_name_id_ = 0;
  uint32_t utilization_name_id_ = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Interns `name` and returns a handle; repeated calls with one name
  // return handles to the same slot. Safe to call from any thread.
  Counter GetCounter(std::string_view name);
  Gauge GetGauge(std::string_view name);
  // `upper_bounds` must be strictly ascending; it is fixed at the first
  // registration of `name` (later bounds are ignored). Empty bounds select
  // DefaultLatencyBucketsSeconds().
  Histogram GetHistogram(std::string_view name,
                         std::span<const double> upper_bounds = {});

  // Merges every thread's shard into one consistent view. Safe to call
  // concurrently with writers; each shard is read under its own lock.
  MetricsSnapshot Snapshot() const;

  // 1us .. 10s, decade steps — the default latency bucket ladder.
  static std::span<const double> DefaultLatencyBucketsSeconds();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard {
    std::mutex mutex;
    std::vector<uint64_t> counters;          // by counter id
    std::vector<uint64_t> histogram_counts;  // by histogram id
    std::vector<double> histogram_sums;
    std::vector<std::vector<uint64_t>> histogram_buckets;
  };

  // This thread's shard, created (and cached thread-locally) on first use.
  Shard& LocalShard() const;

  void CounterAdd(int id, uint64_t delta);
  void GaugeSet(int id, double value);
  void HistogramObserve(int id, size_t bucket, size_t num_buckets,
                        double value);

  const uint64_t uid_;  // never reused; keys the thread-local shard cache

  // Guards registration tables, the shard list, and gauge values.
  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::unordered_map<std::string, int> counter_index_;
  std::vector<std::string> gauge_names_;
  std::vector<double> gauge_values_;
  std::unordered_map<std::string, int> gauge_index_;
  std::vector<std::string> histogram_names_;
  // unique_ptr keeps each bounds vector at a stable address for the
  // lock-free reads in Histogram::Observe.
  std::vector<std::unique_ptr<const std::vector<double>>> histogram_bounds_;
  std::unordered_map<std::string, int> histogram_index_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace vastats

#endif  // VASTATS_OBS_METRICS_H_
