#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>

namespace vastats {
namespace {

// Recorder uids start at 1 so 0 can never match a cache entry (shared
// convention with MetricsRegistry's shard cache).
std::atomic<uint64_t> g_next_recorder_uid{1};

struct TlsRingEntry {
  uint64_t recorder_uid = 0;
  void* ring = nullptr;
};

// Per-thread cache of (recorder uid -> ring). Entries for destroyed
// recorders go stale but are never matched again (uids are not reused),
// and the pointers they hold are never dereferenced.
thread_local std::vector<TlsRingEntry> g_tls_rings;

constexpr int kMinRingCapacity = 16;

}  // namespace

std::string_view FlightEventKindToString(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kSpanBegin:
      return "span_begin";
    case FlightEventKind::kSpanEnd:
      return "span_end";
    case FlightEventKind::kCounterSample:
      return "counter";
    case FlightEventKind::kGaugeSample:
      return "gauge";
    case FlightEventKind::kTaskEnqueue:
      return "task_enqueue";
    case FlightEventKind::kTaskDequeue:
      return "task_dequeue";
    case FlightEventKind::kTaskComplete:
      return "task_complete";
    case FlightEventKind::kBreakerTransition:
      return "breaker_transition";
    case FlightEventKind::kSchedulerAdmit:
      return "scheduler_admit";
    case FlightEventKind::kSchedulerReject:
      return "scheduler_reject";
    case FlightEventKind::kSchedulerDeadlineExpired:
      return "scheduler_deadline_expired";
    case FlightEventKind::kCacheHit:
      return "cache_hit";
    case FlightEventKind::kCacheMiss:
      return "cache_miss";
    case FlightEventKind::kTransportPrefetchIssued:
      return "transport_prefetch_issued";
    case FlightEventKind::kTransportPrefetchCompleted:
      return "transport_prefetch_completed";
    case FlightEventKind::kTransportHedgeFired:
      return "transport_hedge_fired";
    case FlightEventKind::kTransportHedgeWon:
      return "transport_hedge_won";
    case FlightEventKind::kTransportHedgeCancelled:
      return "transport_hedge_cancelled";
  }
  return "unknown";
}

uint64_t PackBreakerTransition(int source, int from_state, int to_state) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(source)) << 16) |
         (static_cast<uint64_t>(static_cast<uint8_t>(from_state)) << 8) |
         static_cast<uint64_t>(static_cast<uint8_t>(to_state));
}

void UnpackBreakerTransition(uint64_t aux, int* source, int* from_state,
                             int* to_state) {
  if (source != nullptr) *source = static_cast<int>(aux >> 16);
  if (from_state != nullptr) *from_state = static_cast<int>((aux >> 8) & 0xff);
  if (to_state != nullptr) *to_state = static_cast<int>(aux & 0xff);
}

uint64_t PackTransportVisit(int source, int64_t epoch, int attempt) {
  return (static_cast<uint64_t>(static_cast<uint16_t>(source)) << 48) |
         (static_cast<uint64_t>(static_cast<uint8_t>(attempt)) << 40) |
         (static_cast<uint64_t>(epoch) & ((uint64_t{1} << 40) - 1));
}

void UnpackTransportVisit(uint64_t aux, int* source, int64_t* epoch,
                          int* attempt) {
  if (source != nullptr) *source = static_cast<int>(aux >> 48);
  if (attempt != nullptr) *attempt = static_cast<int>((aux >> 40) & 0xff);
  if (epoch != nullptr) {
    *epoch = static_cast<int64_t>(aux & ((uint64_t{1} << 40) - 1));
  }
}

uint64_t FlightSnapshot::TotalDropped() const {
  uint64_t total = 0;
  for (const uint64_t dropped : dropped_by_track) total += dropped;
  return total;
}

std::string_view FlightSnapshot::NameOf(const EventRecord& event) const {
  if (event.name_id >= names.size()) return {};
  return names[event.name_id];
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : uid_(g_next_recorder_uid.fetch_add(1, std::memory_order_relaxed)),
      ring_capacity_(std::max(options.ring_capacity, kMinRingCapacity)) {}

uint32_t FlightRecorder::InternName(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<uint32_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<uint32_t>(names_.size() - 1);
}

FlightRecorder::Ring& FlightRecorder::LocalRing() {
  for (const TlsRingEntry& entry : g_tls_rings) {
    if (entry.recorder_uid == uid_) {
      return *static_cast<Ring*>(entry.ring);
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::make_unique<Ring>());
  Ring* ring = rings_.back().get();
  ring->track = static_cast<uint32_t>(rings_.size() - 1);
  ring->records.resize(static_cast<size_t>(ring_capacity_));
  g_tls_rings.push_back(TlsRingEntry{uid_, ring});
  return *ring;
}

void FlightRecorder::Record(FlightEventKind kind, uint32_t name_id,
                            double value, uint64_t aux) {
  const double now = epoch_.ElapsedSeconds();
  Ring& ring = LocalRing();
  const std::lock_guard<std::mutex> lock(ring.mutex);
  const int capacity = static_cast<int>(ring.records.size());
  int slot;
  if (ring.size < capacity) {
    slot = ring.head + ring.size;
    if (slot >= capacity) slot -= capacity;
    ++ring.size;
  } else {
    // Ring is full: overwrite the oldest live record and account for it.
    slot = ring.head;
    ring.head = ring.head + 1 == capacity ? 0 : ring.head + 1;
    ++ring.dropped;
  }
  EventRecord& record = ring.records[static_cast<size_t>(slot)];
  record.seq = ring.next_seq++;
  record.time_seconds = now;
  record.value = value;
  record.aux = aux;
  record.name_id = name_id;
  record.track = ring.track;
  record.kind = kind;
}

FlightSnapshot FlightRecorder::Drain() {
  FlightSnapshot snapshot;
  const std::lock_guard<std::mutex> lock(mutex_);
  snapshot.names = names_;
  snapshot.num_tracks = static_cast<int>(rings_.size());
  snapshot.dropped_by_track.reserve(rings_.size());
  size_t total = 0;
  for (const std::unique_ptr<Ring>& ring : rings_) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += static_cast<size_t>(ring->size);
  }
  snapshot.events.reserve(total);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    const std::lock_guard<std::mutex> ring_lock(ring->mutex);
    const int capacity = static_cast<int>(ring->records.size());
    for (int i = 0; i < ring->size; ++i) {
      int slot = ring->head + i;
      if (slot >= capacity) slot -= capacity;
      snapshot.events.push_back(ring->records[static_cast<size_t>(slot)]);
    }
    snapshot.dropped_by_track.push_back(ring->dropped);
    ring->size = 0;
    ring->head = 0;
    ring->dropped = 0;
  }
  // Rings are visited in registration order and each ring's records are
  // already seq-ascending, so this sort is a deterministic merge by
  // (track, seq) whatever order the threads appended in.
  std::sort(snapshot.events.begin(), snapshot.events.end(),
            [](const EventRecord& a, const EventRecord& b) {
              if (a.track != b.track) return a.track < b.track;
              return a.seq < b.seq;
            });
  return snapshot;
}

}  // namespace vastats
