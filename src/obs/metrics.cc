#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "obs/flight_recorder.h"
#include "obs/obs.h"

namespace vastats {
namespace {

// Registry uids start at 1 so 0 can never match a cache entry.
std::atomic<uint64_t> g_next_registry_uid{1};

struct TlsShardEntry {
  uint64_t registry_uid = 0;
  void* shard = nullptr;
};

// Per-thread cache of (registry uid -> shard). Entries for destroyed
// registries go stale but are never matched again (uids are not reused),
// and the pointers they hold are never dereferenced.
thread_local std::vector<TlsShardEntry> g_tls_shards;

template <typename Sample>
void SortByName(std::vector<Sample>& samples) {
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
}

}  // namespace

void Counter::Increment(uint64_t delta) {
  if (registry_ != nullptr) registry_->CounterAdd(id_, delta);
}

void Gauge::Set(double value) {
  if (registry_ != nullptr) registry_->GaugeSet(id_, value);
}

void Histogram::Observe(double value) {
  if (registry_ == nullptr) return;
  // bounds_ is immutable after registration; no lock needed to bucket.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_->begin(), bounds_->end(), value) -
      bounds_->begin());
  registry_->HistogramObserve(id_, bucket, bounds_->size() + 1, value);
}

double HistogramSample::EstimateQuantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0) || count == 0 || bucket_counts.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t b = 0; b < bucket_counts.size(); ++b) {
    const double in_bucket = static_cast<double>(bucket_counts[b]);
    cumulative += in_bucket;
    if (cumulative < target || in_bucket == 0.0) continue;
    if (b >= upper_bounds.size()) {
      // Overflow bucket: the best bounded answer is the last finite edge.
      return upper_bounds.empty()
                 ? std::numeric_limits<double>::quiet_NaN()
                 : upper_bounds.back();
    }
    const double upper = upper_bounds[b];
    const double lower = b == 0 ? std::min(0.0, upper) : upper_bounds[b - 1];
    const double rank_in_bucket = target - (cumulative - in_bucket);
    return lower + (upper - lower) * (rank_in_bucket / in_bucket);
  }
  // count > 0 guarantees some bucket crossed the target; not reachable.
  return std::numeric_limits<double>::quiet_NaN();
}

const CounterSample* MetricsSnapshot::FindCounter(
    std::string_view name) const {
  for (const CounterSample& sample : counters) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const GaugeSample* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const GaugeSample& sample : gauges) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSample& sample : histograms) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

MetricsRegistry::MetricsRegistry()
    : uid_(g_next_registry_uid.fetch_add(1, std::memory_order_relaxed)) {}

std::span<const double> MetricsRegistry::DefaultLatencyBucketsSeconds() {
  static const double kBuckets[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                    1e-2, 1e-1, 1.0,  10.0};
  return kBuckets;
}

Counter MetricsRegistry::GetCounter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string key(name);
  const auto it = counter_index_.find(key);
  if (it != counter_index_.end()) return Counter(this, it->second);
  const int id = static_cast<int>(counter_names_.size());
  counter_names_.push_back(key);
  counter_index_.emplace(std::move(key), id);
  return Counter(this, id);
}

Gauge MetricsRegistry::GetGauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string key(name);
  const auto it = gauge_index_.find(key);
  if (it != gauge_index_.end()) return Gauge(this, it->second);
  const int id = static_cast<int>(gauge_names_.size());
  gauge_names_.push_back(key);
  gauge_values_.push_back(0.0);
  gauge_index_.emplace(std::move(key), id);
  return Gauge(this, id);
}

Histogram MetricsRegistry::GetHistogram(std::string_view name,
                                        std::span<const double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string key(name);
  const auto it = histogram_index_.find(key);
  if (it != histogram_index_.end()) {
    return Histogram(this, it->second,
                     histogram_bounds_[static_cast<size_t>(it->second)].get());
  }
  if (upper_bounds.empty()) upper_bounds = DefaultLatencyBucketsSeconds();
  std::vector<double> bounds(upper_bounds.begin(), upper_bounds.end());
  // Enforce strictly ascending bounds (sort and deduplicate rather than
  // failing: handle getters have no error channel by design).
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  const int id = static_cast<int>(histogram_names_.size());
  histogram_names_.push_back(key);
  histogram_bounds_.push_back(
      std::make_unique<const std::vector<double>>(std::move(bounds)));
  histogram_index_.emplace(std::move(key), id);
  return Histogram(this, id, histogram_bounds_.back().get());
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() const {
  for (const TlsShardEntry& entry : g_tls_shards) {
    if (entry.registry_uid == uid_) {
      return *static_cast<Shard*>(entry.shard);
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  g_tls_shards.push_back(TlsShardEntry{uid_, shard});
  return *shard;
}

void MetricsRegistry::CounterAdd(int id, uint64_t delta) {
  Shard& shard = LocalShard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.counters.size() <= static_cast<size_t>(id)) {
    shard.counters.resize(static_cast<size_t>(id) + 1, 0);
  }
  shard.counters[static_cast<size_t>(id)] += delta;
}

void MetricsRegistry::GaugeSet(int id, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauge_values_[static_cast<size_t>(id)] = value;
}

void MetricsRegistry::HistogramObserve(int id, size_t bucket,
                                       size_t num_buckets, double value) {
  Shard& shard = LocalShard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const size_t idx = static_cast<size_t>(id);
  if (shard.histogram_counts.size() <= idx) {
    shard.histogram_counts.resize(idx + 1, 0);
    shard.histogram_sums.resize(idx + 1, 0.0);
    shard.histogram_buckets.resize(idx + 1);
  }
  std::vector<uint64_t>& buckets = shard.histogram_buckets[idx];
  if (buckets.size() < num_buckets) buckets.resize(num_buckets, 0);
  buckets[bucket] += 1;
  shard.histogram_counts[idx] += 1;
  shard.histogram_sums[idx] += value;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  const std::lock_guard<std::mutex> lock(mutex_);

  snapshot.counters.reserve(counter_names_.size());
  for (const std::string& name : counter_names_) {
    snapshot.counters.push_back(CounterSample{name, 0});
  }
  snapshot.gauges.reserve(gauge_names_.size());
  for (size_t i = 0; i < gauge_names_.size(); ++i) {
    snapshot.gauges.push_back(GaugeSample{gauge_names_[i], gauge_values_[i]});
  }
  snapshot.histograms.reserve(histogram_names_.size());
  for (size_t i = 0; i < histogram_names_.size(); ++i) {
    HistogramSample sample;
    sample.name = histogram_names_[i];
    sample.upper_bounds = *histogram_bounds_[i];
    sample.bucket_counts.assign(sample.upper_bounds.size() + 1, 0);
    snapshot.histograms.push_back(std::move(sample));
  }

  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (size_t i = 0; i < shard->counters.size(); ++i) {
      snapshot.counters[i].value += shard->counters[i];
    }
    for (size_t i = 0; i < shard->histogram_counts.size(); ++i) {
      HistogramSample& sample = snapshot.histograms[i];
      sample.count += shard->histogram_counts[i];
      sample.sum += shard->histogram_sums[i];
      const std::vector<uint64_t>& buckets = shard->histogram_buckets[i];
      for (size_t b = 0; b < buckets.size(); ++b) {
        sample.bucket_counts[b] += buckets[b];
      }
    }
  }

  SortByName(snapshot.counters);
  SortByName(snapshot.gauges);
  SortByName(snapshot.histograms);
  return snapshot;
}

PoolMetricsObserver::PoolMetricsObserver(MetricsRegistry* metrics,
                                         FlightRecorder* recorder)
    : metrics_(metrics), recorder_(recorder) {
  if (recorder_ != nullptr) {
    batch_name_id_ = recorder_->InternName("pool_batch");
    task_name_id_ = recorder_->InternName("pool_task");
    utilization_name_id_ =
        recorder_->InternName("thread_pool_worker_utilization");
  }
}

PoolMetricsObserver::PoolMetricsObserver(const ObsOptions& obs)
    : PoolMetricsObserver(obs.metrics, obs.recorder) {}

std::span<const double> PoolMetricsObserver::ImbalanceRatioBuckets() {
  static const double kBuckets[] = {1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0};
  return kBuckets;
}

void PoolMetricsObserver::OnBatchQueued(int num_tasks, int queue_depth) {
  if (metrics_ != nullptr) {
    metrics_->GetGauge("thread_pool_queue_depth")
        .Set(static_cast<double>(queue_depth));
  }
  if (recorder_ != nullptr) {
    recorder_->Record(FlightEventKind::kTaskEnqueue, batch_name_id_,
                      static_cast<double>(queue_depth),
                      static_cast<uint64_t>(num_tasks));
  }
}

void PoolMetricsObserver::OnTaskStart(const TaskTiming& timing) {
  if (metrics_ != nullptr) {
    metrics_->GetHistogram("thread_pool_task_queue_wait_seconds")
        .Observe(timing.queue_wait_seconds);
  }
  if (recorder_ != nullptr) {
    recorder_->Record(FlightEventKind::kTaskDequeue, task_name_id_,
                      timing.queue_wait_seconds,
                      static_cast<uint64_t>(timing.task_index));
  }
}

void PoolMetricsObserver::OnTaskComplete(const TaskTiming& timing) {
  if (metrics_ != nullptr) {
    metrics_->GetCounter("thread_pool_tasks_total").Increment();
    metrics_->GetHistogram("thread_pool_task_latency_seconds")
        .Observe(timing.run_seconds);
  }
  if (recorder_ != nullptr) {
    recorder_->Record(FlightEventKind::kTaskComplete, task_name_id_,
                      timing.run_seconds,
                      static_cast<uint64_t>(timing.task_index));
  }
}

void PoolMetricsObserver::OnBatchComplete(const BatchTiming& timing) {
  const double budget =
      timing.elapsed_seconds * static_cast<double>(timing.max_workers);
  const double utilization =
      budget > 0.0 ? timing.total_run_seconds / budget : 0.0;
  if (metrics_ != nullptr) {
    metrics_->GetGauge("thread_pool_worker_utilization").Set(utilization);
    if (timing.num_tasks > 0 && timing.total_run_seconds > 0.0) {
      const double mean_run =
          timing.total_run_seconds / static_cast<double>(timing.num_tasks);
      metrics_->GetHistogram("thread_pool_chunk_imbalance_ratio",
                             ImbalanceRatioBuckets())
          .Observe(timing.max_run_seconds / mean_run);
    }
  }
  if (recorder_ != nullptr) {
    recorder_->RecordGaugeSample(utilization_name_id_, utilization);
  }
}

}  // namespace vastats
