#include "density/kde.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "util/fft.h"
#include "util/math.h"

namespace vastats {
namespace {

// Smallest bandwidth returned for degenerate samples, relative to |mean|.
constexpr double kDegenerateBandwidthFloor = 1e-9;

double RobustSpread(std::span<const double> samples) {
  const Moments moments = ComputeMoments(samples);
  const double sd = moments.SampleStdDev();
  const double q75 = Quantile(samples, 0.75).value_or(0.0);
  const double q25 = Quantile(samples, 0.25).value_or(0.0);
  const double iqr_sigma = (q75 - q25) / 1.34;
  double spread = sd;
  if (iqr_sigma > 0.0) spread = std::min(spread, iqr_sigma);
  if (spread <= 0.0) spread = sd;
  return spread;
}

double DegenerateFloor(std::span<const double> samples) {
  const double scale = std::fabs(ComputeMoments(samples).mean());
  return std::max(scale, 1.0) * kDegenerateBandwidthFloor;
}

// x^s for small non-negative integer s by repeated multiplication (the
// inner loops below would otherwise spend most of their time in pow()).
inline double IntPow(double x, int s) {
  double result = 1.0;
  while (s-- > 0) result *= x;
  return result;
}
// The seven-stage constants of Botev's fixed-point map depend only on the
// stage index s: K0(s) = (2s-1)!!/sqrt(2*pi), c(s) = (1 + 0.5^(s+0.5))/3,
// the plug-in exponent 2/(3+2s), and pi^(2s). Computed once instead of
// from double-factorials and pow() on every map evaluation.
struct BotevStageConstants {
  double two_c_k0[8];   // 2 * c(s) * K0(s), s in [2, 6]
  double pi_pow_2s[8];  // pi^(2s), s in [2, 7]
  double exponent[8];   // 2 / (3 + 2s), s in [2, 6]
};

const BotevStageConstants& BotevConstants() {
  static const BotevStageConstants constants = [] {
    BotevStageConstants c{};
    for (int s = 2; s <= 7; ++s) {
      double k0 = 1.0;
      for (int j = 1; j <= 2 * s - 1; j += 2) k0 *= static_cast<double>(j);
      k0 /= kSqrt2Pi;
      const double cc = (1.0 + std::pow(0.5, s + 0.5)) / 3.0;
      c.two_c_k0[s] = 2.0 * cc * k0;
      c.pi_pow_2s[s] = std::pow(kPi, 2 * s);
      c.exponent[s] = 2.0 / (3.0 + 2.0 * static_cast<double>(s));
    }
    return c;
  }();
  return constants;
}

// x^S with the exponent known at compile time, so the stage-sum loops
// below unroll it into straight multiplies and stay vectorizable.
template <int S>
inline double ConstPow(double x) {
  double result = 1.0;
  for (int i = 0; i < S; ++i) result *= x;
  return result;
}

// sum_k i_sq[k]^S * a2[k] * exp(-i_sq[k] * pi_sq_t) over the leading
// `limit` coefficients, i_sq[k] = (k+1)^2. exp(-(k+1)^2 * pi_sq_t) is
// produced by recurrence — consecutive exponents differ by (2k+3) *
// pi_sq_t and those gaps grow geometrically, so two running multiplies
// replace one exp() per term. The chain is split into four independent
// stride-4 lanes (lane ratios step by exp(-32 * pi_sq_t)) so the
// recurrence is not one long serial dependency and the loop vectorizes.
// The accumulated relative error is ~limit * ulp (< 1e-12 over a 4096
// grid), far inside the root-finder's 1e-5 tolerance.
template <int S>
double StageSumImpl(double pi_sq_t, std::span<const double> i_sq,
                    std::span<const double> a2, size_t limit) {
  double e[4], gap[4], sum[4] = {0.0, 0.0, 0.0, 0.0};
  for (int j = 0; j < 4; ++j) {
    const double kp1 = static_cast<double>(j + 1);
    e[j] = std::exp(-kp1 * kp1 * pi_sq_t);
    gap[j] = std::exp(-(8.0 * static_cast<double>(j) + 24.0) * pi_sq_t);
  }
  const double q = std::exp(-32.0 * pi_sq_t);
  size_t k = 0;
  for (; k + 4 <= limit; k += 4) {
    for (int j = 0; j < 4; ++j) {
      sum[j] += ConstPow<S>(i_sq[k + static_cast<size_t>(j)]) *
                a2[k + static_cast<size_t>(j)] * e[j];
      e[j] *= gap[j];
      gap[j] *= q;
    }
  }
  double total = (sum[0] + sum[1]) + (sum[2] + sum[3]);
  for (; k < limit; ++k) {
    total += ConstPow<S>(i_sq[k]) * a2[k] *
             std::exp(-i_sq[k] * pi_sq_t);
  }
  return total;
}

// Dispatches the stage index (2..7) to the compile-time-power kernels.
// Terms past k+1 > sqrt(745 / (pi^2 t)) underflow exp to zero; the cutoff
// index is computed directly instead of testing the exponent per term.
double BotevStageSum(int s, double t, std::span<const double> i_sq,
                     std::span<const double> a2, size_t effective_len) {
  const double pi_sq_t = kPi * kPi * t;
  size_t limit = effective_len;
  if (pi_sq_t > 0.0) {
    const double k_max = std::sqrt(745.0 / pi_sq_t);
    if (k_max < static_cast<double>(limit)) {
      limit = static_cast<size_t>(k_max);
    }
  }
  switch (s) {
    case 2:
      return StageSumImpl<2>(pi_sq_t, i_sq, a2, limit);
    case 3:
      return StageSumImpl<3>(pi_sq_t, i_sq, a2, limit);
    case 4:
      return StageSumImpl<4>(pi_sq_t, i_sq, a2, limit);
    case 5:
      return StageSumImpl<5>(pi_sq_t, i_sq, a2, limit);
    case 6:
      return StageSumImpl<6>(pi_sq_t, i_sq, a2, limit);
    case 7:
      return StageSumImpl<7>(pi_sq_t, i_sq, a2, limit);
    default:
      break;
  }
  double sum = 0.0;
  for (size_t k = 0; k < limit; ++k) {
    sum += IntPow(i_sq[k], s) * a2[k] * std::exp(-i_sq[k] * pi_sq_t);
  }
  return sum;
}

// One evaluation of Botev's fixed-point map gamma^[l](t) (his Algorithm 1,
// l = 7 stages), returning the candidate t implied by plug-in stage 2.
double BotevFixedPoint(double t, double n, std::span<const double> i_sq,
                       std::span<const double> a2, size_t effective_len) {
  const BotevStageConstants& constants = BotevConstants();
  double f = 2.0 * constants.pi_pow_2s[7] *
             BotevStageSum(7, t, i_sq, a2, effective_len);
  for (int s = 6; s >= 2; --s) {
    const double time =
        std::pow(constants.two_c_k0[s] / (n * f), constants.exponent[s]);
    f = 2.0 * constants.pi_pow_2s[s] *
        BotevStageSum(s, time, i_sq, a2, effective_len);
  }
  return std::pow(2.0 * n * std::sqrt(kPi) * f, -0.4);
}

// Result of one diffusion-selector root-find on a prepared spectral profile.
struct BotevSelection {
  double t_star = 0.0;       // fixed point in normalized time
  uint64_t evaluations = 0;  // fixed-point map evaluations spent
  bool fallback = false;     // bracketing failed; t_star is the formula value
};

// Finds the root of F(t) = gamma(t) - t. F is positive left of the fixed
// point and negative right of it, so the bracket is grown geometrically
// from `t_seed` in the direction F points, then tightened with the ITP
// method (Oliveira & Takahashi 2020) — worst case within one evaluation of
// bisection, superlinear on smooth brackets like this one. The endpoint
// signs are carried through from the bracketing scan; no endpoint is ever
// re-evaluated.
BotevSelection SolveBotevFixedPoint(double n, std::span<const double> i_sq,
                                    std::span<const double> a2,
                                    double t_seed) {
  BotevSelection out;
  // Trailing all-zero coefficients contribute nothing to any stage sum;
  // clip them once up front instead of carrying them into every evaluation.
  size_t effective_len = a2.size();
  while (effective_len > 0 && a2[effective_len - 1] == 0.0) --effective_len;

  auto f = [&](double t) {
    ++out.evaluations;
    return BotevFixedPoint(t, n, i_sq, a2, effective_len) - t;
  };

  constexpr double kTMin = 1e-12;
  constexpr double kTMax = 0.1;  // reference implementation's search cap
  constexpr double kGrow = 4.0;
  double t_lo = 0.0, t_hi = 0.0, f_lo = 0.0, f_hi = 0.0;
  bool bracketed = false;
  double t = std::clamp(t_seed, 1e-8, kTMax / kGrow);
  double ft = f(t);
  if (std::isfinite(ft)) {
    if (ft == 0.0) {
      out.t_star = t;
      return out;
    }
    if (ft > 0.0) {
      // Root is to the right of the seed.
      while (t < kTMax) {
        const double next = std::min(t * kGrow, kTMax);
        const double f_next = f(next);
        if (!std::isfinite(f_next)) break;
        if (f_next <= 0.0) {
          t_lo = t;
          f_lo = ft;
          t_hi = next;
          f_hi = f_next;
          bracketed = true;
          break;
        }
        t = next;
        ft = f_next;
      }
    } else {
      // Root is to the left of the seed.
      while (t > kTMin) {
        const double next = std::max(t / kGrow, kTMin);
        const double f_next = f(next);
        if (!std::isfinite(f_next)) break;
        if (f_next > 0.0) {
          t_lo = next;
          f_lo = f_next;
          t_hi = t;
          f_hi = ft;
          bracketed = true;
          break;
        }
        t = next;
        ft = f_next;
      }
    }
  }
  if (!bracketed) {
    // Reference implementation's fallback.
    out.fallback = true;
    out.t_star = 0.28 * std::pow(n, -0.4);
    return out;
  }

  // ITP iteration on [t_lo, t_hi] with f_lo > 0 >= f_hi. A relative
  // tolerance of 1e-5 on t gives ~5e-6 relative accuracy on h = sqrt(t)*r,
  // far below the binning error of any realistic grid.
  const double eps = std::max(1e-5 * t_hi, 1e-14);
  const double k1 = 0.2 / (t_hi - t_lo);
  const int n_half = std::max(
      0, static_cast<int>(std::ceil(std::log2((t_hi - t_lo) / (2.0 * eps)))));
  const int n_max = n_half + 1;
  for (int j = 0; t_hi - t_lo > 2.0 * eps && j < 64; ++j) {
    const double width = t_hi - t_lo;
    const double mid = 0.5 * (t_lo + t_hi);
    const double radius = eps * std::ldexp(1.0, n_max - j) - 0.5 * width;
    const double delta = k1 * width * width;
    // Regula-falsi interpolant, truncated towards the midpoint, projected
    // into the minmax radius.
    const double x_f = (f_hi * t_lo - f_lo * t_hi) / (f_hi - f_lo);
    const double sigma = (mid >= x_f) ? 1.0 : -1.0;
    const double x_t =
        (delta <= std::fabs(mid - x_f)) ? x_f + sigma * delta : mid;
    const double x_itp =
        (std::fabs(x_t - mid) <= radius) ? x_t : mid - sigma * radius;
    const double y = f(x_itp);
    if (!std::isfinite(y)) break;
    if (y > 0.0) {
      t_lo = x_itp;
      f_lo = y;
    } else if (y < 0.0) {
      t_hi = x_itp;
      f_hi = y;
    } else {
      t_lo = x_itp;
      t_hi = x_itp;
      break;
    }
  }
  out.t_star = 0.5 * (t_lo + t_hi);
  return out;
}

// Runs the diffusion selector on the DCT-II coefficients of the
// unit-mass-binned sample over a grid of range `r`. `evaluations_out`
// (optional) accumulates the fixed-point evaluation count for span
// annotations.
Result<double> BotevFromDct(std::span<const double> dct,
                            std::span<const double> samples, double n,
                            double r, const ObsOptions& obs,
                            uint64_t* evaluations_out = nullptr) {
  const size_t grid_size = dct.size();
  std::vector<double> i_sq(grid_size - 1);
  std::vector<double> a2(grid_size - 1);
  for (size_t k = 1; k < grid_size; ++k) {
    i_sq[k - 1] = static_cast<double>(k) * static_cast<double>(k);
    a2[k - 1] = dct[k] * dct[k];
  }
  // Seed the bracket at the normalized time a rule-of-thumb bandwidth
  // implies; the fixed point is typically within a decade of it.
  const double h_seed = SilvermanBandwidth(samples);
  const double t_seed = (h_seed / r) * (h_seed / r);
  const BotevSelection selection = SolveBotevFixedPoint(n, i_sq, a2, t_seed);
  if (selection.fallback) {
    obs.GetCounter("kde_botev_fallbacks_total").Increment();
  }
  obs.GetCounter("kde_botev_iterations_total").Increment(selection.evaluations);
  if (evaluations_out != nullptr) *evaluations_out += selection.evaluations;
  const double h = std::sqrt(selection.t_star) * r;
  if (!(h > 0.0) || !std::isfinite(h)) return SilvermanBandwidth(samples);
  return h;
}

}  // namespace

std::vector<double> LinearBinning(std::span<const double> samples, double lo,
                                  double hi, size_t grid_size) {
  std::vector<double> bins(grid_size, 0.0);
  const double step = (hi - lo) / static_cast<double>(grid_size - 1);
  for (const double x : samples) {
    double pos = (x - lo) / step;
    pos = std::clamp(pos, 0.0, static_cast<double>(grid_size - 1));
    const size_t idx =
        std::min(static_cast<size_t>(pos), grid_size - 2);
    const double frac = pos - static_cast<double>(idx);
    bins[idx] += 1.0 - frac;
    bins[idx + 1] += frac;
  }
  return bins;
}

Status KdeOptions::Validate() const {
  if (grid_size < 16) {
    return Status::InvalidArgument("KdeOptions.grid_size must be >= 16");
  }
  if (bandwidth < 0.0) {
    return Status::InvalidArgument("KdeOptions.bandwidth must be >= 0");
  }
  if (padding_fraction < 0.0) {
    return Status::InvalidArgument(
        "KdeOptions.padding_fraction must be >= 0");
  }
  if (binned && !IsPowerOfTwo(grid_size)) {
    return Status::InvalidArgument(
        "binned KDE requires a power-of-two grid_size");
  }
  return Status::Ok();
}

double SilvermanBandwidth(std::span<const double> samples) {
  const double spread = RobustSpread(samples);
  if (spread <= 0.0) return DegenerateFloor(samples);
  return 0.9 * spread *
         std::pow(static_cast<double>(samples.size()), -0.2);
}

double ScottBandwidth(std::span<const double> samples) {
  const double sd = ComputeMoments(samples).SampleStdDev();
  if (sd <= 0.0) return DegenerateFloor(samples);
  return 1.06 * sd * std::pow(static_cast<double>(samples.size()), -0.2);
}

Result<double> BotevBandwidth(std::span<const double> samples,
                              size_t grid_size, const ObsOptions& obs,
                              DctPlan* plan) {
  if (samples.size() < 2) {
    return Status::InvalidArgument("BotevBandwidth needs >= 2 samples");
  }
  if (!IsPowerOfTwo(grid_size) || grid_size < 16) {
    return Status::InvalidArgument(
        "BotevBandwidth grid_size must be a power of two >= 16");
  }
  const auto [min_it, max_it] =
      std::minmax_element(samples.begin(), samples.end());
  double lo = *min_it;
  double hi = *max_it;
  if (!(hi > lo)) return DegenerateFloor(samples);
  const double range = hi - lo;
  lo -= range / 10.0;
  hi += range / 10.0;
  const double r = hi - lo;

  // Histogram of probability mass per bin, then DCT-II coefficients.
  DctPlan local_plan;
  DctPlan& dct_plan = plan != nullptr ? *plan : local_plan;
  std::vector<double> bins = LinearBinning(samples, lo, hi, grid_size);
  const double n_dbl = static_cast<double>(samples.size());
  for (double& b : bins) b /= n_dbl;
  std::vector<double> dct;
  VASTATS_RETURN_IF_ERROR(dct_plan.Dct2(bins, dct));
  return BotevFromDct(dct, samples, n_dbl, r, obs);
}

Result<double> SelectBandwidth(std::span<const double> samples,
                               const KdeOptions& options,
                               const ObsOptions& obs, DctPlan* plan) {
  if (options.bandwidth > 0.0) return options.bandwidth;
  switch (options.rule) {
    case BandwidthRule::kSilverman:
      return SilvermanBandwidth(samples);
    case BandwidthRule::kScott:
      return ScottBandwidth(samples);
    case BandwidthRule::kBotev: {
      size_t grid = options.grid_size;
      if (!IsPowerOfTwo(grid)) {
        // The selector's DCT needs a power-of-two grid; substitute the
        // paper's default and surface the substitution.
        grid = 4096;
        obs.GetCounter("kde_botev_grid_substituted_total").Increment();
      }
      return BotevBandwidth(samples, grid, obs, plan);
    }
  }
  return Status::Internal("unknown BandwidthRule");
}

Result<Kde> EstimateKde(std::span<const double> samples,
                        const KdeOptions& options, const ObsOptions& obs,
                        DctPlan* plan) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (samples.size() < 2) {
    return Status::InvalidArgument("EstimateKde needs >= 2 samples");
  }
  // A NaN sample would reach LinearBinning's double->size_t cast (UB) and
  // poison the bandwidth selectors, so reject non-finite input up front.
  for (const double x : samples) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("EstimateKde samples must be finite");
    }
  }
  ScopedSpan span(obs, "kde_estimate");
  span.Annotate("samples", static_cast<int64_t>(samples.size()));
  span.Annotate("grid_size", static_cast<int64_t>(options.grid_size));
  span.Annotate("path", options.binned ? "binned_dct" : "direct");
  if (options.binned) {
    obs.GetCounter("kde_binned_path_total").Increment();
  } else {
    obs.GetCounter("kde_direct_path_total").Increment();
  }

  DctPlan local_plan;
  DctPlan& dct_plan = plan != nullptr ? *plan : local_plan;
  const uint64_t plan_hits_before = dct_plan.cache_hits();
  const uint64_t plan_misses_before = dct_plan.cache_misses();

  const size_t m = options.grid_size;
  const double n_dbl = static_cast<double>(samples.size());
  const auto [min_it, max_it] =
      std::minmax_element(samples.begin(), samples.end());
  const double data_min = *min_it;
  const double data_max = *max_it;
  const bool fixed_range = options.x_min < options.x_max;

  // Candidate grid bounds before the bandwidth is known. The h-dependent
  // widening below only moves them when h exceeds the data range.
  double lo, hi;
  if (fixed_range) {
    lo = options.x_min;
    hi = options.x_max;
  } else {
    const double data_span = data_max - data_min;
    lo = data_min - options.padding_fraction * data_span;
    hi = data_max + options.padding_fraction * data_span;
    if (!(lo < hi)) {
      lo -= 1.0;
      hi += 1.0;
    }
  }

  // Bandwidth selection. Under the Botev rule on a power-of-two grid the
  // selector runs on the evaluation grid and bounds themselves, so its
  // LinearBinning + DCT-II pass is shared with the binned smoothing below
  // instead of re-binning and re-transforming.
  double h = 0.0;
  std::vector<double> bins;  // binned unit mass on [lo, hi]
  std::vector<double> dct;   // its DCT-II coefficients
  bool have_dct = false;
  uint64_t botev_evaluations = 0;
  const bool botev_on_grid = options.bandwidth <= 0.0 &&
                             options.rule == BandwidthRule::kBotev &&
                             IsPowerOfTwo(m) && data_max > data_min;
  if (botev_on_grid) {
    bins = LinearBinning(samples, lo, hi, m);
    for (double& b : bins) b /= n_dbl;
    VASTATS_RETURN_IF_ERROR(dct_plan.Dct2(bins, dct));
    have_dct = true;
    VASTATS_ASSIGN_OR_RETURN(h, BotevFromDct(dct, samples, n_dbl, hi - lo, obs,
                                             &botev_evaluations));
  } else {
    if (options.bandwidth <= 0.0 && options.rule == BandwidthRule::kBotev &&
        !IsPowerOfTwo(m)) {
      span.Annotate("botev_grid_substituted", true);
    }
    VASTATS_ASSIGN_OR_RETURN(h,
                             SelectBandwidth(samples, options, obs, &dct_plan));
  }

  if (!fixed_range) {
    // The grid must span at least one bandwidth; recompute the bounds now
    // that h is known and drop the cached transform if they moved.
    const double grid_span = std::max(data_max - data_min, h);
    double lo_h = data_min - options.padding_fraction * grid_span;
    double hi_h = data_max + options.padding_fraction * grid_span;
    if (!(lo_h < hi_h)) {
      lo_h -= 1.0;
      hi_h += 1.0;
    }
    if (lo_h != lo || hi_h != hi) {
      lo = lo_h;
      hi = hi_h;
      have_dct = false;
    }
  }

  // A kernel narrower than the grid resolution cannot be tabulated
  // faithfully (it aliases between grid points); clamp to ~1.5 cells. This
  // matters for near-discrete answer sets, where plug-in selectors drive h
  // towards zero.
  h = std::max(h, 1.5 * (hi - lo) / static_cast<double>(m - 1));
  span.Annotate("bandwidth", h);
  if (botev_evaluations > 0) {
    span.Annotate("botev_evaluations",
                  static_cast<int64_t>(botev_evaluations));
  }

  std::vector<double> values(m, 0.0);

  if (!options.binned) {
    // Direct summation: f(x) = 1/(n h) * sum K((x - x_i)/h).
    const double step = (hi - lo) / static_cast<double>(m - 1);
    const double inv_h = 1.0 / h;
    const double norm = 1.0 / (n_dbl * h * kSqrt2Pi);
    // Kernels beyond ~8.5 sigma contribute < 1e-16; skip them.
    const double cutoff = 8.5 * h;
    std::vector<double> sorted(samples.begin(), samples.end());
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < m; ++i) {
      const double x = lo + static_cast<double>(i) * step;
      const auto first = std::lower_bound(sorted.begin(), sorted.end(),
                                          x - cutoff);
      const auto last =
          std::upper_bound(first, sorted.end(), x + cutoff);
      double sum = 0.0;
      for (auto it = first; it != last; ++it) {
        const double u = (x - *it) * inv_h;
        sum += std::exp(-0.5 * u * u);
      }
      values[i] = norm * sum;
    }
  } else {
    // Linear binning + diffusion smoothing in the DCT domain (reflective
    // boundaries). Exact Gaussian smoothing of the binned measure.
    if (!have_dct) {
      bins = LinearBinning(samples, lo, hi, m);
      for (double& b : bins) b /= n_dbl;
      VASTATS_RETURN_IF_ERROR(dct_plan.Dct2(bins, dct));
    }
    const double r = hi - lo;
    const double t = (h / r) * (h / r);
    // exp(-0.5 k^2 pi^2 t) by the same two-factor recurrence as the Botev
    // stage sums; once the factor underflows the remaining coefficients
    // are exact zeros.
    const double c = 0.5 * kPi * kPi * t;
    const double q2 = std::exp(-2.0 * c);
    double e = 1.0;                 // exp(-c * 0^2)
    double gap = std::exp(-c);      // exp(-c * 1) = e_1 / e_0
    for (size_t k = 0; k < m; ++k) {
      dct[k] *= e;
      e *= gap;
      gap *= q2;
      if (e < 1e-300) {
        std::fill(dct.begin() + static_cast<ptrdiff_t>(k) + 1, dct.end(),
                  0.0);
        break;
      }
    }
    std::vector<double> smooth;
    VASTATS_RETURN_IF_ERROR(dct_plan.Dct3(dct, smooth));
    // Dct3(Dct2(x)) = (m/2) x, so masses are (2/m) * smooth; densities
    // divide by the bin width r/(m-1).
    const double scale = 2.0 / static_cast<double>(m) *
                         static_cast<double>(m - 1) / r;
    for (size_t i = 0; i < m; ++i) {
      values[i] = std::max(0.0, smooth[i] * scale);
    }
  }

  obs.GetCounter("kde_dct_plan_hits_total")
      .Increment(dct_plan.cache_hits() - plan_hits_before);
  obs.GetCounter("kde_dct_plan_misses_total")
      .Increment(dct_plan.cache_misses() - plan_misses_before);

  VASTATS_ASSIGN_OR_RETURN(GridDensity density,
                           GridDensity::Create(lo, hi, std::move(values)));
  VASTATS_RETURN_IF_ERROR(density.Normalize());
  return Kde{std::move(density), h};
}

}  // namespace vastats
