#include "density/kde.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "util/fft.h"
#include "util/math.h"

namespace vastats {
namespace {

// Smallest bandwidth returned for degenerate samples, relative to |mean|.
constexpr double kDegenerateBandwidthFloor = 1e-9;

double RobustSpread(std::span<const double> samples) {
  const Moments moments = ComputeMoments(samples);
  const double sd = moments.SampleStdDev();
  const double q75 = Quantile(samples, 0.75).value_or(0.0);
  const double q25 = Quantile(samples, 0.25).value_or(0.0);
  const double iqr_sigma = (q75 - q25) / 1.34;
  double spread = sd;
  if (iqr_sigma > 0.0) spread = std::min(spread, iqr_sigma);
  if (spread <= 0.0) spread = sd;
  return spread;
}

double DegenerateFloor(std::span<const double> samples) {
  const double scale = std::fabs(ComputeMoments(samples).mean());
  return std::max(scale, 1.0) * kDegenerateBandwidthFloor;
}

// Counts of `samples` linearly split over `grid_size` bins spanning
// [lo, hi]; each sample contributes weight 1 shared between its two
// neighboring bin centers.
std::vector<double> LinearBinning(std::span<const double> samples, double lo,
                                  double hi, size_t grid_size) {
  std::vector<double> bins(grid_size, 0.0);
  const double step = (hi - lo) / static_cast<double>(grid_size - 1);
  for (const double x : samples) {
    double pos = (x - lo) / step;
    pos = std::clamp(pos, 0.0, static_cast<double>(grid_size - 1));
    const size_t idx =
        std::min(static_cast<size_t>(pos), grid_size - 2);
    const double frac = pos - static_cast<double>(idx);
    bins[idx] += 1.0 - frac;
    bins[idx + 1] += frac;
  }
  return bins;
}

// x^s for small non-negative integer s by repeated multiplication (the
// inner loops below would otherwise spend most of their time in pow()).
inline double IntPow(double x, int s) {
  double result = 1.0;
  while (s-- > 0) result *= x;
  return result;
}

// sum_k i_sq[k]^s * a2[k] * exp(-i_sq[k] * pi^2 * t). i_sq is ascending, so
// once the exponent underflows every later term is zero.
double BotevStageSum(int s, double t, const std::vector<double>& i_sq,
                     const std::vector<double>& a2) {
  const double pi_sq_t = kPi * kPi * t;
  double sum = 0.0;
  for (size_t k = 0; k < a2.size(); ++k) {
    const double exponent = i_sq[k] * pi_sq_t;
    if (exponent > 745.0) break;  // exp underflows to 0
    sum += IntPow(i_sq[k], s) * a2[k] * std::exp(-exponent);
  }
  return sum;
}

// One evaluation of Botev's fixed-point map gamma^[l](t) (his Algorithm 1,
// l = 7 stages), returning the candidate t implied by plug-in stage 2.
double BotevFixedPoint(double t, double n, const std::vector<double>& i_sq,
                       const std::vector<double>& a2) {
  constexpr int kStages = 7;
  double f = 2.0 * std::pow(kPi, 2 * kStages) *
             BotevStageSum(kStages, t, i_sq, a2);
  for (int s = kStages - 1; s >= 2; --s) {
    // K0 = (2s-1)!! / sqrt(2*pi).
    double k0 = 1.0;
    for (int j = 1; j <= 2 * s - 1; j += 2) k0 *= static_cast<double>(j);
    k0 /= kSqrt2Pi;
    const double c = (1.0 + std::pow(0.5, s + 0.5)) / 3.0;
    const double time =
        std::pow(2.0 * c * k0 / (n * f), 2.0 / (3.0 + 2.0 * s));
    f = 2.0 * std::pow(kPi, 2 * s) * BotevStageSum(s, time, i_sq, a2);
  }
  return std::pow(2.0 * n * std::sqrt(kPi) * f, -0.4);
}

}  // namespace

Status KdeOptions::Validate() const {
  if (grid_size < 16) {
    return Status::InvalidArgument("KdeOptions.grid_size must be >= 16");
  }
  if (bandwidth < 0.0) {
    return Status::InvalidArgument("KdeOptions.bandwidth must be >= 0");
  }
  if (padding_fraction < 0.0) {
    return Status::InvalidArgument(
        "KdeOptions.padding_fraction must be >= 0");
  }
  if (binned && !IsPowerOfTwo(grid_size)) {
    return Status::InvalidArgument(
        "binned KDE requires a power-of-two grid_size");
  }
  return Status::Ok();
}

double SilvermanBandwidth(std::span<const double> samples) {
  const double spread = RobustSpread(samples);
  if (spread <= 0.0) return DegenerateFloor(samples);
  return 0.9 * spread *
         std::pow(static_cast<double>(samples.size()), -0.2);
}

double ScottBandwidth(std::span<const double> samples) {
  const double sd = ComputeMoments(samples).SampleStdDev();
  if (sd <= 0.0) return DegenerateFloor(samples);
  return 1.06 * sd * std::pow(static_cast<double>(samples.size()), -0.2);
}

Result<double> BotevBandwidth(std::span<const double> samples,
                              size_t grid_size, const ObsOptions& obs) {
  if (samples.size() < 2) {
    return Status::InvalidArgument("BotevBandwidth needs >= 2 samples");
  }
  if (!IsPowerOfTwo(grid_size) || grid_size < 16) {
    return Status::InvalidArgument(
        "BotevBandwidth grid_size must be a power of two >= 16");
  }
  const auto [min_it, max_it] =
      std::minmax_element(samples.begin(), samples.end());
  double lo = *min_it;
  double hi = *max_it;
  if (!(hi > lo)) return DegenerateFloor(samples);
  const double range = hi - lo;
  lo -= range / 10.0;
  hi += range / 10.0;
  const double r = hi - lo;

  // Histogram of probability mass per bin, then DCT-II coefficients.
  std::vector<double> bins = LinearBinning(samples, lo, hi, grid_size);
  const double n_dbl = static_cast<double>(samples.size());
  for (double& b : bins) b /= n_dbl;
  VASTATS_ASSIGN_OR_RETURN(const std::vector<double> dct, Dct2(bins));

  std::vector<double> i_sq(grid_size - 1);
  std::vector<double> a2(grid_size - 1);
  for (size_t k = 1; k < grid_size; ++k) {
    i_sq[k - 1] = static_cast<double>(k) * static_cast<double>(k);
    a2[k - 1] = dct[k] * dct[k];
  }

  // Bracket the root of F(t) = gamma(t) - t on (0, 0.1], then bisect.
  uint64_t evaluations = 0;
  auto f = [&](double t) {
    ++evaluations;
    return BotevFixedPoint(t, n_dbl, i_sq, a2) - t;
  };
  double t_lo = 0.0, t_hi = 0.0;
  double prev_t = 1e-12;
  double prev_f = f(prev_t);
  bool bracketed = false;
  for (int step = 1; step <= 64; ++step) {
    const double t = 0.1 * static_cast<double>(step) / 64.0;
    const double ft = f(t);
    if (std::isfinite(prev_f) && std::isfinite(ft) &&
        ((prev_f <= 0.0) != (ft <= 0.0))) {
      t_lo = prev_t;
      t_hi = t;
      bracketed = true;
      break;
    }
    prev_t = t;
    prev_f = ft;
  }
  double t_star;
  if (bracketed) {
    bool lo_negative = f(t_lo) <= 0.0;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (t_lo + t_hi);
      const double fm = f(mid);
      if (!std::isfinite(fm)) break;
      if ((fm <= 0.0) == lo_negative) {
        t_lo = mid;
      } else {
        t_hi = mid;
      }
    }
    t_star = 0.5 * (t_lo + t_hi);
  } else {
    // Reference implementation's fallback.
    t_star = 0.28 * std::pow(n_dbl, -0.4);
    obs.GetCounter("kde_botev_fallbacks_total").Increment();
  }
  obs.GetCounter("kde_botev_iterations_total").Increment(evaluations);
  const double h = std::sqrt(t_star) * r;
  if (!(h > 0.0) || !std::isfinite(h)) return SilvermanBandwidth(samples);
  return h;
}

Result<double> SelectBandwidth(std::span<const double> samples,
                               const KdeOptions& options,
                               const ObsOptions& obs) {
  if (options.bandwidth > 0.0) return options.bandwidth;
  switch (options.rule) {
    case BandwidthRule::kSilverman:
      return SilvermanBandwidth(samples);
    case BandwidthRule::kScott:
      return ScottBandwidth(samples);
    case BandwidthRule::kBotev: {
      const size_t grid =
          IsPowerOfTwo(options.grid_size) ? options.grid_size : size_t{4096};
      return BotevBandwidth(samples, grid, obs);
    }
  }
  return Status::Internal("unknown BandwidthRule");
}

Result<Kde> EstimateKde(std::span<const double> samples,
                        const KdeOptions& options, const ObsOptions& obs) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (samples.size() < 2) {
    return Status::InvalidArgument("EstimateKde needs >= 2 samples");
  }
  // A NaN sample would reach LinearBinning's double->size_t cast (UB) and
  // poison the bandwidth selectors, so reject non-finite input up front.
  for (const double x : samples) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("EstimateKde samples must be finite");
    }
  }
  ScopedSpan span(obs.trace, "kde_estimate");
  span.Annotate("samples", static_cast<int64_t>(samples.size()));
  span.Annotate("grid_size", static_cast<int64_t>(options.grid_size));
  span.Annotate("path", options.binned ? "binned_dct" : "direct");
  if (options.binned) {
    obs.GetCounter("kde_binned_path_total").Increment();
  } else {
    obs.GetCounter("kde_direct_path_total").Increment();
  }
  VASTATS_ASSIGN_OR_RETURN(double h, SelectBandwidth(samples, options, obs));

  double lo, hi;
  if (options.x_min < options.x_max) {
    lo = options.x_min;
    hi = options.x_max;
  } else {
    const auto [min_it, max_it] =
        std::minmax_element(samples.begin(), samples.end());
    const double span = std::max(*max_it - *min_it, h);
    lo = *min_it - options.padding_fraction * span;
    hi = *max_it + options.padding_fraction * span;
    if (!(lo < hi)) {
      lo -= 1.0;
      hi += 1.0;
    }
  }

  // A kernel narrower than the grid resolution cannot be tabulated
  // faithfully (it aliases between grid points); clamp to ~1.5 cells. This
  // matters for near-discrete answer sets, where plug-in selectors drive h
  // towards zero.
  const size_t m = options.grid_size;
  h = std::max(h, 1.5 * (hi - lo) / static_cast<double>(m - 1));
  span.Annotate("bandwidth", h);

  std::vector<double> values(m, 0.0);
  const double n_dbl = static_cast<double>(samples.size());

  if (!options.binned) {
    // Direct summation: f(x) = 1/(n h) * sum K((x - x_i)/h).
    const double step = (hi - lo) / static_cast<double>(m - 1);
    const double inv_h = 1.0 / h;
    const double norm = 1.0 / (n_dbl * h * kSqrt2Pi);
    // Kernels beyond ~8.5 sigma contribute < 1e-16; skip them.
    const double cutoff = 8.5 * h;
    std::vector<double> sorted(samples.begin(), samples.end());
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < m; ++i) {
      const double x = lo + static_cast<double>(i) * step;
      const auto first = std::lower_bound(sorted.begin(), sorted.end(),
                                          x - cutoff);
      const auto last =
          std::upper_bound(first, sorted.end(), x + cutoff);
      double sum = 0.0;
      for (auto it = first; it != last; ++it) {
        const double u = (x - *it) * inv_h;
        sum += std::exp(-0.5 * u * u);
      }
      values[i] = norm * sum;
    }
  } else {
    // Linear binning + diffusion smoothing in the DCT domain (reflective
    // boundaries). Exact Gaussian smoothing of the binned measure.
    std::vector<double> bins = LinearBinning(samples, lo, hi, m);
    for (double& b : bins) b /= n_dbl;
    VASTATS_ASSIGN_OR_RETURN(std::vector<double> coeff, Dct2(bins));
    const double r = hi - lo;
    const double t = (h / r) * (h / r);
    for (size_t k = 0; k < m; ++k) {
      const double kk = static_cast<double>(k);
      coeff[k] *= std::exp(-0.5 * kk * kk * kPi * kPi * t);
    }
    VASTATS_ASSIGN_OR_RETURN(const std::vector<double> smooth, Dct3(coeff));
    // Dct3(Dct2(x)) = (m/2) x, so masses are (2/m) * smooth; densities
    // divide by the bin width r/(m-1).
    const double scale = 2.0 / static_cast<double>(m) *
                         static_cast<double>(m - 1) / r;
    for (size_t i = 0; i < m; ++i) {
      values[i] = std::max(0.0, smooth[i] * scale);
    }
  }

  VASTATS_ASSIGN_OR_RETURN(GridDensity density,
                           GridDensity::Create(lo, hi, std::move(values)));
  VASTATS_RETURN_IF_ERROR(density.Normalize());
  return Kde{std::move(density), h};
}

}  // namespace vastats
