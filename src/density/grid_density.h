// A probability density function tabulated on a uniform grid.
//
// This is the representation the extraction pipeline works with: KDE
// produces a GridDensity, the greedy CIO algorithm consumes one, and the
// distribution distances integrate over pairs of them. Integration uses the
// trapezoid rule on the grid; evaluation between grid points interpolates
// linearly; the density is zero outside [x_min, x_max].

#ifndef VASTATS_DENSITY_GRID_DENSITY_H_
#define VASTATS_DENSITY_GRID_DENSITY_H_

#include <cstddef>
#include <span>
#include <vector>

#include "util/status.h"

namespace vastats {

// A local maximum of a GridDensity.
struct Mode {
  double x = 0.0;       // location
  double height = 0.0;  // density value at the mode
  size_t index = 0;     // grid index
};

class GridDensity {
 public:
  // Creates a density over [x_min, x_max] with the given grid values.
  // Requires x_min < x_max, values.size() >= 2, and all values >= 0.
  static Result<GridDensity> Create(double x_min, double x_max,
                                    std::vector<double> values);

  // Grid geometry.
  double x_min() const { return x_min_; }
  double x_max() const { return x_max_; }
  size_t size() const { return values_.size(); }
  double step() const { return step_; }
  double XAt(size_t i) const { return x_min_ + static_cast<double>(i) * step_; }
  std::span<const double> values() const { return values_; }
  double range() const { return x_max_ - x_min_; }

  // Density at `x` (linear interpolation; 0 outside the grid).
  double ValueAt(double x) const;

  // Trapezoid integral of the density over [a, b] (clipped to the grid).
  double IntegrateRange(double a, double b) const;

  // Trapezoid integral over the whole grid.
  double TotalMass() const;

  // Scales the density so TotalMass() == 1. Fails when the mass is zero.
  Status Normalize();

  // CDF at `x` (0 left of the grid, TotalMass() right of it).
  double Cdf(double x) const;

  // Smallest x with Cdf(x) >= q * TotalMass(), for q in [0, 1].
  Result<double> QuantileOf(double q) const;

  // Local maxima, tallest first. `min_relative_height` discards modes below
  // that fraction of the global maximum (guards against estimation noise).
  // Plateau maxima report their midpoint. Boundary points count as modes
  // when they exceed their single neighbor.
  std::vector<Mode> FindModes(double min_relative_height = 0.0) const;

  // Topographic prominence of the mode at grid index `mode_index`: how far
  // the density must descend from the mode before climbing to higher
  // terrain (the mode's height itself when no higher terrain exists). Used
  // to tell real structure from estimation wiggle.
  double ModeProminence(size_t mode_index) const;

  // Modes whose prominence reaches `min_prominence_fraction` of the global
  // maximum, tallest first. A small KDE ripple riding on a big hump has
  // high *height* but near-zero *prominence*, so this filter isolates the
  // genuinely separate peaks.
  std::vector<Mode> FindProminentModes(double min_prominence_fraction) const;

  // Point-wise sum of `weight * other` resampled onto this grid (used to
  // accumulate the bagged KDE). `other` may have a different grid.
  void AccumulateScaled(const GridDensity& other, double weight);

  // Returns a copy evaluated on a new uniform grid over [x_min, x_max] with
  // `num_points` points (values interpolated, zero outside the source grid).
  Result<GridDensity> Resample(double x_min, double x_max,
                               size_t num_points) const;

 private:
  GridDensity(double x_min, double x_max, std::vector<double> values);

  void RebuildCdf() const;

  double x_min_ = 0.0;
  double x_max_ = 1.0;
  double step_ = 1.0;
  std::vector<double> values_;
  // Lazily built cumulative trapezoid integral; invalidated by mutation.
  mutable std::vector<double> cdf_;
};

}  // namespace vastats

#endif  // VASTATS_DENSITY_GRID_DENSITY_H_
