// Histogram density estimation — the alternative §2.2 weighs against KDE
// ("we use kernel rather than histogram density estimation due to
// properties such as smoothness, independence of parameters like bin size,
// and because KDE often converges to the true density faster").
//
// Provided so that claim can be tested empirically (see
// bench/ablation_density_estimators and the convergence tests): estimate a
// GridDensity by binning, with the usual automatic bin-width rules.

#ifndef VASTATS_DENSITY_HISTOGRAM_H_
#define VASTATS_DENSITY_HISTOGRAM_H_

#include <span>

#include "density/grid_density.h"
#include "util/status.h"

namespace vastats {

enum class BinRule {
  kSturges,         // ceil(log2 n) + 1 bins
  kScott,           // width 3.49 * sd * n^(-1/3)
  kFreedmanDiaconis,  // width 2 * IQR * n^(-1/3)
  kFixedCount,      // HistogramOptions.num_bins
};

struct HistogramOptions {
  BinRule rule = BinRule::kFreedmanDiaconis;
  int num_bins = 64;  // used by kFixedCount (and as fallback)
  // Padding added on each side of the data range, as a fraction of it.
  double padding_fraction = 0.0;

  Status Validate() const;
};

// Number of bins the rule chooses for `samples` (>= 1).
Result<int> ChooseNumBins(std::span<const double> samples,
                          const HistogramOptions& options);

// Histogram density normalized to unit mass, tabulated as a GridDensity
// (bin centers become grid values; the returned grid has num_bins points).
// Requires >= 2 samples spanning a non-zero range.
Result<GridDensity> EstimateHistogram(std::span<const double> samples,
                                      const HistogramOptions& options = {});

}  // namespace vastats

#endif  // VASTATS_DENSITY_HISTOGRAM_H_
