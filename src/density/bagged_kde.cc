#include "density/bagged_kde.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/thread_pool.h"

namespace vastats {

Result<BaggedKde> EstimateBaggedKde(
    std::span<const std::vector<double>> sets,
    std::span<const double> reference_samples, const BaggedKdeOptions& options,
    const ObsOptions& obs, ThreadPool* pool) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (sets.empty()) {
    return Status::InvalidArgument("EstimateBaggedKde needs >= 1 sample set");
  }
  ScopedSpan span(obs, "bagged_kde");
  span.Annotate("sets", static_cast<int64_t>(sets.size()));
  span.Annotate("pool", pool != nullptr);
  span.Annotate("bandwidth_mode",
                options.bandwidth_mode == BandwidthMode::kShared ? "shared"
                                                                 : "per_set");
  obs.GetCounter("bagged_kde_sets_total")
      .Increment(static_cast<uint64_t>(sets.size()));
  for (const std::vector<double>& set : sets) {
    if (set.size() < 2) {
      return Status::InvalidArgument(
          "EstimateBaggedKde: every sample set needs >= 2 points");
    }
  }

  // Common grid across all sets (unless the caller fixed one).
  KdeOptions per_set = options.kde;
  if (!(per_set.x_min < per_set.x_max)) {
    double lo = sets[0][0];
    double hi = sets[0][0];
    for (const std::vector<double>& set : sets) {
      const auto [min_it, max_it] = std::minmax_element(set.begin(), set.end());
      lo = std::min(lo, *min_it);
      hi = std::max(hi, *max_it);
    }
    for (const double x : reference_samples) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    double span = hi - lo;
    if (!(span > 0.0)) span = std::max(std::fabs(lo), 1.0) * 1e-6;
    per_set.x_min = lo - per_set.padding_fraction * span;
    per_set.x_max = hi + per_set.padding_fraction * span;
  }

  const std::span<const double> reference =
      reference_samples.empty() ? std::span<const double>(sets[0])
                                : reference_samples;

  // The serial fit loop and the reported-bandwidth selection share one
  // transform plan; pooled workers each hold their own (thread-local, so
  // pool threads reuse their tables across batches without locking). A
  // plan_provider overrides both with caller-owned per-thread plans.
  DctPlan local_plan;
  DctPlan* const serial_plan =
      options.plan_provider ? options.plan_provider() : &local_plan;
  const uint64_t serial_evictions_before = serial_plan->evictions();

  // Under kShared the selector runs once, on the calling thread, before any
  // fan-out — so pooled and serial runs see the identical h.
  double shared_bandwidth = 0.0;
  if (options.bandwidth_mode == BandwidthMode::kShared) {
    VASTATS_ASSIGN_OR_RETURN(
        shared_bandwidth,
        SelectBandwidth(reference, options.kde, obs, serial_plan));
    per_set.bandwidth = shared_bandwidth;
    obs.GetCounter("bagged_kde_shared_bandwidth_total").Increment();
  }

  // Fit every set (the fits are independent; pooled mode runs them as
  // tasks), then accumulate in set order so pooled and serial results are
  // bit-identical.
  std::vector<std::optional<Kde>> fits(sets.size());
  if (pool != nullptr) {
    // The Trace may only be driven from the calling thread; worker tasks
    // report through the sharded metrics registry only.
    ObsOptions worker_obs;
    worker_obs.metrics = obs.metrics;
    auto task = [&](int s) -> Status {
      // Thread-confined plan cache; never shared across workers, so the
      // mutable static storage cannot leak state between extractions. A
      // plan_provider substitutes its own per-thread plan.
      thread_local DctPlan worker_plan;  // lint-invariants: allow(A5)
      DctPlan* const plan =
          options.plan_provider ? options.plan_provider() : &worker_plan;
      const uint64_t evictions_before = plan->evictions();
      VASTATS_ASSIGN_OR_RETURN(
          fits[static_cast<size_t>(s)],
          EstimateKde(sets[static_cast<size_t>(s)], per_set, worker_obs,
                      plan));
      if (plan->evictions() > evictions_before) {
        worker_obs.GetCounter("dct_plan_evictions_total")
            .Increment(plan->evictions() - evictions_before);
      }
      return Status::Ok();
    };
    PoolMetricsObserver pool_observer(obs);
    VASTATS_RETURN_IF_ERROR(pool->ParallelFor(static_cast<int>(sets.size()),
                                              task, &pool_observer));
  } else {
    for (size_t s = 0; s < sets.size(); ++s) {
      VASTATS_ASSIGN_OR_RETURN(fits[s],
                               EstimateKde(sets[s], per_set, obs, serial_plan));
    }
  }

  BaggedKde out{GridDensity::Create(per_set.x_min, per_set.x_max,
                                    std::vector<double>(
                                        options.kde.grid_size, 0.0))
                    .value(),
                0.0,
                {}};
  out.set_bandwidths.reserve(sets.size());
  const double weight = 1.0 / static_cast<double>(sets.size());
  for (const std::optional<Kde>& kde : fits) {
    out.set_bandwidths.push_back(kde->bandwidth);
    out.density.AccumulateScaled(kde->density, weight);
  }
  VASTATS_RETURN_IF_ERROR(out.density.Normalize());

  // Report the bandwidth of the reference sample (or the first set) — under
  // kShared it is already selected, so no extra selector run is spent.
  if (options.bandwidth_mode == BandwidthMode::kShared) {
    out.bandwidth = shared_bandwidth;
  } else {
    VASTATS_ASSIGN_OR_RETURN(
        out.bandwidth,
        SelectBandwidth(reference, options.kde, obs, serial_plan));
  }
  if (serial_plan->evictions() > serial_evictions_before) {
    obs.GetCounter("dct_plan_evictions_total")
        .Increment(serial_plan->evictions() - serial_evictions_before);
  }
  span.Annotate("bandwidth", out.bandwidth);
  return out;
}

Result<BaggedKde> EstimateBaggedKde(
    std::span<const std::vector<double>> sets,
    std::span<const double> reference_samples, const KdeOptions& options,
    const ObsOptions& obs, ThreadPool* pool) {
  BaggedKdeOptions bagged;
  bagged.kde = options;
  return EstimateBaggedKde(sets, reference_samples, bagged, obs, pool);
}

}  // namespace vastats
