// Persistence for tabulated densities: (x, f) CSV series, exact enough to
// round-trip a GridDensity. Lets a deployment snapshot the viable answer
// distribution of each query epoch, replot it, and measure drift between
// epochs with density/distance.h — complementing the stability score, which
// predicts drift *before* it happens.

#ifndef VASTATS_DENSITY_DENSITY_IO_H_
#define VASTATS_DENSITY_DENSITY_IO_H_

#include <string>

#include "density/grid_density.h"
#include "util/status.h"

namespace vastats {

// Renders the density as CSV with an "x,f" header and one row per grid
// point (17 significant digits, enough for exact double round-trips).
std::string GridDensityToCsv(const GridDensity& density);

// Parses the CSV form. Requires >= 2 rows, strictly increasing uniformly
// spaced x (to 1e-9 relative tolerance), and non-negative finite f.
Result<GridDensity> GridDensityFromCsv(const std::string& csv_text);

// File wrappers.
Status WriteGridDensity(const std::string& path, const GridDensity& density);
Result<GridDensity> ReadGridDensity(const std::string& path);

}  // namespace vastats

#endif  // VASTATS_DENSITY_DENSITY_IO_H_
