// Distances between tabulated densities (paper §2.3).
//
// The stability analysis of §4.4 is built on the L2 norm
// d_L2(p,q) = sqrt(int (p-q)^2) and the Bhattacharyya measure
// d_Bh(p,q) = int sqrt(p*q) (the paper uses the coefficient form).
// Additional classical distances are provided for experimentation.
//
// Densities on different grids are resampled onto a shared grid spanning
// both supports before integrating.

#ifndef VASTATS_DENSITY_DISTANCE_H_
#define VASTATS_DENSITY_DISTANCE_H_

#include <string_view>

#include "density/grid_density.h"
#include "util/status.h"

namespace vastats {

enum class DistanceKind {
  kL2,                        // sqrt(int (p-q)^2 dx)
  kSquaredL2,                 // int (p-q)^2 dx
  kBhattacharyyaCoefficient,  // int sqrt(p q) dx   (paper's d_Bh)
  kBhattacharyyaDistance,     // -ln of the coefficient
  kHellinger,                 // sqrt(1 - coefficient)
  kTotalVariation,            // 0.5 * int |p-q| dx
  kKlDivergence,              // int p ln(p/q) dx (epsilon-regularized)
};

std::string_view DistanceKindToString(DistanceKind kind);

// Computes the selected distance between `p` and `q`.
Result<double> DensityDistance(const GridDensity& p, const GridDensity& q,
                               DistanceKind kind);

}  // namespace vastats

#endif  // VASTATS_DENSITY_DISTANCE_H_
