#include "density/density_io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/csv.h"

namespace vastats {
namespace {

Result<double> ParseNumber(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArgument("not a number: '" + text + "'");
  }
  return value;
}

}  // namespace

std::string GridDensityToCsv(const GridDensity& density) {
  std::string out = "x,f\n";
  char line[80];
  for (size_t i = 0; i < density.size(); ++i) {
    std::snprintf(line, sizeof(line), "%.17g,%.17g\n", density.XAt(i),
                  density.values()[i]);
    out += line;
  }
  return out;
}

Result<GridDensity> GridDensityFromCsv(const std::string& csv_text) {
  VASTATS_ASSIGN_OR_RETURN(const std::vector<CsvRow> rows,
                           ParseCsv(csv_text));
  if (rows.size() < 3 || rows[0].size() != 2 || rows[0][0] != "x" ||
      rows[0][1] != "f") {
    return Status::InvalidArgument(
        "density CSV needs an 'x,f' header and >= 2 data rows");
  }
  std::vector<double> xs, fs;
  xs.reserve(rows.size() - 1);
  fs.reserve(rows.size() - 1);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != 2) {
      return Status::InvalidArgument("row " + std::to_string(r) +
                                     " does not have 2 fields");
    }
    VASTATS_ASSIGN_OR_RETURN(const double x, ParseNumber(rows[r][0]));
    VASTATS_ASSIGN_OR_RETURN(const double f, ParseNumber(rows[r][1]));
    xs.push_back(x);
    fs.push_back(f);
  }
  // Uniform, strictly increasing grid.
  const double step = (xs.back() - xs.front()) /
                      static_cast<double>(xs.size() - 1);
  if (!(step > 0.0)) {
    return Status::InvalidArgument("density CSV grid must be increasing");
  }
  const double tolerance =
      1e-9 * std::max(std::fabs(xs.front()), std::fabs(xs.back())) +
      1e-9 * step;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double expected = xs.front() + step * static_cast<double>(i);
    if (std::fabs(xs[i] - expected) > tolerance) {
      return Status::InvalidArgument(
          "density CSV grid is not uniformly spaced at row " +
          std::to_string(i + 1));
    }
  }
  return GridDensity::Create(xs.front(), xs.back(), std::move(fs));
}

Status WriteGridDensity(const std::string& path,
                        const GridDensity& density) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for write: " + path);
  out << GridDensityToCsv(density);
  if (!out) return Status::Internal("error writing: " + path);
  return Status::Ok();
}

Result<GridDensity> ReadGridDensity(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open density CSV: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return GridDensityFromCsv(buffer.str());
}

}  // namespace vastats
