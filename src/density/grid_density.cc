#include "density/grid_density.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace vastats {

GridDensity::GridDensity(double x_min, double x_max,
                         std::vector<double> values)
    : x_min_(x_min),
      x_max_(x_max),
      step_((x_max - x_min) / static_cast<double>(values.size() - 1)),
      values_(std::move(values)) {}

Result<GridDensity> GridDensity::Create(double x_min, double x_max,
                                        std::vector<double> values) {
  if (!(x_min < x_max)) {
    return Status::InvalidArgument("GridDensity requires x_min < x_max");
  }
  if (values.size() < 2) {
    return Status::InvalidArgument("GridDensity requires >= 2 grid points");
  }
  for (const double v : values) {
    if (!(v >= 0.0) || !std::isfinite(v)) {
      return Status::InvalidArgument(
          "GridDensity values must be finite and non-negative");
    }
  }
  return GridDensity(x_min, x_max, std::move(values));
}

double GridDensity::ValueAt(double x) const {
  if (x < x_min_ || x > x_max_) return 0.0;
  const double pos = (x - x_min_) / step_;
  const size_t lo = std::min(static_cast<size_t>(pos), values_.size() - 2);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] + frac * (values_[lo + 1] - values_[lo]);
}

void GridDensity::RebuildCdf() const {
  cdf_.assign(values_.size(), 0.0);
  for (size_t i = 1; i < values_.size(); ++i) {
    cdf_[i] = cdf_[i - 1] + 0.5 * (values_[i - 1] + values_[i]) * step_;
  }
}

double GridDensity::IntegrateRange(double a, double b) const {
  if (a > b) return 0.0;
  a = std::max(a, x_min_);
  b = std::min(b, x_max_);
  if (a >= b) return 0.0;
  if (cdf_.empty()) RebuildCdf();

  auto cdf_at = [&](double x) {
    const double pos = (x - x_min_) / step_;
    const size_t lo = std::min(static_cast<size_t>(pos), values_.size() - 2);
    const double frac = pos - static_cast<double>(lo);
    // Integral over the partial cell: trapezoid with the interpolated value.
    const double v_lo = values_[lo];
    const double v_x = v_lo + frac * (values_[lo + 1] - v_lo);
    return cdf_[lo] + 0.5 * (v_lo + v_x) * frac * step_;
  };
  return cdf_at(b) - cdf_at(a);
}

double GridDensity::TotalMass() const {
  if (cdf_.empty()) RebuildCdf();
  return cdf_.back();
}

Status GridDensity::Normalize() {
  const double mass = TotalMass();
  if (!(mass > 0.0)) {
    return Status::FailedPrecondition("cannot normalize zero-mass density");
  }
  for (double& v : values_) v /= mass;
  cdf_.clear();
  return Status::Ok();
}

double GridDensity::Cdf(double x) const {
  if (x <= x_min_) return 0.0;
  if (x >= x_max_) return TotalMass();
  return IntegrateRange(x_min_, x);
}

Result<double> GridDensity::QuantileOf(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    return Status::InvalidArgument("QuantileOf requires q in [0,1]");
  }
  const double mass = TotalMass();
  if (!(mass > 0.0)) {
    return Status::FailedPrecondition("QuantileOf on zero-mass density");
  }
  const double target = q * mass;
  if (cdf_.empty()) RebuildCdf();
  // First grid cell whose cumulative mass reaches the target.
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), target);
  if (it == cdf_.begin()) return x_min_;
  if (it == cdf_.end()) return x_max_;
  const size_t hi = static_cast<size_t>(it - cdf_.begin());
  const size_t lo = hi - 1;
  const double need = target - cdf_[lo];
  const double cell = cdf_[hi] - cdf_[lo];
  const double frac = (cell > 0.0) ? need / cell : 0.0;
  return XAt(lo) + frac * step_;
}

std::vector<Mode> GridDensity::FindModes(double min_relative_height) const {
  std::vector<Mode> modes;
  const size_t n = values_.size();
  const double global_max = *std::max_element(values_.begin(), values_.end());
  const double floor_height = min_relative_height * global_max;

  size_t i = 0;
  while (i < n) {
    // Extend over any plateau of equal values.
    size_t j = i;
    while (j + 1 < n && values_[j + 1] == values_[i]) ++j;
    const bool rises_left = (i == 0) || (values_[i - 1] < values_[i]);
    const bool falls_right = (j == n - 1) || (values_[j + 1] < values_[j]);
    if (rises_left && falls_right && values_[i] > 0.0 &&
        values_[i] >= floor_height && !(i == 0 && j == n - 1)) {
      const size_t mid = (i + j) / 2;
      modes.push_back(Mode{XAt(mid), values_[mid], mid});
    }
    i = j + 1;
  }
  std::sort(modes.begin(), modes.end(),
            [](const Mode& a, const Mode& b) { return a.height > b.height; });
  return modes;
}

double GridDensity::ModeProminence(size_t mode_index) const {
  const double height = values_[mode_index];
  // Walk each direction tracking the lowest point passed; stop on terrain
  // higher than the mode. The key saddle is the higher of the two walk
  // minima among directions that found higher terrain.
  double key_saddle = -1.0;
  bool found_higher = false;
  for (const int direction : {-1, +1}) {
    double walk_min = height;
    bool higher = false;
    for (size_t steps = 1;; ++steps) {
      const long long k = static_cast<long long>(mode_index) +
                          direction * static_cast<long long>(steps);
      if (k < 0 || k >= static_cast<long long>(values_.size())) break;
      const double v = values_[static_cast<size_t>(k)];
      if (v > height) {
        higher = true;
        break;
      }
      walk_min = std::min(walk_min, v);
    }
    if (higher) {
      found_higher = true;
      key_saddle = std::max(key_saddle, walk_min);
    }
  }
  // The globally highest mode (no higher terrain anywhere) gets its full
  // height as prominence.
  return found_higher ? height - key_saddle : height;
}

std::vector<Mode> GridDensity::FindProminentModes(
    double min_prominence_fraction) const {
  const std::vector<Mode> candidates = FindModes(0.0);
  if (candidates.empty()) return {};
  const double threshold = min_prominence_fraction * candidates.front().height;
  std::vector<Mode> modes;
  for (const Mode& mode : candidates) {
    if (ModeProminence(mode.index) >= threshold) modes.push_back(mode);
  }
  return modes;
}

void GridDensity::AccumulateScaled(const GridDensity& other, double weight) {
  for (size_t i = 0; i < values_.size(); ++i) {
    values_[i] += weight * other.ValueAt(XAt(i));
  }
  cdf_.clear();
}

Result<GridDensity> GridDensity::Resample(double x_min, double x_max,
                                          size_t num_points) const {
  if (!(x_min < x_max) || num_points < 2) {
    return Status::InvalidArgument("Resample requires x_min < x_max, n >= 2");
  }
  std::vector<double> values(num_points);
  const double step =
      (x_max - x_min) / static_cast<double>(num_points - 1);
  for (size_t i = 0; i < num_points; ++i) {
    values[i] = ValueAt(x_min + static_cast<double>(i) * step);
  }
  return Create(x_min, x_max, std::move(values));
}

}  // namespace vastats
