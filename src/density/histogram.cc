#include "density/histogram.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"

namespace vastats {

Status HistogramOptions::Validate() const {
  if (num_bins < 1) {
    return Status::InvalidArgument("HistogramOptions.num_bins must be >= 1");
  }
  if (padding_fraction < 0.0) {
    return Status::InvalidArgument(
        "HistogramOptions.padding_fraction must be >= 0");
  }
  return Status::Ok();
}

Result<int> ChooseNumBins(std::span<const double> samples,
                          const HistogramOptions& options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (samples.size() < 2) {
    return Status::InvalidArgument("ChooseNumBins needs >= 2 samples");
  }
  // A NaN sample would flow into the bucketing casts below (UB) and poison
  // the moment accumulators, so reject non-finite input up front.
  for (const double x : samples) {
    if (!std::isfinite(x)) {
      return Status::InvalidArgument("histogram samples must be finite");
    }
  }
  const double n = static_cast<double>(samples.size());
  const Moments moments = ComputeMoments(samples);
  const double range = moments.max() - moments.min();

  auto bins_from_width = [&](double width) {
    if (!(width > 0.0) || !(range > 0.0)) return options.num_bins;
    // Heavy-tailed samples can drive the Scott/FD width arbitrarily far
    // below the range, and a double->int cast beyond INT_MAX is UB. Cap
    // first; 2^20 bins is already far past any useful resolution.
    constexpr int kMaxBins = 1 << 20;
    const double raw = std::ceil(range / width);
    if (!(raw < static_cast<double>(kMaxBins))) return kMaxBins;
    return std::max(1, static_cast<int>(raw));
  };

  switch (options.rule) {
    case BinRule::kSturges:
      return static_cast<int>(std::ceil(std::log2(n))) + 1;
    case BinRule::kScott:
      return bins_from_width(3.49 * moments.SampleStdDev() *
                             std::pow(n, -1.0 / 3.0));
    case BinRule::kFreedmanDiaconis: {
      VASTATS_ASSIGN_OR_RETURN(const double q75, Quantile(samples, 0.75));
      VASTATS_ASSIGN_OR_RETURN(const double q25, Quantile(samples, 0.25));
      return bins_from_width(2.0 * (q75 - q25) * std::pow(n, -1.0 / 3.0));
    }
    case BinRule::kFixedCount:
      return options.num_bins;
  }
  return Status::Internal("unknown BinRule");
}

Result<GridDensity> EstimateHistogram(std::span<const double> samples,
                                      const HistogramOptions& options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (samples.size() < 2) {
    return Status::InvalidArgument("EstimateHistogram needs >= 2 samples");
  }
  const auto [min_it, max_it] =
      std::minmax_element(samples.begin(), samples.end());
  double lo = *min_it;
  double hi = *max_it;
  if (!(hi > lo)) {
    return Status::InvalidArgument(
        "EstimateHistogram needs a non-degenerate sample range");
  }
  const double pad = options.padding_fraction * (hi - lo);
  lo -= pad;
  hi += pad;

  VASTATS_ASSIGN_OR_RETURN(int num_bins, ChooseNumBins(samples, options));
  num_bins = std::max(2, num_bins);

  std::vector<double> counts(static_cast<size_t>(num_bins), 0.0);
  const double width = (hi - lo) / static_cast<double>(num_bins);
  for (const double x : samples) {
    int bin = static_cast<int>((x - lo) / width);
    bin = std::clamp(bin, 0, num_bins - 1);
    counts[static_cast<size_t>(bin)] += 1.0;
  }
  // Density value per bin: count / (n * width); tabulated at bin centers.
  const double norm =
      1.0 / (static_cast<double>(samples.size()) * width);
  for (double& c : counts) c *= norm;
  const double center_lo = lo + width / 2.0;
  const double center_hi = hi - width / 2.0;
  VASTATS_ASSIGN_OR_RETURN(
      GridDensity density,
      GridDensity::Create(center_lo, center_hi, std::move(counts)));
  VASTATS_RETURN_IF_ERROR(density.Normalize());
  return density;
}

}  // namespace vastats
