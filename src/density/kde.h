// Gaussian kernel density estimation (paper §2.2 / §4.3).
//
// Two evaluation paths:
//  * binned (the production default): linear binning followed by diffusion
//    smoothing in the DCT domain, O(grid log grid) — the classic fast KDE
//    with reflective boundaries, exact Gaussian smoothing of the linearly
//    binned measure (the only error vs. direct summation is the binning
//    itself, O((range/grid)^2));
//  * direct: each grid point sums the n kernels, O(n * grid) — kept as an
//    opt-in accuracy oracle for tests and ablations.
//
// Three bandwidth selectors:
//  * Silverman's rule-of-thumb 0.9 * min(sd, IQR/1.34) * n^(-1/5);
//  * Scott's normal-reference rule 1.06 * sd * n^(-1/5);
//  * the Botev-Grotowski-Kroese (2010) diffusion plug-in — the "adaptive
//    method [6]" the paper uses to pick h automatically.
//
// When the Botev rule runs inside `EstimateKde` on a power-of-two grid, the
// selector is evaluated on the same grid and bounds as the binned
// evaluation, so its LinearBinning + DCT-II pass is computed once and
// reused for the smoothing step. Callers on a hot loop should pass a
// `DctPlan` (util/fft.h) to amortize the transform setup; plans are
// per-thread, never shared.

#ifndef VASTATS_DENSITY_KDE_H_
#define VASTATS_DENSITY_KDE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "density/grid_density.h"
#include "obs/obs.h"
#include "util/fft.h"
#include "util/status.h"

namespace vastats {

enum class BandwidthRule { kSilverman, kScott, kBotev };

struct KdeOptions {
  BandwidthRule rule = BandwidthRule::kBotev;
  // When > 0, overrides `rule`.
  double bandwidth = 0.0;
  // Number of grid points of the returned density (power of two recommended;
  // the paper's harness uses 4096).
  size_t grid_size = 4096;
  // Fraction of the data range added on each side of the grid.
  double padding_fraction = 0.1;
  // When x_min < x_max, fixes the grid range (used to put every bootstrap
  // set of a bagged estimate on one common grid). Otherwise the range is
  // derived from the data plus padding.
  double x_min = 0.0;
  double x_max = 0.0;
  // Selects the binned DCT evaluation path (default). Set to false for the
  // O(n * grid) direct-summation accuracy oracle. The binned path requires
  // a power-of-two grid_size.
  bool binned = true;

  Status Validate() const;
};

// A density estimate together with the bandwidth that produced it (the
// stability scores of §4.4 need h).
struct Kde {
  GridDensity density;
  double bandwidth = 0.0;
};

// Counts of `samples` linearly split over `grid_size` bins spanning
// [lo, hi]: each sample contributes weight 1 shared between its two
// neighboring bin centers (out-of-range samples clamp to the end bins).
// Requires grid_size >= 2, lo < hi, and finite samples — callers validate.
// Shared by the binned KDE path, the Botev selector, and the binned
// stability Psi (core/stability.h).
std::vector<double> LinearBinning(std::span<const double> samples, double lo,
                                  double hi, size_t grid_size);

// Rule-of-thumb selectors. Return a small positive floor for degenerate
// (constant) samples so downstream code stays finite.
double SilvermanBandwidth(std::span<const double> samples);
double ScottBandwidth(std::span<const double> samples);

// Diffusion plug-in selector; falls back to 0.28 * n^(-2/5) * range (the
// reference implementation's fallback) if the fixed point cannot be
// bracketed. `grid_size` is the internal DCT grid (power of two). `obs`
// (optional) counts fixed-point evaluations and fallbacks. `plan`
// (optional, borrowed) reuses cached DCT tables across calls.
//
// The fixed point of gamma(t) - t is located by a Silverman-seeded
// geometric bracket followed by a tolerance-terminated ITP root-find;
// typical selections converge in ~10-20 map evaluations (the seed counts
// as one) instead of the fixed 64-step scan + 60 bisections this replaces.
Result<double> BotevBandwidth(std::span<const double> samples,
                              size_t grid_size = 4096,
                              const ObsOptions& obs = {},
                              DctPlan* plan = nullptr);

// Applies `options.rule` (or the manual override) to `samples`. Under
// kBotev a non-power-of-two `options.grid_size` is substituted with 4096
// for the selector's internal grid (observable via the
// `kde_botev_grid_substituted_total` counter).
Result<double> SelectBandwidth(std::span<const double> samples,
                               const KdeOptions& options,
                               const ObsOptions& obs = {},
                               DctPlan* plan = nullptr);

// Estimates the density of `samples`; the result is normalized to unit mass
// over its grid. Requires >= 2 samples. `obs` (optional) records a
// `kde_estimate` span (bandwidth, grid size, evaluation path, Botev
// evaluation count) and the direct-vs-binned path counters. `plan`
// (optional, borrowed, per-thread) caches DCT tables across calls; without
// one a throwaway plan is used.
Result<Kde> EstimateKde(std::span<const double> samples,
                        const KdeOptions& options,
                        const ObsOptions& obs = {},
                        DctPlan* plan = nullptr);

}  // namespace vastats

#endif  // VASTATS_DENSITY_KDE_H_
