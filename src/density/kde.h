// Gaussian kernel density estimation (paper §2.2 / §4.3).
//
// Two evaluation paths:
//  * direct: each grid point sums the n kernels, O(n * grid);
//  * binned: linear binning followed by diffusion smoothing in the DCT
//    domain, O(grid log grid) — the classic fast KDE with reflective
//    boundaries, exact for the Gaussian kernel up to binning error.
//
// Three bandwidth selectors:
//  * Silverman's rule-of-thumb 0.9 * min(sd, IQR/1.34) * n^(-1/5);
//  * Scott's normal-reference rule 1.06 * sd * n^(-1/5);
//  * the Botev-Grotowski-Kroese (2010) diffusion plug-in — the "adaptive
//    method [6]" the paper uses to pick h automatically.

#ifndef VASTATS_DENSITY_KDE_H_
#define VASTATS_DENSITY_KDE_H_

#include <cstddef>
#include <span>

#include "density/grid_density.h"
#include "obs/obs.h"
#include "util/status.h"

namespace vastats {

enum class BandwidthRule { kSilverman, kScott, kBotev };

struct KdeOptions {
  BandwidthRule rule = BandwidthRule::kBotev;
  // When > 0, overrides `rule`.
  double bandwidth = 0.0;
  // Number of grid points of the returned density (power of two recommended;
  // the paper's harness uses 4096).
  size_t grid_size = 4096;
  // Fraction of the data range added on each side of the grid.
  double padding_fraction = 0.1;
  // When x_min < x_max, fixes the grid range (used to put every bootstrap
  // set of a bagged estimate on one common grid). Otherwise the range is
  // derived from the data plus padding.
  double x_min = 0.0;
  double x_max = 0.0;
  // Selects the binned DCT path instead of direct summation.
  bool binned = false;

  Status Validate() const;
};

// A density estimate together with the bandwidth that produced it (the
// stability scores of §4.4 need h).
struct Kde {
  GridDensity density;
  double bandwidth = 0.0;
};

// Rule-of-thumb selectors. Return a small positive floor for degenerate
// (constant) samples so downstream code stays finite.
double SilvermanBandwidth(std::span<const double> samples);
double ScottBandwidth(std::span<const double> samples);

// Diffusion plug-in selector; falls back to 0.28 * n^(-2/5) * range (the
// reference implementation's fallback) if the fixed point cannot be
// bracketed. `grid_size` is the internal DCT grid (power of two). `obs`
// (optional) counts fixed-point evaluations and fallbacks.
Result<double> BotevBandwidth(std::span<const double> samples,
                              size_t grid_size = 4096,
                              const ObsOptions& obs = {});

// Applies `options.rule` (or the manual override) to `samples`.
Result<double> SelectBandwidth(std::span<const double> samples,
                               const KdeOptions& options,
                               const ObsOptions& obs = {});

// Estimates the density of `samples`; the result is normalized to unit mass
// over its grid. Requires >= 2 samples. `obs` (optional) records a
// `kde_estimate` span (bandwidth, grid size, evaluation path) and the
// direct-vs-binned path counters.
Result<Kde> EstimateKde(std::span<const double> samples,
                        const KdeOptions& options,
                        const ObsOptions& obs = {});

}  // namespace vastats

#endif  // VASTATS_DENSITY_KDE_H_
