// Bagged kernel density estimation (paper §4.3): estimate a density for
// each bootstrap sample set on one common grid and use the normalized
// point-wise mean of the estimates as the viable answer distribution.
// Bagging smooths out resampling noise and stabilizes the mode structure
// that the CIO algorithm depends on.

#ifndef VASTATS_DENSITY_BAGGED_KDE_H_
#define VASTATS_DENSITY_BAGGED_KDE_H_

#include <functional>
#include <span>
#include <vector>

#include "density/kde.h"
#include "obs/obs.h"
#include "util/status.h"

namespace vastats {

class ThreadPool;

// How the per-set bandwidths of a bagged estimate are chosen.
//  * kPerSet: every bootstrap set runs its own selector — highest fidelity
//    to the paper's procedure, and the selector cost scales with the number
//    of sets.
//  * kShared: the selector runs once on the reference sample and the
//    resulting h is reused for every set (each fit still applies its own
//    grid-resolution clamp). Eliminates ~|S_boot| selector runs per
//    extraction; the bagged density is marginally smoother because the
//    resampling noise of per-set selections is gone.
// Both modes are bit-identical across pool widths (serial included).
enum class BandwidthMode { kPerSet, kShared };

struct BaggedKdeOptions {
  KdeOptions kde;
  BandwidthMode bandwidth_mode = BandwidthMode::kPerSet;
  // Optional transform-plan provider. When set, every fit asks it for the
  // DctPlan of the *calling* thread (pooled workers included), so a serving
  // layer can keep one bounded plan per thread alive across extractions
  // instead of the default function-local / thread_local plans. Providers
  // must hand out one plan per thread — plans are unsynchronized — and only
  // move where the tables live; transform results are unchanged, so the
  // estimate stays bit-identical with or without a provider.
  std::function<DctPlan*()> plan_provider;

  Status Validate() const { return kde.Validate(); }
};

struct BaggedKde {
  GridDensity density;
  // Bandwidth selected on the pooled/original sample (reported as the h of
  // the final estimate, e.g. for stability scores).
  double bandwidth = 0.0;
  // Per-bootstrap-set bandwidths actually used.
  std::vector<double> set_bandwidths;
};

// Estimates one KDE per sample set and averages them point-wise on a grid
// spanning all sets. `reference_samples` (typically the original uniS
// sample) provides the reported bandwidth (and, under kShared, the shared
// per-set bandwidth); it may be empty, in which case the first set is used.
// Any fixed range in `options.kde` is honored. `obs` (optional) records a
// `bagged_kde` span with one `kde_estimate` child per set, plus the set
// counter.
//
// With a `pool`, the per-set fits run as pool tasks and the results are
// accumulated in set order afterwards, so the estimate is bit-identical to
// the serial path. Worker tasks cannot drive the single-threaded Trace:
// in pooled mode the per-set fits report metrics only (no `kde_estimate`
// child spans), and the `bagged_kde` span is annotated `pool=true`. Every
// worker (and the serial loop) holds its own DctPlan, so the hot binned
// path reuses its transform tables without any locking.
Result<BaggedKde> EstimateBaggedKde(
    std::span<const std::vector<double>> sets,
    std::span<const double> reference_samples, const BaggedKdeOptions& options,
    const ObsOptions& obs = {}, ThreadPool* pool = nullptr);

// Convenience overload for per-set bandwidth selection (the default mode).
Result<BaggedKde> EstimateBaggedKde(
    std::span<const std::vector<double>> sets,
    std::span<const double> reference_samples, const KdeOptions& options,
    const ObsOptions& obs = {}, ThreadPool* pool = nullptr);

}  // namespace vastats

#endif  // VASTATS_DENSITY_BAGGED_KDE_H_
