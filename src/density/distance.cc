#include "density/distance.h"

#include <algorithm>
#include <cmath>

namespace vastats {
namespace {

// Trapezoid integral of `f(p_i, q_i)` over a shared grid.
template <typename PointFn>
double IntegratePair(const GridDensity& p, const GridDensity& q,
                     PointFn&& point) {
  const double lo = std::min(p.x_min(), q.x_min());
  const double hi = std::max(p.x_max(), q.x_max());
  const size_t n = std::max(p.size(), q.size());
  const double step = (hi - lo) / static_cast<double>(n - 1);
  double sum = 0.0;
  double prev = point(p.ValueAt(lo), q.ValueAt(lo));
  for (size_t i = 1; i < n; ++i) {
    const double x = lo + static_cast<double>(i) * step;
    const double cur = point(p.ValueAt(x), q.ValueAt(x));
    sum += 0.5 * (prev + cur) * step;
    prev = cur;
  }
  return sum;
}

}  // namespace

std::string_view DistanceKindToString(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kL2:
      return "L2";
    case DistanceKind::kSquaredL2:
      return "L2^2";
    case DistanceKind::kBhattacharyyaCoefficient:
      return "Bhattacharyya coefficient";
    case DistanceKind::kBhattacharyyaDistance:
      return "Bhattacharyya distance";
    case DistanceKind::kHellinger:
      return "Hellinger";
    case DistanceKind::kTotalVariation:
      return "total variation";
    case DistanceKind::kKlDivergence:
      return "KL divergence";
  }
  return "unknown";
}

Result<double> DensityDistance(const GridDensity& p, const GridDensity& q,
                               DistanceKind kind) {
  // IntegratePair divides by max(|p|, |q|) - 1 and interpolates both
  // grids; a density with < 2 points is malformed on either side.
  // GridDensity::Create already rejects such grids, so this guards against
  // densities constructed through any future path.
  if (std::min(p.size(), q.size()) < 2) {
    return Status::InvalidArgument(
        "DensityDistance requires grids with >= 2 points");
  }
  switch (kind) {
    case DistanceKind::kSquaredL2:
      return IntegratePair(p, q, [](double a, double b) {
        const double d = a - b;
        return d * d;
      });
    case DistanceKind::kL2: {
      VASTATS_ASSIGN_OR_RETURN(
          const double sq, DensityDistance(p, q, DistanceKind::kSquaredL2));
      return std::sqrt(sq);
    }
    case DistanceKind::kBhattacharyyaCoefficient:
      return IntegratePair(
          p, q, [](double a, double b) { return std::sqrt(a * b); });
    case DistanceKind::kBhattacharyyaDistance: {
      VASTATS_ASSIGN_OR_RETURN(
          const double bc,
          DensityDistance(p, q, DistanceKind::kBhattacharyyaCoefficient));
      if (!(bc > 0.0)) {
        return Status::FailedPrecondition(
            "Bhattacharyya distance undefined for disjoint supports");
      }
      return -std::log(bc);
    }
    case DistanceKind::kHellinger: {
      VASTATS_ASSIGN_OR_RETURN(
          const double bc,
          DensityDistance(p, q, DistanceKind::kBhattacharyyaCoefficient));
      return std::sqrt(std::max(0.0, 1.0 - bc));
    }
    case DistanceKind::kTotalVariation:
      return 0.5 * IntegratePair(p, q, [](double a, double b) {
               return std::fabs(a - b);
             });
    case DistanceKind::kKlDivergence:
      return IntegratePair(p, q, [](double a, double b) {
        constexpr double kEpsilon = 1e-12;
        if (a <= 0.0) return 0.0;
        return a * std::log(a / std::max(b, kEpsilon));
      });
  }
  return Status::Internal("unknown DistanceKind");
}

}  // namespace vastats
