// Error-handling primitives for the vastats library.
//
// The library does not use C++ exceptions. Fallible operations return either
// a `Status` (for functions without a payload) or a `Result<T>` (a value or a
// `Status`). This mirrors the error model of Arrow and RocksDB.
//
// Example:
//   Result<GridDensity> density = EstimateKde(samples, options);
//   if (!density.ok()) return density.status();
//   Use(density.value());

#ifndef VASTATS_UTIL_STATUS_H_
#define VASTATS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace vastats {

// Machine-readable category for a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
};

// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

// The outcome of a fallible operation: either OK, or a code plus a message.
// Cheap to copy in the OK case (empty message).
//
// [[nodiscard]]: silently dropping a Status defeats the library's no-exception
// error model, so every producer's return value must be consumed (checked,
// propagated, or explicitly voided with a comment saying why).
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "Code: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value of type `T` or the `Status` explaining why it is absent.
//
// `value()` may only be called when `ok()`; this is checked and aborts on
// violation (programmer error, not a recoverable condition).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return SomeStatus;` and `return SomeT;` both
  // work inside functions returning Result<T>.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT
  Result(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when not OK.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckHasValue() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
// Aborts the process with `what` on programmer error (bad Result access).
[[noreturn]] void DieBadAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckHasValue() const {
  if (!ok()) internal::DieBadAccess(status_);
}

}  // namespace vastats

// Propagates a non-OK Status from `expr` out of the enclosing function.
#define VASTATS_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::vastats::Status vastats_status_ = (expr);       \
    if (!vastats_status_.ok()) return vastats_status_; \
  } while (false)

// Evaluates `expr` (a Result<T>); on success assigns the value to `lhs`,
// otherwise returns the error from the enclosing function.
#define VASTATS_ASSIGN_OR_RETURN(lhs, expr)            \
  VASTATS_ASSIGN_OR_RETURN_IMPL(                       \
      VASTATS_STATUS_CONCAT(vastats_result_, __LINE__), lhs, expr)

#define VASTATS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define VASTATS_STATUS_CONCAT(a, b) VASTATS_STATUS_CONCAT_IMPL(a, b)
#define VASTATS_STATUS_CONCAT_IMPL(a, b) a##b

#endif  // VASTATS_UTIL_STATUS_H_
