// Deterministic, seedable random number generation.
//
// `Rng` wraps a xoshiro256++ engine seeded through splitmix64 and provides
// the sampling primitives used across the library (uniforms, normals, gammas,
// Cauchy draws, shuffles, bootstrap index resampling). Unlike the <random>
// distributions, every draw is implemented here, so streams are reproducible
// across standard library implementations — a requirement for the
// experiment harnesses in bench/.
//
// Rng is cheap to construct and copy; distinct seeds give independent-looking
// streams. Not thread-safe; use one Rng per thread.

#ifndef VASTATS_UTIL_RANDOM_H_
#define VASTATS_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vastats {

class Rng {
 public:
  using result_type = uint64_t;

  // Seeds the engine; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  result_type operator()() { return NextUint64(); }

  // Returns the next raw 64-bit word from the engine.
  uint64_t NextUint64();

  // Uniform double in [0, 1).
  double Uniform01();

  // Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  // Uniform integer in the closed range [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Standard normal draw (Marsaglia polar method; one value cached).
  double StandardNormal();

  // Normal draw with the given mean and standard deviation (sigma >= 0).
  double Normal(double mean, double sigma);

  // Exponential draw with the given rate (lambda > 0).
  double Exponential(double lambda);

  // Cauchy draw with the given location and scale (scale > 0).
  double Cauchy(double location, double scale);

  // Gamma draw with the given shape k > 0 and scale theta > 0
  // (Marsaglia-Tsang; handles k < 1 via the boosting transform).
  double Gamma(double shape, double scale);

  // In-place Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  // Returns `count` indices drawn uniformly with replacement from [0, n).
  // This is the bootstrap resampling primitive. Requires n > 0.
  std::vector<int> ResampleIndices(int n, int count);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace vastats

#endif  // VASTATS_UTIL_RANDOM_H_
