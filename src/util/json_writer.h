// Minimal JSON emitter (objects, arrays, strings, numbers, booleans, null)
// used to publish answer statistics to downstream consumers. Writing only;
// the library has no need to parse JSON.

#ifndef VASTATS_UTIL_JSON_WRITER_H_
#define VASTATS_UTIL_JSON_WRITER_H_

#include <string>
#include <string_view>
#include <vector>

namespace vastats {

// Builds a JSON document incrementally:
//
//   JsonWriter json;
//   json.BeginObject();
//   json.Key("mean");
//   json.Number(92.7);
//   json.Key("intervals");
//   json.BeginArray();
//   ...
//   json.EndArray();
//   json.EndObject();
//   std::string text = std::move(json).Finish();
//
// The writer inserts commas automatically. Mis-nesting (EndArray without
// BeginArray etc.) is a programmer error and aborts in debug builds via the
// internal checks; Finish() returns whatever was built.
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Writes an object key; must be followed by exactly one value.
  void Key(std::string_view name);

  void String(std::string_view value);
  // Non-finite doubles are emitted as null (JSON has no NaN/inf).
  void Number(double value);
  void Int(int64_t value);
  void Bool(bool value);
  void Null();

  // Convenience: Key + value. The const char* overload exists because a
  // string literal would otherwise prefer the bool overload (pointer->bool
  // is a standard conversion, beating the user-defined string_view one).
  void KeyValue(std::string_view name, std::string_view value);
  void KeyValue(std::string_view name, const char* value) {
    KeyValue(name, std::string_view(value));
  }
  void KeyValue(std::string_view name, double value);
  void KeyValue(std::string_view name, int64_t value);
  void KeyValue(std::string_view name, bool value);

  // Returns the document (call once, at the end).
  std::string Finish() && { return std::move(out_); }
  const std::string& Peek() const { return out_; }

 private:
  void BeforeValue();
  static void AppendEscaped(std::string& out, std::string_view text);

  std::string out_;
  // Whether a comma is needed before the next value at each nesting level.
  std::vector<bool> needs_comma_ = {false};
  bool pending_key_ = false;
};

}  // namespace vastats

#endif  // VASTATS_UTIL_JSON_WRITER_H_
