#include "util/fft.h"

#include <cmath>

#include "util/math.h"

namespace vastats {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

Status Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("Fft size must be a power of two");
  }
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Iterative Cooley-Tukey butterflies.
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      double wr = 1.0, wi = 0.0;
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = data[i + j];
        const std::complex<double> x = data[i + j + len / 2];
        const double vr = x.real() * wr - x.imag() * wi;
        const double vi = x.real() * wi + x.imag() * wr;
        data[i + j] = {u.real() + vr, u.imag() + vi};
        data[i + j + len / 2] = {u.real() - vr, u.imag() - vi};
        const double nwr = wr * wlen.real() - wi * wlen.imag();
        wi = wr * wlen.imag() + wi * wlen.real();
        wr = nwr;
      }
    }
  }
  return Status::Ok();
}

std::vector<double> NaiveDct2(const std::vector<double>& input) {
  const size_t n = input.size();
  std::vector<double> out(n, 0.0);
  for (size_t k = 0; k < n; ++k) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += input[i] * std::cos(kPi * (static_cast<double>(i) + 0.5) *
                                 static_cast<double>(k) /
                                 static_cast<double>(n));
    }
    out[k] = sum;
  }
  return out;
}

std::vector<double> NaiveDct3(const std::vector<double>& input) {
  const size_t n = input.size();
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.5 * input[0];
    for (size_t k = 1; k < n; ++k) {
      sum += input[k] * std::cos(kPi * static_cast<double>(k) *
                                 (static_cast<double>(i) + 0.5) /
                                 static_cast<double>(n));
    }
    out[i] = sum;
  }
  return out;
}

DctPlan::SizeTables& DctPlan::TablesFor(size_t n) {
  for (const auto& tables : tables_) {
    if (tables->n == n) {
      ++cache_hits_;
      tables->last_use = ++use_tick_;
      return *tables;
    }
  }
  ++cache_misses_;
  if (tables_.size() >= max_tables_) {
    size_t victim = 0;
    for (size_t i = 1; i < tables_.size(); ++i) {
      if (tables_[i]->last_use < tables_[victim]->last_use) victim = i;
    }
    tables_[victim] = std::move(tables_.back());
    tables_.pop_back();
    ++evictions_;
  }
  const size_t m = n / 2;  // the FFT runs over n/2 packed complex points
  auto tables = std::make_unique<SizeTables>();
  tables->n = n;
  tables->last_use = ++use_tick_;
  tables->bit_reversal.resize(m);
  for (size_t i = 1, j = 0; i < m; ++i) {
    size_t bit = m >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    tables->bit_reversal[i] = j;
  }
  tables->roots.resize(m);
  for (size_t k = 0; k < m; ++k) {
    const double angle = -2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
    tables->roots[k] = {std::cos(angle), std::sin(angle)};
  }
  tables->twiddle.resize(n);
  for (size_t k = 0; k < n; ++k) {
    const double angle = -kPi * static_cast<double>(k) /
                         (2.0 * static_cast<double>(n));
    tables->twiddle[k] = {std::cos(angle), std::sin(angle)};
  }
  tables->scratch.resize(m);
  tables->spectrum.resize(m + 1);
  tables_.push_back(std::move(tables));
  return *tables_.back();
}

void DctPlan::PlanFft(SizeTables& tables, bool inverse) {
  std::vector<std::complex<double>>& data = tables.scratch;
  const size_t n = tables.n;
  const size_t m = n / 2;
  for (size_t i = 1; i < m; ++i) {
    const size_t j = tables.bit_reversal[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // Every stage's twiddles are a strided walk of the precomputed root
  // table: exp(-2*pi*i*j/len) == roots[j * (n/len)]. Reading the table
  // instead of iterating w *= wlen is both faster and more accurate, but
  // only when the walk is a pointer increment — spelling it roots[j*stride]
  // leaves an imul in the inner loop and defeats vectorization (~9x slower
  // measured). The complex products are spelled out in real arithmetic:
  // operator* on std::complex lowers to a __muldc3 libcall (Annex G
  // infinity recovery), which costs ~10x a fused multiply in this loop and
  // can never trigger here (twiddles and data are finite).
  const double sign = inverse ? -1.0 : 1.0;
  for (size_t len = 2; len <= m; len <<= 1) {
    const size_t stride = n / len;
    const size_t half = len / 2;
    for (size_t i = 0; i < m; i += len) {
      const std::complex<double>* __restrict root = tables.roots.data();
      std::complex<double>* __restrict lo = data.data() + i;
      std::complex<double>* __restrict hi = lo + half;
      for (size_t j = 0; j < half; ++j, root += stride) {
        const double wr = root->real();
        const double wi = sign * root->imag();
        const double xr = hi[j].real();
        const double xi = hi[j].imag();
        const double vr = xr * wr - xi * wi;
        const double vi = xr * wi + xi * wr;
        const double ur = lo[j].real();
        const double ui = lo[j].imag();
        lo[j] = {ur + vr, ui + vi};
        hi[j] = {ur - vr, ui - vi};
      }
    }
  }
}

Status DctPlan::Dct2(std::span<const double> input,
                     std::vector<double>& output) {
  const size_t n = input.size();
  if (n == 0) return Status::InvalidArgument("Dct2 input must be non-empty");
  if (!IsPowerOfTwo(n) || n < 4) {
    output = NaiveDct2(std::vector<double>(input.begin(), input.end()));
    return Status::Ok();
  }
  SizeTables& tables = TablesFor(n);
  const size_t m = n / 2;

  // Makhoul's reordering — v holds the even-indexed entries followed by
  // the odd-indexed entries reversed, so v[p] = input[2p] for p < m and
  // input[2n-2p-1] for p >= m — packed two-to-a-complex for a half-size
  // FFT: z[j] = v[2j] + i*v[2j+1]. m is even for every n >= 4 handled
  // here, so each z[j] draws both components from the same half of v.
  std::vector<std::complex<double>>& z = tables.scratch;
  for (size_t j = 0; j < m / 2; ++j) {
    z[j] = {input[4 * j], input[4 * j + 2]};
  }
  for (size_t j = m / 2; j < m; ++j) {
    z[j] = {input[2 * n - 4 * j - 1], input[2 * n - 4 * j - 3]};
  }
  PlanFft(tables, /*inverse=*/false);

  // Unpack the real-input FFT (even part Ze, odd part Zo recovered from
  // the conjugate-symmetric halves) and apply the Makhoul post-twiddle in
  // one pass: V[k] = Ze + W^k * Zo, V[k+m] = Ze - W^k * Zo with
  // W^k = roots[k], then y[k] = Re(twiddle[k] * V[k]).
  output.resize(n);
  const double z0r = z[0].real();
  const double z0i = z[0].imag();
  output[0] = z0r + z0i;
  output[m] = tables.twiddle[m].real() * (z0r - z0i);
  for (size_t k = 1; k < m; ++k) {
    const std::complex<double> a = z[k];
    const std::complex<double> b = z[m - k];
    const double ze_r = 0.5 * (a.real() + b.real());
    const double ze_i = 0.5 * (a.imag() - b.imag());
    const double zo_r = 0.5 * (a.imag() + b.imag());
    const double zo_i = -0.5 * (a.real() - b.real());
    const std::complex<double> w = tables.roots[k];
    const double wzo_r = w.real() * zo_r - w.imag() * zo_i;
    const double wzo_i = w.real() * zo_i + w.imag() * zo_r;
    const std::complex<double> tw_lo = tables.twiddle[k];
    const std::complex<double> tw_hi = tables.twiddle[k + m];
    output[k] = tw_lo.real() * (ze_r + wzo_r) - tw_lo.imag() * (ze_i + wzo_i);
    output[k + m] =
        tw_hi.real() * (ze_r - wzo_r) - tw_hi.imag() * (ze_i - wzo_i);
  }
  return Status::Ok();
}

Status DctPlan::Dct3(std::span<const double> input,
                     std::vector<double>& output) {
  const size_t n = input.size();
  if (n == 0) return Status::InvalidArgument("Dct3 input must be non-empty");
  if (!IsPowerOfTwo(n) || n < 4) {
    output = NaiveDct3(std::vector<double>(input.begin(), input.end()));
    return Status::Ok();
  }
  SizeTables& tables = TablesFor(n);
  const size_t m = n / 2;

  // Inverse of the Makhoul DCT-II. The spectrum is conjugate-symmetric
  // (V[n-k] = conj(V[k]) holds exactly for the pre-twiddled input), so
  // only V[0..m] is materialized: V[k] = conj(twiddle[k]) *
  // (input[k] - i*input[n-k]).
  std::vector<std::complex<double>>& spectrum = tables.spectrum;
  spectrum[0] = std::complex<double>(input[0], 0.0);
  for (size_t k = 1; k < m; ++k) {
    const double tr = tables.twiddle[k].real();
    const double ti = -tables.twiddle[k].imag();
    const double xr = input[k];
    const double xi = -input[n - k];
    spectrum[k] = {tr * xr - ti * xi, tr * xi + ti * xr};
  }
  {
    const double tr = tables.twiddle[m].real();
    const double ti = -tables.twiddle[m].imag();
    spectrum[m] = {tr * input[m] + ti * input[m],
                   -tr * input[m] + ti * input[m]};
  }

  // Pack the half-spectrum for an m-point inverse FFT: with
  // Ze = (V[k] + conj(V[m-k]))/2 and Zo = conj(roots[k])*(V[k] -
  // conj(V[m-k]))/2, the inverse transform of Ze + i*Zo lands
  // (v[2j] + i*v[2j+1])/2 in scratch — the 1/2 is this convention's
  // output scale, so the de-interleave below reads it off directly.
  std::vector<std::complex<double>>& z = tables.scratch;
  for (size_t k = 0; k < m; ++k) {
    const std::complex<double> a = spectrum[k];
    const std::complex<double> b = spectrum[m - k];
    const double ze_r = 0.5 * (a.real() + b.real());
    const double ze_i = 0.5 * (a.imag() - b.imag());
    const double d_r = 0.5 * (a.real() - b.real());
    const double d_i = 0.5 * (a.imag() + b.imag());
    const double wr = tables.roots[k].real();
    const double wi = -tables.roots[k].imag();  // conj(roots[k])
    const double zo_r = wr * d_r - wi * d_i;
    const double zo_i = wr * d_i + wi * d_r;
    z[k] = {ze_r - zo_i, ze_i + zo_r};
  }
  PlanFft(tables, /*inverse=*/true);

  // De-interleave through the inverse Makhoul ordering: output[2i] comes
  // from v[i], output[2i+1] from v[n-1-i], and v[p]/2 is the real (p even)
  // or imaginary (p odd) lane of z[p/2]. n is even, so p = n-1-i has the
  // opposite parity of i.
  output.resize(n);
  for (size_t i = 0; i < m; ++i) {
    const size_t p = n - 1 - i;
    if (i % 2 == 0) {
      output[2 * i] = z[i / 2].real();
      output[2 * i + 1] = z[(p - 1) / 2].imag();
    } else {
      output[2 * i] = z[(i - 1) / 2].imag();
      output[2 * i + 1] = z[p / 2].real();
    }
  }
  return Status::Ok();
}

Result<std::vector<double>> Dct2(const std::vector<double>& input) {
  DctPlan plan;
  std::vector<double> out;
  VASTATS_RETURN_IF_ERROR(plan.Dct2(input, out));
  return out;
}

Result<std::vector<double>> Dct3(const std::vector<double>& input) {
  DctPlan plan;
  std::vector<double> out;
  VASTATS_RETURN_IF_ERROR(plan.Dct3(input, out));
  return out;
}

}  // namespace vastats
