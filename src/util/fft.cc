#include "util/fft.h"

#include <cmath>

#include "util/math.h"

namespace vastats {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

Status Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("Fft size must be a power of two");
  }
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Iterative Cooley-Tukey butterflies.
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = data[i + j];
        const std::complex<double> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  return Status::Ok();
}

std::vector<double> NaiveDct2(const std::vector<double>& input) {
  const size_t n = input.size();
  std::vector<double> out(n, 0.0);
  for (size_t k = 0; k < n; ++k) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += input[i] * std::cos(kPi * (static_cast<double>(i) + 0.5) *
                                 static_cast<double>(k) /
                                 static_cast<double>(n));
    }
    out[k] = sum;
  }
  return out;
}

std::vector<double> NaiveDct3(const std::vector<double>& input) {
  const size_t n = input.size();
  std::vector<double> out(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = 0.5 * input[0];
    for (size_t k = 1; k < n; ++k) {
      sum += input[k] * std::cos(kPi * static_cast<double>(k) *
                                 (static_cast<double>(i) + 0.5) /
                                 static_cast<double>(n));
    }
    out[i] = sum;
  }
  return out;
}

Result<std::vector<double>> Dct2(const std::vector<double>& input) {
  const size_t n = input.size();
  if (n == 0) return Status::InvalidArgument("Dct2 input must be non-empty");
  if (!IsPowerOfTwo(n) || n < 4) return NaiveDct2(input);

  // Makhoul's reordering: v holds the even-indexed entries followed by the
  // odd-indexed entries reversed; then y[k] = Re(exp(-i*pi*k/(2N)) * V[k]).
  std::vector<std::complex<double>> v(n);
  for (size_t i = 0; i * 2 < n; ++i) v[i] = input[2 * i];
  for (size_t i = 0; 2 * i + 1 < n; ++i) v[n - 1 - i] = input[2 * i + 1];
  VASTATS_RETURN_IF_ERROR(Fft(v, /*inverse=*/false));

  std::vector<double> out(n);
  for (size_t k = 0; k < n; ++k) {
    const double angle = -kPi * static_cast<double>(k) /
                         (2.0 * static_cast<double>(n));
    const std::complex<double> tw(std::cos(angle), std::sin(angle));
    out[k] = (tw * v[k]).real();
  }
  return out;
}

Result<std::vector<double>> Dct3(const std::vector<double>& input) {
  const size_t n = input.size();
  if (n == 0) return Status::InvalidArgument("Dct3 input must be non-empty");
  if (!IsPowerOfTwo(n) || n < 4) return NaiveDct3(input);

  // Inverse of the Makhoul DCT-II: rebuild V[k], inverse FFT, de-interleave.
  std::vector<std::complex<double>> v(n);
  v[0] = std::complex<double>(input[0], 0.0);
  for (size_t k = 1; k < n; ++k) {
    const double angle = kPi * static_cast<double>(k) /
                         (2.0 * static_cast<double>(n));
    const std::complex<double> tw(std::cos(angle), std::sin(angle));
    v[k] = tw * std::complex<double>(input[k], -input[n - k]);
  }
  VASTATS_RETURN_IF_ERROR(Fft(v, /*inverse=*/true));

  std::vector<double> out(n);
  const double scale = 0.5;  // Matches the Dct3 convention in the header.
  for (size_t i = 0; i * 2 < n; ++i) {
    out[2 * i] = scale * v[i].real();
  }
  for (size_t i = 0; 2 * i + 1 < n; ++i) {
    out[2 * i + 1] = scale * v[n - 1 - i].real();
  }
  return out;
}

}  // namespace vastats
