#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace vastats {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieBadAccess(const Status& status) {
  std::fprintf(stderr, "Result<T>::value() called on error result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace vastats
