// Special functions and numeric helpers used by the statistics layers:
// normal pdf/cdf/quantile, regularized incomplete gamma, chi-square
// cdf/quantile, and log-binomial coefficients.

#ifndef VASTATS_UTIL_MATH_H_
#define VASTATS_UTIL_MATH_H_

#include <cstdint>

#include "util/status.h"

namespace vastats {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kSqrt2 = 1.41421356237309504880;
inline constexpr double kSqrt2Pi = 2.50662827463100050242;

// Standard normal density at `x`.
double NormalPdf(double x);

// Standard normal CDF at `x` (via erfc; accurate in both tails).
double NormalCdf(double x);

// Standard normal quantile (inverse CDF) for p in (0, 1).
// Acklam's rational approximation refined with one Halley step
// (absolute error far below 1e-12).
Result<double> NormalQuantile(double p);

// Regularized lower incomplete gamma P(a, x) for a > 0, x >= 0
// (series for x < a+1, continued fraction otherwise).
Result<double> RegularizedGammaP(double a, double x);

// Chi-square CDF with `dof` degrees of freedom at x >= 0.
Result<double> ChiSquareCdf(double x, double dof);

// Chi-square quantile for p in (0, 1): Wilson-Hilferty start, then
// bisection/Newton refinement against ChiSquareCdf.
Result<double> ChiSquareQuantile(double p, double dof);

// log(C(n, k)); returns -inf conceptually as error for invalid input.
Result<double> LogBinomial(int64_t n, int64_t k);

// True when x is finite (not NaN or +-inf).
bool IsFinite(double x);

}  // namespace vastats

#endif  // VASTATS_UTIL_MATH_H_
