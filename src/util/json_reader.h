// Minimal recursive-descent JSON parser, the read-side complement of
// util/json_writer. Grown for tools/benchdiff (comparing bench `--json`
// dumps against committed baselines) and for schema-checking exported
// Chrome traces in tests; it is not a general-purpose JSON library.
//
// Scope: the full JSON value grammar (RFC 8259) minus surrogate-pair
// decoding — `\uXXXX` escapes outside the BMP are kept as two literal
// escape sequences' code units encoded in UTF-8 independently, which is
// fine for the ASCII-only documents this repo produces. Numbers parse as
// double. Object members keep document order in a vector (no hashing:
// iteration stays deterministic, analyzer rule A2 has nothing to flag) and
// duplicate keys are rejected.

#ifndef VASTATS_UTIL_JSON_READER_H_
#define VASTATS_UTIL_JSON_READER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace vastats {

enum class JsonKind {
  kNull = 0,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

// One parsed JSON value. A tree of these owns all its storage; lookups
// return borrowed pointers into the tree.
struct JsonValue {
  JsonKind kind = JsonKind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> items;  // kArray
  // kObject, in document order.
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_null() const { return kind == JsonKind::kNull; }
  bool is_bool() const { return kind == JsonKind::kBool; }
  bool is_number() const { return kind == JsonKind::kNumber; }
  bool is_string() const { return kind == JsonKind::kString; }
  bool is_array() const { return kind == JsonKind::kArray; }
  bool is_object() const { return kind == JsonKind::kObject; }

  // Member lookup on an object (nullptr when absent or not an object).
  const JsonValue* Find(std::string_view key) const;

  // Find + kind filter, for terse schema checks.
  const JsonValue* FindNumber(std::string_view key) const;
  const JsonValue* FindString(std::string_view key) const;
  const JsonValue* FindArray(std::string_view key) const;
  const JsonValue* FindObject(std::string_view key) const;
};

// Parses `text` as one JSON document (leading/trailing whitespace allowed,
// trailing garbage is an error). Errors carry a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace vastats

#endif  // VASTATS_UTIL_JSON_READER_H_
