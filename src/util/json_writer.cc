#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

namespace vastats {

void JsonWriter::AppendEscaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; no comma handling needed
  }
  if (needs_comma_.back()) out_.push_back(',');
  needs_comma_.back() = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  needs_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  needs_comma_.pop_back();
}

void JsonWriter::Key(std::string_view name) {
  if (needs_comma_.back()) out_.push_back(',');
  needs_comma_.back() = true;
  AppendEscaped(out_, name);
  out_.push_back(':');
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendEscaped(out_, value);
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::KeyValue(std::string_view name, std::string_view value) {
  Key(name);
  String(value);
}

void JsonWriter::KeyValue(std::string_view name, double value) {
  Key(name);
  Number(value);
}

void JsonWriter::KeyValue(std::string_view name, int64_t value) {
  Key(name);
  Int(value);
}

void JsonWriter::KeyValue(std::string_view name, bool value) {
  Key(name);
  Bool(value);
}

}  // namespace vastats
