#include "util/math.h"

#include <cmath>
#include <limits>
#include <string>

namespace vastats {

double NormalPdf(double x) { return std::exp(-0.5 * x * x) / kSqrt2Pi; }

double NormalCdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

Result<double> NormalQuantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    return Status::InvalidArgument("NormalQuantile requires p in (0,1), got " +
                                   std::to_string(p));
  }
  // Acklam's approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step against the exact CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * kSqrt2Pi * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

Result<double> RegularizedGammaP(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    return Status::InvalidArgument(
        "RegularizedGammaP requires a > 0 and x >= 0");
  }
  if (x == 0.0) return 0.0;
  const double log_gamma_a = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::fabs(term) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma_a);
  }
  // Continued fraction for Q(a, x) (modified Lentz).
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma_a) * h;
  return 1.0 - q;
}

Result<double> ChiSquareCdf(double x, double dof) {
  if (!(dof > 0.0)) {
    return Status::InvalidArgument("ChiSquareCdf requires dof > 0");
  }
  if (x < 0.0) return 0.0;
  return RegularizedGammaP(dof / 2.0, x / 2.0);
}

Result<double> ChiSquareQuantile(double p, double dof) {
  if (!(p > 0.0 && p < 1.0)) {
    return Status::InvalidArgument(
        "ChiSquareQuantile requires p in (0,1), got " + std::to_string(p));
  }
  if (!(dof > 0.0)) {
    return Status::InvalidArgument("ChiSquareQuantile requires dof > 0");
  }
  // Wilson-Hilferty starting point.
  VASTATS_ASSIGN_OR_RETURN(const double z, NormalQuantile(p));
  const double wh = 1.0 - 2.0 / (9.0 * dof) + z * std::sqrt(2.0 / (9.0 * dof));
  double x = dof * wh * wh * wh;
  if (!(x > 0.0)) x = dof * 1e-6;

  // Bracket the root, then bisect with Newton acceleration.
  double lo = 0.0;
  double hi = x;
  for (int i = 0; i < 200; ++i) {
    VASTATS_ASSIGN_OR_RETURN(const double cdf_hi, ChiSquareCdf(hi, dof));
    if (cdf_hi >= p) break;
    lo = hi;
    hi *= 2.0;
  }
  for (int i = 0; i < 200; ++i) {
    VASTATS_ASSIGN_OR_RETURN(const double cdf_x, ChiSquareCdf(x, dof));
    const double err = cdf_x - p;
    if (std::fabs(err) < 1e-13) break;
    if (err > 0.0) {
      hi = x;
    } else {
      lo = x;
    }
    // Newton step using the chi-square density; fall back to bisection when
    // it leaves the bracket.
    const double log_pdf = (dof / 2.0 - 1.0) * std::log(x) - x / 2.0 -
                           std::lgamma(dof / 2.0) -
                           (dof / 2.0) * std::log(2.0);
    const double pdf = std::exp(log_pdf);
    double next = (pdf > 0.0) ? x - err / pdf : 0.5 * (lo + hi);
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    x = next;
  }
  return x;
}

Result<double> LogBinomial(int64_t n, int64_t k) {
  if (n < 0 || k < 0 || k > n) {
    return Status::InvalidArgument("LogBinomial requires 0 <= k <= n");
  }
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

bool IsFinite(double x) { return std::isfinite(x); }

}  // namespace vastats
