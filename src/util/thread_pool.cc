#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/stopwatch.h"

namespace vastats {

// One ParallelFor call. Lives on the caller's stack: ParallelFor only
// returns after `completed == num_tasks` and the batch left the queue, so
// workers never touch a dead batch. All fields below `observer` are guarded
// by the owning pool's mutex_.
struct ThreadPool::Batch {
  int num_tasks = 0;
  const std::function<Status(int)>* fn = nullptr;
  ThreadPoolObserver* observer = nullptr;
  // Restarted at enqueue; task claims read it for their queue wait and the
  // caller reads it once more for the batch's wall-clock elapsed time.
  Stopwatch watch;

  int next_claim = 0;  // tasks are claimed strictly in index order
  int completed = 0;   // finished + cancelled-before-claim
  bool cancelled = false;
  bool queued = false;
  int error_index = -1;
  Status error;
  double total_run_seconds = 0.0;
  double max_run_seconds = 0.0;
};

ThreadPool::ThreadPool(ThreadPoolOptions options)
    : num_threads_(options.num_threads > 0
                       ? options.num_threads
                       : static_cast<int>(std::max(
                             1u, std::thread::hardware_concurrency()))) {}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::started() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return started_;
}

int ThreadPool::ClaimLocked(Batch* batch) {
  if (batch->cancelled && batch->next_claim < batch->num_tasks) {
    // A task failed: everything not yet claimed is skipped. Tasks are
    // claimed in index order, so the lowest failing index has always been
    // claimed (and run) by the time anything gets skipped — the aggregated
    // error below is scheduling-independent.
    batch->completed += batch->num_tasks - batch->next_claim;
    batch->next_claim = batch->num_tasks;
    if (batch->completed == batch->num_tasks) done_cv_.notify_all();
  }
  if (batch->next_claim >= batch->num_tasks) {
    if (batch->queued) {
      queue_.erase(std::find(queue_.begin(), queue_.end(), batch));
      batch->queued = false;
    }
    return -1;
  }
  return batch->next_claim++;
}

void ThreadPool::RunTask(Batch* batch, int index,
                         std::unique_lock<std::mutex>& lock) {
  ThreadPoolObserver* observer = batch->observer;
  const std::function<Status(int)>& fn = *batch->fn;
  TaskTiming timing;
  timing.task_index = index;
  // The claim just happened (under the lock we still hold), so the batch
  // stopwatch currently reads this task's queue wait.
  timing.queue_wait_seconds = batch->watch.ElapsedSeconds();
  lock.unlock();
  if (observer != nullptr) observer->OnTaskStart(timing);
  Stopwatch watch;
  Status status = fn(index);
  timing.run_seconds = watch.ElapsedSeconds();
  if (observer != nullptr) observer->OnTaskComplete(timing);
  lock.lock();
  batch->total_run_seconds += timing.run_seconds;
  batch->max_run_seconds = std::max(batch->max_run_seconds, timing.run_seconds);
  ++batch->completed;
  if (!status.ok()) {
    batch->cancelled = true;
    if (batch->error_index < 0 || index < batch->error_index) {
      batch->error_index = index;
      batch->error = std::move(status);
    }
  }
  if (batch->completed == batch->num_tasks) done_cv_.notify_all();
}

void ThreadPool::DrainBatchLocked(Batch* batch,
                                  std::unique_lock<std::mutex>& lock) {
  for (;;) {
    const int index = ClaimLocked(batch);
    if (index < 0) return;
    RunTask(batch, index, lock);
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;  // queue drained before exiting
      continue;
    }
    Batch* batch = queue_.front();
    const int index = ClaimLocked(batch);
    if (index < 0) continue;
    RunTask(batch, index, lock);
  }
}

Status ThreadPool::ParallelFor(int num_tasks,
                               const std::function<Status(int)>& fn,
                               ThreadPoolObserver* observer) {
  if (num_tasks < 0) {
    return Status::InvalidArgument("ParallelFor requires num_tasks >= 0");
  }
  if (num_tasks == 0) return Status::Ok();

  Batch batch;
  batch.num_tasks = num_tasks;
  batch.fn = &fn;
  batch.observer = observer;

  std::unique_lock<std::mutex> lock(mutex_);
  if (shutdown_) {
    return Status::FailedPrecondition(
        "ThreadPool::ParallelFor called after Shutdown");
  }
  if (!started_) {
    // Lazy start: a pool that is never submitted to never spawns a thread.
    started_ = true;
    workers_.reserve(static_cast<size_t>(num_threads_));
    for (int t = 0; t < num_threads_; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  batch.queued = true;
  batch.watch.Restart();  // queue waits and batch elapsed count from here
  queue_.push_back(&batch);
  const int queue_depth = static_cast<int>(queue_.size());
  work_cv_.notify_all();
  if (observer != nullptr) {
    // Callbacks never run under the pool lock; the workers may already be
    // claiming tasks of this batch while the observer runs.
    lock.unlock();
    observer->OnBatchQueued(num_tasks, queue_depth);
    lock.lock();
  }

  // The caller drains its own batch alongside the workers, then waits for
  // stragglers still running claimed tasks.
  DrainBatchLocked(&batch, lock);
  done_cv_.wait(lock, [&] { return batch.completed == batch.num_tasks; });

  BatchTiming batch_timing;
  batch_timing.num_tasks = num_tasks;
  batch_timing.elapsed_seconds = batch.watch.ElapsedSeconds();
  batch_timing.total_run_seconds = batch.total_run_seconds;
  batch_timing.max_run_seconds = batch.max_run_seconds;
  batch_timing.max_workers = num_threads_ + 1;  // workers + this caller
  Status result = batch.error_index >= 0 ? std::move(batch.error)
                                         : Status::Ok();
  lock.unlock();
  if (observer != nullptr) observer->OnBatchComplete(batch_timing);
  return result;
}

void ThreadPool::Shutdown() {
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    workers.swap(workers_);
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers) worker.join();
}

ThreadPool* DefaultThreadPool() {
  // Deliberately leaked: worker threads must not be joined from a static
  // destructor (they may hold the queue mutex while other statics die).
  static ThreadPool* const pool = new ThreadPool();
  return pool;
}

Status ThreadPerCallParallelFor(int num_tasks, int num_threads,
                                const std::function<Status(int)>& fn) {
  if (num_tasks < 0) {
    return Status::InvalidArgument(
        "ThreadPerCallParallelFor requires num_tasks >= 0");
  }
  if (num_tasks == 0) return Status::Ok();
  if (num_threads <= 0) {
    num_threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  num_threads = std::min(num_threads, num_tasks);
  if (num_threads <= 1) {
    for (int i = 0; i < num_tasks; ++i) {
      VASTATS_RETURN_IF_ERROR(fn(i));
    }
    return Status::Ok();
  }

  std::atomic<int> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex error_mutex;
  int error_index = -1;
  Status error;
  auto worker = [&] {
    for (;;) {
      // Same cancellation rule as the pool: stop claiming after a failure;
      // claims are in index order so the lowest failing index always ran.
      if (cancelled.load(std::memory_order_relaxed)) return;
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) return;
      Status status = fn(i);
      if (!status.ok()) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        cancelled.store(true, std::memory_order_relaxed);
        if (error_index < 0 || i < error_index) {
          error_index = i;
          error = std::move(status);
        }
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  if (error_index >= 0) return error;
  return Status::Ok();
}

}  // namespace vastats
