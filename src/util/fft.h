// Radix-2 FFT and discrete cosine transforms.
//
// Used by the density layer: the Botev-Grotowski-Kroese bandwidth selector
// works in the DCT domain, and the linear-binned KDE path convolves bin
// counts with a Gaussian kernel via the DCT (equivalently, an FFT with
// reflective boundary handling).
//
// Conventions:
//   Fft:  X[k] = sum_n x[n] * exp(-2*pi*i*n*k/N)      (unnormalized)
//   Dct2: y[k] = sum_n x[n] * cos(pi*(n+0.5)*k/N)     (unnormalized)
//   Dct3: x[n] = 0.5*y[0] + sum_{k>=1} y[k]*cos(pi*k*(n+0.5)/N)
// so Dct3(Dct2(x)) == (N/2) * x.

#ifndef VASTATS_UTIL_FFT_H_
#define VASTATS_UTIL_FFT_H_

#include <complex>
#include <vector>

#include "util/status.h"

namespace vastats {

// In-place FFT of `data`; size must be a power of two (and non-empty).
// When `inverse` is true, computes the unnormalized inverse transform
// (divide by N afterwards to invert Fft).
Status Fft(std::vector<std::complex<double>>& data, bool inverse);

// DCT-II of `input`. Uses the O(N log N) FFT path for power-of-two sizes and
// an O(N^2) direct evaluation otherwise.
Result<std::vector<double>> Dct2(const std::vector<double>& input);

// DCT-III of `input` (see the convention above).
Result<std::vector<double>> Dct3(const std::vector<double>& input);

// O(N^2) reference implementations used by tests to validate the fast paths.
std::vector<double> NaiveDct2(const std::vector<double>& input);
std::vector<double> NaiveDct3(const std::vector<double>& input);

// True when n is a non-zero power of two.
bool IsPowerOfTwo(size_t n);

}  // namespace vastats

#endif  // VASTATS_UTIL_FFT_H_
