// Radix-2 FFT and discrete cosine transforms.
//
// Used by the density layer: the Botev-Grotowski-Kroese bandwidth selector
// works in the DCT domain, and the linear-binned KDE path convolves bin
// counts with a Gaussian kernel via the DCT (equivalently, an FFT with
// reflective boundary handling).
//
// Conventions:
//   Fft:  X[k] = sum_n x[n] * exp(-2*pi*i*n*k/N)      (unnormalized)
//   Dct2: y[k] = sum_n x[n] * cos(pi*(n+0.5)*k/N)     (unnormalized)
//   Dct3: x[n] = 0.5*y[0] + sum_{k>=1} y[k]*cos(pi*k*(n+0.5)/N)
// so Dct3(Dct2(x)) == (N/2) * x.
//
// Hot callers (the binned KDE path runs one Dct2 + one Dct3 per bagged fit,
// the Botev selector one more Dct2) should hold a `DctPlan`: it caches the
// FFT root/twiddle tables and scratch buffers per transform size, so
// repeated transforms of one size pay the trig setup once. Plans are
// caller-owned and deliberately unsynchronized — one plan per thread (each
// pooled bagged-KDE worker holds its own), never shared across threads.
// The plan-free `Dct2`/`Dct3` functions below are thin wrappers that build
// a throwaway plan, and are bit-identical to the plan path by construction.

#ifndef VASTATS_UTIL_FFT_H_
#define VASTATS_UTIL_FFT_H_

#include <complex>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/status.h"

namespace vastats {

// Reusable workspace for DCT-II / DCT-III transforms. Tables are built
// lazily per size on first use and kept for the lifetime of the plan
// (`cache_hits/misses` expose the reuse rate for benchmarks). Transform
// results are a pure function of the input — identical across plan
// instances and identical to the plan-free `Dct2`/`Dct3` wrappers — so
// per-thread plans cannot break bit-level reproducibility.
//
// Power-of-two sizes >= 4 run the O(N log N) FFT path from the cached
// tables; other sizes fall back to the O(N^2) naive evaluation (no tables).
class DctPlan {
 public:
  // A plan keeps at most `max_tables` size-table entries alive; requesting a
  // new size beyond that evicts the least-recently-used entry. The default
  // covers one grid size plus the Botev selector's companion transforms with
  // headroom for mixed-size serving traffic; the memory per entry is O(n)
  // complex doubles, so an unbounded plan is a real leak when many distinct
  // grid sizes flow through one long-lived thread.
  static constexpr size_t kDefaultMaxTables = 8;

  DctPlan() = default;
  explicit DctPlan(size_t max_tables)
      : max_tables_(max_tables == 0 ? 1 : max_tables) {}

  // The cached tables are not sharable state; moving is fine, copying a
  // plan would silently duplicate the caches.
  DctPlan(const DctPlan&) = delete;
  DctPlan& operator=(const DctPlan&) = delete;
  DctPlan(DctPlan&&) = default;
  DctPlan& operator=(DctPlan&&) = default;

  // DCT-II of `input` into `output` (resized; may alias nothing). Errors on
  // empty input.
  Status Dct2(std::span<const double> input, std::vector<double>& output);

  // DCT-III of `input` into `output` (see the convention above).
  Status Dct3(std::span<const double> input, std::vector<double>& output);

  // Table-cache telemetry: a hit is a transform that found its size's
  // tables already built; an eviction is a built table dropped to stay
  // within `max_tables` (re-requesting that size pays the trig setup
  // again — callers export the count as `dct_plan_evictions_total`).
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  uint64_t evictions() const { return evictions_; }
  size_t max_tables() const { return max_tables_; }

 private:
  // Per-size root/twiddle tables plus the FFT scratch buffers. A size-n
  // DCT runs over an n/2-point complex FFT (the real Makhoul sequence is
  // packed two-to-a-complex and unpacked with the n-th roots), so the
  // bit-reversal table and scratch cover n/2 points.
  struct SizeTables {
    size_t n = 0;
    // Recency stamp from `use_tick_`; the smallest stamp is the LRU victim.
    uint64_t last_use = 0;
    // Bit-reversal permutation of [0, n/2).
    std::vector<size_t> bit_reversal;
    // roots[k] = exp(-2*pi*i*k/n) for k in [0, n/2): every butterfly
    // twiddle of every stage of the half-size FFT is a strided read of
    // this one table, and the real-FFT unpack reads it directly.
    std::vector<std::complex<double>> roots;
    // twiddle[k] = exp(-i*pi*k/(2n)); Makhoul's DCT-II post-twiddle (its
    // conjugate is the DCT-III pre-twiddle).
    std::vector<std::complex<double>> twiddle;
    std::vector<std::complex<double>> scratch;   // n/2 FFT points
    std::vector<std::complex<double>> spectrum;  // n/2 + 1 unpacked bins
  };

  // Returns the tables for size `n`, building them on first request.
  SizeTables& TablesFor(size_t n);
  // In-place n/2-point FFT of `tables.scratch` using the cached tables.
  static void PlanFft(SizeTables& tables, bool inverse);

  std::vector<std::unique_ptr<SizeTables>> tables_;
  size_t max_tables_ = kDefaultMaxTables;
  uint64_t use_tick_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t evictions_ = 0;
};

// In-place FFT of `data`; size must be a power of two (and non-empty).
// When `inverse` is true, computes the unnormalized inverse transform
// (divide by N afterwards to invert Fft).
Status Fft(std::vector<std::complex<double>>& data, bool inverse);

// DCT-II of `input`. Thin wrapper over a throwaway DctPlan: O(N log N) for
// power-of-two sizes, O(N^2) direct evaluation otherwise.
Result<std::vector<double>> Dct2(const std::vector<double>& input);

// DCT-III of `input` (see the convention above).
Result<std::vector<double>> Dct3(const std::vector<double>& input);

// O(N^2) reference implementations used by tests to validate the fast paths.
std::vector<double> NaiveDct2(const std::vector<double>& input);
std::vector<double> NaiveDct3(const std::vector<double>& input);

// True when n is a non-zero power of two.
bool IsPowerOfTwo(size_t n);

}  // namespace vastats

#endif  // VASTATS_UTIL_FFT_H_
