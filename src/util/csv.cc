#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace vastats {

Result<std::vector<CsvRow>> ParseCsv(const std::string& text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        break;
      case '\r':
        break;  // Handled together with the following '\n'.
      case '\n':
        if (row_has_content || !field.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
        }
        break;
      default:
        field.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("ParseCsv: unterminated quoted field");
  }
  if (row_has_content || !field.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendField(std::string& out, const std::string& field) {
  if (!NeedsQuoting(field)) {
    out += field;
    return;
  }
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

std::string FormatCsv(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const CsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(out, row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open CSV file for write: " + path);
  out << FormatCsv(rows);
  if (!out) return Status::Internal("error writing CSV file: " + path);
  return Status::Ok();
}

}  // namespace vastats
