// Minimal CSV reading/writing.
//
// Supports the subset of RFC 4180 the project needs: comma separation,
// double-quote quoting with "" escapes, and both \n and \r\n line endings.
// Used to export synthetic archives and experiment series for plotting.

#ifndef VASTATS_UTIL_CSV_H_
#define VASTATS_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace vastats {

using CsvRow = std::vector<std::string>;

// Parses CSV text into rows of fields. Empty trailing line is ignored.
Result<std::vector<CsvRow>> ParseCsv(const std::string& text);

// Renders rows as CSV text, quoting fields that contain commas, quotes, or
// newlines.
std::string FormatCsv(const std::vector<CsvRow>& rows);

// Reads and parses a CSV file from disk.
Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path);

// Writes rows to `path`, replacing any existing file.
Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows);

}  // namespace vastats

#endif  // VASTATS_UTIL_CSV_H_
