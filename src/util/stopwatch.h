// Monotonic wall-clock stopwatch for the benchmark harnesses.

#ifndef VASTATS_UTIL_STOPWATCH_H_
#define VASTATS_UTIL_STOPWATCH_H_

#include <chrono>

namespace vastats {

// Starts on construction; `ElapsedSeconds` may be called repeatedly.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vastats

#endif  // VASTATS_UTIL_STOPWATCH_H_
