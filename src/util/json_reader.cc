#include "util/json_reader.h"

#include <cctype>
#include <cstdlib>

namespace vastats {
namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    VASTATS_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting deeper than 128 levels");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonKind::kString;
        return ParseString(&out->string_value);
      case 't':
        if (!ConsumeWord("true")) return Fail("expected `true`");
        out->kind = JsonKind::kBool;
        out->bool_value = true;
        return Status::Ok();
      case 'f':
        if (!ConsumeWord("false")) return Fail("expected `false`");
        out->kind = JsonKind::kBool;
        out->bool_value = false;
        return Status::Ok();
      case 'n':
        if (!ConsumeWord("null")) return Fail("expected `null`");
        out->kind = JsonKind::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonKind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected a quoted object key");
      }
      std::string key;
      VASTATS_RETURN_IF_ERROR(ParseString(&key));
      for (const auto& [existing, unused] : out->members) {
        if (existing == key) return Fail("duplicate object key `" + key + "`");
      }
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected `:` after object key");
      SkipWhitespace();
      JsonValue value;
      VASTATS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Fail("expected `,` or `}` in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonKind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      JsonValue value;
      VASTATS_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Fail("expected `,` or `]` in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          VASTATS_RETURN_IF_ERROR(ParseUnicodeEscape(out));
          break;
        }
        default:
          return Fail("invalid escape sequence");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseUnicodeEscape(std::string* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code += static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code += static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("non-hex digit in \\u escape");
      }
    }
    pos_ += 4;
    // UTF-8 encode the BMP code point (surrogate halves pass through
    // encoded individually; see the header's scope note).
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    Consume('-');
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return Fail("expected a value");
    }
    if (Consume('.')) {
      const size_t frac = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) return Fail("expected digits after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const size_t exp = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp) return Fail("expected digits in exponent");
    }
    const std::string literal(text_.substr(start, pos_ - start));
    out->kind = JsonKind::kNumber;
    out->number_value = std::strtod(literal.c_str(), nullptr);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != JsonKind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindNumber(std::string_view key) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v : nullptr;
}

const JsonValue* JsonValue::FindString(std::string_view key) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v : nullptr;
}

const JsonValue* JsonValue::FindArray(std::string_view key) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_array()) ? v : nullptr;
}

const JsonValue* JsonValue::FindObject(std::string_view key) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_object()) ? v : nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace vastats
