#include "util/random.h"

#include <cmath>

namespace vastats {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used only to expand the user seed into engine state.
inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
  // xoshiro must not start in the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  // xoshiro256++ step.
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform01();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  // Rejection sampling for an unbiased draw in [0, range].
  const uint64_t range = static_cast<uint64_t>(hi - lo);
  if (range == ~uint64_t{0}) return static_cast<int64_t>(NextUint64());
  const uint64_t buckets = range + 1;
  const uint64_t limit = (~uint64_t{0}) - ((~uint64_t{0}) % buckets);
  uint64_t draw = NextUint64();
  while (draw >= limit) draw = NextUint64();
  return lo + static_cast<int64_t>(draw % buckets);
}

bool Rng::Bernoulli(double p) { return Uniform01() < p; }

double Rng::StandardNormal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * Uniform01() - 1.0;
    v = 2.0 * Uniform01() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double sigma) {
  return mean + sigma * StandardNormal();
}

double Rng::Exponential(double lambda) {
  // Guard against log(0).
  double u = Uniform01();
  while (u <= 0.0) u = Uniform01();
  return -std::log(u) / lambda;
}

double Rng::Cauchy(double location, double scale) {
  // Inverse CDF; avoid the poles of tan at +-pi/2 exactly.
  double u = Uniform01();
  while (u == 0.5) u = Uniform01();
  constexpr double kPi = 3.14159265358979323846;
  return location + scale * std::tan(kPi * (u - 0.5));
}

double Rng::Gamma(double shape, double scale) {
  if (shape < 1.0) {
    // Boosting transform: Gamma(k) = Gamma(k+1) * U^(1/k).
    const double g = Gamma(shape + 1.0, 1.0);
    double u = Uniform01();
    while (u <= 0.0) u = Uniform01();
    return scale * g * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = StandardNormal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform01();
    if (u < 1.0 - 0.0331 * x * x * x * x) return scale * d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return scale * d * v;
    }
  }
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  Shuffle(perm);
  return perm;
}

std::vector<int> Rng::ResampleIndices(int n, int count) {
  std::vector<int> indices(static_cast<size_t>(count));
  for (int& index : indices) {
    index = static_cast<int>(UniformInt(0, n - 1));
  }
  return indices;
}

}  // namespace vastats
