// Persistent worker pool for the parallel substrate of the library.
//
// The paper's §7 observes that uniS "can be fully parallelized as samples
// are obtained independently"; the same holds for bootstrap replicate
// evaluation and per-set bagged-KDE fits. All three fan-out sites share
// this pool instead of spawning (and joining) threads per call: workers are
// started lazily on the first submit, park on a condition variable between
// batches, and pull tasks off a shared queue.
//
// `ParallelFor` is the only submit form: it runs `fn(0) .. fn(n-1)`,
// blocks until every task finished (the calling thread participates in
// draining its own batch, so a busy pool never deadlocks a caller — and
// nested ParallelFor from inside a task is safe for the same reason), and
// returns the per-task `Status` aggregated deterministically: the error of
// the *lowest failing task index* wins, independent of scheduling. A
// failing task cancels tasks that have not been claimed yet; because tasks
// are claimed in index order, the lowest failing index is always executed,
// so the returned Status is reproducible.
//
// No exceptions anywhere (library policy): tasks report through Status.
// The pool is TSan-clean; disjoint output slots indexed by task id are the
// intended result-passing idiom.
//
// Telemetry is per-call and borrowed, matching the rest of the pipeline: a
// non-null `ThreadPoolObserver*` receives per-batch and per-task events
// with queue-wait vs run-time split out per task and utilization/imbalance
// aggregates per batch. The observer seam keeps util below obs in the
// layer DAG (A1): the pool knows nothing about metrics; obs provides
// `PoolMetricsObserver`, which forwards the events into a
// `MetricsRegistry` (and, when attached, the flight-recorder event
// journal) under the usual `thread_pool_*` names.

#ifndef VASTATS_UTIL_THREAD_POOL_H_
#define VASTATS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"

namespace vastats {

// Timing of one task of a batch, measured by the pool.
struct TaskTiming {
  int task_index = 0;
  // Batch enqueue -> this task claimed. Tasks claimed by the caller's own
  // drain wait too: a deep queue delays them the same way.
  double queue_wait_seconds = 0.0;
  // Claim -> fn returned. 0 in OnTaskStart (the task has not run yet).
  double run_seconds = 0.0;
};

// Whole-batch aggregates, delivered once per ParallelFor on the caller.
struct BatchTiming {
  int num_tasks = 0;
  // Enqueue -> every task completed (wall clock on the calling thread).
  double elapsed_seconds = 0.0;
  double total_run_seconds = 0.0;  // sum over tasks of run_seconds
  double max_run_seconds = 0.0;    // slowest single task
  // Threads that could have run tasks: the workers plus the caller.
  int max_workers = 0;
};

// Telemetry seam for the pool. Callbacks fire on the thread that produced
// the event (OnTaskStart/OnTaskComplete run on the thread that claimed the
// task, OnBatchComplete on the ParallelFor caller), so observer
// implementations that shard state per thread keep their locality.
// Implementations must be thread-safe; no pool lock is held during any
// callback (but re-entering the pool from one is still a bad idea).
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;

  // A ParallelFor batch of `num_tasks` tasks was enqueued; `queue_depth`
  // counts batches in the queue including this one.
  virtual void OnBatchQueued(int num_tasks, int queue_depth) = 0;

  // A task was claimed and is about to run. `timing.run_seconds` is 0.
  virtual void OnTaskStart(const TaskTiming& timing) { (void)timing; }

  // One task finished executing (successfully or not).
  virtual void OnTaskComplete(const TaskTiming& timing) = 0;

  // Every task of a batch completed (or was cancelled); fired on the
  // calling thread just before ParallelFor returns.
  virtual void OnBatchComplete(const BatchTiming& timing) { (void)timing; }
};

struct ThreadPoolOptions {
  // 0 means std::thread::hardware_concurrency() (at least 1).
  int num_threads = 0;
};

class ThreadPool {
 public:
  explicit ThreadPool(ThreadPoolOptions options = {});
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of worker threads this pool runs once started.
  int num_threads() const { return num_threads_; }

  // True once the workers have been spawned (first ParallelFor).
  bool started() const;

  // Runs fn(i) for every i in [0, num_tasks) across the workers plus the
  // calling thread and blocks until all tasks completed (or were cancelled
  // by an earlier failure). Returns OK when every task returned OK,
  // otherwise the Status of the lowest failing task index. num_tasks == 0
  // is a no-op; num_tasks < 0 is an error. Fails with FailedPrecondition
  // after Shutdown(). Safe to call from several threads at once and from
  // inside a running task.
  Status ParallelFor(int num_tasks, const std::function<Status(int)>& fn,
                     ThreadPoolObserver* observer = nullptr);

  // Drains in-flight batches, stops the workers, and joins them. Idempotent.
  // Subsequent ParallelFor calls fail.
  void Shutdown();

 private:
  struct Batch;

  void WorkerLoop();
  // Claims the next task of `batch` (queue mutex held); returns -1 when the
  // batch has no claimable tasks left, removing it from the queue.
  int ClaimLocked(Batch* batch);
  void RunTask(Batch* batch, int index, std::unique_lock<std::mutex>& lock);
  // Runs claimable tasks of `batch` until it is exhausted or cancelled.
  void DrainBatchLocked(Batch* batch, std::unique_lock<std::mutex>& lock);

  int num_threads_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers park here
  std::condition_variable done_cv_;  // ParallelFor callers park here
  std::deque<Batch*> queue_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool shutdown_ = false;
};

// Process-wide default pool at hardware concurrency. Lazily constructed on
// first use and intentionally never destroyed (worker threads must not be
// joined from static destructors).
ThreadPool* DefaultThreadPool();

// One-shot thread-per-call fan-out with the same task semantics and error
// aggregation as ThreadPool::ParallelFor (tasks claimed in index order off
// a shared counter, lowest failing index wins). This is the legacy
// dispatch mode the pool replaces; it is kept for the pool-vs-thread-per-call
// benchmark comparison and as the fallback when no pool is attached.
// `num_threads` <= 1 runs inline on the calling thread.
Status ThreadPerCallParallelFor(int num_tasks, int num_threads,
                                const std::function<Status(int)>& fn);

}  // namespace vastats

#endif  // VASTATS_UTIL_THREAD_POOL_H_
