// Wire framing for the async source transport.
//
// Both transport backends (in-process frame queues and AF_UNIX socket
// pairs) move the same little-endian byte frames, so encode/decode is
// exercised identically whichever medium carries them. A request names one
// attempt of one visit — (source, epoch, attempt) is the same key the
// FaultModel derives its decisions from, which is what makes a hedged
// duplicate safe: it carries a fresh request id but the identical key, so
// the endpoint computes the identical outcome and payload and the client
// may keep whichever copy arrives first.
//
// Response frames are length-prefixed and self-delimiting: a stream reader
// peeks the fixed header, learns the body size, and consumes exactly one
// frame — partial reads simply wait for more bytes. Payload bodies are the
// source's bindings in sorted order, 16 bytes per binding.

#ifndef VASTATS_TRANSPORT_WIRE_H_
#define VASTATS_TRANSPORT_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "datagen/source_accessor.h"
#include "util/status.h"

namespace vastats::transport {

// One attempt request. `id` is unique per request instance (hedged
// duplicates get fresh ids); `channel` routes the response back to the
// issuing channel.
struct WireRequest {
  uint64_t id = 0;
  uint64_t channel = 0;
  int32_t source = 0;
  int64_t epoch = 0;
  int32_t attempt = 0;
  int32_t num_components = 0;
};

// One attempt response, decoded. `virtual_ms` is the simulated cost the
// session charges against its deadline budgets (the fault model's
// deterministic attempt latency); `payload` is empty when the attempt
// failed.
struct WireResponse {
  uint64_t id = 0;
  bool failed = true;
  double virtual_ms = 0.0;
  std::vector<TransportBinding> payload;
};

// Fixed frame sizes (see the encoders for the exact layouts).
inline constexpr size_t kRequestFrameBytes = 40;
inline constexpr size_t kResponseHeaderBytes = 40;
inline constexpr size_t kBindingBytes = 16;

// Appends one request frame to `out`.
void AppendRequestFrame(const WireRequest& request, std::string* out);

// Decodes one request frame from the front of `bytes`. Returns the bytes
// consumed, or 0 when fewer than a whole frame is buffered. A corrupt
// magic fails.
Result<size_t> DecodeRequestFrame(std::string_view bytes,
                                  WireRequest* request);

// Appends one response frame: header plus `payload_body`, which must be a
// blob previously produced by EncodeBindings (the per-source payload store
// keeps these pre-encoded so serving a request is a header write plus one
// memcpy/sendmsg of the blob).
void AppendResponseFrame(uint64_t id, bool failed, double virtual_ms,
                         std::string_view payload_body, std::string* out);

// Decodes one response frame from the front of `bytes`. Returns the bytes
// consumed, or 0 when the buffered prefix is shorter than the frame.
Result<size_t> DecodeResponseFrame(std::string_view bytes,
                                   WireResponse* response);

// Encodes a binding list into a response payload body.
std::string EncodeBindings(const std::vector<TransportBinding>& bindings);

}  // namespace vastats::transport

#endif  // VASTATS_TRANSPORT_WIRE_H_
