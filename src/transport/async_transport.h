// Asynchronous, pipelined source transport: the client side of the
// VisitTransport seam.
//
// An AsyncSourceTransport owns an EndpointGroup (the sources' "server
// side") and hands out TransportChannels — one per sampling stream, the
// same one-stream-one-owner contract as AccessSession. A channel turns the
// session's staged visit order into prefetched, pipelined attempt-0
// requests with a bounded in-flight depth, so source latency overlaps both
// compute and other sources' latency instead of serializing; with
// `max_in_flight <= 1` the channel degenerates to strict synchronous
// request/response, which is what bench/transport measures the pipeline
// against.
//
// Determinism: everything the *samplers* observe — outcomes, payloads, the
// virtual-ms deadline charges in kModelVirtual mode — is a pure function
// of the keyed FaultModel, computed endpoint-side per (source, epoch,
// attempt). Prefetch depth, hedging, thread scheduling, and wire
// interleaving change only wall-clock timing and wall-side telemetry, so
// a transported extraction is bit-identical to the simulated seam. The
// kWallMapped mode deliberately trades that determinism away to let
// deadline budgets meter real elapsed waiting (scaled by
// `virtual_ms_per_wall_ms`); prefetched responses that already arrived
// charge ~0, making overlap visible to the budget machinery.
//
// Hedging: once the channel has a latency picture (LatencyCutoffEstimator
// over observed wall round-trips), an attempt that outlives the cutoff
// percentile fires a duplicate request with a fresh id but the identical
// (source, epoch, attempt) key. The endpoint computes the identical
// outcome, so whichever copy arrives first is THE answer — a hedge can
// only cut tail latency, never change results. Fired/won/cancelled edges
// land in the flight recorder for trace inspection.

#ifndef VASTATS_TRANSPORT_ASYNC_TRANSPORT_H_
#define VASTATS_TRANSPORT_ASYNC_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "datagen/source_accessor.h"
#include "obs/obs.h"
#include "transport/clock_map.h"
#include "transport/endpoint.h"
#include "transport/wire.h"
#include "util/status.h"

namespace vastats::transport {

// What one attempt charges against the session's virtual-time budgets.
enum class LatencyChargeMode {
  // The fault model's deterministic attempt latency, as returned by the
  // endpoint. Bit-parity with the simulated seam; the default.
  kModelVirtual,
  // Measured wall time the session actually spent blocked on the attempt,
  // scaled by TransportOptions.virtual_ms_per_wall_ms. Nondeterministic by
  // design: budgets then meter reality, and prefetch overlap pays off as
  // near-zero charges.
  kWallMapped,
};

struct HedgeOptions {
  bool enabled = false;
  // Hedge when an attempt's wall age exceeds this percentile of observed
  // round-trips, times `multiplier`.
  double percentile = 0.95;
  double multiplier = 2.0;
  // No hedging until the estimator has this many observations.
  int min_samples = 16;
  // Floor for the computed cutoff, guarding against hedging storms when
  // the observed latencies are tiny.
  double min_cutoff_ms = 0.0;
  int max_hedges_per_attempt = 1;

  Status Validate() const;
};

struct TransportOptions {
  EndpointOptions endpoint;
  // Bound on requests outstanding per channel; <= 1 disables prefetching
  // entirely (strict synchronous visits).
  int max_in_flight = 4;
  LatencyChargeMode latency_mode = LatencyChargeMode::kModelVirtual;
  // kWallMapped only: virtual milliseconds charged per wall millisecond
  // measurably spent blocked on the transport.
  double virtual_ms_per_wall_ms = 1.0;
  HedgeOptions hedge;
  // Wait granularity while an attempt is outstanding and hedging is
  // enabled (the channel must wake to check the cutoff).
  double poll_quantum_ms = 0.2;
  // Observation window of the per-channel latency estimator.
  int latency_window = 128;

  Status Validate() const;
};

// Channel telemetry, merged across closed channels by the transport.
struct TransportCounters {
  uint64_t requests = 0;            // wire requests issued (incl. hedges)
  uint64_t responses = 0;           // wire responses ingested
  uint64_t prefetches_issued = 0;   // staged attempt-0 requests sent early
  uint64_t prefetches_wasted = 0;   // prefetches never consumed by a visit
  uint64_t hedges_fired = 0;
  uint64_t hedges_won = 0;          // duplicate beat the primary
  uint64_t hedges_cancelled = 0;    // primary beat the duplicate
  uint64_t bytes_received = 0;      // response frame bytes
  uint64_t peak_in_flight = 0;      // high-water outstanding requests

  void Merge(const TransportCounters& other);
};

class TransportChannel;

// Owns the endpoint group and mints channels. Thread-safe; one transport
// serves any number of concurrent streams, each through its own channel.
class AsyncSourceTransport {
 public:
  // `sources` is snapshotted into endpoint payloads; `model` is borrowed
  // (nullable = faultless instant endpoints) and must outlive the
  // transport. For bit-parity with a simulated run, pass the SAME model
  // here and to the SourceAccessor driving the sessions.
  static Result<std::unique_ptr<AsyncSourceTransport>> Create(
      const SourceSet& sources, const FaultModel* model,
      TransportOptions options);

  ~AsyncSourceTransport() = default;
  AsyncSourceTransport(const AsyncSourceTransport&) = delete;
  AsyncSourceTransport& operator=(const AsyncSourceTransport&) = delete;

  // Opens a channel for one sampling stream. `metrics`/`recorder` are
  // nullable and borrowed; the channel flushes its counters to `metrics`
  // and journals transport events to `recorder`. The channel must be
  // destroyed before the transport.
  Result<std::unique_ptr<TransportChannel>> OpenChannel(
      MetricsRegistry* metrics = nullptr, FlightRecorder* recorder = nullptr);

  // Counters merged from every closed channel.
  TransportCounters counters() const;

  const TransportOptions& options() const { return options_; }

 private:
  friend class TransportChannel;

  AsyncSourceTransport(TransportOptions options,
                       std::unique_ptr<EndpointGroup> endpoint);

  void MergeCounters(const TransportCounters& counters);

  TransportOptions options_;
  std::unique_ptr<EndpointGroup> endpoint_;

  mutable std::mutex mutex_;
  TransportCounters merged_;
};

// One stream's transport channel. NOT thread-safe on the VisitTransport
// surface (one session per channel, like AccessSession); DeliverFrame is
// the only cross-thread entry and is internally synchronized.
class TransportChannel final : public VisitTransport, public ResponseSink {
 public:
  ~TransportChannel() override;
  TransportChannel(const TransportChannel&) = delete;
  TransportChannel& operator=(const TransportChannel&) = delete;

  // VisitTransport:
  void StageVisitOrder(int64_t epoch, std::span<const int> order,
                       std::span<const int> counts) override;
  TransportAttemptResult PerformAttempt(int source, int64_t epoch,
                                        int attempt,
                                        int num_components) override;

  // ResponseSink (in-process delivery; called from endpoint service
  // threads):
  void DeliverFrame(std::string_view frame) override;

  const TransportCounters& counters() const { return counters_; }
  int in_flight() const { return in_flight_; }

 private:
  friend class AsyncSourceTransport;

  // One issued-but-unconsumed request (a staged prefetch or the demand
  // request of an in-progress visit).
  struct Pending {
    uint64_t id = 0;
    int source = 0;
    int64_t epoch = 0;
    int attempt = 0;
    int num_components = 0;
    bool prefetch = false;
    double issued_wall_ms = 0.0;
  };

  // A response handed over by the endpoint, awaiting ingestion by the
  // channel's owning thread.
  struct Arrived {
    WireResponse response;
    double wall_ms = 0.0;
    size_t frame_bytes = 0;
  };

  // An id whose response must be dropped on arrival: a prefetch whose
  // visit never happened, or a hedge race's loser.
  struct Orphan {
    uint64_t id = 0;
    bool count_as_wasted_prefetch = false;
  };

  // One staged visit of the current draw, in intended order.
  struct StagedVisit {
    int source = 0;
    int num_components = 0;
    bool issued = false;
  };

  TransportChannel(AsyncSourceTransport* owner, uint64_t channel_id,
                   int client_fd, MetricsRegistry* metrics,
                   FlightRecorder* recorder);

  uint64_t IssueRequest(int source, int64_t epoch, int attempt,
                        int num_components, bool prefetch);
  void TopUpPrefetches();
  // Moves endpoint-delivered (or fd-readable) responses into ready_,
  // resolving orphans. Never blocks.
  void IngestArrivals();
  // Blocks up to `timeout_ms` (< 0 = indefinitely) for new arrivals.
  void AwaitArrivals(double timeout_ms);
  // Drops `id` from ready_/pending_ or registers it as an orphan.
  void Discard(uint64_t id, bool count_as_wasted_prefetch);
  // Index into ready_ for `id`, or -1.
  int FindReady(uint64_t id) const;
  void IngestOne(Arrived arrived);
  void RecordEvent(FlightEventKind kind, uint32_t name_id, double value,
                   uint64_t aux);
  void SetInFlight(int delta);

  AsyncSourceTransport* owner_;
  uint64_t channel_id_ = 0;
  int client_fd_ = -1;  // kSocketPair: client end, owned
  MetricsRegistry* metrics_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  uint32_t in_flight_name_id_ = 0;
  uint32_t hedge_fired_name_id_ = 0;
  uint32_t hedge_won_name_id_ = 0;
  uint32_t hedge_cancelled_name_id_ = 0;

  WallClock wall_;
  WallBudgetMap budget_map_;
  LatencyCutoffEstimator estimator_;

  // Owning-thread state (A2: linear-scanned vectors, deterministic order).
  std::vector<Pending> pending_;
  std::vector<std::pair<uint64_t, Arrived>> ready_;
  std::vector<Orphan> orphans_;
  std::vector<StagedVisit> staged_;
  int64_t staged_epoch_ = -1;
  int in_flight_ = 0;
  uint64_t next_request_seq_ = 0;
  std::vector<TransportBinding> current_payload_;
  std::string rx_buffer_;  // kSocketPair: partial response frames
  std::string tx_scratch_;
  TransportCounters counters_;

  // Shared with endpoint service threads (in-process delivery).
  std::mutex arrivals_mutex_;
  std::condition_variable arrivals_cv_;
  std::vector<Arrived> arrivals_;
};

}  // namespace vastats::transport

#endif  // VASTATS_TRANSPORT_ASYNC_TRANSPORT_H_
