#include "transport/async_transport.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

namespace vastats::transport {
namespace {

bool WriteAll(int fd, std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status HedgeOptions::Validate() const {
  if (percentile < 0.0 || percentile > 1.0) {
    return Status::InvalidArgument(
        "HedgeOptions.percentile must be in [0, 1]");
  }
  if (multiplier < 1.0) {
    return Status::InvalidArgument("HedgeOptions.multiplier must be >= 1");
  }
  if (min_samples < 1) {
    return Status::InvalidArgument("HedgeOptions.min_samples must be >= 1");
  }
  if (min_cutoff_ms < 0.0) {
    return Status::InvalidArgument("HedgeOptions.min_cutoff_ms must be >= 0");
  }
  if (enabled && (max_hedges_per_attempt < 1 || max_hedges_per_attempt > 8)) {
    return Status::InvalidArgument(
        "HedgeOptions.max_hedges_per_attempt must be in [1, 8]");
  }
  return Status::Ok();
}

Status TransportOptions::Validate() const {
  VASTATS_RETURN_IF_ERROR(endpoint.Validate());
  VASTATS_RETURN_IF_ERROR(hedge.Validate());
  if (max_in_flight < 1 || max_in_flight > 1024) {
    return Status::InvalidArgument(
        "TransportOptions.max_in_flight must be in [1, 1024]");
  }
  if (latency_mode == LatencyChargeMode::kWallMapped &&
      virtual_ms_per_wall_ms <= 0.0) {
    return Status::InvalidArgument(
        "TransportOptions.virtual_ms_per_wall_ms must be > 0 in wall-mapped "
        "mode");
  }
  if (poll_quantum_ms <= 0.0) {
    return Status::InvalidArgument(
        "TransportOptions.poll_quantum_ms must be > 0");
  }
  if (latency_window < 4) {
    return Status::InvalidArgument(
        "TransportOptions.latency_window must be >= 4");
  }
  return Status::Ok();
}

void TransportCounters::Merge(const TransportCounters& other) {
  requests += other.requests;
  responses += other.responses;
  prefetches_issued += other.prefetches_issued;
  prefetches_wasted += other.prefetches_wasted;
  hedges_fired += other.hedges_fired;
  hedges_won += other.hedges_won;
  hedges_cancelled += other.hedges_cancelled;
  bytes_received += other.bytes_received;
  peak_in_flight = std::max(peak_in_flight, other.peak_in_flight);
}

Result<std::unique_ptr<AsyncSourceTransport>> AsyncSourceTransport::Create(
    const SourceSet& sources, const FaultModel* model,
    TransportOptions options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  VASTATS_ASSIGN_OR_RETURN(
      std::unique_ptr<EndpointGroup> endpoint,
      EndpointGroup::Create(sources, model, options.endpoint));
  return std::unique_ptr<AsyncSourceTransport>(
      new AsyncSourceTransport(std::move(options), std::move(endpoint)));
}

AsyncSourceTransport::AsyncSourceTransport(
    TransportOptions options, std::unique_ptr<EndpointGroup> endpoint)
    : options_(std::move(options)), endpoint_(std::move(endpoint)) {}

Result<std::unique_ptr<TransportChannel>> AsyncSourceTransport::OpenChannel(
    MetricsRegistry* metrics, FlightRecorder* recorder) {
  if (options_.endpoint.backend == EndpointBackend::kSocketPair) {
    int client_fd = -1;
    VASTATS_ASSIGN_OR_RETURN(const uint64_t id,
                             endpoint_->RegisterChannelFd(&client_fd));
    return std::unique_ptr<TransportChannel>(
        new TransportChannel(this, id, client_fd, metrics, recorder));
  }
  // In-process: the channel itself is the response sink, so it must exist
  // before the endpoint learns its id.
  std::unique_ptr<TransportChannel> channel(
      new TransportChannel(this, 0, -1, metrics, recorder));
  channel->channel_id_ = endpoint_->RegisterChannel(channel.get());
  return channel;
}

TransportCounters AsyncSourceTransport::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return merged_;
}

void AsyncSourceTransport::MergeCounters(const TransportCounters& counters) {
  std::lock_guard<std::mutex> lock(mutex_);
  merged_.Merge(counters);
}

TransportChannel::TransportChannel(AsyncSourceTransport* owner,
                                   uint64_t channel_id, int client_fd,
                                   MetricsRegistry* metrics,
                                   FlightRecorder* recorder)
    : owner_(owner),
      channel_id_(channel_id),
      client_fd_(client_fd),
      metrics_(metrics),
      recorder_(recorder),
      budget_map_(owner->options_.virtual_ms_per_wall_ms),
      estimator_(owner->options_.latency_window) {
  if (client_fd_ >= 0) {
    // Non-blocking client end: one readiness wakeup drains every buffered
    // frame; actual waiting happens in poll().
    const int flags = ::fcntl(client_fd_, F_GETFL, 0);
    (void)::fcntl(client_fd_, F_SETFL, flags | O_NONBLOCK);
  }
  if (recorder_ != nullptr) {
    in_flight_name_id_ = recorder_->InternName("transport_in_flight");
    hedge_fired_name_id_ = recorder_->InternName("transport_hedge_fired");
    hedge_won_name_id_ = recorder_->InternName("transport_hedge_won");
    hedge_cancelled_name_id_ =
        recorder_->InternName("transport_hedge_cancelled");
  }
}

TransportChannel::~TransportChannel() {
  // After UnregisterChannel returns, no endpoint thread can call
  // DeliverFrame or write our fd; everything still outstanding is lost,
  // which the counters record as waste.
  owner_->endpoint_->UnregisterChannel(channel_id_);
  if (client_fd_ >= 0) ::close(client_fd_);
  for (const Pending& pending : pending_) {
    if (pending.prefetch) ++counters_.prefetches_wasted;
  }
  for (const Orphan& orphan : orphans_) {
    if (orphan.count_as_wasted_prefetch) ++counters_.prefetches_wasted;
  }
  if (metrics_ != nullptr) {
    metrics_->GetCounter("transport_requests_total")
        .Increment(counters_.requests);
    metrics_->GetCounter("transport_responses_total")
        .Increment(counters_.responses);
    metrics_->GetCounter("transport_prefetches_issued_total")
        .Increment(counters_.prefetches_issued);
    metrics_->GetCounter("transport_prefetches_wasted_total")
        .Increment(counters_.prefetches_wasted);
    metrics_->GetCounter("transport_hedges_fired_total")
        .Increment(counters_.hedges_fired);
    metrics_->GetCounter("transport_hedges_won_total")
        .Increment(counters_.hedges_won);
    metrics_->GetCounter("transport_hedges_cancelled_total")
        .Increment(counters_.hedges_cancelled);
    metrics_->GetCounter("transport_bytes_received_total")
        .Increment(counters_.bytes_received);
  }
  owner_->MergeCounters(counters_);
}

void TransportChannel::StageVisitOrder(int64_t epoch,
                                       std::span<const int> order,
                                       std::span<const int> counts) {
  IngestArrivals();
  // Whatever the previous draw staged but never consumed is dead now.
  std::vector<uint64_t> stale;
  for (const Pending& pending : pending_) {
    if (pending.prefetch) stale.push_back(pending.id);
  }
  for (const uint64_t id : stale) Discard(id, /*count_as_wasted=*/true);

  staged_.clear();
  staged_epoch_ = epoch;
  if (owner_->options_.max_in_flight <= 1) return;  // sync mode: no lookahead
  staged_.reserve(order.size());
  for (size_t i = 0; i < order.size() && i < counts.size(); ++i) {
    staged_.push_back(StagedVisit{order[i], counts[i], false});
  }
  TopUpPrefetches();
}

TransportAttemptResult TransportChannel::PerformAttempt(int source,
                                                        int64_t epoch,
                                                        int attempt,
                                                        int num_components) {
  IngestArrivals();

  const auto find_pending = [&]() -> const Pending* {
    for (const Pending& pending : pending_) {
      if (pending.source == source && pending.epoch == epoch &&
          pending.attempt == attempt) {
        return &pending;
      }
    }
    return nullptr;
  };

  const Pending* hit = find_pending();
  if (hit != nullptr && hit->prefetch) {
    // Staged prefetches issue in visit order, so any *earlier* unconsumed
    // prefetch of this epoch belongs to a source the draw skipped (open
    // breaker): orphan them now rather than at the draw boundary, freeing
    // their in-flight slots for the top-up below.
    std::vector<uint64_t> skipped;
    for (const Pending& pending : pending_) {
      if (pending.id == hit->id) break;
      if (pending.prefetch && pending.epoch == epoch) {
        skipped.push_back(pending.id);
      }
    }
    for (const uint64_t id : skipped) Discard(id, /*count_as_wasted=*/true);
    hit = find_pending();
  }

  uint64_t primary_id;
  double primary_issued_ms;
  if (hit != nullptr) {
    primary_id = hit->id;
    primary_issued_ms = hit->issued_wall_ms;
  } else {
    // Nothing staged for this key (sync mode, a retry attempt, or an
    // unannounced visit): issue on demand.
    primary_id = IssueRequest(source, epoch, attempt, num_components,
                              /*prefetch=*/false);
    primary_issued_ms = pending_.back().issued_wall_ms;
  }

  const HedgeOptions& hedge = owner_->options_.hedge;
  const double cutoff_ms =
      hedge.enabled ? estimator_.CutoffMs(hedge.percentile, hedge.multiplier,
                                          hedge.min_samples,
                                          hedge.min_cutoff_ms)
                    : std::numeric_limits<double>::infinity();

  std::vector<std::pair<uint64_t, double>> hedges;  // id, issued wall ms
  const uint64_t visit_aux = PackTransportVisit(source, epoch, attempt);
  const double wait_start_ms = wall_.NowMs();
  double last_issue_ms = primary_issued_ms;

  uint64_t winner_id = 0;
  double winner_issued_ms = 0.0;
  Arrived arrived;
  while (true) {
    int ready = FindReady(primary_id);
    winner_id = primary_id;
    winner_issued_ms = primary_issued_ms;
    if (ready < 0) {
      for (const auto& [hedge_id, issued_ms] : hedges) {
        ready = FindReady(hedge_id);
        if (ready >= 0) {
          winner_id = hedge_id;
          winner_issued_ms = issued_ms;
          break;
        }
      }
    }
    if (ready >= 0) {
      arrived = std::move(ready_[static_cast<size_t>(ready)].second);
      ready_.erase(ready_.begin() + ready);
      break;
    }

    const bool may_hedge =
        std::isfinite(cutoff_ms) &&
        static_cast<int>(hedges.size()) < hedge.max_hedges_per_attempt;
    if (may_hedge && wall_.NowMs() - last_issue_ms >= cutoff_ms) {
      const uint64_t hedge_id = IssueRequest(source, epoch, attempt,
                                             num_components,
                                             /*prefetch=*/false);
      last_issue_ms = pending_.back().issued_wall_ms;
      hedges.emplace_back(hedge_id, last_issue_ms);
      ++counters_.hedges_fired;
      RecordEvent(FlightEventKind::kTransportHedgeFired, hedge_fired_name_id_,
                  cutoff_ms, visit_aux);
    }

    // With hedging armed we must wake to check the cutoff; otherwise sleep
    // until the endpoint delivers.
    const bool must_poll =
        std::isfinite(cutoff_ms) &&
        static_cast<int>(hedges.size()) < hedge.max_hedges_per_attempt;
    AwaitArrivals(must_poll ? owner_->options_.poll_quantum_ms : -1.0);
  }

  const double now_ms = wall_.NowMs();
  const double round_trip_ms = std::max(0.0, arrived.wall_ms - winner_issued_ms);
  estimator_.Observe(round_trip_ms);

  if (winner_id != primary_id) {
    ++counters_.hedges_won;
    RecordEvent(FlightEventKind::kTransportHedgeWon, hedge_won_name_id_,
                round_trip_ms, visit_aux);
    Discard(primary_id, /*count_as_wasted=*/false);
  } else {
    std::erase_if(pending_,
                  [primary_id](const Pending& p) { return p.id == primary_id; });
  }
  for (const auto& [hedge_id, issued_ms] : hedges) {
    if (hedge_id == winner_id) {
      std::erase_if(pending_,
                    [hedge_id](const Pending& p) { return p.id == hedge_id; });
      continue;
    }
    ++counters_.hedges_cancelled;
    RecordEvent(FlightEventKind::kTransportHedgeCancelled,
                hedge_cancelled_name_id_, std::max(0.0, now_ms - issued_ms),
                visit_aux);
    Discard(hedge_id, /*count_as_wasted=*/false);
  }

  TransportAttemptResult result;
  result.failed = arrived.response.failed;
  if (owner_->options_.latency_mode == LatencyChargeMode::kModelVirtual) {
    result.virtual_ms = arrived.response.virtual_ms;
  } else {
    // Charge only the time this visit actually blocked the stream: a
    // prefetched response that already arrived costs (nearly) nothing,
    // which is exactly the overlap the pipeline buys.
    result.virtual_ms = budget_map_.ToVirtualMs(now_ms - wait_start_ms);
  }
  current_payload_ = std::move(arrived.response.payload);
  if (!result.failed) {
    result.payload = std::span<const TransportBinding>(current_payload_);
  }
  TopUpPrefetches();
  return result;
}

void TransportChannel::DeliverFrame(std::string_view frame) {
  WireResponse response;
  const Result<size_t> consumed = DecodeResponseFrame(frame, &response);
  if (!consumed.ok() || consumed.value() == 0) return;  // malformed: drop
  Arrived arrived;
  arrived.response = std::move(response);
  arrived.wall_ms = wall_.NowMs();
  arrived.frame_bytes = frame.size();
  {
    std::lock_guard<std::mutex> lock(arrivals_mutex_);
    arrivals_.push_back(std::move(arrived));
  }
  arrivals_cv_.notify_one();
}

uint64_t TransportChannel::IssueRequest(int source, int64_t epoch, int attempt,
                                        int num_components, bool prefetch) {
  WireRequest request;
  request.id = (channel_id_ << 40) + next_request_seq_++;
  request.channel = channel_id_;
  request.source = source;
  request.epoch = epoch;
  request.attempt = attempt;
  request.num_components = num_components;

  Pending pending;
  pending.id = request.id;
  pending.source = source;
  pending.epoch = epoch;
  pending.attempt = attempt;
  pending.num_components = num_components;
  pending.prefetch = prefetch;
  pending.issued_wall_ms = wall_.NowMs();
  pending_.push_back(pending);

  ++counters_.requests;
  SetInFlight(+1);

  if (client_fd_ >= 0) {
    tx_scratch_.clear();
    AppendRequestFrame(request, &tx_scratch_);
    (void)WriteAll(client_fd_, tx_scratch_);
  } else {
    owner_->endpoint_->Submit(request);
  }
  return request.id;
}

void TransportChannel::TopUpPrefetches() {
  if (owner_->options_.max_in_flight <= 1) return;
  for (StagedVisit& staged : staged_) {
    if (in_flight_ >= owner_->options_.max_in_flight) break;
    if (staged.issued) continue;
    IssueRequest(staged.source, staged_epoch_, /*attempt=*/0,
                 staged.num_components, /*prefetch=*/true);
    staged.issued = true;
    ++counters_.prefetches_issued;
    RecordEvent(FlightEventKind::kTransportPrefetchIssued, in_flight_name_id_,
                static_cast<double>(in_flight_),
                PackTransportVisit(staged.source, staged_epoch_, 0));
  }
}

void TransportChannel::IngestArrivals() { AwaitArrivals(0.0); }

void TransportChannel::AwaitArrivals(double timeout_ms) {
  if (client_fd_ >= 0) {
    pollfd poll_fd{client_fd_, POLLIN, 0};
    const int timeout =
        timeout_ms < 0.0
            ? -1
            : static_cast<int>(std::ceil(std::max(0.0, timeout_ms)));
    (void)::poll(&poll_fd, 1, timeout);
    char buffer[65536];
    while (true) {
      const ssize_t n = ::read(client_fd_, buffer, sizeof(buffer));
      if (n > 0) {
        rx_buffer_.append(buffer, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;  // EAGAIN (drained), EOF, or error
    }
    size_t consumed = 0;
    while (true) {
      WireResponse response;
      const Result<size_t> decoded = DecodeResponseFrame(
          std::string_view(rx_buffer_).substr(consumed), &response);
      if (!decoded.ok()) {
        // Unrecoverable framing corruption; drop the stream's buffer and
        // let retry/breaker machinery absorb the stall.
        rx_buffer_.clear();
        return;
      }
      if (decoded.value() == 0) break;
      Arrived arrived;
      arrived.response = std::move(response);
      arrived.wall_ms = wall_.NowMs();
      arrived.frame_bytes = decoded.value();
      consumed += decoded.value();
      IngestOne(std::move(arrived));
    }
    if (consumed > 0) rx_buffer_.erase(0, consumed);
    return;
  }

  std::vector<Arrived> taken;
  {
    std::unique_lock<std::mutex> lock(arrivals_mutex_);
    if (arrivals_.empty() && timeout_ms != 0.0) {
      const auto ready = [this] { return !arrivals_.empty(); };
      if (timeout_ms < 0.0) {
        arrivals_cv_.wait(lock, ready);
      } else {
        arrivals_cv_.wait_for(
            lock, std::chrono::duration<double, std::milli>(timeout_ms),
            ready);
      }
    }
    taken.swap(arrivals_);
  }
  for (Arrived& arrived : taken) IngestOne(std::move(arrived));
}

void TransportChannel::IngestOne(Arrived arrived) {
  ++counters_.responses;
  counters_.bytes_received += arrived.frame_bytes;
  SetInFlight(-1);

  const uint64_t id = arrived.response.id;
  for (size_t i = 0; i < orphans_.size(); ++i) {
    if (orphans_[i].id != id) continue;
    if (orphans_[i].count_as_wasted_prefetch) ++counters_.prefetches_wasted;
    orphans_.erase(orphans_.begin() + static_cast<long>(i));
    return;
  }

  for (const Pending& pending : pending_) {
    if (pending.id != id) continue;
    if (pending.prefetch) {
      RecordEvent(FlightEventKind::kTransportPrefetchCompleted,
                  in_flight_name_id_, static_cast<double>(in_flight_),
                  PackTransportVisit(pending.source, pending.epoch,
                                     pending.attempt));
    }
    break;
  }
  ready_.emplace_back(id, std::move(arrived));
}

void TransportChannel::Discard(uint64_t id, bool count_as_wasted_prefetch) {
  std::erase_if(pending_, [id](const Pending& p) { return p.id == id; });
  const int ready = FindReady(id);
  if (ready >= 0) {
    if (count_as_wasted_prefetch) ++counters_.prefetches_wasted;
    ready_.erase(ready_.begin() + ready);
    return;
  }
  orphans_.push_back(Orphan{id, count_as_wasted_prefetch});
}

int TransportChannel::FindReady(uint64_t id) const {
  for (size_t i = 0; i < ready_.size(); ++i) {
    if (ready_[i].first == id) return static_cast<int>(i);
  }
  return -1;
}

void TransportChannel::RecordEvent(FlightEventKind kind, uint32_t name_id,
                                   double value, uint64_t aux) {
  if (recorder_ == nullptr) return;
  recorder_->Record(kind, name_id, value, aux);
}

void TransportChannel::SetInFlight(int delta) {
  in_flight_ += delta;
  if (in_flight_ < 0) in_flight_ = 0;
  if (static_cast<uint64_t>(in_flight_) > counters_.peak_in_flight) {
    counters_.peak_in_flight = static_cast<uint64_t>(in_flight_);
  }
  if (metrics_ != nullptr) {
    metrics_->GetGauge("transport_in_flight")
        .Set(static_cast<double>(in_flight_));
  }
}

}  // namespace vastats::transport
