#include "transport/wire.h"

#include <cstring>

namespace vastats::transport {
namespace {

// Distinct magics catch a reader pointed at the wrong stream direction.
constexpr uint32_t kRequestMagic = 0x56545851u;   // "VTXQ"
constexpr uint32_t kResponseMagic = 0x56545852u;  // "VTXR"

template <typename T>
void AppendPod(T value, std::string* out) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

template <typename T>
T ReadPod(const char* bytes) {
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

}  // namespace

void AppendRequestFrame(const WireRequest& request, std::string* out) {
  out->reserve(out->size() + kRequestFrameBytes);
  AppendPod<uint32_t>(kRequestMagic, out);
  AppendPod<int32_t>(request.source, out);
  AppendPod<uint64_t>(request.id, out);
  AppendPod<uint64_t>(request.channel, out);
  AppendPod<int64_t>(request.epoch, out);
  AppendPod<int32_t>(request.attempt, out);
  AppendPod<int32_t>(request.num_components, out);
}

Result<size_t> DecodeRequestFrame(std::string_view bytes,
                                  WireRequest* request) {
  if (bytes.size() < kRequestFrameBytes) return size_t{0};
  const char* p = bytes.data();
  if (ReadPod<uint32_t>(p) != kRequestMagic) {
    return Status::Internal("transport request frame has a corrupt magic");
  }
  request->source = ReadPod<int32_t>(p + 4);
  request->id = ReadPod<uint64_t>(p + 8);
  request->channel = ReadPod<uint64_t>(p + 16);
  request->epoch = ReadPod<int64_t>(p + 24);
  request->attempt = ReadPod<int32_t>(p + 32);
  request->num_components = ReadPod<int32_t>(p + 36);
  return kRequestFrameBytes;
}

void AppendResponseFrame(uint64_t id, bool failed, double virtual_ms,
                         std::string_view payload_body, std::string* out) {
  out->reserve(out->size() + kResponseHeaderBytes + payload_body.size());
  AppendPod<uint32_t>(kResponseMagic, out);
  AppendPod<uint32_t>(static_cast<uint32_t>(payload_body.size()), out);
  AppendPod<uint64_t>(id, out);
  AppendPod<double>(virtual_ms, out);
  AppendPod<uint32_t>(failed ? 1u : 0u, out);
  AppendPod<uint32_t>(
      static_cast<uint32_t>(payload_body.size() / kBindingBytes), out);
  AppendPod<uint64_t>(0, out);  // reserved
  out->append(payload_body.data(), payload_body.size());
}

Result<size_t> DecodeResponseFrame(std::string_view bytes,
                                   WireResponse* response) {
  if (bytes.size() < kResponseHeaderBytes) return size_t{0};
  const char* p = bytes.data();
  if (ReadPod<uint32_t>(p) != kResponseMagic) {
    return Status::Internal("transport response frame has a corrupt magic");
  }
  const size_t body_size = ReadPod<uint32_t>(p + 4);
  if (bytes.size() < kResponseHeaderBytes + body_size) return size_t{0};
  if (body_size % kBindingBytes != 0) {
    return Status::Internal("transport response body is not binding-aligned");
  }
  response->id = ReadPod<uint64_t>(p + 8);
  response->virtual_ms = ReadPod<double>(p + 16);
  response->failed = ReadPod<uint32_t>(p + 24) != 0;
  const size_t num_bindings = ReadPod<uint32_t>(p + 28);
  if (num_bindings != body_size / kBindingBytes) {
    return Status::Internal(
        "transport response binding count disagrees with the body size");
  }
  response->payload.clear();
  response->payload.reserve(num_bindings);
  const char* body = p + kResponseHeaderBytes;
  for (size_t i = 0; i < num_bindings; ++i) {
    TransportBinding binding;
    binding.component = ReadPod<int64_t>(body + i * kBindingBytes);
    binding.value = ReadPod<double>(body + i * kBindingBytes + 8);
    response->payload.push_back(binding);
  }
  return kResponseHeaderBytes + body_size;
}

std::string EncodeBindings(const std::vector<TransportBinding>& bindings) {
  std::string body;
  body.reserve(bindings.size() * kBindingBytes);
  for (const TransportBinding& binding : bindings) {
    AppendPod<int64_t>(binding.component, &body);
    AppendPod<double>(binding.value, &body);
  }
  return body;
}

}  // namespace vastats::transport
