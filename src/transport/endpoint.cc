#include "transport/endpoint.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/random.h"

namespace vastats::transport {
namespace {

// Writes all of `bytes` to `fd`, retrying short writes and EINTR.
bool WriteAll(int fd, std::string_view bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

void SleepWallMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

Status EndpointOptions::Validate() const {
  if (service_threads < 1 || service_threads > 64) {
    return Status::InvalidArgument(
        "EndpointOptions.service_threads must be in [1, 64]");
  }
  if (wall_ms_per_virtual_ms < 0.0) {
    return Status::InvalidArgument(
        "EndpointOptions.wall_ms_per_virtual_ms must be >= 0");
  }
  if (straggler_fraction < 0.0 || straggler_fraction > 1.0) {
    return Status::InvalidArgument(
        "EndpointOptions.straggler_fraction must be in [0, 1]");
  }
  if (straggler_multiplier < 1.0) {
    return Status::InvalidArgument(
        "EndpointOptions.straggler_multiplier must be >= 1");
  }
  return Status::Ok();
}

Result<std::unique_ptr<EndpointGroup>> EndpointGroup::Create(
    const SourceSet& sources, const FaultModel* model,
    EndpointOptions options) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (sources.NumSources() <= 0) {
    return Status::InvalidArgument(
        "EndpointGroup needs at least one source to serve");
  }
  if (model != nullptr && model->num_sources() != sources.NumSources()) {
    return Status::InvalidArgument(
        "EndpointGroup fault model covers a different number of sources");
  }

  // Snapshot every source as its pre-encoded wire payload. Encoding once
  // up front means serving a request is a header append plus one blob copy
  // (or positioned read), never a re-sort.
  std::vector<std::string> payloads;
  payloads.reserve(static_cast<size_t>(sources.NumSources()));
  for (int s = 0; s < sources.NumSources(); ++s) {
    const auto sorted = sources.source(s).SortedBindings();
    std::vector<TransportBinding> bindings;
    bindings.reserve(sorted.size());
    for (const auto& [component, value] : sorted) {
      bindings.push_back(TransportBinding{component, value});
    }
    payloads.push_back(EncodeBindings(bindings));
  }

  std::string spool_dir;
  std::vector<int> payload_fds;
  if (options.file_backed_payloads) {
    char dir_template[] = "/tmp/vastats_endpoint_XXXXXX";
    if (::mkdtemp(dir_template) == nullptr) {
      return Status::Internal("EndpointGroup failed to create a spool dir");
    }
    spool_dir = dir_template;
    payload_fds.reserve(payloads.size());
    for (size_t s = 0; s < payloads.size(); ++s) {
      const std::string path =
          spool_dir + "/source_" + std::to_string(s) + ".bin";
      const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
      bool ok = fd >= 0 && WriteAll(fd, payloads[s]);
      if (!ok) {
        if (fd >= 0) ::close(fd);
        for (int open_fd : payload_fds) ::close(open_fd);
        return Status::Internal("EndpointGroup failed to spool payload " +
                                path);
      }
      payload_fds.push_back(fd);
    }
  }

  std::unique_ptr<EndpointGroup> group(
      new EndpointGroup(model, options, std::move(payloads),
                        std::move(payload_fds), std::move(spool_dir)));
  if (options.backend == EndpointBackend::kSocketPair) {
    if (::pipe(group->wake_pipe_) != 0) {
      return Status::Internal("EndpointGroup failed to create a wake pipe");
    }
    // Non-blocking read end: the receiver drains wake bytes with a read
    // loop that must stop at EAGAIN, not block.
    const int flags = ::fcntl(group->wake_pipe_[0], F_GETFL, 0);
    (void)::fcntl(group->wake_pipe_[0], F_SETFL, flags | O_NONBLOCK);
  }
  group->StartThreads();
  return group;
}

EndpointGroup::EndpointGroup(const FaultModel* model, EndpointOptions options,
                             std::vector<std::string> payloads,
                             std::vector<int> payload_fds,
                             std::string spool_dir)
    : model_(model),
      options_(options),
      payloads_(std::move(payloads)),
      payload_fds_(std::move(payload_fds)),
      spool_dir_(std::move(spool_dir)) {}

EndpointGroup::~EndpointGroup() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  WakeReceiver();
  for (std::thread& t : service_threads_) t.join();
  if (receive_thread_.joinable()) receive_thread_.join();

  for (const auto& channel : channels_) {
    if (channel->fd >= 0) ::close(channel->fd);
  }
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  for (size_t s = 0; s < payload_fds_.size(); ++s) {
    ::close(payload_fds_[s]);
    const std::string path =
        spool_dir_ + "/source_" + std::to_string(s) + ".bin";
    ::unlink(path.c_str());
  }
  if (!spool_dir_.empty()) ::rmdir(spool_dir_.c_str());
}

void EndpointGroup::StartThreads() {
  service_threads_.reserve(static_cast<size_t>(options_.service_threads));
  for (int i = 0; i < options_.service_threads; ++i) {
    service_threads_.emplace_back([this] { ServiceLoop(); });
  }
  if (options_.backend == EndpointBackend::kSocketPair) {
    receive_thread_ = std::thread([this] { ReceiveLoop(); });
  }
}

uint64_t EndpointGroup::RegisterChannel(ResponseSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto channel = std::make_unique<Channel>();
  channel->id = next_channel_id_++;
  channel->sink = sink;
  const uint64_t id = channel->id;
  channels_.push_back(std::move(channel));
  return id;
}

Result<uint64_t> EndpointGroup::RegisterChannelFd(int* client_fd) {
  if (options_.backend != EndpointBackend::kSocketPair) {
    return Status::FailedPrecondition(
        "RegisterChannelFd requires the kSocketPair backend");
  }
  int pair[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
    return Status::Internal("EndpointGroup failed to create a socket pair");
  }
  // The endpoint end is read by the poll loop; non-blocking reads let one
  // readiness wakeup drain everything buffered.
  const int flags = ::fcntl(pair[0], F_GETFL, 0);
  (void)::fcntl(pair[0], F_SETFL, flags | O_NONBLOCK);

  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto channel = std::make_unique<Channel>();
    channel->id = next_channel_id_++;
    channel->fd = pair[0];
    id = channel->id;
    channels_.push_back(std::move(channel));
  }
  WakeReceiver();
  *client_fd = pair[1];
  return id;
}

void EndpointGroup::UnregisterChannel(uint64_t channel_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  Channel* channel = LockedFindChannel(channel_id);
  if (channel == nullptr) return;
  channel->draining = true;
  std::erase_if(queue_, [channel_id](const WireRequest& request) {
    return request.channel == channel_id;
  });
  const bool has_fd = channel->fd >= 0;
  const uint64_t generation = poll_generation_;
  if (has_fd) WakeReceiver();
  drain_cv_.wait(lock, [&] {
    return channel->in_service == 0 &&
           (!has_fd || poll_generation_ > generation || shutdown_);
  });
  if (channel->fd >= 0) ::close(channel->fd);
  std::erase_if(channels_, [channel_id](const std::unique_ptr<Channel>& c) {
    return c->id == channel_id;
  });
}

void EndpointGroup::Submit(const WireRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Channel* channel = LockedFindChannel(request.channel);
    if (channel == nullptr || channel->draining) return;
    queue_.push_back(request);
  }
  work_cv_.notify_one();
}

void EndpointGroup::ServiceLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) return;
    const WireRequest request = queue_.front();
    queue_.pop_front();
    Channel* channel = LockedFindChannel(request.channel);
    if (channel == nullptr || channel->draining) continue;
    ++channel->in_service;
    lock.unlock();
    Serve(request, channel);
    lock.lock();
    --channel->in_service;
    drain_cv_.notify_all();
  }
}

void EndpointGroup::Serve(const WireRequest& request, Channel* channel) {
  // The outcome is a pure function of the request key — the exact decision
  // the simulated seam would make inline. This is the transport's parity
  // anchor: hedged duplicates (same key, fresh id) get identical answers.
  bool failed = false;
  double virtual_ms = 0.0;
  if (model_ != nullptr) {
    virtual_ms = model_->AttemptLatencyMs(request.source, request.epoch,
                                          request.attempt,
                                          request.num_components);
    failed = model_->PermanentlyOut(request.source, request.epoch) ||
             model_->AttemptFails(request.source, request.epoch,
                                  request.attempt);
  }

  if (options_.wall_ms_per_virtual_ms > 0.0) {
    double wall_ms = virtual_ms * options_.wall_ms_per_virtual_ms;
    if (options_.straggler_fraction > 0.0) {
      // Keyed by request id, not visit key: a hedged duplicate re-rolls its
      // straggler fate, which is precisely why hedging helps.
      Rng rng(options_.straggler_seed ^ request.id);
      if (rng.Uniform01() < options_.straggler_fraction) {
        wall_ms *= options_.straggler_multiplier;
      }
    }
    SleepWallMs(wall_ms);
  }

  std::string file_scratch;
  const std::string_view body =
      failed ? std::string_view{} : PayloadFor(request.source, &file_scratch);
  std::string frame;
  AppendResponseFrame(request.id, failed, virtual_ms, body, &frame);

  std::lock_guard<std::mutex> write_lock(channel->write_mutex);
  if (channel->sink != nullptr) {
    channel->sink->DeliverFrame(frame);
  } else if (channel->fd >= 0) {
    // A torn write cannot be repaired mid-stream; the client surfaces the
    // stall through its own failure handling.
    (void)WriteAll(channel->fd, frame);
  }
}

std::string_view EndpointGroup::PayloadFor(int source,
                                           std::string* file_scratch) const {
  const auto index = static_cast<size_t>(source);
  if (index >= payloads_.size()) return {};
  if (payload_fds_.empty()) return payloads_[index];
  // File-backed mode: serve with a positioned read so concurrent service
  // threads share the fd without seeking under each other.
  const size_t size = payloads_[index].size();
  file_scratch->resize(size);
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(payload_fds_[index], file_scratch->data() + done,
                              size - done, static_cast<off_t>(done));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return {};
    }
    done += static_cast<size_t>(n);
  }
  return *file_scratch;
}

void EndpointGroup::ReceiveLoop() {
  std::vector<pollfd> poll_fds;
  std::vector<Channel*> poll_channels;
  while (true) {
    poll_fds.clear();
    poll_channels.clear();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // Advancing the generation with the new (draining-free) set captured
      // is what lets UnregisterChannel close its fd safely: after this
      // point the receiver never touches an excluded fd again.
      ++poll_generation_;
      drain_cv_.notify_all();
      if (shutdown_) return;
      poll_fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
      poll_channels.push_back(nullptr);
      for (const auto& channel : channels_) {
        if (channel->fd >= 0 && !channel->draining) {
          poll_fds.push_back(pollfd{channel->fd, POLLIN, 0});
          poll_channels.push_back(channel.get());
        }
      }
    }

    const int ready = ::poll(poll_fds.data(), poll_fds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }

    if ((poll_fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }

    for (size_t i = 1; i < poll_fds.size(); ++i) {
      if ((poll_fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Channel* channel = poll_channels[i];
      char buffer[4096];
      bool got_bytes = false;
      while (true) {
        const ssize_t n = ::read(poll_fds[i].fd, buffer, sizeof(buffer));
        if (n > 0) {
          channel->rx_buffer.append(buffer, static_cast<size_t>(n));
          got_bytes = true;
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;  // EAGAIN (drained), EOF, or error
      }
      if (!got_bytes) continue;

      size_t consumed = 0;
      bool submitted = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        while (true) {
          WireRequest request;
          const Result<size_t> decoded = DecodeRequestFrame(
              std::string_view(channel->rx_buffer).substr(consumed), &request);
          if (!decoded.ok()) {
            // A corrupt stream cannot be resynchronized; drop the buffer
            // and let the client's stall handling surface it.
            channel->rx_buffer.clear();
            consumed = 0;
            break;
          }
          if (decoded.value() == 0) break;  // partial frame: wait for more
          consumed += decoded.value();
          if (!channel->draining) {
            queue_.push_back(request);
            submitted = true;
          }
        }
        if (consumed > 0) channel->rx_buffer.erase(0, consumed);
      }
      if (submitted) work_cv_.notify_all();
    }
  }
}

EndpointGroup::Channel* EndpointGroup::LockedFindChannel(uint64_t id) {
  for (const auto& channel : channels_) {
    if (channel->id == id) return channel.get();
  }
  return nullptr;
}

void EndpointGroup::WakeReceiver() {
  if (wake_pipe_[1] < 0) return;
  const char byte = 1;
  ssize_t n;
  do {
    n = ::write(wake_pipe_[1], &byte, 1);
  } while (n < 0 && errno == EINTR);
}

}  // namespace vastats::transport
