#include "transport/clock_map.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

namespace vastats::transport {
namespace {

int64_t MonotonicNanos() {
  // The transport's sanctioned wall-clock read (R7 allowlist entry in
  // tools/analyze/engine.cc): hedging and wall-mapped budgets need a shared
  // monotonic epoch that util/stopwatch's private start point cannot
  // provide.
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WallClock::WallClock() : epoch_nanos_(MonotonicNanos()) {}

double WallClock::NowMs() const {
  return static_cast<double>(MonotonicNanos() - epoch_nanos_) * 1e-6;
}

LatencyCutoffEstimator::LatencyCutoffEstimator(int window_capacity)
    : window_(static_cast<size_t>(std::max(4, window_capacity)), 0.0) {}

void LatencyCutoffEstimator::Observe(double wall_ms) {
  window_[next_] = wall_ms;
  next_ = (next_ + 1) % window_.size();
  ++count_;
}

double LatencyCutoffEstimator::CutoffMs(double percentile, double multiplier,
                                        int min_samples,
                                        double min_cutoff_ms) const {
  const size_t filled = std::min(count_, window_.size());
  if (count_ < static_cast<size_t>(std::max(1, min_samples))) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double> sorted(window_.begin(),
                             window_.begin() + static_cast<long>(filled));
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(percentile, 0.0, 1.0);
  // Nearest-rank: the smallest value with at least `percentile` of the
  // window at or below it.
  size_t rank = static_cast<size_t>(
      std::ceil(clamped * static_cast<double>(filled)));
  if (rank > 0) --rank;
  return std::max(min_cutoff_ms, sorted[rank] * multiplier);
}

}  // namespace vastats::transport
