// Wall-clock <-> virtual-time mapping for the async transport.
//
// The rest of the repository never reads a wall clock outside the
// util/stopwatch facade (lint rule R7): fault simulation, deadlines, and
// breaker cooldowns all run on the deterministic VirtualClock. A real
// transport is the one place wall time legitimately enters the system —
// requests spend actual microseconds in flight — so this file owns every
// wall-clock read the transport makes (clock_map.cc carries the explicit
// R7 allowlist entry in tools/analyze/engine.cc) and exposes only
// millisecond arithmetic to the rest of src/transport:
//
//  * WallClock — monotonic milliseconds since construction, for hedge
//    timing and latency observation;
//  * WallBudgetMap — scales measured wall blocking time onto the virtual
//    deadline budgets (`draw_deadline_ms`/`session_deadline_ms`), for the
//    wall-mapped latency mode;
//  * LatencyCutoffEstimator — a bounded window of observed request
//    latencies with a deterministic nearest-rank percentile, deciding when
//    a straggling visit earns a hedged duplicate.

#ifndef VASTATS_TRANSPORT_CLOCK_MAP_H_
#define VASTATS_TRANSPORT_CLOCK_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vastats::transport {

// Monotonic wall milliseconds since construction. All transport
// timestamps are relative to one channel-owned epoch, so they are small,
// precise doubles rather than raw time_points.
class WallClock {
 public:
  WallClock();
  double NowMs() const;

 private:
  int64_t epoch_nanos_ = 0;
};

// Maps measured wall blocking time onto the virtual-ms deadline budgets.
// With `virtual_ms_per_wall_ms` == 1 a draw's budget is literal wall
// milliseconds spent waiting on the transport; other scales let simulated
// budgets (tuned against the fault model's latency distribution) keep
// their meaning when the injected endpoint latency runs compressed.
class WallBudgetMap {
 public:
  explicit WallBudgetMap(double virtual_ms_per_wall_ms = 1.0)
      : scale_(virtual_ms_per_wall_ms) {}

  double ToVirtualMs(double wall_ms) const { return wall_ms * scale_; }
  double scale() const { return scale_; }

 private:
  double scale_;
};

// Sliding window of observed request wall latencies with a deterministic
// nearest-rank percentile cutoff. "Deterministic" here means: for a fixed
// sequence of Observe calls, CutoffMs is a pure function — no randomness,
// no clock reads — so hedge behaviour is reproducible from a latency log
// even though wall latencies themselves are not.
class LatencyCutoffEstimator {
 public:
  explicit LatencyCutoffEstimator(int window_capacity = 128);

  void Observe(double wall_ms);
  int count() const { return static_cast<int>(count_); }

  // Nearest-rank `percentile` of the window, times `multiplier`, floored
  // at `min_cutoff_ms`. Returns +infinity (never hedge) until at least
  // `min_samples` observations arrived — hedging before the estimator has
  // a latency picture would duplicate every request.
  double CutoffMs(double percentile, double multiplier, int min_samples,
                  double min_cutoff_ms) const;

 private:
  std::vector<double> window_;
  size_t next_ = 0;
  size_t count_ = 0;  // total observations (window holds min(count, cap))
};

}  // namespace vastats::transport

#endif  // VASTATS_TRANSPORT_CLOCK_MAP_H_
