// Source endpoints: the "server side" of the async transport.
//
// An EndpointGroup owns the sources' payloads (pre-encoded wire blobs, in
// memory or spooled to files) and a pool of service threads that consume
// request frames and produce response frames. Outcomes are computed
// server-side from the SAME keyed FaultModel the simulated seam uses — a
// request's (source, epoch, attempt) key fully determines failure and the
// virtual-ms latency charge — so a client that drives the same visit
// sequence over the transport reproduces the simulated seam bit-exactly,
// no matter how requests interleave on the wire.
//
// Two channel media, one service path:
//  * in-process — the channel hands request frames to Submit() and receives
//    response frames through its ResponseSink; bytes cross a queue, not a
//    kernel boundary;
//  * socket pair — the channel owns one end of an AF_UNIX stream pair; a
//    receive thread polls the endpoint ends for request frames and service
//    threads write response frames back. Frames are identical either way.
//
// Wall time enters only as configured delay (service threads sleep
// wall_ms_per_virtual_ms × the model's virtual latency, plus keyed
// straggler stretches) — the endpoint never reads a wall clock, keeping
// lint rule R7 confined to transport/clock_map.cc.

#ifndef VASTATS_TRANSPORT_ENDPOINT_H_
#define VASTATS_TRANSPORT_ENDPOINT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "datagen/fault_model.h"
#include "datagen/source_set.h"
#include "transport/wire.h"
#include "util/status.h"

namespace vastats::transport {

enum class EndpointBackend {
  // Request/response frames cross thread-safe queues inside the process.
  kInProcess,
  // Frames cross AF_UNIX socket pairs: real fds, real readiness polling,
  // real partial reads.
  kSocketPair,
};

struct EndpointOptions {
  EndpointBackend backend = EndpointBackend::kInProcess;
  // Service threads draining the shared request queue. More threads =
  // more requests genuinely in flight at once.
  int service_threads = 2;
  // Spool payload blobs to files under a private temp directory and serve
  // each request with a positioned read, instead of from memory.
  bool file_backed_payloads = false;
  // Wall milliseconds a service thread sleeps per virtual-ms of the
  // model's attempt latency (0 = respond as fast as possible). Lets
  // benches and hedging tests realize the model's latency distribution in
  // actual wall time, compressed by any factor.
  double wall_ms_per_virtual_ms = 0.0;
  // Straggler injection: this fraction of requests (keyed by request id,
  // so a hedged duplicate re-rolls) sleeps `straggler_multiplier` times
  // longer. Models the long tail that hedging exists to cut.
  double straggler_fraction = 0.0;
  double straggler_multiplier = 8.0;
  uint64_t straggler_seed = 0x57a661e5ULL;

  Status Validate() const;
};

// Receives response frames for one in-process channel. Implementations
// must be thread-safe: service threads call DeliverFrame concurrently.
class ResponseSink {
 public:
  virtual ~ResponseSink() = default;
  virtual void DeliverFrame(std::string_view frame) = 0;
};

// A group of source endpoints sharing a service pool. Thread-safe.
// Channels register and unregister dynamically; UnregisterChannel blocks
// until the channel's queued and in-service requests have drained, after
// which no thread touches the channel again.
class EndpointGroup {
 public:
  // `sources` is snapshotted (payload blobs are encoded up front);
  // `model` is borrowed (may be null = every attempt succeeds instantly)
  // and must outlive the group.
  static Result<std::unique_ptr<EndpointGroup>> Create(
      const SourceSet& sources, const FaultModel* model,
      EndpointOptions options);

  ~EndpointGroup();

  EndpointGroup(const EndpointGroup&) = delete;
  EndpointGroup& operator=(const EndpointGroup&) = delete;

  const EndpointOptions& options() const { return options_; }
  int num_sources() const { return static_cast<int>(payloads_.size()); }

  // Registers an in-process channel; response frames for its requests go
  // to `sink` (borrowed; must stay valid until UnregisterChannel returns).
  uint64_t RegisterChannel(ResponseSink* sink);

  // Creates an AF_UNIX socket pair, keeps one end, and returns a channel
  // whose other end (`client_fd`) the caller owns and must close after
  // unregistering. Only valid on a kSocketPair group.
  Result<uint64_t> RegisterChannelFd(int* client_fd);

  // Drains and detaches a channel. After return the group holds no
  // reference to the channel's sink or fd (the endpoint end of a socket
  // pair is closed here; the client end is the caller's to close).
  void UnregisterChannel(uint64_t channel);

  // Enqueues one request (in-process channels; socket-pair channels write
  // frames to their fd instead). Requests for unknown channels are
  // dropped — the channel unregistered while requests were in flight.
  void Submit(const WireRequest& request);

 private:
  struct Channel {
    uint64_t id = 0;
    ResponseSink* sink = nullptr;  // in-process delivery
    int fd = -1;                   // socket-pair delivery (endpoint end)
    std::string rx_buffer;         // partial request frames read from fd
    int in_service = 0;            // requests currently being served
    bool draining = false;         // unregister in progress: drop new work
    std::mutex write_mutex;        // serializes response writes to fd/sink
  };

  EndpointGroup(const FaultModel* model, EndpointOptions options,
                std::vector<std::string> payloads,
                std::vector<int> payload_fds, std::string spool_dir);

  void StartThreads();
  void ServiceLoop();
  void ReceiveLoop();

  // Serves one request end-to-end: outcome, delay, frame, delivery.
  void Serve(const WireRequest& request, Channel* channel);

  // Reads the payload blob for `source` (memory or spool file).
  std::string_view PayloadFor(int source, std::string* file_scratch) const;

  Channel* LockedFindChannel(uint64_t id);
  void WakeReceiver();

  const FaultModel* model_;  // borrowed; may be null
  EndpointOptions options_;
  std::vector<std::string> payloads_;  // pre-encoded binding blobs
  std::vector<int> payload_fds_;       // file-backed mode: one fd per blob
  std::string spool_dir_;              // file-backed mode: temp directory

  std::mutex mutex_;
  std::condition_variable work_cv_;   // service threads wait here
  std::condition_variable drain_cv_;  // UnregisterChannel waits here
  std::deque<WireRequest> queue_;
  // Linear-scanned vector, not a map: channel counts are small and vector
  // scans keep iteration order deterministic (rule A2).
  std::vector<std::unique_ptr<Channel>> channels_;
  uint64_t next_channel_id_ = 1;
  // Incremented by the receive thread each time it rebuilds its poll set;
  // UnregisterChannel waits for an increment after marking a channel
  // draining, proving the receiver will never poll that fd again.
  uint64_t poll_generation_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> service_threads_;
  std::thread receive_thread_;  // kSocketPair only
  int wake_pipe_[2] = {-1, -1};
};

}  // namespace vastats::transport

#endif  // VASTATS_TRANSPORT_ENDPOINT_H_
