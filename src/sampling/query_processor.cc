#include "sampling/query_processor.h"

#include <string>

namespace vastats {

Result<double> QueryProcessor::Evaluate(const SourceSet& sources,
                                        const AggregateQuery& query,
                                        const Assignment& assignment) const {
  VASTATS_RETURN_IF_ERROR(query.Validate());
  if (assignment.size() != query.components.size()) {
    return Status::InvalidArgument(
        "assignment arity " + std::to_string(assignment.size()) +
        " does not match query arity " +
        std::to_string(query.components.size()));
  }
  const std::unique_ptr<PartialAggregator> agg =
      NewAggregator(query.kind, query.quantile_q);
  for (size_t i = 0; i < assignment.size(); ++i) {
    const int source_index = assignment[i];
    if (source_index < 0 || source_index >= sources.NumSources()) {
      return Status::OutOfRange("assignment names invalid source index " +
                                std::to_string(source_index));
    }
    VASTATS_ASSIGN_OR_RETURN(
        const double value,
        sources.source(source_index).Value(query.components[i]));
    agg->Add(value);
  }
  return agg->Finalize();
}

Result<double> QueryProcessor::EvaluateValues(
    const AggregateQuery& query, std::span<const double> values) const {
  return EvaluateAggregate(query.kind, values, query.quantile_q);
}

}  // namespace vastats
