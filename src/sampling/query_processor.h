// QueryProcessor — evaluates an aggregate query under a concrete value
// assignment (the "QP" system parameter of Algorithm 1).
//
// An Assignment fixes, for every component of the query, which source
// supplies its value. Evaluating a query under an assignment produces one
// *viable answer*; the samplers in src/sampling generate random assignments.

#ifndef VASTATS_SAMPLING_QUERY_PROCESSOR_H_
#define VASTATS_SAMPLING_QUERY_PROCESSOR_H_

#include <vector>

#include "datagen/source_set.h"
#include "stats/aggregate_query.h"
#include "util/status.h"

namespace vastats {

// assignment[i] is the index (within the SourceSet) of the source supplying
// query.components[i].
using Assignment = std::vector<int>;

class QueryProcessor {
 public:
  // Evaluates `query` over `sources` using `assignment`.
  // Fails when the assignment has the wrong arity, names an invalid source,
  // or names a source that does not bind the component.
  Result<double> Evaluate(const SourceSet& sources,
                          const AggregateQuery& query,
                          const Assignment& assignment) const;

  // Evaluates `query.kind` over explicit component values (used when the
  // sampler has already resolved values).
  Result<double> EvaluateValues(const AggregateQuery& query,
                                std::span<const double> values) const;
};

}  // namespace vastats

#endif  // VASTATS_SAMPLING_QUERY_PROCESSOR_H_
