// Adaptive sample growth (paper §4.2): start from a fixed initial uniS
// sample, bootstrap it, check the confidence-interval length at the
// requested level, and keep drawing increments until the interval is tight
// enough (or a budget is hit). Minimizing |S_uniS| matters because each uniS
// draw touches the (possibly remote) data sources.

#ifndef VASTATS_SAMPLING_ADAPTIVE_H_
#define VASTATS_SAMPLING_ADAPTIVE_H_

#include <vector>

#include "obs/obs.h"
#include "sampling/unis.h"
#include "stats/bootstrap.h"
#include "stats/confidence.h"
#include "util/random.h"
#include "util/status.h"

namespace vastats {

struct AdaptiveSamplingOptions {
  int initial_size = 400;
  int increment = 100;
  // Hard budget on |S_uniS|.
  int max_size = 4000;
  // Stop once len(CI_mean) <= target_ci_length (absolute units), or — when
  // target_relative_length > 0 — once len <= target_relative_length * scale,
  // where scale = max(|mean|, sample std-dev). Flooring the scale by the
  // std-dev keeps the relative target meaningful on zero-centered data,
  // where |mean| alone collapses the target to ~0 and the loop would burn
  // straight to max_size.
  double target_ci_length = 0.0;
  double target_relative_length = 0.0;
  double confidence_level = 0.90;
  CiMethod ci_method = CiMethod::kBca;
  BootstrapOptions bootstrap;

  Status Validate() const;
};

struct AdaptiveStep {
  int sample_size = 0;
  ConfidenceInterval mean_ci;
};

struct AdaptiveSamplingResult {
  std::vector<double> samples;
  std::vector<AdaptiveStep> trace;
  // Whether the length target was met within the budget.
  bool satisfied = false;
  // True when the relative target was computed from the std-dev floor
  // instead of |mean| in at least one round (|mean| < std-dev, e.g.
  // zero-centered data). Also surfaced as the `relative_target_floored`
  // span annotation.
  bool relative_target_floored = false;
  // Degraded-mode accounting (empty/zero on the fault-free path).
  // coverages[i] is the coverage of samples[i]; draws_requested counts
  // source-touching draw attempts (the quantity max_size budgets), and
  // dropped_draws the requested draws that produced no usable answer.
  std::vector<double> coverages;
  int draws_requested = 0;
  int dropped_draws = 0;
};

// Runs the grow-bootstrap-check loop against `sampler`. `obs` (optional)
// records an `adaptive_sampling` span (with one child per uniS batch) and
// the grow-round counter.
Result<AdaptiveSamplingResult> AdaptiveUniSSampling(
    const UniSSampler& sampler, const AdaptiveSamplingOptions& options,
    Rng& rng, const ObsOptions& obs = {});

// The grow-bootstrap-check loop with every source visit routed through the
// fault-tolerant access seam. Draws whose coverage falls below
// `min_draw_coverage` (or that covered nothing) are dropped rather than
// failing the round, so the loop keeps growing on whatever the surviving
// sources can supply; `options.max_size` budgets *requested* draws, since
// dropped draws still touched sources. Fails only when the budget cannot
// even produce the >= 4 usable draws bootstrapping needs.
Result<AdaptiveSamplingResult> AdaptiveUniSSamplingDegraded(
    const UniSSampler& sampler, const AdaptiveSamplingOptions& options,
    AccessSession& session, double min_draw_coverage, Rng& rng,
    const ObsOptions& obs = {});

}  // namespace vastats

#endif  // VASTATS_SAMPLING_ADAPTIVE_H_
