#include "sampling/multi.h"

#include <unordered_map>

namespace vastats {

MultiAggregateSampler::MultiAggregateSampler(
    const SourceSet* sources, std::vector<ComponentId> components,
    std::vector<AggregateSpec> specs)
    : sources_(sources),
      components_(std::move(components)),
      specs_(std::move(specs)) {
  BuildIndex();
}

Result<MultiAggregateSampler> MultiAggregateSampler::Create(
    const SourceSet* sources, std::vector<ComponentId> components,
    std::vector<AggregateSpec> specs) {
  if (sources == nullptr) {
    return Status::InvalidArgument("MultiAggregateSampler needs a SourceSet");
  }
  if (components.empty()) {
    return Status::InvalidArgument(
        "MultiAggregateSampler needs >= 1 component");
  }
  if (specs.empty()) {
    return Status::InvalidArgument(
        "MultiAggregateSampler needs >= 1 aggregate spec");
  }
  for (const AggregateSpec& spec : specs) {
    if (!(spec.quantile_q >= 0.0 && spec.quantile_q <= 1.0)) {
      return Status::InvalidArgument("quantile_q must be in [0,1]");
    }
  }
  VASTATS_RETURN_IF_ERROR(sources->ValidateCoverage(components));
  return MultiAggregateSampler(sources, std::move(components),
                               std::move(specs));
}

void MultiAggregateSampler::BuildIndex() {
  const size_t m = components_.size();
  std::unordered_map<ComponentId, int> position;
  position.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    position[components_[i]] = static_cast<int>(i);
  }
  per_source_.assign(static_cast<size_t>(sources_->NumSources()), {});
  for (int s = 0; s < sources_->NumSources(); ++s) {
    for (const auto& [component, value] : sources_->source(s).SortedBindings()) {
      const auto it = position.find(component);
      if (it == position.end()) continue;
      per_source_[static_cast<size_t>(s)].emplace_back(it->second, value);
    }
  }
}

Result<std::vector<double>> MultiAggregateSampler::SampleOne(Rng& rng) const {
  const int m = static_cast<int>(components_.size());
  std::vector<int> order = rng.Permutation(sources_->NumSources());

  std::vector<char> covered(static_cast<size_t>(m), 0);
  int num_covered = 0;
  // One aggregator per spec, all fed the same assignment.
  std::vector<std::unique_ptr<PartialAggregator>> aggregators;
  aggregators.reserve(specs_.size());
  for (const AggregateSpec& spec : specs_) {
    aggregators.push_back(NewAggregator(spec.kind, spec.quantile_q));
  }
  for (const int s : order) {
    for (const auto& [pos, value] : per_source_[static_cast<size_t>(s)]) {
      if (covered[static_cast<size_t>(pos)]) continue;
      covered[static_cast<size_t>(pos)] = 1;
      ++num_covered;
      for (const auto& aggregator : aggregators) aggregator->Add(value);
    }
    if (num_covered == m) break;
  }
  if (num_covered < m) {
    return Status::FailedPrecondition(
        "sources no longer cover every component");
  }
  std::vector<double> answers(specs_.size());
  for (size_t i = 0; i < aggregators.size(); ++i) {
    VASTATS_ASSIGN_OR_RETURN(answers[i], aggregators[i]->Finalize());
  }
  return answers;
}

Result<std::vector<std::vector<double>>> MultiAggregateSampler::Sample(
    int n, Rng& rng) const {
  if (n <= 0) return Status::InvalidArgument("Sample requires n > 0");
  std::vector<std::vector<double>> results(
      specs_.size(), std::vector<double>());
  for (auto& series : results) series.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    VASTATS_ASSIGN_OR_RETURN(const std::vector<double> answers,
                             SampleOne(rng));
    for (size_t a = 0; a < answers.size(); ++a) {
      results[a].push_back(answers[a]);
    }
  }
  return results;
}

}  // namespace vastats
