#include "sampling/adaptive.h"

#include <cmath>

#include "stats/descriptive.h"
#include "stats/jackknife.h"

namespace vastats {

Status AdaptiveSamplingOptions::Validate() const {
  if (initial_size < 4) {
    return Status::InvalidArgument("initial_size must be >= 4");
  }
  if (increment <= 0) return Status::InvalidArgument("increment must be > 0");
  if (max_size < initial_size) {
    return Status::InvalidArgument("max_size must be >= initial_size");
  }
  if (target_ci_length <= 0.0 && target_relative_length <= 0.0) {
    return Status::InvalidArgument(
        "one of target_ci_length / target_relative_length must be > 0");
  }
  if (!(confidence_level > 0.0 && confidence_level < 1.0)) {
    return Status::InvalidArgument("confidence_level must be in (0,1)");
  }
  return bootstrap.Validate();
}

Result<AdaptiveSamplingResult> AdaptiveUniSSampling(
    const UniSSampler& sampler, const AdaptiveSamplingOptions& options,
    Rng& rng, const ObsOptions& obs) {
  VASTATS_RETURN_IF_ERROR(options.Validate());

  ScopedSpan span(obs.trace, "adaptive_sampling");
  AdaptiveSamplingResult result;
  VASTATS_ASSIGN_OR_RETURN(result.samples,
                           sampler.Sample(options.initial_size, rng, obs));
  for (;;) {
    obs.GetCounter("adaptive_rounds_total").Increment();
    const Moments moments = ComputeMoments(result.samples);
    const double mean = moments.mean();
    VASTATS_ASSIGN_OR_RETURN(
        const std::vector<double> replicates,
        BootstrapReplicates(result.samples,
                            MomentStatisticFn(MomentStatistic::kMean),
                            options.bootstrap, rng));
    std::vector<double> jackknife;
    if (options.ci_method == CiMethod::kBca) {
      VASTATS_ASSIGN_OR_RETURN(
          jackknife, JackknifeMoment(result.samples, MomentStatistic::kMean));
    }
    VASTATS_ASSIGN_OR_RETURN(
        const ConfidenceInterval ci,
        ComputeBootstrapCi(options.ci_method, replicates, mean,
                           options.confidence_level, jackknife));
    result.trace.push_back(
        AdaptiveStep{static_cast<int>(result.samples.size()), ci});

    double target = options.target_ci_length;
    if (options.target_relative_length > 0.0) {
      // Floor |mean| by the sample std-dev: on zero-centered data |mean|
      // alone drives the relative target to ~0 and the loop can never
      // satisfy it (it just burns draws until max_size).
      const double sd = moments.SampleStdDev();
      const double scale = std::max(std::fabs(mean), sd);
      if (std::fabs(mean) < sd) result.relative_target_floored = true;
      const double relative = options.target_relative_length * scale;
      target = (target > 0.0) ? std::min(target, relative) : relative;
    }
    if (ci.Length() <= target) {
      result.satisfied = true;
      break;
    }
    if (static_cast<int>(result.samples.size()) >= options.max_size) break;

    const int grow =
        std::min(options.increment,
                 options.max_size - static_cast<int>(result.samples.size()));
    VASTATS_ASSIGN_OR_RETURN(const std::vector<double> extra,
                             sampler.Sample(grow, rng, obs));
    result.samples.insert(result.samples.end(), extra.begin(), extra.end());
  }
  span.Annotate("rounds", static_cast<int64_t>(result.trace.size()));
  span.Annotate("final_size", static_cast<int64_t>(result.samples.size()));
  span.Annotate("satisfied", result.satisfied);
  span.Annotate("relative_target_floored", result.relative_target_floored);
  return result;
}

}  // namespace vastats
