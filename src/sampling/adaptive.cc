#include "sampling/adaptive.h"

#include <cmath>

#include "stats/descriptive.h"
#include "stats/jackknife.h"

namespace vastats {
namespace {

// One bootstrap-and-check round shared by the plain and degraded loops:
// bootstraps the mean CI and resolves the (possibly relative) length target.
struct RoundCheck {
  ConfidenceInterval ci;
  double target = 0.0;
  bool floored = false;
};

Result<RoundCheck> CheckRound(const std::vector<double>& samples,
                              const AdaptiveSamplingOptions& options,
                              Rng& rng) {
  RoundCheck round;
  const Moments moments = ComputeMoments(samples);
  const double mean = moments.mean();
  VASTATS_ASSIGN_OR_RETURN(
      const std::vector<double> replicates,
      BootstrapReplicates(samples, MomentStatisticFn(MomentStatistic::kMean),
                          options.bootstrap, rng));
  std::vector<double> jackknife;
  if (options.ci_method == CiMethod::kBca) {
    VASTATS_ASSIGN_OR_RETURN(jackknife,
                             JackknifeMoment(samples, MomentStatistic::kMean));
  }
  VASTATS_ASSIGN_OR_RETURN(
      round.ci, ComputeBootstrapCi(options.ci_method, replicates, mean,
                                   options.confidence_level, jackknife));
  round.target = options.target_ci_length;
  if (options.target_relative_length > 0.0) {
    // Floor |mean| by the sample std-dev: on zero-centered data |mean|
    // alone drives the relative target to ~0 and the loop can never
    // satisfy it (it just burns draws until max_size).
    const double sd = moments.SampleStdDev();
    const double scale = std::max(std::fabs(mean), sd);
    if (std::fabs(mean) < sd) round.floored = true;
    const double relative = options.target_relative_length * scale;
    round.target =
        (round.target > 0.0) ? std::min(round.target, relative) : relative;
  }
  return round;
}

}  // namespace

Status AdaptiveSamplingOptions::Validate() const {
  if (initial_size < 4) {
    return Status::InvalidArgument("initial_size must be >= 4");
  }
  if (increment <= 0) return Status::InvalidArgument("increment must be > 0");
  if (max_size < initial_size) {
    return Status::InvalidArgument("max_size must be >= initial_size");
  }
  if (target_ci_length <= 0.0 && target_relative_length <= 0.0) {
    return Status::InvalidArgument(
        "one of target_ci_length / target_relative_length must be > 0");
  }
  if (!(confidence_level > 0.0 && confidence_level < 1.0)) {
    return Status::InvalidArgument("confidence_level must be in (0,1)");
  }
  return bootstrap.Validate();
}

Result<AdaptiveSamplingResult> AdaptiveUniSSampling(
    const UniSSampler& sampler, const AdaptiveSamplingOptions& options,
    Rng& rng, const ObsOptions& obs) {
  VASTATS_RETURN_IF_ERROR(options.Validate());

  ScopedSpan span(obs, "adaptive_sampling");
  AdaptiveSamplingResult result;
  VASTATS_ASSIGN_OR_RETURN(result.samples,
                           sampler.Sample(options.initial_size, rng, obs));
  for (;;) {
    obs.GetCounter("adaptive_rounds_total").Increment();
    VASTATS_ASSIGN_OR_RETURN(const RoundCheck round,
                             CheckRound(result.samples, options, rng));
    result.trace.push_back(
        AdaptiveStep{static_cast<int>(result.samples.size()), round.ci});
    if (round.floored) result.relative_target_floored = true;

    if (round.ci.Length() <= round.target) {
      result.satisfied = true;
      break;
    }
    if (static_cast<int>(result.samples.size()) >= options.max_size) break;

    const int grow =
        std::min(options.increment,
                 options.max_size - static_cast<int>(result.samples.size()));
    VASTATS_ASSIGN_OR_RETURN(const std::vector<double> extra,
                             sampler.Sample(grow, rng, obs));
    result.samples.insert(result.samples.end(), extra.begin(), extra.end());
  }
  span.Annotate("rounds", static_cast<int64_t>(result.trace.size()));
  span.Annotate("final_size", static_cast<int64_t>(result.samples.size()));
  span.Annotate("satisfied", result.satisfied);
  span.Annotate("relative_target_floored", result.relative_target_floored);
  return result;
}

Result<AdaptiveSamplingResult> AdaptiveUniSSamplingDegraded(
    const UniSSampler& sampler, const AdaptiveSamplingOptions& options,
    AccessSession& session, double min_draw_coverage, Rng& rng,
    const ObsOptions& obs) {
  VASTATS_RETURN_IF_ERROR(options.Validate());
  if (!(min_draw_coverage >= 0.0 && min_draw_coverage <= 1.0)) {
    return Status::InvalidArgument("min_draw_coverage must be in [0, 1]");
  }

  ScopedSpan span(obs, "adaptive_sampling_degraded");
  AdaptiveSamplingResult result;

  const auto draw_batch = [&](int count) -> Status {
    const auto batch = sampler.SampleDegraded(count, rng, session, obs);
    if (!batch.ok()) return batch.status();
    result.draws_requested += count;
    for (const UniSSample& s : *batch) {
      if (s.coverage < min_draw_coverage) {
        ++result.dropped_draws;
        continue;
      }
      result.samples.push_back(s.value);
      result.coverages.push_back(s.coverage);
    }
    // Zero-coverage and budget-abandoned draws never made it into the batch.
    result.dropped_draws += count - static_cast<int>(batch->size());
    return Status::Ok();
  };

  VASTATS_RETURN_IF_ERROR(draw_batch(options.initial_size));
  for (;;) {
    const int budget_left = options.max_size - result.draws_requested;
    if (static_cast<int>(result.samples.size()) < 4) {
      // Not enough usable draws to bootstrap yet: keep growing, or give up
      // when the budget cannot produce a checkable sample at all.
      if (budget_left <= 0 || session.SessionBudgetExhausted()) {
        return Status::FailedPrecondition(
            "degraded adaptive sampling could not obtain 4 usable draws "
            "within the budget (sources too degraded)");
      }
      VASTATS_RETURN_IF_ERROR(
          draw_batch(std::min(options.increment, budget_left)));
      continue;
    }

    obs.GetCounter("adaptive_rounds_total").Increment();
    VASTATS_ASSIGN_OR_RETURN(const RoundCheck round,
                             CheckRound(result.samples, options, rng));
    result.trace.push_back(
        AdaptiveStep{static_cast<int>(result.samples.size()), round.ci});
    if (round.floored) result.relative_target_floored = true;

    if (round.ci.Length() <= round.target) {
      result.satisfied = true;
      break;
    }
    if (budget_left <= 0 || session.SessionBudgetExhausted()) break;
    VASTATS_RETURN_IF_ERROR(
        draw_batch(std::min(options.increment, budget_left)));
  }
  span.Annotate("rounds", static_cast<int64_t>(result.trace.size()));
  span.Annotate("final_size", static_cast<int64_t>(result.samples.size()));
  span.Annotate("requested", static_cast<int64_t>(result.draws_requested));
  span.Annotate("dropped", static_cast<int64_t>(result.dropped_draws));
  span.Annotate("satisfied", result.satisfied);
  span.Annotate("relative_target_floored", result.relative_target_floored);
  return result;
}

}  // namespace vastats
