#include "sampling/exhaustive.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "sampling/query_processor.h"

namespace vastats {
namespace {

// Per-source (query position, value) lists plus the per-position coverage,
// shared by both enumerations.
struct QueryIndex {
  std::vector<std::vector<std::pair<int, double>>> per_source;
  std::vector<std::vector<int>> covering;
};

Result<QueryIndex> BuildIndex(const SourceSet& sources,
                              const AggregateQuery& query) {
  VASTATS_RETURN_IF_ERROR(query.Validate());
  VASTATS_RETURN_IF_ERROR(sources.ValidateCoverage(query.components));
  QueryIndex index;
  const size_t m = query.components.size();
  std::unordered_map<ComponentId, int> position;
  for (size_t i = 0; i < m; ++i) {
    position[query.components[i]] = static_cast<int>(i);
  }
  index.per_source.assign(static_cast<size_t>(sources.NumSources()), {});
  index.covering.assign(m, {});
  for (int s = 0; s < sources.NumSources(); ++s) {
    for (const auto& [component, value] : sources.source(s).SortedBindings()) {
      const auto it = position.find(component);
      if (it == position.end()) continue;
      index.per_source[static_cast<size_t>(s)].emplace_back(it->second, value);
      index.covering[static_cast<size_t>(it->second)].push_back(s);
    }
  }
  return index;
}

}  // namespace

Result<std::vector<double>> EnumerateOrderAnswers(const SourceSet& sources,
                                                  const AggregateQuery& query,
                                                  int max_sources) {
  if (sources.NumSources() > max_sources) {
    return Status::InvalidArgument(
        "EnumerateOrderAnswers: too many sources (" +
        std::to_string(sources.NumSources()) + " > " +
        std::to_string(max_sources) + ")");
  }
  VASTATS_ASSIGN_OR_RETURN(const QueryIndex index,
                           BuildIndex(sources, query));
  const int m = static_cast<int>(query.components.size());

  std::vector<int> order(static_cast<size_t>(sources.NumSources()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  std::vector<double> answers;
  do {
    std::vector<char> covered(static_cast<size_t>(m), 0);
    int num_covered = 0;
    const std::unique_ptr<PartialAggregator> agg =
        NewAggregator(query.kind, query.quantile_q);
    for (const int s : order) {
      for (const auto& [pos, value] : index.per_source[static_cast<size_t>(s)]) {
        if (covered[static_cast<size_t>(pos)]) continue;
        covered[static_cast<size_t>(pos)] = 1;
        ++num_covered;
        agg->Add(value);
      }
      if (num_covered == m) break;
    }
    VASTATS_ASSIGN_OR_RETURN(const double answer, agg->Finalize());
    answers.push_back(answer);
  } while (std::next_permutation(order.begin(), order.end()));
  return answers;
}

Result<std::vector<double>> EnumerateAssignmentAnswers(
    const SourceSet& sources, const AggregateQuery& query,
    int64_t max_answers) {
  VASTATS_ASSIGN_OR_RETURN(const QueryIndex index,
                           BuildIndex(sources, query));
  const size_t m = query.components.size();

  int64_t total = 1;
  for (const auto& covering : index.covering) {
    total *= static_cast<int64_t>(covering.size());
    if (total > max_answers) {
      return Status::InvalidArgument(
          "EnumerateAssignmentAnswers: combination count exceeds cap of " +
          std::to_string(max_answers));
    }
  }

  const QueryProcessor processor;
  std::vector<size_t> odometer(m, 0);
  Assignment assignment(m, 0);
  std::vector<double> answers;
  answers.reserve(static_cast<size_t>(total));
  for (int64_t step = 0; step < total; ++step) {
    for (size_t i = 0; i < m; ++i) {
      assignment[i] = index.covering[i][odometer[i]];
    }
    VASTATS_ASSIGN_OR_RETURN(const double answer,
                             processor.Evaluate(sources, query, assignment));
    answers.push_back(answer);
    // Advance the odometer.
    for (size_t i = 0; i < m; ++i) {
      if (++odometer[i] < index.covering[i].size()) break;
      odometer[i] = 0;
    }
  }
  return answers;
}

Result<std::pair<double, double>> ViableRange(const SourceSet& sources,
                                              const AggregateQuery& query,
                                              int64_t max_answers) {
  VASTATS_RETURN_IF_ERROR(query.Validate());
  VASTATS_RETURN_IF_ERROR(sources.ValidateCoverage(query.components));
  if (IsComponentwiseMonotone(query.kind)) {
    std::vector<double> lows, highs;
    lows.reserve(query.components.size());
    highs.reserve(query.components.size());
    for (const ComponentId component : query.components) {
      VASTATS_ASSIGN_OR_RETURN(const auto range,
                               sources.ValueRange(component));
      lows.push_back(range.first);
      highs.push_back(range.second);
    }
    VASTATS_ASSIGN_OR_RETURN(const double lo,
                             EvaluateAggregate(query.kind, lows, query.quantile_q));
    VASTATS_ASSIGN_OR_RETURN(const double hi,
                             EvaluateAggregate(query.kind, highs, query.quantile_q));
    return std::make_pair(lo, hi);
  }
  // Non-monotone aggregate (variance/stddev): enumerate when feasible.
  VASTATS_ASSIGN_OR_RETURN(
      const std::vector<double> answers,
      EnumerateAssignmentAnswers(sources, query, max_answers));
  const auto [min_it, max_it] =
      std::minmax_element(answers.begin(), answers.end());
  return std::make_pair(*min_it, *max_it);
}

}  // namespace vastats
