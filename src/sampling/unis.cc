#include "sampling/unis.h"

#include <string>
#include <unordered_map>

namespace vastats {
namespace {

// Histogram buckets for "sources visited before coverage" — doubling steps
// up to well past any realistic source count per draw.
constexpr double kVisitBuckets[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};

// Telemetry for a batch of uniS draws, flushed once per batch so the
// per-draw hot path costs nothing beyond integer adds.
struct BatchCounters {
  uint64_t visits = 0;
  uint64_t takeovers = 0;
  uint64_t contributing = 0;

  void Record(const UniSSample& sample) {
    visits += static_cast<uint64_t>(sample.sources_visited);
    contributing += static_cast<uint64_t>(sample.sources_contributing);
    for (const UniSVisit& visit : sample.visits) {
      takeovers += static_cast<uint64_t>(visit.components_taken);
    }
  }

  void Flush(const ObsOptions& obs, uint64_t draws) const {
    if (obs.metrics == nullptr) return;
    obs.GetCounter("unis_draws_total").Increment(draws);
    obs.GetCounter("unis_source_visits_total").Increment(visits);
    obs.GetCounter("unis_component_takeovers_total").Increment(takeovers);
    obs.GetCounter("unis_contributing_sources_total").Increment(contributing);
  }
};

}  // namespace

UniSSampler::UniSSampler(const SourceSet* sources, AggregateQuery query,
                         UniSOptions options)
    : sources_(sources), query_(std::move(query)), options_(options) {
  BuildIndex();
}

Result<UniSSampler> UniSSampler::Create(const SourceSet* sources,
                                        AggregateQuery query,
                                        UniSOptions options) {
  if (sources == nullptr) {
    return Status::InvalidArgument("UniSSampler requires a SourceSet");
  }
  VASTATS_RETURN_IF_ERROR(query.Validate());
  VASTATS_RETURN_IF_ERROR(sources->ValidateCoverage(query.components));
  return UniSSampler(sources, std::move(query), options);
}

void UniSSampler::BuildIndex() {
  const size_t m = query_.components.size();
  position_.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    position_[query_.components[i]] = static_cast<int>(i);
  }
  const int num_sources = sources_->NumSources();
  per_source_.assign(static_cast<size_t>(num_sources), {});
  covering_.assign(m, {});
  for (int s = 0; s < num_sources; ++s) {
    const DataSource& source = sources_->source(s);
    auto& list = per_source_[static_cast<size_t>(s)];
    for (const auto& [component, value] : source.SortedBindings()) {
      const auto it = position_.find(component);
      if (it == position_.end()) continue;
      list.emplace_back(it->second, value);
      covering_[static_cast<size_t>(it->second)].push_back(s);
    }
  }
}

Result<UniSSample> UniSSampler::SampleOne(
    Rng& rng, std::span<const char> excluded) const {
  return SampleOneImpl(rng, excluded, nullptr);
}

Result<UniSSample> UniSSampler::SampleOneRecorded(
    Rng& rng, std::vector<UniSTake>& takes,
    std::span<const char> excluded) const {
  takes.clear();
  return SampleOneImpl(rng, excluded, &takes);
}

Result<double> UniSSampler::ReplayTakes(std::span<const UniSTake> takes,
                                        AggregateKind kind,
                                        double quantile_q) {
  const std::unique_ptr<PartialAggregator> partial =
      NewAggregator(kind, quantile_q);
  for (const UniSTake& take : takes) partial->Add(take.value);
  return partial->Finalize();
}

Result<UniSSample> UniSSampler::SampleOneImpl(
    Rng& rng, std::span<const char> excluded,
    std::vector<UniSTake>* takes) const {
  const int num_sources = sources_->NumSources();
  const int m = NumComponents();

  // Random visiting order over the allowed sources.
  std::vector<int> order;
  order.reserve(static_cast<size_t>(num_sources));
  for (int s = 0; s < num_sources; ++s) {
    if (!excluded.empty() && excluded[static_cast<size_t>(s)]) continue;
    order.push_back(s);
  }
  rng.Shuffle(order);

  std::vector<char> covered(static_cast<size_t>(m), 0);
  int num_covered = 0;
  const std::unique_ptr<PartialAggregator> partial =
      NewAggregator(query_.kind, query_.quantile_q);

  UniSSample sample;
  sample.visits.reserve(order.size());
  for (const int s : order) {
    ++sample.sources_visited;
    int taken = 0;
    for (const auto& [pos, value] : per_source_[static_cast<size_t>(s)]) {
      if (covered[static_cast<size_t>(pos)]) continue;
      covered[static_cast<size_t>(pos)] = 1;
      ++num_covered;
      partial->Add(value);
      if (takes != nullptr) takes->push_back(UniSTake{pos, value});
      ++taken;
    }
    sample.visits.push_back(UniSVisit{s, taken});
    if (taken > 0) ++sample.sources_contributing;
    if (num_covered == m) break;
  }

  sample.coverage = static_cast<double>(num_covered) / static_cast<double>(m);
  if (num_covered < m && options_.require_full_coverage) {
    return Status::FailedPrecondition(
        "uniS covered only " + std::to_string(num_covered) + " of " +
        std::to_string(m) + " components (sources missing or excluded)");
  }
  VASTATS_ASSIGN_OR_RETURN(sample.value, partial->Finalize());
  return sample;
}

Result<UniSSample> UniSSampler::SampleOneDegraded(
    Rng& rng, AccessSession& session, std::span<const char> excluded) const {
  const int num_sources = sources_->NumSources();
  const int m = NumComponents();

  std::vector<int> order;
  order.reserve(static_cast<size_t>(num_sources));
  for (int s = 0; s < num_sources; ++s) {
    if (!excluded.empty() && excluded[static_cast<size_t>(s)]) continue;
    order.push_back(s);
  }
  rng.Shuffle(order);
  if (session.transport_attached()) {
    // Stage the shuffled order so a pipelined transport can prefetch the
    // visit sequence ahead of consumption. Staging never touches the rng
    // or the virtual clock, so the drawn sample is unchanged.
    std::vector<int> counts(order.size(), 0);
    for (size_t i = 0; i < order.size(); ++i) {
      counts[i] = static_cast<int>(
          per_source_[static_cast<size_t>(order[i])].size());
    }
    session.StageVisits(order, counts);
  }

  std::vector<char> covered(static_cast<size_t>(m), 0);
  int num_covered = 0;
  const std::unique_ptr<PartialAggregator> partial =
      NewAggregator(query_.kind, query_.quantile_q);

  UniSSample sample;
  sample.visits.reserve(order.size());
  for (const int s : order) {
    if (session.DrawDeadlineExhausted()) {
      sample.truncated_by_deadline = true;
      session.RecordDeadlineTruncation();
      break;
    }
    const AccessSession::VisitOutcome outcome =
        session.Visit(s, static_cast<int>(per_source_[static_cast<size_t>(s)]
                                              .size()));
    if (outcome.skipped_breaker_open) {
      ++sample.sources_skipped_open;
      continue;
    }
    ++sample.sources_visited;
    if (!outcome.ok) {
      ++sample.sources_failed;
      sample.visits.push_back(UniSVisit{s, 0});
      continue;
    }
    int taken = 0;
    if (session.transport_attached()) {
      // Bind from the transferred payload: the wire carries the source's
      // full sorted bindings, and filtering them through the query position
      // map reproduces per_source_'s (pos, value) sequence exactly — so a
      // model-virtual transport draw is bit-identical to a simulated one.
      for (const TransportBinding& binding : session.last_payload()) {
        const auto it = position_.find(binding.component);
        if (it == position_.end()) continue;
        const int pos = it->second;
        if (covered[static_cast<size_t>(pos)]) continue;
        if (session.ValueCorrupted(s, pos)) continue;
        covered[static_cast<size_t>(pos)] = 1;
        ++num_covered;
        partial->Add(binding.value);
        ++taken;
      }
    } else {
      for (const auto& [pos, value] : per_source_[static_cast<size_t>(s)]) {
        if (covered[static_cast<size_t>(pos)]) continue;
        if (session.ValueCorrupted(s, pos)) continue;
        covered[static_cast<size_t>(pos)] = 1;
        ++num_covered;
        partial->Add(value);
        ++taken;
      }
    }
    sample.visits.push_back(UniSVisit{s, taken});
    if (taken > 0) ++sample.sources_contributing;
    if (num_covered == m) break;
  }

  sample.coverage = static_cast<double>(num_covered) / static_cast<double>(m);
  if (num_covered == 0) {
    // Nothing bound: no answer to finalize. Degraded, not an error — the
    // caller drops the draw and keeps sampling.
    sample.value_valid = false;
    return sample;
  }
  VASTATS_ASSIGN_OR_RETURN(sample.value, partial->Finalize());
  return sample;
}

Result<std::vector<UniSSample>> UniSSampler::SampleDegraded(
    int n, Rng& rng, AccessSession& session, const ObsOptions& obs) const {
  if (n <= 0) return Status::InvalidArgument("SampleDegraded requires n > 0");
  ScopedSpan span(obs, "unis_sample_degraded");
  BatchCounters batch;
  uint64_t draws = 0;
  std::vector<UniSSample> samples;
  samples.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (session.SessionBudgetExhausted()) break;
    session.BeginNextDraw();
    VASTATS_ASSIGN_OR_RETURN(UniSSample s, SampleOneDegraded(rng, session));
    ++draws;
    if (obs.metrics != nullptr) batch.Record(s);
    if (!s.value_valid) continue;
    samples.push_back(std::move(s));
  }
  batch.Flush(obs, draws);
  span.Annotate("draws", static_cast<int64_t>(draws));
  span.Annotate("kept", static_cast<int64_t>(samples.size()));
  return samples;
}

Result<std::vector<double>> UniSSampler::Sample(int n, Rng& rng,
                                                const ObsOptions& obs) const {
  if (n <= 0) return Status::InvalidArgument("Sample requires n > 0");
  ScopedSpan span(obs, "unis_sample");
  Histogram visited =
      obs.GetHistogram("unis_sources_visited_per_draw", kVisitBuckets);
  BatchCounters batch;
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    VASTATS_ASSIGN_OR_RETURN(const UniSSample s, SampleOne(rng));
    values.push_back(s.value);
    if (obs.metrics != nullptr) {
      batch.Record(s);
      visited.Observe(static_cast<double>(s.sources_visited));
    }
  }
  batch.Flush(obs, static_cast<uint64_t>(n));
  span.Annotate("draws", static_cast<int64_t>(n));
  return values;
}

bool UniSSampler::CoverableWithout(std::span<const int> excluded) const {
  std::vector<char> mask(static_cast<size_t>(sources_->NumSources()), false);
  for (const int s : excluded) {
    if (s >= 0 && s < sources_->NumSources()) mask[static_cast<size_t>(s)] = 1;
  }
  for (const auto& covering : covering_) {
    bool ok = false;
    for (const int s : covering) {
      if (!mask[static_cast<size_t>(s)]) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

Result<std::vector<double>> UniSSampler::SampleExcluding(
    int n, std::span<const int> excluded, Rng& rng,
    const ObsOptions& obs) const {
  if (n <= 0) return Status::InvalidArgument("SampleExcluding requires n > 0");
  if (options_.require_full_coverage && !CoverableWithout(excluded)) {
    return Status::FailedPrecondition(
        "query is not coverable with the given sources excluded");
  }
  std::vector<char> mask(static_cast<size_t>(sources_->NumSources()), false);
  for (const int s : excluded) {
    if (s < 0 || s >= sources_->NumSources()) {
      return Status::OutOfRange("excluded source index out of range");
    }
    mask[static_cast<size_t>(s)] = 1;
  }
  ScopedSpan span(obs, "unis_sample_excluding");
  BatchCounters batch;
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    VASTATS_ASSIGN_OR_RETURN(const UniSSample s, SampleOne(rng, mask));
    values.push_back(s.value);
    if (obs.metrics != nullptr) batch.Record(s);
  }
  batch.Flush(obs, static_cast<uint64_t>(n));
  span.Annotate("draws", static_cast<int64_t>(n));
  span.Annotate("excluded", static_cast<int64_t>(excluded.size()));
  return values;
}

Result<std::vector<int>> UniSSampler::SampleAssignment(Rng& rng) const {
  const int m = NumComponents();
  std::vector<int> order = rng.Permutation(sources_->NumSources());
  std::vector<int> assignment(static_cast<size_t>(m), -1);
  int num_covered = 0;
  for (const int s : order) {
    for (const auto& [pos, value] : per_source_[static_cast<size_t>(s)]) {
      if (assignment[static_cast<size_t>(pos)] >= 0) continue;
      assignment[static_cast<size_t>(pos)] = s;
      ++num_covered;
    }
    if (num_covered == m) break;
  }
  if (num_covered < m) {
    return Status::FailedPrecondition(
        "uniS assignment covered only " + std::to_string(num_covered) +
        " of " + std::to_string(m) + " components");
  }
  return assignment;
}

Result<double> UniSSampler::EstimateSourcesPerAnswer(
    int probes, Rng& rng, const ObsOptions& obs) const {
  if (probes <= 0) {
    return Status::InvalidArgument("EstimateSourcesPerAnswer needs probes > 0");
  }
  ScopedSpan span(obs, "unis_estimate_weight");
  BatchCounters batch;
  double total = 0.0;
  for (int i = 0; i < probes; ++i) {
    VASTATS_ASSIGN_OR_RETURN(const UniSSample s, SampleOne(rng));
    total += static_cast<double>(s.sources_contributing);
    if (obs.metrics != nullptr) batch.Record(s);
  }
  batch.Flush(obs, static_cast<uint64_t>(probes));
  const double y = total / static_cast<double>(probes);
  span.Annotate("probes", static_cast<int64_t>(probes));
  span.Annotate("answer_weight_y", y);
  return y;
}

}  // namespace vastats
