// Exhaustive enumeration of viable answers — ground truth for small inputs.
//
// Definition 1 derives viable answers from "all possible source
// combinations". Two enumerations are provided:
//  * order-based: every permutation of the sources run through the uniS
//    take-all-uncovered rule (exactly the answers uniS can produce);
//  * assignment-based: every component independently picks any covering
//    source (the superset of value combinations; its envelope defines the
//    viable range W = [inf V, sup V]).
//
// Both explode combinatorially; they are capped and exist to validate the
// samplers and to compute exact ranges on toy scenarios like Figure 1.

#ifndef VASTATS_SAMPLING_EXHAUSTIVE_H_
#define VASTATS_SAMPLING_EXHAUSTIVE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "datagen/source_set.h"
#include "stats/aggregate_query.h"
#include "util/status.h"

namespace vastats {

// One viable answer per source permutation (n! entries, in permutation
// order). Fails when sources.NumSources() > max_sources (default keeps the
// cost <= 8! evaluations) or when coverage is incomplete.
Result<std::vector<double>> EnumerateOrderAnswers(const SourceSet& sources,
                                                  const AggregateQuery& query,
                                                  int max_sources = 8);

// One viable answer per component->source assignment (product of coverage
// counts). Fails when that product exceeds `max_answers`.
Result<std::vector<double>> EnumerateAssignmentAnswers(
    const SourceSet& sources, const AggregateQuery& query,
    int64_t max_answers = 1'000'000);

// The viable answer range W = [inf V, sup V] over all assignments.
// Exact in O(|C|) for componentwise-monotone aggregates (sum, avg, min,
// max, median); falls back to assignment enumeration otherwise.
Result<std::pair<double, double>> ViableRange(const SourceSet& sources,
                                              const AggregateQuery& query,
                                              int64_t max_answers = 1'000'000);

}  // namespace vastats

#endif  // VASTATS_SAMPLING_EXHAUSTIVE_H_
