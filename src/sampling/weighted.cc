#include "sampling/weighted.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "stats/aggregate.h"
#include "stats/descriptive.h"

namespace vastats {

Result<std::vector<double>> EstimateSourceQuality(
    const SourceSet& sources, std::span<const ComponentId> components,
    const SourceQualityOptions& options) {
  if (components.empty()) {
    return Status::InvalidArgument(
        "EstimateSourceQuality needs a component scope");
  }
  if (!(options.softness > 0.0) || !(options.default_weight > 0.0)) {
    return Status::InvalidArgument(
        "softness and default_weight must be > 0");
  }
  const size_t num_sources = static_cast<size_t>(sources.NumSources());
  std::vector<double> deviation_sum(num_sources, 0.0);
  std::vector<int> scored(num_sources, 0);
  std::vector<double> all_deviations;

  for (const ComponentId component : components) {
    const std::vector<int> covering = sources.Covering(component);
    if (covering.size() < 2) continue;  // no cross-check possible
    std::vector<double> values;
    values.reserve(covering.size());
    for (const int s : covering) {
      VASTATS_ASSIGN_OR_RETURN(const double v,
                               sources.source(s).Value(component));
      values.push_back(v);
    }
    VASTATS_ASSIGN_OR_RETURN(const double consensus, Median(values));
    for (size_t i = 0; i < covering.size(); ++i) {
      const double deviation = std::fabs(values[i] - consensus);
      deviation_sum[static_cast<size_t>(covering[i])] += deviation;
      ++scored[static_cast<size_t>(covering[i])];
      all_deviations.push_back(deviation);
    }
  }
  if (all_deviations.empty()) {
    // No overlap anywhere: all sources equally credible.
    return std::vector<double>(num_sources, options.default_weight);
  }
  VASTATS_ASSIGN_OR_RETURN(double scale, Median(all_deviations));
  if (scale <= 0.0) {
    // Majority of bindings agree exactly; fall back to the mean deviation,
    // and finally to 1 so the weight map stays defined.
    scale = ComputeMoments(all_deviations).mean();
    if (scale <= 0.0) scale = 1.0;
  }

  std::vector<double> weights(num_sources, options.default_weight);
  for (size_t s = 0; s < num_sources; ++s) {
    if (scored[s] == 0) continue;
    const double avg_deviation =
        deviation_sum[s] / static_cast<double>(scored[s]);
    weights[s] = 1.0 / (1.0 + avg_deviation / (options.softness * scale));
  }
  return weights;
}

Result<std::vector<double>> ApplyBreakerSeverityPriors(
    std::vector<double> weights, std::span<const uint8_t> breaker_severity,
    const BreakerSeverityPriorOptions& options) {
  if (!(options.half_open_factor > 0.0 && options.half_open_factor <= 1.0) ||
      !(options.open_factor > 0.0 && options.open_factor <= 1.0)) {
    return Status::InvalidArgument(
        "breaker severity factors must be in (0, 1]");
  }
  if (!(options.min_weight > 0.0)) {
    return Status::InvalidArgument("min_weight must be > 0");
  }
  if (breaker_severity.size() > weights.size()) {
    return Status::InvalidArgument(
        "breaker_severity covers more sources than the weight vector");
  }
  for (size_t s = 0; s < breaker_severity.size(); ++s) {
    double factor = 1.0;
    if (breaker_severity[s] == 1) {
      factor = options.half_open_factor;
    } else if (breaker_severity[s] >= 2) {
      factor = options.open_factor;
    }
    weights[s] = std::max(options.min_weight, weights[s] * factor);
  }
  return weights;
}

WeightedUniSSampler::WeightedUniSSampler(const SourceSet* sources,
                                         AggregateQuery query,
                                         std::vector<double> weights)
    : sources_(sources),
      query_(std::move(query)),
      weights_(std::move(weights)) {
  BuildIndex();
}

Result<WeightedUniSSampler> WeightedUniSSampler::Create(
    const SourceSet* sources, AggregateQuery query,
    std::vector<double> weights) {
  if (sources == nullptr) {
    return Status::InvalidArgument("WeightedUniSSampler needs a SourceSet");
  }
  VASTATS_RETURN_IF_ERROR(query.Validate());
  VASTATS_RETURN_IF_ERROR(sources->ValidateCoverage(query.components));
  if (static_cast<int>(weights.size()) != sources->NumSources()) {
    return Status::InvalidArgument(
        "weights must have one entry per source");
  }
  for (const double w : weights) {
    if (!(w > 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument("weights must be finite and > 0");
    }
  }
  return WeightedUniSSampler(sources, std::move(query), std::move(weights));
}

void WeightedUniSSampler::BuildIndex() {
  const size_t m = query_.components.size();
  position_.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    position_[query_.components[i]] = static_cast<int>(i);
  }
  per_source_.assign(static_cast<size_t>(sources_->NumSources()), {});
  for (int s = 0; s < sources_->NumSources(); ++s) {
    for (const auto& [component, value] : sources_->source(s).SortedBindings()) {
      const auto it = position_.find(component);
      if (it == position_.end()) continue;
      per_source_[static_cast<size_t>(s)].emplace_back(it->second, value);
    }
  }
}

Result<double> WeightedUniSSampler::SampleOne(Rng& rng) const {
  const int num_sources = sources_->NumSources();
  const int m = static_cast<int>(query_.components.size());

  // Weighted-random permutation via exponential keys: sorting ascending by
  // Exp(w_s) realizes successive sampling proportional to the weights.
  std::vector<std::pair<double, int>> keyed(
      static_cast<size_t>(num_sources));
  for (int s = 0; s < num_sources; ++s) {
    keyed[static_cast<size_t>(s)] = {
        rng.Exponential(weights_[static_cast<size_t>(s)]), s};
  }
  std::sort(keyed.begin(), keyed.end());

  std::vector<char> covered(static_cast<size_t>(m), 0);
  int num_covered = 0;
  const std::unique_ptr<PartialAggregator> partial =
      NewAggregator(query_.kind, query_.quantile_q);
  for (const auto& [key, s] : keyed) {
    for (const auto& [pos, value] : per_source_[static_cast<size_t>(s)]) {
      if (covered[static_cast<size_t>(pos)]) continue;
      covered[static_cast<size_t>(pos)] = 1;
      ++num_covered;
      partial->Add(value);
    }
    if (num_covered == m) break;
  }
  return partial->Finalize();
}

Result<UniSSample> WeightedUniSSampler::SampleOneDegraded(
    Rng& rng, AccessSession& session) const {
  const int num_sources = sources_->NumSources();
  const int m = static_cast<int>(query_.components.size());

  std::vector<std::pair<double, int>> keyed(
      static_cast<size_t>(num_sources));
  for (int s = 0; s < num_sources; ++s) {
    keyed[static_cast<size_t>(s)] = {
        rng.Exponential(weights_[static_cast<size_t>(s)]), s};
  }
  std::sort(keyed.begin(), keyed.end());
  if (session.transport_attached()) {
    // Stage the weighted order for prefetch, exactly as UniSSampler does
    // with its uniform shuffle (see SampleOneDegraded there).
    std::vector<int> order(keyed.size(), 0);
    std::vector<int> counts(keyed.size(), 0);
    for (size_t i = 0; i < keyed.size(); ++i) {
      order[i] = keyed[i].second;
      counts[i] = static_cast<int>(
          per_source_[static_cast<size_t>(keyed[i].second)].size());
    }
    session.StageVisits(order, counts);
  }

  std::vector<char> covered(static_cast<size_t>(m), 0);
  int num_covered = 0;
  const std::unique_ptr<PartialAggregator> partial =
      NewAggregator(query_.kind, query_.quantile_q);
  UniSSample sample;
  sample.visits.reserve(keyed.size());
  for (const auto& [key, s] : keyed) {
    if (session.DrawDeadlineExhausted()) {
      sample.truncated_by_deadline = true;
      session.RecordDeadlineTruncation();
      break;
    }
    const AccessSession::VisitOutcome outcome =
        session.Visit(s, static_cast<int>(per_source_[static_cast<size_t>(s)]
                                              .size()));
    if (outcome.skipped_breaker_open) {
      ++sample.sources_skipped_open;
      continue;
    }
    ++sample.sources_visited;
    if (!outcome.ok) {
      ++sample.sources_failed;
      sample.visits.push_back(UniSVisit{s, 0});
      continue;
    }
    int taken = 0;
    if (session.transport_attached()) {
      // Transported payloads carry the full sorted bindings; the position
      // map filter reproduces per_source_'s sequence (see UniSSampler).
      for (const TransportBinding& binding : session.last_payload()) {
        const auto it = position_.find(binding.component);
        if (it == position_.end()) continue;
        const int pos = it->second;
        if (covered[static_cast<size_t>(pos)]) continue;
        if (session.ValueCorrupted(s, pos)) continue;
        covered[static_cast<size_t>(pos)] = 1;
        ++num_covered;
        partial->Add(binding.value);
        ++taken;
      }
    } else {
      for (const auto& [pos, value] : per_source_[static_cast<size_t>(s)]) {
        if (covered[static_cast<size_t>(pos)]) continue;
        if (session.ValueCorrupted(s, pos)) continue;
        covered[static_cast<size_t>(pos)] = 1;
        ++num_covered;
        partial->Add(value);
        ++taken;
      }
    }
    sample.visits.push_back(UniSVisit{s, taken});
    if (taken > 0) ++sample.sources_contributing;
    if (num_covered == m) break;
  }

  sample.coverage = static_cast<double>(num_covered) / static_cast<double>(m);
  if (num_covered == 0) {
    sample.value_valid = false;
    return sample;
  }
  VASTATS_ASSIGN_OR_RETURN(sample.value, partial->Finalize());
  return sample;
}

Result<std::vector<UniSSample>> WeightedUniSSampler::SampleDegraded(
    int n, Rng& rng, AccessSession& session, const ObsOptions& obs) const {
  if (n <= 0) return Status::InvalidArgument("SampleDegraded requires n > 0");
  ScopedSpan span(obs, "weighted_sample_degraded");
  uint64_t draws = 0;
  std::vector<UniSSample> samples;
  samples.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (session.SessionBudgetExhausted()) break;
    session.BeginNextDraw();
    VASTATS_ASSIGN_OR_RETURN(UniSSample s, SampleOneDegraded(rng, session));
    ++draws;
    if (!s.value_valid) continue;
    samples.push_back(std::move(s));
  }
  obs.GetCounter("weighted_draws_total").Increment(draws);
  span.Annotate("draws", static_cast<int64_t>(draws));
  span.Annotate("kept", static_cast<int64_t>(samples.size()));
  return samples;
}

Result<std::vector<double>> WeightedUniSSampler::Sample(
    int n, Rng& rng, const ObsOptions& obs) const {
  if (n <= 0) return Status::InvalidArgument("Sample requires n > 0");
  ScopedSpan span(obs, "weighted_sample");
  std::vector<double> values;
  values.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    VASTATS_ASSIGN_OR_RETURN(const double v, SampleOne(rng));
    values.push_back(v);
  }
  obs.GetCounter("weighted_draws_total").Increment(static_cast<uint64_t>(n));
  span.Annotate("draws", static_cast<int64_t>(n));
  return values;
}

}  // namespace vastats
