// Parallel uniS sampling — the paper's §7: "uniS can be fully parallelized
// as samples are obtained independently. Future work should examine how the
// algorithm scales when parallelized."
//
// Determinism contract (thread-count-invariant): the n requested draws are
// partitioned into fixed-size chunks of `chunk_draws` samples, and every
// chunk owns an independent RNG stream derived from the master seed and the
// *chunk index* — never from a thread id. Workers (pool or thread-per-call)
// only decide which chunk they execute next, not what that chunk produces,
// so the output is bit-identical for a fixed (seed, n, chunk_draws) across
// ANY execution width: serial, 1/2/4/k thread-per-call workers, or a
// persistent pool of any size. (This deliberately replaces the seed's old
// contract, where the stream partitioning depended on num_threads and
// different thread counts produced different samples.)
//
// Execution modes:
//  * options.pool != nullptr — chunks run as tasks on the persistent
//    worker pool; no threads are created by this call.
//  * options.pool == nullptr — legacy thread-per-call dispatch
//    (options.num_threads workers are spawned and joined; <= 1 resolved
//    workers runs inline on the calling thread).
// Both modes produce identical samples; `bench/micro_pipeline --json`
// compares their dispatch cost.

#ifndef VASTATS_SAMPLING_PARALLEL_H_
#define VASTATS_SAMPLING_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "datagen/source_accessor.h"
#include "obs/obs.h"
#include "sampling/unis.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace vastats {

struct ParallelSampleOptions {
  // Thread-per-call mode width; 0 means hardware_concurrency (at least 1).
  // Ignored when `pool` is set (the pool's width applies).
  int num_threads = 0;
  uint64_t seed = 0x5eed;
  // Draws per chunk — the determinism granule. Part of the output contract:
  // changing it changes which stream produces which slot (but the result
  // stays independent of thread count and pool size).
  int chunk_draws = 64;
  // Borrowed persistent pool; null selects thread-per-call dispatch.
  ThreadPool* pool = nullptr;
  // Optional telemetry. The span is recorded from the calling thread only;
  // workers report through the (sharded, thread-safe) metrics registry:
  // the shared uniS draw/visit counters plus a per-chunk draw-count
  // histogram, and the pool adds its queue/task/latency series.
  ObsOptions obs;
  // When set, every chunk's AccessSession routes its visits through a
  // fresh transport channel from this factory (one channel per stream, the
  // AccessSession contract) instead of the inline fault simulation. The
  // factory must be thread-safe — chunks call it concurrently — and is
  // typically AsyncSourceTransport::OpenChannel behind a lambda. Null
  // keeps the simulated seam. Only ParallelUniSSampleWithFaults consults
  // this; the fault-free paths never visit sources through the seam.
  std::function<std::unique_ptr<VisitTransport>()> transport_factory;
};

// Fills one chunk of the output: `rng` is seeded from the chunk index and
// `out` is the chunk's slot range. Invoked concurrently for distinct chunks.
using ChunkSampleFn =
    std::function<Status(int chunk_index, Rng& rng, std::span<double> out)>;

// Generic chunk-indexed sampling driver: partitions n slots into chunks,
// derives one RNG stream per chunk, and executes `chunk_fn` per chunk on
// the pool (or thread-per-call workers). On any chunk failure the error of
// the lowest failing chunk index is returned and no partial result leaks.
Result<std::vector<double>> ParallelChunkedSample(
    int n, const ParallelSampleOptions& options, const ChunkSampleFn& chunk_fn);

// Draws `n` viable answers from `sampler` using the chunked driver. The
// sampler is shared read-only across threads (UniSSampler::SampleOne is
// const and carries no mutable state).
Result<std::vector<double>> ParallelUniSSample(
    const UniSSampler& sampler, int n, const ParallelSampleOptions& options);

// Result of a fault-injected (or merely fault-tolerant) sampling run.
// `values[i]` and `coverages[i]` describe the i-th KEPT draw, compacted in
// global slot order, so the array is itself deterministic.
struct FaultAwareSampleResult {
  std::vector<double> values;
  std::vector<double> coverages;  // per kept draw, in (0, 1]
  // Requested draws that produced nothing usable: zero coverage, coverage
  // below the floor, or abandonment after the session budget ran out.
  int dropped_draws = 0;
  // Access telemetry merged across all chunk sessions, in chunk order.
  AccessStats access;
};

// Draws `n` answers through the fault-tolerant access seam using the same
// chunk-indexed determinism contract as ParallelUniSSample: chunk RNG
// streams are keyed by chunk index, fault epochs are global slot indices,
// and every chunk owns a private AccessSession (breaker state and virtual
// clock confined to one stream). Output — kept values, coverages, dropped
// count, and merged AccessStats — is bit-identical across serial (pool ==
// nullptr, num_threads == 1), thread-per-call, and pool execution of any
// width. Draws with coverage < `min_coverage` are dropped, not errors.
Result<FaultAwareSampleResult> ParallelUniSSampleWithFaults(
    const UniSSampler& sampler, int n, const SourceAccessor& accessor,
    double min_coverage, const ParallelSampleOptions& options);

}  // namespace vastats

#endif  // VASTATS_SAMPLING_PARALLEL_H_
