// Parallel uniS sampling — the paper's §7: "uniS can be fully parallelized
// as samples are obtained independently. Future work should examine how the
// algorithm scales when parallelized."
//
// Each worker thread owns an independent RNG stream derived from the master
// seed and fills a pre-assigned slice of the output, so the result is
// bit-identical for a given (seed, num_threads) regardless of scheduling.
// Note the determinism contract: the stream partitioning depends on
// num_threads, so runs with different thread counts produce different (but
// equally valid) samples.

#ifndef VASTATS_SAMPLING_PARALLEL_H_
#define VASTATS_SAMPLING_PARALLEL_H_

#include <cstdint>
#include <vector>

#include "obs/obs.h"
#include "sampling/unis.h"
#include "util/status.h"

namespace vastats {

struct ParallelSampleOptions {
  // 0 means std::thread::hardware_concurrency() (at least 1).
  int num_threads = 0;
  uint64_t seed = 0x5eed;
  // Optional telemetry. The span is recorded from the calling thread only;
  // workers report through the (sharded, thread-safe) metrics registry:
  // the shared uniS draw/visit counters plus a per-thread draw-count
  // histogram that makes scheduling imbalance visible.
  ObsOptions obs;
};

// Draws `n` viable answers from `sampler` using multiple threads. The
// sampler is shared read-only across threads (UniSSampler::SampleOne is
// const and carries no mutable state).
Result<std::vector<double>> ParallelUniSSample(
    const UniSSampler& sampler, int n, const ParallelSampleOptions& options);

}  // namespace vastats

#endif  // VASTATS_SAMPLING_PARALLEL_H_
