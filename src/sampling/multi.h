// Multi-aggregate uniS: evaluate several aggregate functions over the SAME
// component set from one shared stream of value assignments.
//
// Each uniS draw is expensive (it touches the — possibly remote — sources;
// see integration/cost_model.h), but the random part of a draw is only the
// source visiting order. When a client wants Sum, Average and a quantile of
// the same components, drawing three independent assignment streams would
// triple the source traffic for no statistical benefit: one assignment
// yields one *consistent* viable answer per aggregate. This sampler draws
// the assignment once and finalizes every registered aggregate on it.

#ifndef VASTATS_SAMPLING_MULTI_H_
#define VASTATS_SAMPLING_MULTI_H_

#include <vector>

#include "datagen/source_set.h"
#include "stats/aggregate_query.h"
#include "util/random.h"
#include "util/status.h"

namespace vastats {

// One aggregate to evaluate on the shared assignment stream.
struct AggregateSpec {
  AggregateKind kind = AggregateKind::kSum;
  double quantile_q = 0.5;  // used by kQuantile
};

class MultiAggregateSampler {
 public:
  // All aggregates range over the same `components`. `sources` must outlive
  // the sampler; needs >= 1 spec and full coverage.
  static Result<MultiAggregateSampler> Create(
      const SourceSet* sources, std::vector<ComponentId> components,
      std::vector<AggregateSpec> specs);

  size_t NumAggregates() const { return specs_.size(); }

  // One draw: answers[i] is the viable answer of specs[i], all computed
  // from the same source-order assignment.
  Result<std::vector<double>> SampleOne(Rng& rng) const;

  // n draws; result[i] holds the n viable answers of specs[i].
  Result<std::vector<std::vector<double>>> Sample(int n, Rng& rng) const;

 private:
  MultiAggregateSampler(const SourceSet* sources,
                        std::vector<ComponentId> components,
                        std::vector<AggregateSpec> specs);

  void BuildIndex();

  const SourceSet* sources_;
  std::vector<ComponentId> components_;
  std::vector<AggregateSpec> specs_;
  std::vector<std::vector<std::pair<int, double>>> per_source_;
};

}  // namespace vastats

#endif  // VASTATS_SAMPLING_MULTI_H_
