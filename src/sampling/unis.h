// uniS — the paper's unbiased viable-answer sampler (§4.2).
//
// One uniS draw: visit the data sources in a uniformly random order; at each
// source, take *every* still-uncovered component the source binds, updating
// an incrementally-maintained partial aggregate; stop once all components of
// the query are covered (or all sources are exhausted); finalize the partial
// aggregate into one viable answer.
//
// Sources are selected uniformly and independently, with no quality or
// coverage priors — the paper's correctness requirement when no source
// meta-knowledge is available.

#ifndef VASTATS_SAMPLING_UNIS_H_
#define VASTATS_SAMPLING_UNIS_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "datagen/source_accessor.h"
#include "datagen/source_set.h"
#include "obs/obs.h"
#include "stats/aggregate_query.h"
#include "util/random.h"
#include "util/status.h"

namespace vastats {

struct UniSOptions {
  // When true (default), a draw fails unless every query component was
  // covered. When false, partially-covered draws finalize over the covered
  // subset (coverage is reported on the sample).
  bool require_full_coverage = true;
};

// One source visit within a uniS draw.
struct UniSVisit {
  int source = 0;
  // Components this visit supplied (0 when everything it binds was already
  // covered).
  int components_taken = 0;
};

// One viable answer drawn by uniS.
struct UniSSample {
  double value = 0.0;
  // Fraction of the query's components that were covered (1.0 normally).
  double coverage = 1.0;
  // Number of sources visited before coverage completed.
  int sources_visited = 0;
  // Number of sources that contributed at least one component — the
  // per-answer weight y of the stability analysis (Theorem 4.2).
  int sources_contributing = 0;
  // False when a degraded draw covered nothing at all (value is then
  // meaningless and must be discarded by the caller).
  bool value_valid = true;
  // Degraded-mode accounting (zero on the fault-free paths).
  int sources_failed = 0;        // visits that exhausted their retries
  int sources_skipped_open = 0;  // sources skipped on an open breaker
  bool truncated_by_deadline = false;
  // The visits in order (drives the cost model in integration/cost_model.h).
  std::vector<UniSVisit> visits;
};

// One component take within a uniS draw: `position` indexes
// `query().components`, `value` is the binding taken. The take sequence of a
// draw is a pure function of (rng state, component set, exclusions) — the
// aggregate kind only ever consumes takes, it never touches the rng — so
// replaying a recorded sequence through another kind's aggregator yields,
// bit for bit, the answer that kind would have sampled itself over the same
// component set. The serving batch path leans on this to share one pass of
// source visits across queries.
struct UniSTake {
  int position = 0;
  double value = 0.0;
};

class UniSSampler {
 public:
  // Validates that `sources` covers every component of `query` and
  // precomputes the per-source component lists. `sources` must outlive the
  // sampler.
  static Result<UniSSampler> Create(const SourceSet* sources,
                                    AggregateQuery query,
                                    UniSOptions options = {});

  // Draws one viable answer. `excluded` marks source indices that must not
  // be visited (used by the stability simulations); it may be empty.
  Result<UniSSample> SampleOne(Rng& rng,
                               std::span<const char> excluded = {}) const;

  // Like SampleOne, but also records the (position, value) takes of the draw
  // in visit order into `takes` (cleared first). Consumes exactly the same
  // rng stream as SampleOne and returns the identical sample.
  Result<UniSSample> SampleOneRecorded(Rng& rng, std::vector<UniSTake>& takes,
                                       std::span<const char> excluded = {}) const;

  // Finalizes a recorded take sequence through a fresh aggregator of `kind`:
  // the value the recorded draw would have produced had it been sampled for
  // that kind directly (see UniSTake).
  static Result<double> ReplayTakes(std::span<const UniSTake> takes,
                                    AggregateKind kind, double quantile_q);

  // Draws one answer through the fault-tolerant access seam: every source
  // visit goes through `session` (retry/backoff, circuit breakers, corrupt
  // value rejection, deadline budgets). Partial coverage never fails —
  // the draw finalizes over what it covered and reports the coverage; only
  // a draw that covered *nothing* comes back with value_valid == false.
  // The caller must have called session.BeginDraw()/BeginNextDraw() first.
  Result<UniSSample> SampleOneDegraded(
      Rng& rng, AccessSession& session,
      std::span<const char> excluded = {}) const;

  // Draws `n` answers through the access seam, auto-advancing the session
  // epoch per draw. Draws that covered nothing are dropped; draws cut short
  // by the session budget are abandoned. Serial counterpart of
  // ParallelUniSSampleWithFaults.
  Result<std::vector<UniSSample>> SampleDegraded(
      int n, Rng& rng, AccessSession& session,
      const ObsOptions& obs = {}) const;

  // Draws `n` viable answer values. `obs` (optional) records a
  // `unis_sample` span plus draw/visit/take-over counters and the
  // per-draw sources-visited histogram.
  Result<std::vector<double>> Sample(int n, Rng& rng,
                                     const ObsOptions& obs = {}) const;

  // Draws `n` viable answers with the given sources excluded. Fails when the
  // remaining sources cannot cover the query (under full-coverage options).
  Result<std::vector<double>> SampleExcluding(int n,
                                              std::span<const int> excluded,
                                              Rng& rng,
                                              const ObsOptions& obs = {}) const;

  // Monte-Carlo estimate of y, the average number of sources contributing
  // to an answer.
  Result<double> EstimateSourcesPerAnswer(int probes, Rng& rng,
                                          const ObsOptions& obs = {}) const;

  // Draws one uniS value *assignment* instead of the aggregated answer:
  // result[i] is the source index supplying query().components[i]. Useful
  // when the evaluation itself happens elsewhere (e.g. pushed down an
  // aggregation hierarchy). Requires full coverage.
  Result<std::vector<int>> SampleAssignment(Rng& rng) const;

  // True when `query` remains fully coverable with `excluded` removed.
  bool CoverableWithout(std::span<const int> excluded) const;

  const AggregateQuery& query() const { return query_; }
  const SourceSet& sources() const { return *sources_; }
  int NumComponents() const { return static_cast<int>(query_.components.size()); }

 private:
  UniSSampler(const SourceSet* sources, AggregateQuery query,
              UniSOptions options);

  void BuildIndex();

  Result<UniSSample> SampleOneImpl(Rng& rng, std::span<const char> excluded,
                                   std::vector<UniSTake>* takes) const;

  const SourceSet* sources_;
  AggregateQuery query_;
  UniSOptions options_;
  // per_source_[s] lists (query position, value) for the query components
  // source s binds.
  std::vector<std::vector<std::pair<int, double>>> per_source_;
  // covering_[pos] lists the source indices binding component `pos`.
  std::vector<std::vector<int>> covering_;
  // ComponentId -> query position, for binding transported payloads (which
  // carry the source's full sorted bindings, not the query-filtered list).
  std::unordered_map<ComponentId, int> position_;
};

}  // namespace vastats

#endif  // VASTATS_SAMPLING_UNIS_H_
