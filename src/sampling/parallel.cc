#include "sampling/parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

namespace vastats {

Result<std::vector<double>> ParallelUniSSample(
    const UniSSampler& sampler, int n,
    const ParallelSampleOptions& options) {
  if (n <= 0) {
    return Status::InvalidArgument("ParallelUniSSample requires n > 0");
  }
  int num_threads = options.num_threads;
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (num_threads == 0) {
    num_threads =
        std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, n);

  const ObsOptions& obs = options.obs;
  ScopedSpan span(obs.trace, "parallel_sample");
  span.Annotate("threads", static_cast<int64_t>(num_threads));
  span.Annotate("draws", static_cast<int64_t>(n));
  // Doubling buckets over per-thread draw counts; a lopsided distribution
  // here means the static slice partitioning is imbalanced.
  static constexpr double kDrawBuckets[] = {1,  2,   4,   8,   16,  32,
                                            64, 128, 256, 512, 1024};

  std::vector<double> values(static_cast<size_t>(n));
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mutex;

  auto worker = [&](int thread_index) {
    Rng rng(options.seed + 0x9e3779b97f4a7c15ULL *
                               static_cast<uint64_t>(thread_index + 1));
    // Contiguous slice [begin, end) for this thread.
    const int base = n / num_threads;
    const int extra = n % num_threads;
    const int begin = thread_index * base + std::min(thread_index, extra);
    const int count = base + (thread_index < extra ? 1 : 0);
    uint64_t draws = 0;
    uint64_t visits = 0;
    uint64_t contributing = 0;
    for (int i = 0; i < count && !failed.load(std::memory_order_relaxed);
         ++i) {
      const auto sample = sampler.SampleOne(rng);
      if (!sample.ok()) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = sample.status();
        break;
      }
      values[static_cast<size_t>(begin + i)] = sample->value;
      ++draws;
      visits += static_cast<uint64_t>(sample->sources_visited);
      contributing += static_cast<uint64_t>(sample->sources_contributing);
    }
    // Flushed from the worker thread on purpose: each worker lands in its
    // own registry shard, keeping the parallel path contention-free.
    if (obs.metrics != nullptr) {
      obs.GetCounter("unis_draws_total").Increment(draws);
      obs.GetCounter("unis_source_visits_total").Increment(visits);
      obs.GetCounter("unis_contributing_sources_total")
          .Increment(contributing);
      obs.GetHistogram("parallel_sampler_draws_per_thread", kDrawBuckets)
          .Observe(static_cast<double>(draws));
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (std::thread& thread : threads) thread.join();

  if (obs.metrics != nullptr) {
    obs.GetCounter("parallel_sampler_runs_total").Increment();
    obs.GetGauge("parallel_sampler_threads")
        .Set(static_cast<double>(num_threads));
    if (failed.load()) {
      obs.GetCounter("parallel_sampler_failures_total").Increment();
    }
  }
  if (failed.load()) return first_error;
  return values;
}

}  // namespace vastats
