#include "sampling/parallel.h"

#include <algorithm>
#include <thread>

namespace vastats {
namespace {

// Stream-splitting constant (same odd 64-bit golden-ratio multiplier the
// Rng seeder uses); chunk streams are decorrelated by the splitmix64
// expansion inside Rng's constructor.
constexpr uint64_t kStreamStride = 0x9e3779b97f4a7c15ULL;

}  // namespace

Result<std::vector<double>> ParallelChunkedSample(
    int n, const ParallelSampleOptions& options,
    const ChunkSampleFn& chunk_fn) {
  if (n <= 0) {
    return Status::InvalidArgument("ParallelChunkedSample requires n > 0");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (options.chunk_draws <= 0) {
    return Status::InvalidArgument("chunk_draws must be > 0");
  }
  const int chunk = options.chunk_draws;
  const int num_chunks = (n + chunk - 1) / chunk;
  const bool pooled = options.pool != nullptr;
  int workers;  // parallelism actually applied, for telemetry
  if (pooled) {
    workers = std::min(options.pool->num_threads() + 1, num_chunks);
  } else {
    workers = options.num_threads == 0
                  ? static_cast<int>(
                        std::max(1u, std::thread::hardware_concurrency()))
                  : options.num_threads;
    workers = std::min(workers, num_chunks);
  }

  const ObsOptions& obs = options.obs;
  ScopedSpan span(obs, "parallel_sample");
  span.Annotate("draws", static_cast<int64_t>(n));
  span.Annotate("chunks", static_cast<int64_t>(num_chunks));
  span.Annotate("threads", static_cast<int64_t>(workers));
  span.Annotate("pool", pooled);

  std::vector<double> values(static_cast<size_t>(n));
  auto task = [&](int chunk_index) -> Status {
    // Chunk-indexed stream: the seed depends on the chunk index only, so
    // scheduling and execution width cannot change the output.
    Rng rng(options.seed +
            kStreamStride * (static_cast<uint64_t>(chunk_index) + 1));
    const int begin = chunk_index * chunk;
    const int count = std::min(chunk, n - begin);
    return chunk_fn(chunk_index, rng,
                    std::span<double>(values).subspan(
                        static_cast<size_t>(begin),
                        static_cast<size_t>(count)));
  };

  PoolMetricsObserver pool_observer(obs);
  const Status status =
      pooled ? options.pool->ParallelFor(num_chunks, task, &pool_observer)
             : ThreadPerCallParallelFor(num_chunks, workers, task);

  if (obs.metrics != nullptr) {
    obs.GetCounter("parallel_sampler_runs_total").Increment();
    obs.GetGauge("parallel_sampler_threads").Set(static_cast<double>(workers));
    if (!status.ok()) {
      obs.GetCounter("parallel_sampler_failures_total").Increment();
    }
  }
  VASTATS_RETURN_IF_ERROR(status);
  return values;
}

Result<std::vector<double>> ParallelUniSSample(
    const UniSSampler& sampler, int n,
    const ParallelSampleOptions& options) {
  const ObsOptions& obs = options.obs;
  // Doubling buckets over per-chunk draw counts; all buckets below
  // chunk_draws collect only the tail chunk and failed chunks.
  static constexpr double kDrawBuckets[] = {1,  2,   4,   8,   16,  32,
                                            64, 128, 256, 512, 1024};
  auto chunk_fn = [&](int /*chunk_index*/, Rng& rng,
                      std::span<double> out) -> Status {
    Status status;
    uint64_t draws = 0;
    uint64_t visits = 0;
    uint64_t contributing = 0;
    for (double& slot : out) {
      const auto sample = sampler.SampleOne(rng);
      if (!sample.ok()) {
        status = sample.status();
        break;
      }
      slot = sample->value;
      ++draws;
      visits += static_cast<uint64_t>(sample->sources_visited);
      contributing += static_cast<uint64_t>(sample->sources_contributing);
    }
    // Flushed from the executing thread on purpose: each worker lands in
    // its own registry shard, keeping the parallel path contention-free.
    if (obs.metrics != nullptr) {
      obs.GetCounter("unis_draws_total").Increment(draws);
      obs.GetCounter("unis_source_visits_total").Increment(visits);
      obs.GetCounter("unis_contributing_sources_total")
          .Increment(contributing);
      obs.GetHistogram("parallel_sampler_draws_per_chunk", kDrawBuckets)
          .Observe(static_cast<double>(draws));
    }
    return status;
  };
  return ParallelChunkedSample(n, options, chunk_fn);
}

Result<FaultAwareSampleResult> ParallelUniSSampleWithFaults(
    const UniSSampler& sampler, int n, const SourceAccessor& accessor,
    double min_coverage, const ParallelSampleOptions& options) {
  if (n <= 0) {
    return Status::InvalidArgument(
        "ParallelUniSSampleWithFaults requires n > 0");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (options.chunk_draws <= 0) {
    return Status::InvalidArgument("chunk_draws must be > 0");
  }
  if (!(min_coverage >= 0.0 && min_coverage <= 1.0)) {
    return Status::InvalidArgument("min_coverage must be in [0, 1]");
  }
  if (accessor.num_sources() < sampler.sources().NumSources()) {
    return Status::InvalidArgument(
        "SourceAccessor covers fewer sources than the sampler visits");
  }
  const int chunk = options.chunk_draws;
  const int num_chunks = (n + chunk - 1) / chunk;
  const bool pooled = options.pool != nullptr;
  int workers;
  if (pooled) {
    workers = std::min(options.pool->num_threads() + 1, num_chunks);
  } else {
    workers = options.num_threads == 0
                  ? static_cast<int>(
                        std::max(1u, std::thread::hardware_concurrency()))
                  : options.num_threads;
    workers = std::min(workers, num_chunks);
  }

  const ObsOptions& obs = options.obs;
  ScopedSpan span(obs, "parallel_sample_degraded");
  span.Annotate("draws", static_cast<int64_t>(n));
  span.Annotate("chunks", static_cast<int64_t>(num_chunks));
  span.Annotate("threads", static_cast<int64_t>(workers));
  span.Annotate("pool", pooled);

  // Dense slot arrays filled by the chunks, compacted in slot order after
  // the join — so "which slot was kept" is part of the deterministic state.
  std::vector<double> slot_values(static_cast<size_t>(n), 0.0);
  std::vector<double> slot_coverages(static_cast<size_t>(n), 0.0);
  std::vector<char> slot_kept(static_cast<size_t>(n), 0);
  std::vector<AccessStats> chunk_stats(static_cast<size_t>(num_chunks));

  auto task = [&](int chunk_index) -> Status {
    Rng rng(options.seed +
            kStreamStride * (static_cast<uint64_t>(chunk_index) + 1));
    // One transport channel per chunk stream, living exactly as long as
    // the session that owns it. Outcomes stay keyed by (source, global
    // slot epoch, attempt) endpoint-side, so transported chunks keep the
    // width-invariance contract.
    std::unique_ptr<VisitTransport> channel;
    if (options.transport_factory) channel = options.transport_factory();
    AccessSession session =
        accessor.StartSession(obs.metrics, obs.recorder, channel.get());
    const int begin = chunk_index * chunk;
    const int count = std::min(chunk, n - begin);
    Status status;
    uint64_t draws = 0;
    uint64_t kept = 0;
    for (int i = 0; i < count; ++i) {
      if (session.SessionBudgetExhausted()) break;
      const int slot = begin + i;
      // Fault epochs are GLOBAL slot indices: the fault schedule a draw
      // sees depends on which draw it is, never on scheduling.
      session.BeginDraw(slot);
      const auto sample = sampler.SampleOneDegraded(rng, session);
      if (!sample.ok()) {
        status = sample.status();
        break;
      }
      ++draws;
      if (!sample->value_valid || sample->coverage < min_coverage) continue;
      slot_values[static_cast<size_t>(slot)] = sample->value;
      slot_coverages[static_cast<size_t>(slot)] = sample->coverage;
      slot_kept[static_cast<size_t>(slot)] = 1;
      ++kept;
    }
    chunk_stats[static_cast<size_t>(chunk_index)] = session.Finish();
    if (obs.metrics != nullptr) {
      obs.GetCounter("unis_draws_total").Increment(draws);
      obs.GetCounter("unis_degraded_draws_kept_total").Increment(kept);
      obs.GetCounter("unis_degraded_draws_dropped_total")
          .Increment(draws - kept);
    }
    return status;
  };

  PoolMetricsObserver pool_observer(obs);
  const Status status =
      pooled ? options.pool->ParallelFor(num_chunks, task, &pool_observer)
             : ThreadPerCallParallelFor(num_chunks, workers, task);
  if (obs.metrics != nullptr) {
    obs.GetCounter("parallel_sampler_runs_total").Increment();
    obs.GetGauge("parallel_sampler_threads").Set(static_cast<double>(workers));
    if (!status.ok()) {
      obs.GetCounter("parallel_sampler_failures_total").Increment();
    }
  }
  VASTATS_RETURN_IF_ERROR(status);

  FaultAwareSampleResult result;
  result.values.reserve(static_cast<size_t>(n));
  result.coverages.reserve(static_cast<size_t>(n));
  for (int slot = 0; slot < n; ++slot) {
    if (!slot_kept[static_cast<size_t>(slot)]) {
      ++result.dropped_draws;
      continue;
    }
    result.values.push_back(slot_values[static_cast<size_t>(slot)]);
    result.coverages.push_back(slot_coverages[static_cast<size_t>(slot)]);
  }
  // Merge in chunk order so the combined stats are schedule-independent.
  for (const AccessStats& stats : chunk_stats) result.access.Merge(stats);
  span.Annotate("kept", static_cast<int64_t>(result.values.size()));
  span.Annotate("dropped", static_cast<int64_t>(result.dropped_draws));
  return result;
}

}  // namespace vastats
