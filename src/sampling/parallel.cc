#include "sampling/parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

namespace vastats {

Result<std::vector<double>> ParallelUniSSample(
    const UniSSampler& sampler, int n,
    const ParallelSampleOptions& options) {
  if (n <= 0) {
    return Status::InvalidArgument("ParallelUniSSample requires n > 0");
  }
  int num_threads = options.num_threads;
  if (num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (num_threads == 0) {
    num_threads =
        std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, n);

  std::vector<double> values(static_cast<size_t>(n));
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mutex;

  auto worker = [&](int thread_index) {
    Rng rng(options.seed + 0x9e3779b97f4a7c15ULL *
                               static_cast<uint64_t>(thread_index + 1));
    // Contiguous slice [begin, end) for this thread.
    const int base = n / num_threads;
    const int extra = n % num_threads;
    const int begin = thread_index * base + std::min(thread_index, extra);
    const int count = base + (thread_index < extra ? 1 : 0);
    for (int i = 0; i < count && !failed.load(std::memory_order_relaxed);
         ++i) {
      const auto sample = sampler.SampleOne(rng);
      if (!sample.ok()) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = sample.status();
        return;
      }
      values[static_cast<size_t>(begin + i)] = sample->value;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (std::thread& thread : threads) thread.join();

  if (failed.load()) return first_error;
  return values;
}

}  // namespace vastats
