// Provenance-aware sampling — the paper's §7 future work made concrete:
// "the current uniS sampling algorithm assumes equal importance for the
// sources and samples them uniformly and independently. However, the
// sources may have different levels of quality and coverage. Future work
// should consider some notion of provenance."
//
// Two pieces:
//  * EstimateSourceQuality — a data-driven quality score per source, from
//    how far its values sit from the per-component consensus (median across
//    covering sources). No external truth is needed.
//  * WeightedUniSSampler — uniS with a weighted-random visiting order
//    (successive sampling proportional to weight), so higher-quality
//    sources supply components more often while every source keeps a
//    non-zero chance of contributing.

#ifndef VASTATS_SAMPLING_WEIGHTED_H_
#define VASTATS_SAMPLING_WEIGHTED_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "datagen/source_accessor.h"
#include "datagen/source_set.h"
#include "obs/obs.h"
#include "stats/aggregate_query.h"
#include "sampling/unis.h"
#include "util/random.h"
#include "util/status.h"

namespace vastats {

struct SourceQualityOptions {
  // Deviation-to-weight softness: weight = 1 / (1 + dev / (softness * s))
  // where s is the median absolute deviation across all bindings. Smaller
  // values punish disagreement harder.
  double softness = 1.0;
  // Weight assigned to sources with no scored bindings (no overlap with any
  // other source on the scoped components).
  double default_weight = 1.0;
};

// Per-source quality weights in (0, 1], derived from agreement with the
// per-component median over `components`. Requires a non-empty scope.
Result<std::vector<double>> EstimateSourceQuality(
    const SourceSet& sources, std::span<const ComponentId> components,
    const SourceQualityOptions& options = {});

// How hard breaker severity discounts a source's quality prior. Factors
// are multiplicative and must sit in (0, 1]; `min_weight` keeps every
// source reachable (a zero weight would starve half-open probes and the
// breaker could never close again).
struct BreakerSeverityPriorOptions {
  double half_open_factor = 0.5;  // severity 1: probing after a cooldown
  double open_factor = 0.1;       // severity 2: breaker currently open
  double min_weight = 1e-6;
};

// Folds observed access health back into the visiting-order priors: each
// source's weight is discounted by the worst breaker severity a previous
// extraction recorded for it (AccessStats::breaker_severity), so degraded
// sources are actively avoided by the next weighted run instead of merely
// being refreshed first by the monitor. `breaker_severity` may be shorter
// than `weights` (or empty — e.g. before any degraded run finished);
// missing entries mean "closed" and keep their weight.
Result<std::vector<double>> ApplyBreakerSeverityPriors(
    std::vector<double> weights, std::span<const uint8_t> breaker_severity,
    const BreakerSeverityPriorOptions& options = {});

// uniS with a weighted-random source visiting order. With equal weights it
// coincides with UniSSampler (in distribution).
class WeightedUniSSampler {
 public:
  // `weights` must have one strictly positive entry per source.
  // `sources` must outlive the sampler.
  static Result<WeightedUniSSampler> Create(const SourceSet* sources,
                                            AggregateQuery query,
                                            std::vector<double> weights);

  // Draws one viable answer.
  Result<double> SampleOne(Rng& rng) const;

  // Draws `n` viable answers. `obs` (optional) records a `weighted_sample`
  // span and the weighted draw counter.
  Result<std::vector<double>> Sample(int n, Rng& rng,
                                     const ObsOptions& obs = {}) const;

  // Draws one answer through the fault-tolerant access seam: the weighted
  // visiting order is drawn as usual, but every visit goes through
  // `session` (retries, breakers, corruption rejection, deadlines).
  // Partial coverage finalizes over what was covered; a draw that covered
  // nothing returns with value_valid == false. The caller must have called
  // session.BeginDraw()/BeginNextDraw() first.
  Result<UniSSample> SampleOneDegraded(Rng& rng,
                                       AccessSession& session) const;

  // Draws `n` answers through the seam, auto-advancing the session epoch
  // per draw; zero-coverage draws are dropped and budget exhaustion stops
  // the batch early.
  Result<std::vector<UniSSample>> SampleDegraded(
      int n, Rng& rng, AccessSession& session,
      const ObsOptions& obs = {}) const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  WeightedUniSSampler(const SourceSet* sources, AggregateQuery query,
                      std::vector<double> weights);

  void BuildIndex();

  const SourceSet* sources_;
  AggregateQuery query_;
  std::vector<double> weights_;
  // per_source_[s] lists (query position, value) pairs, as in UniSSampler.
  std::vector<std::vector<std::pair<int, double>>> per_source_;
  // ComponentId -> query position, for binding transported payloads.
  std::unordered_map<ComponentId, int> position_;
};

}  // namespace vastats

#endif  // VASTATS_SAMPLING_WEIGHTED_H_
