#include "serving/caches.h"

#include <algorithm>
#include <atomic>

#include "serving/fingerprint.h"

namespace vastats {
namespace serving {
namespace {

// Thread-local fast path of DctPlanCache: each thread keeps (cache uid →
// plan) slots. Entries whose cache died are never looked up again — uids
// are never reused — and the plans they point at are owned by the cache,
// so a stale entry is dead weight, never a dangling dereference path.
struct TlsPlanEntry {
  uint64_t uid = 0;
  DctPlan* plan = nullptr;
};
thread_local std::vector<TlsPlanEntry> g_tls_plans;

std::atomic<uint64_t> g_next_plan_cache_uid{1};

bool ClosureContains(std::span<const int> closure, int source) {
  return std::binary_search(closure.begin(), closure.end(), source);
}

}  // namespace

Status ExtractionCachesOptions::Validate() const {
  if (answer_capacity == 0 || bandwidth_capacity == 0) {
    return Status::InvalidArgument(
        "ExtractionCachesOptions: capacities must be >= 1");
  }
  return Status::Ok();
}

ExtractionCaches::ExtractionCaches(int num_sources,
                                   ExtractionCachesOptions options)
    : options_(options),
      epochs_(static_cast<size_t>(std::max(num_sources, 0)), 0) {}

uint64_t ExtractionCaches::ClosureStampLocked(
    std::span<const int> closure) const {
  uint64_t stamp = FingerprintBytes("epochs", 6);
  for (const int s : closure) {
    const uint64_t epoch =
        (s >= 0 && static_cast<size_t>(s) < epochs_.size())
            ? epochs_[static_cast<size_t>(s)]
            : 0;
    stamp = FingerprintBytes(&epoch, sizeof(epoch), stamp);
  }
  return stamp;
}

template <typename Value>
std::optional<Value> ExtractionCaches::LookupLocked(
    Cache<Value>& cache, uint64_t fingerprint, std::span<const int> closure) {
  for (size_t i = 0; i < cache.entries.size(); ++i) {
    Entry<Value>& entry = cache.entries[i];
    if (entry.fingerprint != fingerprint) continue;
    if (entry.stamp != ClosureStampLocked(closure)) {
      // Belt-and-braces staleness check: active drift eviction should have
      // removed this entry already, but an epoch bump between closure
      // computations must never serve a pre-drift value.
      ++cache.invalidations;
      cache.entries[i] = std::move(cache.entries.back());
      cache.entries.pop_back();
      break;
    }
    ++cache.hits;
    entry.last_use = ++use_tick_;
    return entry.value;
  }
  ++cache.misses;
  return std::nullopt;
}

template <typename Value>
void ExtractionCaches::StoreLocked(Cache<Value>& cache, size_t capacity,
                                   uint64_t fingerprint,
                                   std::span<const int> closure,
                                   const Value& value) {
  const uint64_t stamp = ClosureStampLocked(closure);
  for (Entry<Value>& entry : cache.entries) {
    if (entry.fingerprint != fingerprint) continue;
    entry.stamp = stamp;
    entry.closure.assign(closure.begin(), closure.end());
    entry.value = value;
    entry.last_use = ++use_tick_;
    return;
  }
  if (cache.entries.size() >= capacity) {
    size_t victim = 0;
    for (size_t i = 1; i < cache.entries.size(); ++i) {
      if (cache.entries[i].last_use < cache.entries[victim].last_use) {
        victim = i;
      }
    }
    cache.entries[victim] = std::move(cache.entries.back());
    cache.entries.pop_back();
    ++cache.evictions;
  }
  cache.entries.push_back(Entry<Value>{
      fingerprint, stamp, ++use_tick_,
      std::vector<int>(closure.begin(), closure.end()), value});
}

template <typename Value>
void ExtractionCaches::InvalidateLocked(Cache<Value>& cache, int source) {
  for (size_t i = 0; i < cache.entries.size();) {
    if (ClosureContains(cache.entries[i].closure, source)) {
      cache.entries[i] = std::move(cache.entries.back());
      cache.entries.pop_back();
      ++cache.invalidations;
    } else {
      ++i;
    }
  }
}

std::optional<AnswerStatistics> ExtractionCaches::LookupAnswer(
    uint64_t fingerprint, std::span<const int> closure) {
  std::lock_guard<std::mutex> lock(mutex_);
  return LookupLocked(answers_, fingerprint, closure);
}

void ExtractionCaches::StoreAnswer(uint64_t fingerprint,
                                   std::span<const int> closure,
                                   const AnswerStatistics& statistics) {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreLocked(answers_, options_.answer_capacity, fingerprint, closure,
              statistics);
}

std::optional<double> ExtractionCaches::LookupBandwidth(
    uint64_t fingerprint, std::span<const int> closure) {
  std::lock_guard<std::mutex> lock(mutex_);
  return LookupLocked(bandwidths_, fingerprint, closure);
}

void ExtractionCaches::StoreBandwidth(uint64_t fingerprint,
                                      std::span<const int> closure,
                                      double bandwidth) {
  std::lock_guard<std::mutex> lock(mutex_);
  StoreLocked(bandwidths_, options_.bandwidth_capacity, fingerprint, closure,
              bandwidth);
}

void ExtractionCaches::OnSourceDrift(int source) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (source < 0 || static_cast<size_t>(source) >= epochs_.size()) return;
  ++epochs_[static_cast<size_t>(source)];
  InvalidateLocked(answers_, source);
  InvalidateLocked(bandwidths_, source);
}

uint64_t ExtractionCaches::SourceEpoch(int source) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (source < 0 || static_cast<size_t>(source) >= epochs_.size()) return 0;
  return epochs_[static_cast<size_t>(source)];
}

ExtractionCacheStats ExtractionCaches::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ExtractionCacheStats stats;
  stats.answer_hits = answers_.hits;
  stats.answer_misses = answers_.misses;
  stats.answer_evictions = answers_.evictions;
  stats.answer_invalidations = answers_.invalidations;
  stats.bandwidth_hits = bandwidths_.hits;
  stats.bandwidth_misses = bandwidths_.misses;
  stats.bandwidth_evictions = bandwidths_.evictions;
  stats.bandwidth_invalidations = bandwidths_.invalidations;
  stats.answer_entries = answers_.entries.size();
  stats.bandwidth_entries = bandwidths_.entries.size();
  return stats;
}

DctPlanCache::DctPlanCache(size_t tables_per_thread)
    : uid_(g_next_plan_cache_uid.fetch_add(1, std::memory_order_relaxed)),
      tables_per_thread_(tables_per_thread == 0 ? 1 : tables_per_thread) {}

DctPlan* DctPlanCache::ThreadLocalPlan() {
  for (const TlsPlanEntry& entry : g_tls_plans) {
    if (entry.uid == uid_) return entry.plan;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.push_back(std::make_unique<DctPlan>(tables_per_thread_));
  DctPlan* plan = plans_.back().get();
  g_tls_plans.push_back(TlsPlanEntry{uid_, plan});
  return plan;
}

size_t DctPlanCache::NumPlans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

DctPlanCache& DefaultDctPlanCache() {
  // Never destroyed: worker threads may outlive main and still hold fast-
  // path slots into it (same pattern and rationale as DefaultThreadPool()).
  static DctPlanCache* const kDefault = new DctPlanCache();
  return *kDefault;
}

}  // namespace serving
}  // namespace vastats
