#include "serving/fingerprint.h"

#include <cstring>

namespace vastats {
namespace serving {

namespace {
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

uint64_t FingerprintBytes(const void* data, size_t size, uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<uint64_t>(bytes[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t ComponentSequenceFingerprint(
    std::span<const ComponentId> components) {
  uint64_t hash = FingerprintBytes("components", 10);
  for (const ComponentId component : components) {
    hash = FingerprintBytes(&component, sizeof(component), hash);
  }
  return hash;
}

uint64_t QueryFingerprint(const AggregateQuery& query) {
  uint64_t hash = ComponentSequenceFingerprint(query.components);
  const auto kind = static_cast<uint32_t>(query.kind);
  hash = FingerprintBytes(&kind, sizeof(kind), hash);
  // The quantile parameter only disambiguates quantile queries; hashing the
  // raw double is exact (equal doubles hash equal, which is the contract —
  // near-equal quantiles are different queries).
  hash = FingerprintBytes(&query.quantile_q, sizeof(query.quantile_q), hash);
  return hash;
}

uint64_t FoldDeadline(uint64_t fingerprint, double deadline_virtual_ms) {
  if (!(deadline_virtual_ms > 0.0)) return fingerprint;
  return FingerprintBytes(&deadline_virtual_ms, sizeof(deadline_virtual_ms),
                          fingerprint ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace serving
}  // namespace vastats
