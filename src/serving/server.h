// ExtractionServer — concurrent multi-query extraction over one SourceSet.
//
// The single-query pipeline (core/extractor.h) is a pure function of
// (sources, query, options, seed); this layer turns it into a multi-tenant
// service without giving that up:
//
//   * a QueryScheduler admission-controls concurrent submissions (bounded
//     in-flight, bounded queue, ResourceExhausted beyond);
//   * an ExtractionCaches instance shares whole AnswerStatistics and Botev
//     bandwidths across requests, keyed by (query fingerprint, source
//     epoch) and invalidated on monitor drift (wire it up with
//     `monitor.SetDriftListener(server.drift_listener())`);
//   * a DctPlanCache keeps per-thread FFT plans alive across requests;
//   * ExtractBatch groups requests over the same component sequence so one
//     pass of per-draw source visits (uniS take recording + per-kind
//     replay) feeds every extraction in the group.
//
// Determinism contract: a request's result is a pure function of the
// request, the server's base options, and the source epochs — bit-identical
// at any concurrency, any admission interleaving, and any cache hit/miss
// pattern. Per-query seeds derive from base.seed XOR the component-sequence
// fingerprint, so a batched group and an isolated run of any member consume
// the identical rng stream; DerivedOptions() exposes the exact derivation
// for benches and tests to replay against a standalone extractor. (Phase
// *timings* are wall-clock metadata and excluded from the contract, as
// everywhere else in the library.)
//
// Telemetry: requests/admissions/rejections/cache-traffic counters, the
// `serving_in_flight` gauge, a `serving_request_latency_seconds` histogram,
// and flight-recorder scheduler/cache events (obs/flight_recorder.h). The
// base options' Trace is ignored — the span tree is single-threaded by
// design and a server runs requests from many threads; per-query timelines
// come from the flight recorder instead.

#ifndef VASTATS_SERVING_SERVER_H_
#define VASTATS_SERVING_SERVER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/extractor.h"
#include "core/monitor.h"
#include "serving/caches.h"
#include "serving/scheduler.h"

namespace vastats {
namespace serving {

struct QueryRequest {
  AggregateQuery query;
  // Optional virtual-time budget for the sampling phase, in the same
  // simulated milliseconds as RetryPolicy.session_deadline_ms. Requires the
  // server's base options to carry fault_tolerance (the seam that owns the
  // virtual clock); requests with a deadline are rejected with
  // InvalidArgument otherwise. 0 = no per-request deadline. Deterministic:
  // the deadline is part of the request fingerprint, and equal requests
  // truncate at the same draw on every run.
  double deadline_virtual_ms = 0.0;
};

struct ServingOptions {
  // Base pipeline configuration shared by every query. The server forces
  // kde_bandwidth_mode = kShared (the cacheable mode: one selector run per
  // extraction, so a cached h can stand in for the whole run; see
  // ExtractionCacheHooks) — results remain bit-identical across cache
  // states. base.obs is ignored; attach sinks to `obs` below.
  ExtractorOptions base;
  SchedulerOptions scheduler;
  ExtractionCachesOptions caches;
  // Plan registry to share FFT tables through; null = DefaultDctPlanCache().
  DctPlanCache* plan_cache = nullptr;
  // Pool for the batch API's per-group fan-out; null = DefaultThreadPool().
  ThreadPool* batch_pool = nullptr;
  // Thread-safe sinks only: metrics + flight recorder (trace is ignored,
  // see the header comment).
  ObsOptions obs;
};

class ExtractionServer {
 public:
  // `sources` must outlive the server (as it must every extractor).
  static Result<std::unique_ptr<ExtractionServer>> Create(
      const SourceSet* sources, ServingOptions options);

  // Serves one query: admission, answer-cache lookup, extraction on miss.
  // Thread-safe; blocks while queued, returns ResourceExhausted when the
  // queue is full.
  Result<AnswerStatistics> Extract(const QueryRequest& request);

  // Serves a batch, grouping requests with identical component sequences so
  // each group pays one sampling pass (one admission slot per group).
  // Results align with `requests` by index; per-request failures land in
  // the corresponding slot without failing the rest of the batch.
  std::vector<Result<AnswerStatistics>> ExtractBatch(
      std::span<const QueryRequest> requests);

  // The exact per-request ExtractorOptions the server extracts with (seed
  // derivation, forced bandwidth mode, deadline mapping — minus the cache
  // hooks, which never change results). Exposed so benches and tests can
  // run the bit-identity comparison against an isolated extractor.
  Result<ExtractorOptions> DerivedOptions(const QueryRequest& request) const;

  // Cache-key helpers, exposed for tests.
  uint64_t RequestFingerprint(const QueryRequest& request) const;
  std::vector<int> SourceClosure(const AggregateQuery& query) const;

  // Invalidation entry points: hand `drift_listener()` to
  // ContinuousQueryMonitor::SetDriftListener, or call OnSourceDrift
  // directly when source churn is observed out-of-band.
  SourceDriftListener* drift_listener() { return &caches_; }
  void OnSourceDrift(int source) { caches_.OnSourceDrift(source); }

  ExtractionCacheStats CacheStats() const { return caches_.Stats(); }
  const QueryScheduler& scheduler() const { return scheduler_; }
  DctPlanCache& plan_cache() { return *plan_cache_; }
  const ServingOptions& options() const { return options_; }

 private:
  ExtractionServer(const SourceSet* sources, ServingOptions options);

  // Extraction with admission already granted; `fingerprint`/`closure` are
  // the request's cache identity.
  Result<AnswerStatistics> ExtractAdmitted(const QueryRequest& request,
                                           uint64_t fingerprint,
                                           std::span<const int> closure);
  // One batch group (indices into `requests` sharing a component
  // sequence): admission, shared sampling, per-member replay + tail.
  void ExtractGroup(std::span<const QueryRequest> requests,
                    std::span<const size_t> members,
                    std::vector<Result<AnswerStatistics>>& results);
  // Phases 2-7 for one group member over its replayed samples, with the rng
  // copied in post-sampling state so the tail matches an isolated run.
  Result<AnswerStatistics> ExtractGroupTail(const QueryRequest& request,
                                            uint64_t fingerprint,
                                            std::span<const int> closure,
                                            std::vector<double> samples,
                                            const Rng& post_sampling_rng);
  // Wires the plan/bandwidth cache hooks for one extraction identity.
  void AttachCacheHooks(ExtractorOptions& derived, uint64_t fingerprint,
                        std::span<const int> closure);
  void RecordCacheEvent(bool hit, uint32_t cache_name_id,
                        uint64_t fingerprint) const;

  const SourceSet* sources_;
  ServingOptions options_;
  ExtractionCaches caches_;
  QueryScheduler scheduler_;
  DctPlanCache* plan_cache_;
  // True when the batch path may share one recorded sampling pass across a
  // group: the serial sampler must be the one an isolated run would use.
  bool groupable_sampling_ = false;
  uint32_t answer_cache_name_id_ = 0;
  uint32_t bandwidth_cache_name_id_ = 0;
};

}  // namespace serving
}  // namespace vastats

#endif  // VASTATS_SERVING_SERVER_H_
