// Admission control for concurrent extraction serving.
//
// The scheduler is a counting gate with a bounded waiting room. A query is
// in exactly one of three states:
//
//     submitted --admit--> in-flight --release--> done
//         \--queue full--> rejected (ResourceExhausted)
//          \--wait------->(queued)--admit--> in-flight
//
// At most `max_in_flight` queries hold an execution slot; up to
// `max_queue_depth` more block in Admit() waiting for one; anything beyond
// that is rejected immediately with Status::ResourceExhausted so overload
// sheds load at the door instead of growing an unbounded backlog
// (pipelinedb's continuous-query scheduler makes the same choice).
//
// Telemetry: `serving_admitted_total` / `serving_rejected_total` counters,
// a `serving_in_flight` gauge, and flight-recorder kSchedulerAdmit/
// kSchedulerReject instants carrying the query fingerprint — the events
// intern the gauge's name so ExportChromeTrace can mirror the admission
// level onto one counter track (the name is deliberately shared between
// the gauge and the journal events; analyzer rule A6 allowlists it).

#ifndef VASTATS_SERVING_SCHEDULER_H_
#define VASTATS_SERVING_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "obs/obs.h"
#include "util/status.h"

namespace vastats {
namespace serving {

struct SchedulerOptions {
  // Execution slots: queries running concurrently. The batch API admits one
  // slot per query *group*, so a group's shared sampling pass counts once.
  int max_in_flight = 4;
  // Waiters allowed to block for a slot before submissions are rejected.
  int max_queue_depth = 16;

  Status Validate() const;
};

class QueryScheduler {
 public:
  // `obs` is borrowed (copied struct, borrowed sinks) and may hold nulls.
  explicit QueryScheduler(SchedulerOptions options, ObsOptions obs = {});

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  // Takes an execution slot, blocking while the queue has room; returns
  // ResourceExhausted when `max_queue_depth` waiters are already queued.
  // Safe to call from pool workers: slots are held only by running tasks,
  // so a blocked Admit always has a running task ahead of it to release.
  Status Admit(uint64_t query_fingerprint);

  // Returns the slot taken by a successful Admit. Never blocks.
  void Release();

  int InFlight() const;
  int Waiting() const;
  const SchedulerOptions& options() const { return options_; }

 private:
  const SchedulerOptions options_;
  const ObsOptions obs_;
  uint32_t in_flight_name_id_ = 0;  // interned "serving_in_flight"
  mutable std::mutex mutex_;
  std::condition_variable slot_freed_;
  int in_flight_ = 0;
  int waiting_ = 0;
};

}  // namespace serving
}  // namespace vastats

#endif  // VASTATS_SERVING_SCHEDULER_H_
