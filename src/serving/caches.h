// Shared extraction caches for the serving layer.
//
// Key/invalidation contract (DESIGN.md §11): every cached value is keyed by
// `(query fingerprint, source epoch)` — concretely, the request fingerprint
// (serving/fingerprint.h) paired with a *closure stamp*, an FNV fold of the
// per-source epoch counters of every source the query's components can
// touch. Drift on source k bumps k's epoch, which (a) changes the stamp of
// every closure containing k, so stale entries can never be looked up
// again, and (b) actively evicts exactly those entries whose recorded
// closure contains k — entries over disjoint closures survive untouched.
// A post-invalidation extraction therefore recomputes from the sources and
// is bit-identical to a cold run by the extractor's determinism contract.
//
// Three caches live here:
//   * AnswerStatistics — whole extraction results (the big win: a hit skips
//     sampling, bootstrap, KDE, CIO, and stability entirely);
//   * Botev bandwidths — a hit skips the selector run under the shared-
//     bandwidth mode (see ExtractionCacheHooks);
//   * DctPlans — per-thread FFT table plans, promoted from function-local
//     thread_locals to a process-wide registry (DctPlanCache) so tables
//     survive across extractions, queries, and servers, each plan bounded
//     by the DctPlan LRU.
//
// All ExtractionCaches methods are thread-safe (one mutex per cache; the
// values are copied out, never referenced in place). DctPlanCache hands out
// thread-confined plans through a lock-free thread-local fast path; the
// plans themselves are unsynchronized by design.

#ifndef VASTATS_SERVING_CACHES_H_
#define VASTATS_SERVING_CACHES_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/extractor.h"
#include "core/monitor.h"
#include "util/fft.h"

namespace vastats {
namespace serving {

struct ExtractionCachesOptions {
  // Entry caps; LRU-evicted beyond these. AnswerStatistics entries carry a
  // full density grid (~grid_size doubles), so the answer cap dominates
  // memory: 64 entries at the default 4096-point grid stay under ~4 MiB.
  size_t answer_capacity = 64;
  size_t bandwidth_capacity = 256;

  Status Validate() const;
};

// Aggregated cache telemetry (monotonic counters + current sizes),
// snapshot under the lock.
struct ExtractionCacheStats {
  uint64_t answer_hits = 0;
  uint64_t answer_misses = 0;
  uint64_t answer_evictions = 0;
  uint64_t answer_invalidations = 0;
  uint64_t bandwidth_hits = 0;
  uint64_t bandwidth_misses = 0;
  uint64_t bandwidth_evictions = 0;
  uint64_t bandwidth_invalidations = 0;
  size_t answer_entries = 0;
  size_t bandwidth_entries = 0;
};

// The answer and bandwidth caches plus the per-source epoch registry, with
// drift-driven invalidation (implements the monitor's listener seam, so
// `monitor.SetDriftListener(&caches)` wires churn straight through).
class ExtractionCaches final : public SourceDriftListener {
 public:
  ExtractionCaches(int num_sources, ExtractionCachesOptions options = {});

  // `closure` is the sorted set of source indices the query's components
  // can touch; lookups hit only when the entry was stored under the same
  // fingerprint AND the same epoch stamp of that closure.
  std::optional<AnswerStatistics> LookupAnswer(uint64_t fingerprint,
                                               std::span<const int> closure);
  void StoreAnswer(uint64_t fingerprint, std::span<const int> closure,
                   const AnswerStatistics& statistics);

  std::optional<double> LookupBandwidth(uint64_t fingerprint,
                                        std::span<const int> closure);
  void StoreBandwidth(uint64_t fingerprint, std::span<const int> closure,
                      double bandwidth);

  // Bumps `source`'s epoch and evicts every entry whose closure contains
  // it. Out-of-range sources are ignored (the epoch registry is sized at
  // construction).
  void OnSourceDrift(int source) override;

  uint64_t SourceEpoch(int source) const;
  ExtractionCacheStats Stats() const;

 private:
  template <typename Value>
  struct Entry {
    uint64_t fingerprint = 0;
    uint64_t stamp = 0;           // closure epoch stamp at store time
    uint64_t last_use = 0;        // LRU recency tick
    std::vector<int> closure;     // sorted source indices
    Value value;
  };

  // One locked LRU map; Shard is a misnomer-avoidance name — there is one
  // per cached value type, not per hash range.
  template <typename Value>
  struct Cache {
    std::vector<Entry<Value>> entries;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };

  uint64_t ClosureStampLocked(std::span<const int> closure) const;

  template <typename Value>
  std::optional<Value> LookupLocked(Cache<Value>& cache, uint64_t fingerprint,
                                    std::span<const int> closure);
  template <typename Value>
  void StoreLocked(Cache<Value>& cache, size_t capacity, uint64_t fingerprint,
                   std::span<const int> closure, const Value& value);
  template <typename Value>
  void InvalidateLocked(Cache<Value>& cache, int source);

  const ExtractionCachesOptions options_;
  mutable std::mutex mutex_;
  std::vector<uint64_t> epochs_;
  uint64_t use_tick_ = 0;
  Cache<AnswerStatistics> answers_;
  Cache<double> bandwidths_;
};

// Process-wide registry of per-thread, LRU-bounded DctPlans: the "shared
// plan cache with a per-thread fast path". Each recording thread gets its
// own plan (created on first use, owned by the registry, keyed by a
// never-reused registry uid in a thread_local slot), so the hot transform
// path is a thread-local lookup with no locking and the tables survive
// across extractions. Plans are intentionally not shared across threads —
// DctPlan is unsynchronized — so "shared" means shared lifetime and
// accounting, not shared tables.
class DctPlanCache {
 public:
  explicit DctPlanCache(
      size_t tables_per_thread = DctPlan::kDefaultMaxTables);
  ~DctPlanCache() = default;

  DctPlanCache(const DctPlanCache&) = delete;
  DctPlanCache& operator=(const DctPlanCache&) = delete;

  // The calling thread's plan (created on first call from this thread).
  // The plan stays valid for the cache's lifetime; the per-thread counters
  // on it (hits/misses/evictions) are safe to read only from that thread —
  // use the `dct_plan_evictions_total` metric for cross-thread accounting.
  DctPlan* ThreadLocalPlan();

  // Number of per-thread plans created so far.
  size_t NumPlans() const;
  size_t tables_per_thread() const { return tables_per_thread_; }

 private:
  const uint64_t uid_;
  const size_t tables_per_thread_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<DctPlan>> plans_;
};

// The process-wide plan cache used when a server is not given its own —
// one of the sanctioned mutable-static facades (analyzer rule A5), like
// DefaultThreadPool(): never destroyed, safe from any thread.
DctPlanCache& DefaultDctPlanCache();

}  // namespace serving
}  // namespace vastats

#endif  // VASTATS_SERVING_CACHES_H_
