// Stable 64-bit identities for the serving layer's cache keys and seed
// derivation.
//
// Two different requests must collide only when serving them identically is
// correct, so the fingerprints hash exactly the inputs that determine an
// extraction's result under one server's fixed base options:
//   * the component sequence (order-sensitive — uniS take positions index
//     the query's component order, so only queries with the same sequence
//     may share a sampling pass);
//   * the aggregate kind and quantile parameter;
//   * per-request knobs that change the sample stream (the virtual-time
//     deadline).
// The query *name* is deliberately excluded: "q1" and "q2" asking the same
// aggregate over the same components are the same extraction.
//
// Fingerprints also derive per-query sampling seeds (base seed XOR the
// component-sequence fingerprint), which is what makes a batched group and
// an isolated run consume the identical rng stream.

#ifndef VASTATS_SERVING_FINGERPRINT_H_
#define VASTATS_SERVING_FINGERPRINT_H_

#include <cstdint>
#include <span>

#include "datagen/component.h"
#include "stats/aggregate_query.h"

namespace vastats {
namespace serving {

// FNV-1a over an opaque byte range. Exposed so the caches can extend keys
// (e.g. folding per-source epochs into a closure stamp) with the same hash.
uint64_t FingerprintBytes(const void* data, size_t size,
                          uint64_t seed = 0xcbf29ce484222325ULL);

// Order-sensitive fingerprint of a component sequence. Queries share a
// batched sampling pass exactly when these match.
uint64_t ComponentSequenceFingerprint(std::span<const ComponentId> components);

// Full query fingerprint: component sequence + kind + quantile parameter
// (name excluded, see above). Keys the answer and bandwidth caches.
uint64_t QueryFingerprint(const AggregateQuery& query);

// Folds a per-request virtual-time deadline into `fingerprint` (identity
// when the deadline is unset): a deadline can truncate the sample stream,
// so deadline-bearing requests must never share cache entries with
// unbounded ones.
uint64_t FoldDeadline(uint64_t fingerprint, double deadline_virtual_ms);

}  // namespace serving
}  // namespace vastats

#endif  // VASTATS_SERVING_FINGERPRINT_H_
